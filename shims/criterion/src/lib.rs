//! Offline stand-in for [`criterion`](https://crates.io/crates/criterion).
//!
//! Exposes the macro/struct surface the workspace's benches use
//! (`criterion_group!`, `criterion_main!`, `Criterion::benchmark_group`,
//! `bench_function`, `bench_with_input`, `BenchmarkId`) and measures with a
//! plain wall-clock loop: one warm-up call, then up to `sample_size`
//! iterations or ~1 second, whichever comes first, reporting the mean. No
//! statistics, plots or baselines — the goal is that `cargo bench` builds,
//! runs and prints comparable numbers without crates.io access.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Re-export of [`std::hint::black_box`] under criterion's name.
pub use std::hint::black_box;

/// Top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup {
        let name = name.into();
        println!("\n== bench group: {name} ==");
        BenchmarkGroup {
            name,
            sample_size: 10,
        }
    }
}

/// A named benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// Combine a function name and a parameter into a label.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            label: format!("{}/{}", name.into(), parameter),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(label: &str) -> Self {
        BenchmarkId {
            label: label.to_string(),
        }
    }
}

/// A group of benchmarks sharing a sample-size budget.
#[derive(Debug)]
pub struct BenchmarkGroup {
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup {
    /// Cap the number of timed iterations per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Time a closure that needs no external input.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut bencher = Bencher::new(self.sample_size);
        routine(&mut bencher);
        bencher.report(&self.name, &id.label);
        self
    }

    /// Time a closure parameterised by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut routine: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut bencher = Bencher::new(self.sample_size);
        routine(&mut bencher, input);
        bencher.report(&self.name, &id.label);
        self
    }

    /// End the group (upstream flushes reports here; the shim prints eagerly).
    pub fn finish(self) {}
}

/// Collects iteration timings for one benchmark.
#[derive(Debug)]
pub struct Bencher {
    sample_size: usize,
    iterations: u64,
    elapsed: Duration,
}

impl Bencher {
    fn new(sample_size: usize) -> Self {
        Bencher {
            sample_size,
            iterations: 0,
            elapsed: Duration::ZERO,
        }
    }

    /// Run the routine once warm, then repeatedly under the group's budget.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut routine: F) {
        black_box(routine()); // warm-up, untimed
        let budget = Duration::from_secs(1);
        let start = Instant::now();
        for _ in 0..self.sample_size {
            black_box(routine());
            self.iterations += 1;
            if start.elapsed() > budget {
                break;
            }
        }
        self.elapsed = start.elapsed();
    }

    fn report(&self, group: &str, label: &str) {
        if self.iterations == 0 {
            println!("{group}/{label}: no timed iterations");
            return;
        }
        let mean = self.elapsed / self.iterations as u32;
        println!(
            "{group}/{label}: {mean:?} mean over {} iterations",
            self.iterations
        );
    }
}

/// Declare a group function that runs each listed benchmark.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declare the bench entry point from one or more groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_counts_iterations() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim_test");
        group.sample_size(3);
        let mut calls = 0u64;
        group.bench_function("count", |b| b.iter(|| calls += 1));
        group.finish();
        // one warm-up + up to three timed iterations
        assert!((2..=4).contains(&calls), "calls = {calls}");
    }
}
