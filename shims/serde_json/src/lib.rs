//! Offline stand-in for [`serde_json`](https://crates.io/crates/serde_json):
//! renders the local serde shim's [`Value`] tree as JSON text, and parses
//! JSON text back — untyped into a [`Value`] tree (`from_str::<Value>`) or
//! straight into any `Deserialize` type ([`from_str`]/[`from_value`]) — so
//! artifacts such as `BENCH_nn.json` and `SWEEP.json` round-trip into real
//! structs instead of `Value` accessor chains.

pub use serde::Value;

/// Parse JSON text into any [`serde::Deserialize`] type (use
/// `from_str::<Value>` for an untyped tree).
///
/// Supports the full JSON grammar the writer half emits: objects, arrays,
/// strings with escapes (including `\uXXXX`), numbers, booleans and `null`.
/// Numbers are widened to `f64`, matching the serde shim's data model.
pub fn from_str<T: serde::Deserialize>(text: &str) -> Result<T, Error> {
    let mut parser = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    parser.skip_whitespace();
    let value = parser.parse_value()?;
    parser.skip_whitespace();
    if parser.pos != parser.bytes.len() {
        return Err(Error(format!("trailing characters at byte {}", parser.pos)));
    }
    from_value(&value)
}

/// Rebuild a typed value from an already parsed [`Value`] tree.
pub fn from_value<T: serde::Deserialize>(value: &Value) -> Result<T, Error> {
    T::from_value(value).map_err(|e| Error(e.to_string()))
}

/// Convenience accessors used when inspecting parsed artifacts.
pub trait ValueExt {
    /// Object member lookup (`None` for non-objects / missing keys).
    fn get(&self, key: &str) -> Option<&Value>;
    /// Numeric view of the value.
    fn as_f64(&self) -> Option<f64>;
    /// String view of the value.
    fn as_str(&self) -> Option<&str>;
    /// Array view of the value.
    fn as_array(&self) -> Option<&[Value]>;
}

impl ValueExt for Value {
    fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(*n),
            _ => None,
        }
    }

    fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_whitespace(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error(format!(
                "expected '{}' at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn consume_literal(&mut self, literal: &str) -> bool {
        if self.bytes[self.pos..].starts_with(literal.as_bytes()) {
            self.pos += literal.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'{') => self.parse_object(),
            Some(b'[') => self.parse_array(),
            Some(b'"') => Ok(Value::String(self.parse_string()?)),
            Some(b't') if self.consume_literal("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.consume_literal("false") => Ok(Value::Bool(false)),
            Some(b'n') if self.consume_literal("null") => Ok(Value::Null),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.parse_number(),
            _ => Err(Error(format!("unexpected input at byte {}", self.pos))),
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(entries));
        }
        loop {
            self.skip_whitespace();
            let key = self.parse_string()?;
            self.skip_whitespace();
            self.expect(b':')?;
            self.skip_whitespace();
            let value = self.parse_value()?;
            entries.push((key, value));
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                _ => return Err(Error(format!("expected ',' or '}}' at byte {}", self.pos))),
            }
        }
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_whitespace();
            items.push(self.parse_value()?);
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(Error(format!("expected ',' or ']' at byte {}", self.pos))),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(b) = self.peek() else {
                return Err(Error("unterminated string".to_string()));
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(esc) = self.peek() else {
                        return Err(Error("unterminated escape".to_string()));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| Error("truncated \\u escape".to_string()))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| Error(format!("bad \\u escape '{hex}'")))?;
                            self.pos += 4;
                            // Surrogate pairs are not emitted by the writer;
                            // map lone surrogates to the replacement char.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        other => {
                            return Err(Error(format!("bad escape '\\{}'", other as char)));
                        }
                    }
                }
                _ => {
                    // Collect the full UTF-8 sequence starting at this byte.
                    let start = self.pos - 1;
                    let len = utf8_len(b);
                    let end = start + len;
                    let chunk = self
                        .bytes
                        .get(start..end)
                        .and_then(|c| std::str::from_utf8(c).ok())
                        .ok_or_else(|| Error("invalid UTF-8 in string".to_string()))?;
                    out.push_str(chunk);
                    self.pos = end;
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while let Some(b) = self.peek() {
            if b.is_ascii_digit() || matches!(b, b'.' | b'e' | b'E' | b'+' | b'-') {
                self.pos += 1;
            } else {
                break;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error("invalid number".to_string()))?;
        text.parse::<f64>()
            .map(Value::Number)
            .map_err(|_| Error(format!("invalid number '{text}'")))
    }
}

fn utf8_len(first_byte: u8) -> usize {
    match first_byte {
        0x00..=0x7f => 1,
        0xc0..=0xdf => 2,
        0xe0..=0xef => 3,
        _ => 4,
    }
}

/// Error type for JSON rendering. Rendering a [`Value`] tree cannot
/// currently fail, but the `Result` return keeps call sites source-compatible
/// with upstream `serde_json`.
#[derive(Debug, Clone)]
pub struct Error(String);

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "JSON error: {}", self.0)
    }
}

impl std::error::Error for Error {}

/// Serialize a value to compact JSON.
pub fn to_string<T: serde::Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), None, 0, &mut out);
    Ok(out)
}

/// Serialize a value to two-space-indented JSON.
pub fn to_string_pretty<T: serde::Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), Some(2), 0, &mut out);
    Ok(out)
}

fn write_value(value: &Value, indent: Option<usize>, depth: usize, out: &mut String) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Number(n) => write_number(*n, out),
        Value::String(s) => write_string(s, out),
        Value::Array(items) => write_seq(
            items.iter(),
            indent,
            depth,
            out,
            ('[', ']'),
            |item, d, o| write_value(item, indent, d, o),
        ),
        Value::Object(entries) => write_seq(
            entries.iter(),
            indent,
            depth,
            out,
            ('{', '}'),
            |(key, item), d, o| {
                write_string(key, o);
                o.push(':');
                if indent.is_some() {
                    o.push(' ');
                }
                write_value(item, indent, d, o);
            },
        ),
    }
}

fn write_seq<T>(
    items: impl ExactSizeIterator<Item = T>,
    indent: Option<usize>,
    depth: usize,
    out: &mut String,
    (open, close): (char, char),
    mut write_item: impl FnMut(T, usize, &mut String),
) {
    out.push(open);
    let n = items.len();
    for (i, item) in items.enumerate() {
        newline(indent, depth + 1, out);
        write_item(item, depth + 1, out);
        if i + 1 < n {
            out.push(',');
        }
    }
    if n > 0 {
        newline(indent, depth, out);
    }
    out.push(close);
}

fn newline(indent: Option<usize>, depth: usize, out: &mut String) {
    if let Some(width) = indent {
        out.push('\n');
        out.extend(std::iter::repeat_n(' ', width * depth));
    }
}

fn write_number(n: f64, out: &mut String) {
    if !n.is_finite() {
        // JSON has no NaN/Infinity; upstream serde_json also refuses them.
        out.push_str("null");
    } else if n == 0.0 && n.is_sign_negative() {
        // The integer fast path below would render -0.0 as "0", losing the
        // sign bit; checkpointed model weights must round-trip losslessly.
        out.push_str("-0.0");
    } else if n == n.trunc() && n.abs() < 9.007_199_254_740_992e15 {
        out.push_str(&format!("{}", n as i64));
    } else {
        out.push_str(&format!("{n}"));
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    #[test]
    fn compact_rendering() {
        let mut map: BTreeMap<String, Vec<f64>> = BTreeMap::new();
        map.insert("a".to_string(), vec![1.0, 2.5]);
        assert_eq!(to_string(&map).unwrap(), r#"{"a":[1,2.5]}"#);
    }

    #[test]
    fn pretty_rendering_indents() {
        let mut map: BTreeMap<String, f64> = BTreeMap::new();
        map.insert("x".to_string(), 1.0);
        let text = to_string_pretty(&map).unwrap();
        assert_eq!(text, "{\n  \"x\": 1\n}");
    }

    #[test]
    fn strings_are_escaped() {
        let s = "line\none \"two\"\\".to_string();
        assert_eq!(to_string(&s).unwrap(), r#""line\none \"two\"\\""#);
    }

    #[test]
    fn non_finite_numbers_become_null() {
        assert_eq!(to_string(&f64::NAN).unwrap(), "null");
        assert_eq!(to_string(&f64::INFINITY).unwrap(), "null");
    }

    #[test]
    fn negative_zero_keeps_its_sign_bit() {
        assert_eq!(to_string(&-0.0f64).unwrap(), "-0.0");
        assert_eq!(to_string(&0.0f64).unwrap(), "0");
        let back: f64 = from_str("-0.0").unwrap();
        assert!(back == 0.0 && back.is_sign_negative());
        // Model weights round-trip bit-for-bit through render → parse.
        for w in [-0.0f64, 0.0, -1.5, 1.0 / 3.0, f64::MIN_POSITIVE, 1e300] {
            let text = to_string(&w).unwrap();
            let back: f64 = from_str(&text).unwrap();
            assert_eq!(back.to_bits(), w.to_bits(), "{w} mangled via {text:?}");
        }
    }

    #[test]
    fn parse_round_trips_writer_output() {
        let value = Value::Object(vec![
            (
                "name".to_string(),
                Value::String("bench/µs \"q\"".to_string()),
            ),
            ("speedup".to_string(), Value::Number(2.25)),
            ("count".to_string(), Value::Number(42.0)),
            ("ok".to_string(), Value::Bool(true)),
            ("none".to_string(), Value::Null),
            (
                "times".to_string(),
                Value::Array(vec![Value::Number(1.5), Value::Number(-3e-4)]),
            ),
        ]);
        let mut compact = String::new();
        write_value(&value, None, 0, &mut compact);
        assert_eq!(from_str::<Value>(&compact).unwrap(), value);
        let mut pretty = String::new();
        write_value(&value, Some(2), 0, &mut pretty);
        assert_eq!(from_str::<Value>(&pretty).unwrap(), value);
    }

    #[test]
    fn parse_handles_escapes_and_nesting() {
        let parsed =
            from_str::<Value>(r#"{"a": [{"b": "x\nyA"}, [1, 2.5, -3]], "c": {}}"#).unwrap();
        let a = parsed.get("a").unwrap().as_array().unwrap();
        assert_eq!(a[0].get("b").unwrap().as_str().unwrap(), "x\nyA");
        let inner = a[1].as_array().unwrap();
        assert_eq!(inner[1].as_f64().unwrap(), 2.5);
        assert_eq!(parsed.get("c").unwrap(), &Value::Object(vec![]));
    }

    #[test]
    fn parse_rejects_malformed_input() {
        assert!(from_str::<Value>("").is_err());
        assert!(from_str::<Value>("{").is_err());
        assert!(from_str::<Value>("[1,]").is_err());
        assert!(from_str::<Value>(r#"{"a" 1}"#).is_err());
        assert!(from_str::<Value>("1 2").is_err());
        assert!(from_str::<Value>("\"unterminated").is_err());
    }

    #[test]
    fn parse_handles_exponent_floats() {
        assert_eq!(from_str::<Value>("1e3").unwrap(), Value::Number(1000.0));
        assert_eq!(
            from_str::<Value>("-2.5E-4").unwrap(),
            Value::Number(-2.5e-4)
        );
        assert_eq!(from_str::<Value>("1.25e+2").unwrap(), Value::Number(125.0));
        assert_eq!(
            from_str::<Value>("[1e0, 2e-1]")
                .unwrap()
                .as_array()
                .unwrap()[1],
            Value::Number(0.2)
        );
        // A bare exponent marker or sign is not a number.
        assert!(from_str::<Value>("1e").is_err());
        assert!(from_str::<Value>("-").is_err());
        assert!(from_str::<Value>("2.5e+").is_err());
    }

    #[test]
    fn parse_handles_string_escape_edge_cases() {
        assert_eq!(
            from_str::<Value>(r#""""#).unwrap(),
            Value::String(String::new())
        );
        assert_eq!(
            from_str::<Value>(r#""aéb\t\"c\"\\""#).unwrap(),
            Value::String("aéb\t\"c\"\\".to_string())
        );
        // Lone surrogates (never emitted by the writer) map to U+FFFD
        // instead of producing invalid UTF-8.
        assert_eq!(
            from_str::<Value>(r#""\ud83d""#).unwrap(),
            Value::String("\u{fffd}".to_string())
        );
        // Unknown escapes, truncated \u escapes and bad hex are rejected.
        assert!(from_str::<Value>(r#""\q""#).is_err());
        assert!(from_str::<Value>(r#""\u00""#).is_err());
        assert!(from_str::<Value>(r#""\u00g1""#).is_err());
        assert!(from_str::<Value>("\"dangling escape\\").is_err());
    }

    #[test]
    fn parse_handles_deeply_nested_arrays() {
        let parsed = from_str::<Value>(r#"[[[[1, [2]]]], [], [[]]]"#).unwrap();
        let outer = parsed.as_array().unwrap();
        assert_eq!(outer.len(), 3);
        let deep = outer[0].as_array().unwrap()[0].as_array().unwrap()[0]
            .as_array()
            .unwrap();
        assert_eq!(deep[0], Value::Number(1.0));
        assert_eq!(deep[1].as_array().unwrap()[0], Value::Number(2.0));
        assert_eq!(outer[1], Value::Array(vec![]));
        // Unbalanced nesting fails rather than truncating.
        assert!(from_str::<Value>("[[1]").is_err());
        assert!(from_str::<Value>(r#"{"a": [1, {"b": 2}}"#).is_err());
    }

    #[test]
    fn parse_rejects_trailing_garbage_after_any_root() {
        // `perf_report --check` and the sweep artifact both re-parse whole
        // files, so a valid prefix followed by junk must be an error, not a
        // silent truncation.
        assert!(from_str::<Value>(r#"{"a": 1} trailing"#).is_err());
        assert!(from_str::<Value>("[1, 2]]").is_err());
        assert!(from_str::<Value>(r#""abc"def"#).is_err());
        assert!(from_str::<Value>("3.5, 4").is_err());
        assert!(from_str::<Value>("null null").is_err());
        // Leading and trailing whitespace alone is fine.
        assert_eq!(
            from_str::<Value>("  [ 1 ,\t2 ]\n")
                .unwrap()
                .as_array()
                .unwrap()
                .len(),
            2
        );
    }

    #[test]
    fn parse_rejects_bare_words_and_literal_prefixes() {
        assert!(from_str::<Value>("tru").is_err());
        assert!(
            from_str::<Value>("falsehood").is_err(),
            "trailing chars after literal"
        );
        assert!(from_str::<Value>("nul").is_err());
        assert!(from_str::<Value>("NaN").is_err());
        assert!(from_str::<Value>("Infinity").is_err());
    }

    // -----------------------------------------------------------------------
    // Typed read-back through the derive shim: the to_string → from_str::<T>
    // round-trip that BENCH_nn.json and SWEEP.json rely on.
    // -----------------------------------------------------------------------

    use serde::{Deserialize, Serialize};

    #[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
    enum Mode {
        Fast,
        Careful { retries: u32, label: String },
        Pair(u8, u8),
        Wrapped(f64),
    }

    #[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
    struct Row {
        id: String,
        score: Option<f64>,
        counts: Vec<u64>,
        mode: Mode,
        #[serde(skip)]
        scratch: Vec<f64>,
    }

    #[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
    struct Artifact {
        version: u32,
        rows: Vec<Row>,
        lookup: BTreeMap<String, f64>,
    }

    fn artifact() -> Artifact {
        let mut lookup = BTreeMap::new();
        lookup.insert("µ-mean".to_string(), -2.5e-4);
        Artifact {
            version: 2,
            rows: vec![
                Row {
                    id: "a".to_string(),
                    score: Some(0.125),
                    counts: vec![1, 2, 3],
                    mode: Mode::Careful {
                        retries: 3,
                        label: "per-cell".to_string(),
                    },
                    scratch: vec![9.0],
                },
                Row {
                    id: "b \"quoted\"".to_string(),
                    score: None,
                    counts: vec![],
                    mode: Mode::Fast,
                    scratch: vec![],
                },
                Row {
                    id: "c".to_string(),
                    score: Some(2.0),
                    counts: vec![42],
                    mode: Mode::Pair(7, 9),
                    scratch: vec![],
                },
            ],
            lookup,
        }
    }

    #[test]
    fn typed_round_trip_preserves_every_field_except_skipped_ones() {
        let original = artifact();
        for text in [
            to_string(&original).unwrap(),
            to_string_pretty(&original).unwrap(),
        ] {
            let parsed: Artifact = from_str(&text).unwrap();
            assert_eq!(parsed.version, original.version);
            assert_eq!(parsed.lookup, original.lookup);
            assert_eq!(parsed.rows.len(), original.rows.len());
            for (p, o) in parsed.rows.iter().zip(&original.rows) {
                assert_eq!(p.id, o.id);
                assert_eq!(p.score, o.score);
                assert_eq!(p.counts, o.counts);
                assert_eq!(p.mode, o.mode);
                // `#[serde(skip)]` fields come back as Default, as upstream.
                assert!(p.scratch.is_empty());
            }
        }
    }

    #[test]
    fn typed_round_trip_handles_newtype_and_unit_variants() {
        for mode in [Mode::Fast, Mode::Wrapped(-0.5), Mode::Pair(1, 2)] {
            let text = to_string(&mode).unwrap();
            assert_eq!(from_str::<Mode>(&text).unwrap(), mode);
        }
    }

    #[test]
    fn typed_read_back_rejects_shape_mismatches_with_field_context() {
        // Wrong root kind.
        assert!(from_str::<Artifact>("[1, 2]").is_err());
        // A mandatory field missing entirely.
        let err = from_str::<Artifact>(r#"{"version": 2, "rows": []}"#).unwrap_err();
        assert!(
            err.to_string().contains("lookup"),
            "error should name the missing field: {err}"
        );
        // A field of the wrong type, with the path in the message.
        let err =
            from_str::<Artifact>(r#"{"version": "two", "rows": [], "lookup": {}}"#).unwrap_err();
        assert!(
            err.to_string().contains("Artifact.version"),
            "error should carry the field path: {err}"
        );
        // An unknown enum variant.
        let doc = r#"{"id": "x", "score": null, "counts": [], "mode": "Sloppy"}"#;
        let err = from_str::<Row>(doc).unwrap_err();
        assert!(err.to_string().contains("Sloppy"), "{err}");
        // A fractional number where an integer field is declared.
        let err = from_str::<Row>(r#"{"id": "x", "score": null, "counts": [1.5], "mode": "Fast"}"#)
            .unwrap_err();
        assert!(err.to_string().contains("counts"), "{err}");
        // Absent Option fields read back as None rather than erroring.
        let row: Row = from_str(r#"{"id": "x", "counts": [], "mode": "Fast"}"#).unwrap();
        assert_eq!(row.score, None);
    }
}
