//! Offline stand-in for [`serde_json`](https://crates.io/crates/serde_json):
//! renders the local serde shim's [`Value`] tree as JSON text. Only the
//! writer half exists — the workspace writes experiment artifacts but never
//! reads them back.

pub use serde::Value;

/// Error type for JSON rendering. Rendering a [`Value`] tree cannot
/// currently fail, but the `Result` return keeps call sites source-compatible
/// with upstream `serde_json`.
#[derive(Debug, Clone)]
pub struct Error(String);

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "JSON error: {}", self.0)
    }
}

impl std::error::Error for Error {}

/// Serialize a value to compact JSON.
pub fn to_string<T: serde::Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), None, 0, &mut out);
    Ok(out)
}

/// Serialize a value to two-space-indented JSON.
pub fn to_string_pretty<T: serde::Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), Some(2), 0, &mut out);
    Ok(out)
}

fn write_value(value: &Value, indent: Option<usize>, depth: usize, out: &mut String) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Number(n) => write_number(*n, out),
        Value::String(s) => write_string(s, out),
        Value::Array(items) => write_seq(
            items.iter(),
            indent,
            depth,
            out,
            ('[', ']'),
            |item, d, o| write_value(item, indent, d, o),
        ),
        Value::Object(entries) => write_seq(
            entries.iter(),
            indent,
            depth,
            out,
            ('{', '}'),
            |(key, item), d, o| {
                write_string(key, o);
                o.push(':');
                if indent.is_some() {
                    o.push(' ');
                }
                write_value(item, indent, d, o);
            },
        ),
    }
}

fn write_seq<T>(
    items: impl ExactSizeIterator<Item = T>,
    indent: Option<usize>,
    depth: usize,
    out: &mut String,
    (open, close): (char, char),
    mut write_item: impl FnMut(T, usize, &mut String),
) {
    out.push(open);
    let n = items.len();
    for (i, item) in items.enumerate() {
        newline(indent, depth + 1, out);
        write_item(item, depth + 1, out);
        if i + 1 < n {
            out.push(',');
        }
    }
    if n > 0 {
        newline(indent, depth, out);
    }
    out.push(close);
}

fn newline(indent: Option<usize>, depth: usize, out: &mut String) {
    if let Some(width) = indent {
        out.push('\n');
        out.extend(std::iter::repeat_n(' ', width * depth));
    }
}

fn write_number(n: f64, out: &mut String) {
    if !n.is_finite() {
        // JSON has no NaN/Infinity; upstream serde_json also refuses them.
        out.push_str("null");
    } else if n == n.trunc() && n.abs() < 9.007_199_254_740_992e15 {
        out.push_str(&format!("{}", n as i64));
    } else {
        out.push_str(&format!("{n}"));
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    #[test]
    fn compact_rendering() {
        let mut map: BTreeMap<String, Vec<f64>> = BTreeMap::new();
        map.insert("a".to_string(), vec![1.0, 2.5]);
        assert_eq!(to_string(&map).unwrap(), r#"{"a":[1,2.5]}"#);
    }

    #[test]
    fn pretty_rendering_indents() {
        let mut map: BTreeMap<String, f64> = BTreeMap::new();
        map.insert("x".to_string(), 1.0);
        let text = to_string_pretty(&map).unwrap();
        assert_eq!(text, "{\n  \"x\": 1\n}");
    }

    #[test]
    fn strings_are_escaped() {
        let s = "line\none \"two\"\\".to_string();
        assert_eq!(to_string(&s).unwrap(), r#""line\none \"two\"\\""#);
    }

    #[test]
    fn non_finite_numbers_become_null() {
        assert_eq!(to_string(&f64::NAN).unwrap(), "null");
        assert_eq!(to_string(&f64::INFINITY).unwrap(), "null");
    }
}
