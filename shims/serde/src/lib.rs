//! Offline stand-in for the [`serde`](https://crates.io/crates/serde) crate.
//!
//! The build environment has no crates.io access, so this shim replaces
//! serde's zero-copy serializer architecture with the simplest model that
//! serves the workspace: [`Serialize`] lowers any value into a JSON-like
//! [`Value`] tree, and the `serde_json` shim renders that tree. The derive
//! macros are re-exported from the local `serde_derive` shim, so existing
//! `#[derive(Serialize, Deserialize)]` and `#[serde(skip)]` annotations work
//! unchanged.
//!
//! [`Deserialize`] is a marker only: nothing in the workspace reads
//! serialized artifacts back yet. When that need arrives, extend the trait
//! with a `from_value` method and teach the derive shim to emit it.

pub use serde_derive::{Deserialize, Serialize};

use std::collections::{BTreeMap, HashMap};

/// A JSON-like document tree — the serialization data model of this shim.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Any numeric value (integers are widened to `f64`).
    Number(f64),
    /// JSON string.
    String(String),
    /// JSON array.
    Array(Vec<Value>),
    /// JSON object with insertion-ordered keys.
    Object(Vec<(String, Value)>),
}

/// Types that can lower themselves into a [`Value`] tree.
pub trait Serialize {
    /// Build the document tree for this value.
    fn to_value(&self) -> Value;
}

/// Marker for types whose serialized form could be read back. See the
/// module docs for why this carries no methods yet.
pub trait Deserialize {}

macro_rules! serialize_number {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Number(*self as f64)
            }
        }
    )*};
}

serialize_number!(u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, i128, isize, f32, f64);

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Serialize for () {
    fn to_value(&self) -> Value {
        Value::Null
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        self.as_slice().to_value()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        self.as_slice().to_value()
    }
}

macro_rules! serialize_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
    )*};
}

serialize_tuple! {
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}

/// Types usable as JSON object keys (stringified, as upstream serde_json
/// does for integer-keyed maps).
pub trait MapKey {
    /// Render the key as an object-key string.
    fn to_key_string(&self) -> String;
}

impl MapKey for String {
    fn to_key_string(&self) -> String {
        self.clone()
    }
}

impl MapKey for &str {
    fn to_key_string(&self) -> String {
        (*self).to_string()
    }
}

macro_rules! int_map_key {
    ($($t:ty),*) => {$(
        impl MapKey for $t {
            fn to_key_string(&self) -> String {
                self.to_string()
            }
        }
    )*};
}

int_map_key!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl<K: MapKey, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.to_key_string(), v.to_value()))
                .collect(),
        )
    }
}

impl<K: MapKey, V: Serialize> Serialize for HashMap<K, V> {
    fn to_value(&self) -> Value {
        // Sort keys so the rendered artifact is deterministic.
        let mut entries: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| (k.to_key_string(), v.to_value()))
            .collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Object(entries)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_lower_to_expected_values() {
        assert_eq!(3u32.to_value(), Value::Number(3.0));
        assert_eq!(true.to_value(), Value::Bool(true));
        assert_eq!("hi".to_value(), Value::String("hi".to_string()));
        assert_eq!(Option::<u8>::None.to_value(), Value::Null);
    }

    #[test]
    fn collections_preserve_order() {
        let v = vec![("a".to_string(), 1.0f64), ("b".to_string(), 2.0)];
        let Value::Array(items) = v.to_value() else {
            panic!("expected array")
        };
        assert_eq!(items.len(), 2);
        assert_eq!(
            items[0],
            Value::Array(vec![Value::String("a".into()), Value::Number(1.0)])
        );
    }
}
