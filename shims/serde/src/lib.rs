//! Offline stand-in for the [`serde`](https://crates.io/crates/serde) crate.
//!
//! The build environment has no crates.io access, so this shim replaces
//! serde's zero-copy serializer architecture with the simplest model that
//! serves the workspace: [`Serialize`] lowers any value into a JSON-like
//! [`Value`] tree, the `serde_json` shim renders that tree, and
//! [`Deserialize`] walks a parsed tree back into a typed value
//! ([`Deserialize::from_value`]). The derive macros are re-exported from the
//! local `serde_derive` shim, so existing `#[derive(Serialize, Deserialize)]`
//! and `#[serde(skip)]` annotations work unchanged; skipped fields are
//! rebuilt with `Default::default()` on read-back, matching upstream serde.

pub use serde_derive::{Deserialize, Serialize};

use std::collections::{BTreeMap, HashMap};

/// A JSON-like document tree — the serialization data model of this shim.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Any numeric value (integers are widened to `f64`).
    Number(f64),
    /// JSON string.
    String(String),
    /// JSON array.
    Array(Vec<Value>),
    /// JSON object with insertion-ordered keys.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Human-readable kind name, used in [`DeError`] messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "a boolean",
            Value::Number(_) => "a number",
            Value::String(_) => "a string",
            Value::Array(_) => "an array",
            Value::Object(_) => "an object",
        }
    }
}

/// Types that can lower themselves into a [`Value`] tree.
pub trait Serialize {
    /// Build the document tree for this value.
    fn to_value(&self) -> Value;
}

/// Error produced when a [`Value`] tree does not match the shape of the
/// requested type. Carries a human-readable message with the field path
/// prepended as the error bubbles out of nested structures.
#[derive(Debug, Clone, PartialEq)]
pub struct DeError(String);

impl DeError {
    /// Free-form error message.
    pub fn custom(message: impl Into<String>) -> Self {
        Self(message.into())
    }

    /// The document has no member for a mandatory field.
    pub fn missing_field(field: &str) -> Self {
        Self(format!("missing field '{field}'"))
    }

    /// The value's kind does not match what the type expects.
    pub fn type_mismatch(expected: &str, found: &Value) -> Self {
        Self(format!("expected {expected}, found {}", found.kind()))
    }

    /// Prefix the error with the field it occurred in.
    #[must_use]
    pub fn in_field(self, field: &str) -> Self {
        Self(format!("{field}: {}", self.0))
    }
}

impl std::fmt::Display for DeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for DeError {}

/// Types that can be rebuilt from a [`Value`] tree — the read-back half of
/// [`Serialize`]. The derive macro emits `from_value` for the same shapes it
/// can serialize, so `#[derive(Serialize, Deserialize)]` round-trips.
pub trait Deserialize: Sized {
    /// Rebuild a value of this type from the document tree.
    fn from_value(value: &Value) -> Result<Self, DeError>;

    /// How to materialise this type when its object member is absent
    /// entirely: an error for most types, overridden to `None` by
    /// `Option<T>` (the writer encodes `None` as `null`, so an absent
    /// member and an explicit `null` both read back as `None`).
    fn from_missing_field(field: &str) -> Result<Self, DeError> {
        Err(DeError::missing_field(field))
    }
}

macro_rules! serialize_number {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Number(*self as f64)
            }
        }
    )*};
}

serialize_number!(u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, i128, isize, f32, f64);

macro_rules! deserialize_int {
    ($($t:ty),*) => {$(
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, DeError> {
                let Value::Number(n) = value else {
                    return Err(DeError::type_mismatch(
                        concat!("an integer (", stringify!($t), ")"),
                        value,
                    ));
                };
                // The writer widens every integer to f64, so read-back
                // accepts exactly the integral f64 range of the target
                // type. The upper bound is exclusive at `MAX + 1`: for
                // wide types (u64, i64, …) `MAX as f64` rounds UP to the
                // next power of two, so a `> MAX as f64` check would let
                // e.g. 2^64 slip through and saturate. `MAX as f64 + 1.0`
                // lands on that power of two exactly (MIN is a power of
                // two or zero, hence exact as-is).
                if n.fract() != 0.0 || *n < <$t>::MIN as f64 || *n >= <$t>::MAX as f64 + 1.0 {
                    return Err(DeError::custom(format!(
                        concat!("number {} is not a valid ", stringify!($t)),
                        n
                    )));
                }
                Ok(*n as $t)
            }
        }
    )*};
}

deserialize_int!(u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, i128, isize);

macro_rules! deserialize_float {
    ($($t:ty),*) => {$(
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, DeError> {
                match value {
                    Value::Number(n) => Ok(*n as $t),
                    other => Err(DeError::type_mismatch("a number", other)),
                }
            }
        }
    )*};
}

deserialize_float!(f32, f64);

impl Deserialize for bool {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Bool(b) => Ok(*b),
            other => Err(DeError::type_mismatch("a boolean", other)),
        }
    }
}

impl Deserialize for char {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        let Value::String(s) = value else {
            return Err(DeError::type_mismatch("a one-character string", value));
        };
        let mut chars = s.chars();
        match (chars.next(), chars.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(DeError::custom(format!(
                "expected a one-character string, found {s:?}"
            ))),
        }
    }
}

impl Deserialize for String {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::String(s) => Ok(s.clone()),
            other => Err(DeError::type_mismatch("a string", other)),
        }
    }
}

impl Deserialize for () {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Null => Ok(()),
            other => Err(DeError::type_mismatch("null", other)),
        }
    }
}

impl Deserialize for Value {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        Ok(value.clone())
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        T::from_value(value).map(Box::new)
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }

    fn from_missing_field(_field: &str) -> Result<Self, DeError> {
        Ok(None)
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        let Value::Array(items) = value else {
            return Err(DeError::type_mismatch("an array", value));
        };
        items.iter().map(T::from_value).collect()
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        let items: Vec<T> = Vec::from_value(value)?;
        let found = items.len();
        items
            .try_into()
            .map_err(|_| DeError::custom(format!("expected {N} array elements, found {found}")))
    }
}

macro_rules! deserialize_tuple {
    ($(($($name:ident : $idx:tt),+; $arity:expr))*) => {$(
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(value: &Value) -> Result<Self, DeError> {
                let Value::Array(items) = value else {
                    return Err(DeError::type_mismatch("a tuple array", value));
                };
                if items.len() != $arity {
                    return Err(DeError::custom(format!(
                        "expected {} tuple elements, found {}",
                        $arity,
                        items.len()
                    )));
                }
                Ok(($($name::from_value(&items[$idx])?,)+))
            }
        }
    )*};
}

deserialize_tuple! {
    (A: 0, B: 1; 2)
    (A: 0, B: 1, C: 2; 3)
    (A: 0, B: 1, C: 2, D: 3; 4)
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Serialize for () {
    fn to_value(&self) -> Value {
        Value::Null
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        self.as_slice().to_value()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        self.as_slice().to_value()
    }
}

macro_rules! serialize_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
    )*};
}

serialize_tuple! {
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}

/// Types usable as JSON object keys (stringified, as upstream serde_json
/// does for integer-keyed maps).
pub trait MapKey {
    /// Render the key as an object-key string.
    fn to_key_string(&self) -> String;
}

impl MapKey for String {
    fn to_key_string(&self) -> String {
        self.clone()
    }
}

impl MapKey for &str {
    fn to_key_string(&self) -> String {
        (*self).to_string()
    }
}

macro_rules! int_map_key {
    ($($t:ty),*) => {$(
        impl MapKey for $t {
            fn to_key_string(&self) -> String {
                self.to_string()
            }
        }
    )*};
}

int_map_key!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Keys recoverable from their stringified object-key form — the read-back
/// half of [`MapKey`]. (`&str` keys can serialize but not deserialize, since
/// read-back must produce owned values.)
pub trait ParseMapKey: Sized {
    /// Parse the key back from its object-key string, `None` on mismatch.
    fn parse_key(key: &str) -> Option<Self>;
}

impl ParseMapKey for String {
    fn parse_key(key: &str) -> Option<Self> {
        Some(key.to_string())
    }
}

macro_rules! int_parse_map_key {
    ($($t:ty),*) => {$(
        impl ParseMapKey for $t {
            fn parse_key(key: &str) -> Option<Self> {
                key.parse().ok()
            }
        }
    )*};
}

int_parse_map_key!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

fn map_entries<K: ParseMapKey, V: Deserialize>(value: &Value) -> Result<Vec<(K, V)>, DeError> {
    let Value::Object(entries) = value else {
        return Err(DeError::type_mismatch("an object", value));
    };
    entries
        .iter()
        .map(|(k, v)| {
            let key = K::parse_key(k)
                .ok_or_else(|| DeError::custom(format!("unparseable map key '{k}'")))?;
            Ok((key, V::from_value(v).map_err(|e| e.in_field(k))?))
        })
        .collect()
}

impl<K: ParseMapKey + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        map_entries(value).map(|entries| entries.into_iter().collect())
    }
}

impl<K: ParseMapKey + Eq + std::hash::Hash, V: Deserialize> Deserialize for HashMap<K, V> {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        map_entries(value).map(|entries| entries.into_iter().collect())
    }
}

impl<K: MapKey, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.to_key_string(), v.to_value()))
                .collect(),
        )
    }
}

impl<K: MapKey, V: Serialize> Serialize for HashMap<K, V> {
    fn to_value(&self) -> Value {
        // Sort keys so the rendered artifact is deterministic.
        let mut entries: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| (k.to_key_string(), v.to_value()))
            .collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Object(entries)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_lower_to_expected_values() {
        assert_eq!(3u32.to_value(), Value::Number(3.0));
        assert_eq!(true.to_value(), Value::Bool(true));
        assert_eq!("hi".to_value(), Value::String("hi".to_string()));
        assert_eq!(Option::<u8>::None.to_value(), Value::Null);
    }

    #[test]
    fn primitives_read_back_from_values() {
        assert_eq!(u32::from_value(&Value::Number(3.0)), Ok(3u32));
        assert_eq!(f64::from_value(&Value::Number(2.5)), Ok(2.5));
        assert_eq!(bool::from_value(&Value::Bool(true)), Ok(true));
        assert_eq!(
            String::from_value(&Value::String("hi".into())),
            Ok("hi".to_string())
        );
        assert_eq!(Option::<u8>::from_value(&Value::Null), Ok(None));
        assert_eq!(Option::<u8>::from_value(&Value::Number(7.0)), Ok(Some(7u8)));
        assert_eq!(Option::<u8>::from_missing_field("x"), Ok(None));
        let items = Value::Array(vec![Value::Number(1.0), Value::Number(2.0)]);
        assert_eq!(Vec::<u64>::from_value(&items), Ok(vec![1, 2]));
        assert_eq!(<[f64; 2]>::from_value(&items), Ok([1.0, 2.0]));
        assert_eq!(<(u8, f64)>::from_value(&items), Ok((1u8, 2.0)));
    }

    #[test]
    fn integer_read_back_rejects_fractional_and_out_of_range_numbers() {
        assert!(u8::from_value(&Value::Number(1.5)).is_err());
        assert!(u8::from_value(&Value::Number(256.0)).is_err());
        assert!(u64::from_value(&Value::Number(-1.0)).is_err());
        assert!(i8::from_value(&Value::Number(-129.0)).is_err());
        assert!(u32::from_value(&Value::String("3".into())).is_err());
        assert!(u32::from_missing_field("cells").is_err());
    }

    #[test]
    fn integer_read_back_handles_the_inexact_max_boundary() {
        // `u64::MAX as f64` rounds UP to 2^64, so the range check must be
        // exclusive there: 2^64 is out of range (a `> MAX` check would let
        // it saturate to u64::MAX), while the largest f64 integer below
        // 2^64 is in range.
        let two_pow_64 = 18_446_744_073_709_551_616.0_f64;
        assert!(u64::from_value(&Value::Number(two_pow_64)).is_err());
        let below = 18_446_744_073_709_549_568u64; // 2^64 - 2048
        assert_eq!(u64::from_value(&Value::Number(below as f64)), Ok(below));
        // Same story for i64 at 2^63, in both directions (MIN is exact).
        let two_pow_63 = 9_223_372_036_854_775_808.0_f64;
        assert!(i64::from_value(&Value::Number(two_pow_63)).is_err());
        assert_eq!(
            i64::from_value(&Value::Number(-two_pow_63)),
            Ok(i64::MIN),
            "i64::MIN is exactly representable and must be accepted"
        );
        // Exact-MAX types keep their inclusive upper bound.
        assert_eq!(u8::from_value(&Value::Number(255.0)), Ok(255u8));
    }

    #[test]
    fn map_read_back_parses_stringified_keys() {
        let doc = Value::Object(vec![
            ("2".to_string(), Value::Number(4.0)),
            ("7".to_string(), Value::Number(49.0)),
        ]);
        let map: HashMap<usize, f64> = HashMap::from_value(&doc).unwrap();
        assert_eq!(map[&2], 4.0);
        assert_eq!(map[&7], 49.0);
        assert!(HashMap::<usize, f64>::from_value(&Value::Object(vec![(
            "x".to_string(),
            Value::Number(1.0)
        )]))
        .is_err());
    }

    #[test]
    fn deserialize_errors_carry_field_context() {
        let err = f64::from_value(&Value::Null)
            .map_err(|e| e.in_field("Report.wd"))
            .unwrap_err();
        assert_eq!(err.to_string(), "Report.wd: expected a number, found null");
        assert_eq!(
            DeError::missing_field("cells").to_string(),
            "missing field 'cells'"
        );
    }

    #[test]
    fn collections_preserve_order() {
        let v = vec![("a".to_string(), 1.0f64), ("b".to_string(), 2.0)];
        let Value::Array(items) = v.to_value() else {
            panic!("expected array")
        };
        assert_eq!(items.len(), 2);
        assert_eq!(
            items[0],
            Value::Array(vec![Value::String("a".into()), Value::Number(1.0)])
        );
    }
}
