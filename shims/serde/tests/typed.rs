//! Derive-level round-trip tests for the shim's `Deserialize` emission:
//! every shape the `serde_derive` shim serializes must walk back through
//! `from_value` losslessly (modulo `#[serde(skip)]`, which defaults), with
//! shape mismatches rejected at the right field. These run against the
//! `Value` tree directly — the JSON text layer is covered in `serde_json`.

use std::collections::HashMap;

use serde::{Deserialize, Serialize, Value};

#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct Unit;

#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct Pair(u32, String);

#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
enum Shape {
    Point,
    Circle(f64),
    Rect { w: f64, h: f64 },
    Pair(i8, i8),
}

#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct Nested {
    name: String,
    shapes: Vec<Shape>,
    pair: Pair,
    boxed: Box<u64>,
    maybe: Option<f64>,
    table: HashMap<usize, Vec<f64>>,
    #[serde(skip)]
    cache: Option<String>,
}

fn nested() -> Nested {
    let mut table = HashMap::new();
    table.insert(3usize, vec![1.0, 2.5]);
    table.insert(11usize, vec![]);
    Nested {
        name: "grid".to_string(),
        shapes: vec![
            Shape::Point,
            Shape::Circle(1.25),
            Shape::Rect { w: 2.0, h: 3.0 },
            Shape::Pair(-4, 7),
        ],
        pair: Pair(9, "nine".to_string()),
        boxed: Box::new(42),
        maybe: None,
        table,
        cache: Some("never serialized".to_string()),
    }
}

#[test]
fn derived_shapes_round_trip_through_from_value() {
    let original = nested();
    let parsed = Nested::from_value(&original.to_value()).expect("round-trip");
    assert_eq!(parsed.name, original.name);
    assert_eq!(parsed.shapes, original.shapes);
    assert_eq!(parsed.pair, original.pair);
    assert_eq!(parsed.boxed, original.boxed);
    assert_eq!(parsed.maybe, original.maybe);
    assert_eq!(parsed.table, original.table);
    // Skipped fields are rebuilt with Default, never read from the tree.
    assert_eq!(parsed.cache, None);

    let unit = Unit::from_value(&Unit.to_value()).expect("unit struct");
    assert_eq!(unit, Unit);
    let pair = Pair::from_value(&Pair(1, "x".into()).to_value()).expect("tuple struct");
    assert_eq!(pair, Pair(1, "x".into()));
}

#[test]
fn enum_variants_round_trip_in_every_form() {
    for shape in [
        Shape::Point,
        Shape::Circle(0.5),
        Shape::Rect { w: 1.0, h: -2.0 },
        Shape::Pair(1, 2),
    ] {
        assert_eq!(Shape::from_value(&shape.to_value()).unwrap(), shape);
    }
    // Unit variants serialize as bare strings, data variants as single-key
    // objects — cross-reading fails cleanly.
    assert!(Shape::from_value(&Value::String("Nope".into())).is_err());
    assert!(
        Shape::from_value(&Value::Object(vec![("Nope".into(), Value::Null)])).is_err(),
        "unknown data variant"
    );
    assert!(Shape::from_value(&Value::Number(3.0)).is_err());
}

#[test]
fn mismatched_shapes_are_rejected_with_field_context() {
    // Wrong root kind for a named struct.
    let err = Nested::from_value(&Value::Array(vec![])).unwrap_err();
    assert!(err.to_string().contains("struct Nested"), "{err}");
    // Missing mandatory field named in the error.
    let err = Nested::from_value(&Value::Object(vec![])).unwrap_err();
    assert!(err.to_string().contains("Nested."), "{err}");
    // A wrong-typed nested field carries its path.
    let mut tree = nested().to_value();
    let Value::Object(entries) = &mut tree else {
        panic!("expected object");
    };
    for (key, value) in entries.iter_mut() {
        if key == "pair" {
            *value = Value::Bool(true);
        }
    }
    let err = Nested::from_value(&tree).unwrap_err();
    assert!(err.to_string().contains("Nested.pair"), "{err}");
    // Tuple arity is enforced.
    let err = Pair::from_value(&Value::Array(vec![Value::Number(1.0)])).unwrap_err();
    assert!(err.to_string().contains("expected 2 elements"), "{err}");
    // Absent Option members read back as None (the writer encodes None as
    // null, so absence and null are equivalent).
    let thin = Value::Object(vec![
        ("name".into(), Value::String("n".into())),
        ("shapes".into(), Value::Array(vec![])),
        (
            "pair".into(),
            Value::Array(vec![Value::Number(0.0), Value::String(String::new())]),
        ),
        ("boxed".into(), Value::Number(1.0)),
        ("table".into(), Value::Object(vec![])),
    ]);
    let parsed = Nested::from_value(&thin).expect("absent Option tolerated");
    assert_eq!(parsed.maybe, None);
}
