//! Offline stand-in for the [`rand`](https://crates.io/crates/rand) crate.
//!
//! The build environment has no access to crates.io, so the workspace ships
//! the small API subset it actually uses as a local shim: a seedable
//! xoshiro256++ generator behind [`rngs::StdRng`], the [`Rng`] /
//! [`SeedableRng`] traits, uniform ranges via [`Rng::gen_range`], weighted
//! sampling via [`distributions::WeightedIndex`] and Fisher–Yates shuffling
//! via [`seq::SliceRandom`].
//!
//! Determinism contract: for a fixed seed, every method produces the same
//! stream on every platform and in every build. Several crates (and the
//! parallel experiment runtime in `surrogate::experiment`) rely on this to
//! make parallel and sequential runs byte-identical.

pub mod distributions;
pub mod rngs;
pub mod seq;

/// Minimal core-RNG interface: everything is derived from `next_u64`.
pub trait RngCore {
    /// Next 64 uniformly distributed random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly distributed random bits (upper half of a u64 draw).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// A generator that can be constructed from a 64-bit seed.
pub trait SeedableRng: Sized {
    /// Build the generator from a single `u64` seed (via SplitMix64 state
    /// expansion, like upstream `rand`).
    fn seed_from_u64(state: u64) -> Self;
}

/// User-facing convenience methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Sample uniformly from a half-open or inclusive range.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Return `true` with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        unit_f64(self) < p
    }
}

impl<R: RngCore> Rng for R {}

/// Uniform `f64` in `[0, 1)` built from the top 53 bits of a `u64` draw.
/// Public so the `rand_distr` shim can reuse the exact same stream mapping.
pub fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Types with a uniform sampler over half-open / inclusive bounds. The
/// single blanket [`SampleRange`] impl below funnels through this trait so
/// integer-literal ranges unify with the type the call site needs (mirrors
/// upstream rand's `SampleUniform` structure).
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform sample from `[low, high)`.
    fn sample_half_open<R: RngCore>(low: Self, high: Self, rng: &mut R) -> Self;
    /// Uniform sample from `[low, high]`.
    fn sample_inclusive<R: RngCore>(low: Self, high: Self, rng: &mut R) -> Self;
}

macro_rules! int_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore>(low: $t, high: $t, rng: &mut R) -> $t {
                assert!(low < high, "cannot sample empty range");
                let span = (high as i128).wrapping_sub(low as i128) as u64;
                low.wrapping_add((rng.next_u64() % span) as $t)
            }

            fn sample_inclusive<R: RngCore>(low: $t, high: $t, rng: &mut R) -> $t {
                assert!(low <= high, "cannot sample empty range");
                let span = (high as i128).wrapping_sub(low as i128) as u128 + 1;
                if span > u64::MAX as u128 {
                    return low.wrapping_add(rng.next_u64() as $t);
                }
                low.wrapping_add((rng.next_u64() % span as u64) as $t)
            }
        }
    )*};
}

int_sample_uniform!(usize, u64, u32, u16, u8, i64, i32, i16, i8, isize);

macro_rules! float_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore>(low: $t, high: $t, rng: &mut R) -> $t {
                assert!(low < high, "cannot sample empty range");
                low + (high - low) * unit_f64(rng) as $t
            }

            fn sample_inclusive<R: RngCore>(low: $t, high: $t, rng: &mut R) -> $t {
                assert!(low <= high, "cannot sample empty range");
                low + (high - low) * unit_f64(rng) as $t
            }
        }
    )*};
}

float_sample_uniform!(f64, f32);

/// Ranges that [`Rng::gen_range`] can sample from.
pub trait SampleRange<T> {
    /// Draw one uniform sample from the range.
    fn sample_single<R: RngCore>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
    fn sample_single<R: RngCore>(self, rng: &mut R) -> T {
        T::sample_half_open(self.start, self.end, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for core::ops::RangeInclusive<T> {
    fn sample_single<R: RngCore>(self, rng: &mut R) -> T {
        T::sample_inclusive(*self.start(), *self.end(), rng)
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn seeding_is_deterministic() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(StdRng::seed_from_u64(42).next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v: usize = rng.gen_range(3..17);
            assert!((3..17).contains(&v));
            let f: f64 = rng.gen_range(-2.0..2.0);
            assert!((-2.0..2.0).contains(&f));
            let inc: usize = rng.gen_range(0..=4);
            assert!(inc <= 4);
        }
    }

    #[test]
    fn gen_bool_matches_probability_roughly() {
        let mut rng = StdRng::seed_from_u64(11);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2_000..3_000).contains(&hits), "hits = {hits}");
    }

    #[test]
    fn unit_f64_is_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..1000 {
            let u = unit_f64(&mut rng);
            assert!((0.0..1.0).contains(&u));
        }
    }
}
