//! Concrete generators. Only `StdRng` is provided: a xoshiro256++ generator
//! seeded through SplitMix64, which is small, fast and deterministic across
//! platforms (the only properties this workspace needs).

use crate::{RngCore, SeedableRng};

/// The workspace's standard deterministic generator (xoshiro256++).
#[derive(Debug, Clone)]
pub struct StdRng {
    state: [u64; 4],
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        // SplitMix64 state expansion, as recommended by the xoshiro authors
        // (and used by upstream rand for seed_from_u64).
        let mut sm = seed;
        let mut next = || {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        let state = [next(), next(), next(), next()];
        StdRng { state }
    }
}

impl RngCore for StdRng {
    fn next_u64(&mut self) -> u64 {
        let [s0, s1, s2, s3] = self.state;
        let result = s0.wrapping_add(s3).rotate_left(23).wrapping_add(s0);
        let t = s1 << 17;
        let mut s2 = s2 ^ s0;
        let s3 = s3 ^ s1;
        let s1 = s1 ^ s2;
        let s0 = s0 ^ s3;
        s2 ^= t;
        self.state = [s0, s1, s2, s3.rotate_left(45)];
        result
    }
}
