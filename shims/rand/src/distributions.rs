//! The distribution trait and weighted index sampling.

use crate::{unit_f64, RngCore};

/// Types that can produce samples of `T` given a source of randomness.
pub trait Distribution<T> {
    /// Draw one sample.
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
}

/// Errors from [`WeightedIndex::new`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WeightedError {
    /// The weight iterator was empty.
    NoItem,
    /// A weight was negative, NaN or infinite.
    InvalidWeight,
    /// Every weight was zero.
    AllWeightsZero,
}

impl std::fmt::Display for WeightedError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WeightedError::NoItem => write!(f, "no weights were provided"),
            WeightedError::InvalidWeight => write!(f, "a weight was invalid"),
            WeightedError::AllWeightsZero => write!(f, "all weights were zero"),
        }
    }
}

impl std::error::Error for WeightedError {}

/// Anything `WeightedIndex::new` accepts as a weight.
pub trait IntoWeight {
    /// The weight as `f64`.
    fn into_weight(self) -> f64;
}

macro_rules! into_weight {
    ($($t:ty),*) => {$(
        impl IntoWeight for $t {
            fn into_weight(self) -> f64 { self as f64 }
        }
        impl IntoWeight for &$t {
            fn into_weight(self) -> f64 { *self as f64 }
        }
    )*};
}

into_weight!(f64, f32, usize, u64, u32, i64, i32);

/// Samples indices `0..n` proportionally to a list of non-negative weights.
#[derive(Debug, Clone)]
pub struct WeightedIndex {
    cumulative: Vec<f64>,
    total: f64,
}

impl WeightedIndex {
    /// Build the sampler from an iterator of weights.
    pub fn new<I>(weights: I) -> Result<Self, WeightedError>
    where
        I: IntoIterator,
        I::Item: IntoWeight,
    {
        let mut cumulative = Vec::new();
        let mut total = 0.0f64;
        for w in weights {
            let w = w.into_weight();
            if !w.is_finite() || w < 0.0 {
                return Err(WeightedError::InvalidWeight);
            }
            total += w;
            cumulative.push(total);
        }
        if cumulative.is_empty() {
            return Err(WeightedError::NoItem);
        }
        if total <= 0.0 {
            return Err(WeightedError::AllWeightsZero);
        }
        Ok(WeightedIndex { cumulative, total })
    }
}

impl Distribution<usize> for WeightedIndex {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> usize {
        let target = unit_f64(rng) * self.total;
        match self
            .cumulative
            .binary_search_by(|c| c.partial_cmp(&target).expect("finite cumulative weight"))
        {
            Ok(i) | Err(i) => i.min(self.cumulative.len() - 1),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;
    use crate::SeedableRng;

    #[test]
    fn weighted_index_tracks_weights() {
        let dist = WeightedIndex::new([1.0f64, 3.0, 0.0]).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        let mut counts = [0usize; 3];
        for _ in 0..40_000 {
            counts[dist.sample(&mut rng)] += 1;
        }
        assert_eq!(counts[2], 0);
        let ratio = counts[1] as f64 / counts[0] as f64;
        assert!((2.6..3.4).contains(&ratio), "ratio = {ratio}");
    }

    #[test]
    fn weighted_index_accepts_references() {
        let weights = vec![0.5f64, 0.5];
        assert!(WeightedIndex::new(&weights).is_ok());
    }

    #[test]
    fn weighted_index_rejects_bad_input() {
        assert_eq!(
            WeightedIndex::new(Vec::<f64>::new()).unwrap_err(),
            WeightedError::NoItem
        );
        assert_eq!(
            WeightedIndex::new([0.0f64, 0.0]).unwrap_err(),
            WeightedError::AllWeightsZero
        );
        assert_eq!(
            WeightedIndex::new([-1.0f64]).unwrap_err(),
            WeightedError::InvalidWeight
        );
    }
}
