//! Offline stand-in for `serde_derive`.
//!
//! The build environment has no crates.io access, so `syn`/`quote` are not
//! available; instead this crate parses the derive input token stream by
//! hand. It supports exactly the shapes this workspace uses:
//!
//! * structs with named fields (honouring `#[serde(skip)]`),
//! * tuple and unit structs,
//! * enums with unit, tuple and struct variants,
//!
//! without generic parameters. `Serialize` lowers a value into the shim's
//! `serde::Value` tree (JSON semantics: unit variants become strings,
//! data-carrying variants become single-key objects). `Deserialize` emits
//! the inverse `from_value` walk over the same shapes, so a derived pair
//! round-trips; `#[serde(skip)]` fields are rebuilt with
//! `Default::default()`, matching upstream serde's skip semantics.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derive `serde::Serialize` by generating a `to_value` implementation.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let body = match &item.shape {
        Shape::NamedStruct(fields) => {
            let pushes: String = fields
                .iter()
                .filter(|f| !f.skip)
                .map(|f| {
                    format!(
                        "fields.push(({:?}.to_string(), serde::Serialize::to_value(&self.{})));\n",
                        f.name, f.name
                    )
                })
                .collect();
            format!(
                "let mut fields: Vec<(String, serde::Value)> = Vec::new();\n{pushes}serde::Value::Object(fields)"
            )
        }
        Shape::TupleStruct(arity) => {
            let items: Vec<String> = (0..*arity)
                .map(|i| format!("serde::Serialize::to_value(&self.{i})"))
                .collect();
            format!("serde::Value::Array(vec![{}])", items.join(", "))
        }
        Shape::UnitStruct => "serde::Value::Null".to_string(),
        Shape::Enum(variants) => {
            let arms: String = variants
                .iter()
                .map(|v| variant_arm(&item.name, v))
                .collect();
            format!("match self {{\n{arms}}}")
        }
    };
    format!(
        "impl serde::Serialize for {} {{\n    fn to_value(&self) -> serde::Value {{\n{body}\n    }}\n}}",
        item.name
    )
    .parse()
    .expect("generated Serialize impl parses")
}

/// Derive `serde::Deserialize` by generating a `from_value` implementation —
/// the inverse of the `Serialize` emission above.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let name = &item.name;
    let body = match &item.shape {
        Shape::NamedStruct(fields) => format!(
            "let serde::Value::Object(entries) = value else {{\n\
             return Err(serde::DeError::type_mismatch({:?}, value));\n\
             }};\n\
             Ok({name} {{\n{}}})",
            format!("struct {name}"),
            named_field_initializers(name, fields, "entries"),
        ),
        Shape::TupleStruct(arity) => format!(
            "let items = tuple_items({:?}, {arity}, value)?;\n\
             Ok({name}({}))",
            format!("tuple struct {name}"),
            tuple_field_reads(name, *arity),
        ),
        Shape::UnitStruct => format!(
            "match value {{\n\
             serde::Value::Null => Ok({name}),\n\
             other => Err(serde::DeError::type_mismatch({:?}, other)),\n\
             }}",
            format!("unit struct {name}"),
        ),
        Shape::Enum(variants) => {
            let unit_arms: String = variants
                .iter()
                .filter(|v| matches!(v.shape, VariantShape::Unit))
                .map(|v| format!("{:?} => Ok({name}::{}),\n", v.name, v.name))
                .collect();
            let data_arms: String = variants
                .iter()
                .filter(|v| !matches!(v.shape, VariantShape::Unit))
                .map(|v| variant_from_value_arm(name, v))
                .collect();
            format!(
                "match value {{\n\
                 serde::Value::String(s) => match s.as_str() {{\n\
                 {unit_arms}\
                 other => Err(serde::DeError::custom(format!(\n\
                 \"unknown {name} unit variant '{{other}}'\"\n\
                 ))),\n\
                 }},\n\
                 serde::Value::Object(entries) if entries.len() == 1 => {{\n\
                 let (key, payload) = &entries[0];\n\
                 let _ = payload;\n\
                 match key.as_str() {{\n\
                 {data_arms}\
                 other => Err(serde::DeError::custom(format!(\n\
                 \"unknown {name} variant '{{other}}'\"\n\
                 ))),\n\
                 }}\n\
                 }},\n\
                 other => Err(serde::DeError::type_mismatch({:?}, other)),\n\
                 }}",
                format!("enum {name}"),
            )
        }
    };
    format!(
        "impl serde::Deserialize for {name} {{\n\
         fn from_value(value: &serde::Value) -> Result<Self, serde::DeError> {{\n\
         #[allow(dead_code)]\n\
         fn tuple_items<'v>(\n\
         what: &'static str,\n\
         arity: usize,\n\
         value: &'v serde::Value,\n\
         ) -> Result<&'v [serde::Value], serde::DeError> {{\n\
         let serde::Value::Array(items) = value else {{\n\
         return Err(serde::DeError::type_mismatch(what, value));\n\
         }};\n\
         if items.len() != arity {{\n\
         return Err(serde::DeError::custom(format!(\n\
         \"{{what}}: expected {{arity}} elements, found {{}}\",\n\
         items.len()\n\
         )));\n\
         }}\n\
         Ok(items)\n\
         }}\n\
         {body}\n\
         }}\n\
         }}"
    )
    .parse()
    .expect("generated Deserialize impl parses")
}

/// `field: <read from entries>,` initializer lines for a named-field shape
/// (struct or struct variant). Skipped fields are defaulted; missing members
/// fall back to `from_missing_field` so `Option` fields tolerate absence.
fn named_field_initializers(context: &str, fields: &[Field], entries_expr: &str) -> String {
    fields
        .iter()
        .map(|f| {
            if f.skip {
                format!("{}: Default::default(),\n", f.name)
            } else {
                let path = format!("{context}.{}", f.name);
                format!(
                    "{}: match {entries_expr}.iter().find(|(k, _)| k == {:?}) {{\n\
                     Some((_, v)) => {{\n\
                     serde::Deserialize::from_value(v).map_err(|e| e.in_field({path:?}))?\n\
                     }}\n\
                     None => serde::Deserialize::from_missing_field({path:?})?,\n\
                     }},\n",
                    f.name, f.name,
                )
            }
        })
        .collect()
}

/// Comma-joined `from_value(&items[i])?` reads for a tuple shape.
fn tuple_field_reads(context: &str, arity: usize) -> String {
    (0..arity)
        .map(|i| {
            format!(
                "serde::Deserialize::from_value(&items[{i}]).map_err(|e| e.in_field({:?}))?",
                format!("{context}.{i}"),
            )
        })
        .collect::<Vec<String>>()
        .join(", ")
}

/// One `"Variant" => …` arm of the data-carrying-variant match in the
/// derived `from_value` (the payload of the single-key object form).
fn variant_from_value_arm(enum_name: &str, variant: &Variant) -> String {
    let v = &variant.name;
    let context = format!("{enum_name}::{v}");
    match &variant.shape {
        VariantShape::Unit => unreachable!("unit variants take the string form"),
        VariantShape::Tuple(1) => format!(
            "{v:?} => Ok({enum_name}::{v}(\n\
             serde::Deserialize::from_value(payload).map_err(|e| e.in_field({context:?}))?,\n\
             )),\n",
        ),
        VariantShape::Tuple(arity) => format!(
            "{v:?} => {{\n\
             let items = tuple_items({context:?}, {arity}, payload)?;\n\
             Ok({enum_name}::{v}({}))\n\
             }},\n",
            tuple_field_reads(&context, *arity),
        ),
        VariantShape::Struct(fields) => format!(
            "{v:?} => {{\n\
             let serde::Value::Object(inner) = payload else {{\n\
             return Err(serde::DeError::type_mismatch({context:?}, payload));\n\
             }};\n\
             Ok({enum_name}::{v} {{\n{}}})\n\
             }},\n",
            named_field_initializers(&context, fields, "inner"),
        ),
    }
}

fn variant_arm(enum_name: &str, variant: &Variant) -> String {
    let v = &variant.name;
    match &variant.shape {
        VariantShape::Unit => {
            format!("{enum_name}::{v} => serde::Value::String({v:?}.to_string()),\n")
        }
        VariantShape::Tuple(arity) => {
            let binds: Vec<String> = (0..*arity).map(|i| format!("f{i}")).collect();
            let payload = if *arity == 1 {
                "serde::Serialize::to_value(f0)".to_string()
            } else {
                let items: Vec<String> = binds
                    .iter()
                    .map(|b| format!("serde::Serialize::to_value({b})"))
                    .collect();
                format!("serde::Value::Array(vec![{}])", items.join(", "))
            };
            format!(
                "{enum_name}::{v}({}) => serde::Value::Object(vec![({v:?}.to_string(), {payload})]),\n",
                binds.join(", ")
            )
        }
        VariantShape::Struct(fields) => {
            let binds: Vec<&str> = fields.iter().map(|f| f.name.as_str()).collect();
            let pushes: String = fields
                .iter()
                .filter(|f| !f.skip)
                .map(|f| {
                    format!(
                        "inner.push(({:?}.to_string(), serde::Serialize::to_value({})));\n",
                        f.name, f.name
                    )
                })
                .collect();
            format!(
                "{enum_name}::{v} {{ {} }} => {{\nlet mut inner: Vec<(String, serde::Value)> = Vec::new();\n{pushes}serde::Value::Object(vec![({v:?}.to_string(), serde::Value::Object(inner))])\n}},\n",
                binds.join(", ")
            )
        }
    }
}

// ---------------------------------------------------------------------------
// Token-stream parsing
// ---------------------------------------------------------------------------

struct Item {
    name: String,
    shape: Shape,
}

enum Shape {
    NamedStruct(Vec<Field>),
    TupleStruct(usize),
    UnitStruct,
    Enum(Vec<Variant>),
}

struct Field {
    name: String,
    skip: bool,
}

struct Variant {
    name: String,
    shape: VariantShape,
}

enum VariantShape {
    Unit,
    Tuple(usize),
    Struct(Vec<Field>),
}

/// True for an attribute group (the bracketed part) spelling `serde(skip)`.
fn attr_is_serde_skip(group: &proc_macro::Group) -> bool {
    let mut tokens = group.stream().into_iter();
    match tokens.next() {
        Some(TokenTree::Ident(i)) if i.to_string() == "serde" => {}
        _ => return false,
    }
    match tokens.next() {
        Some(TokenTree::Group(inner)) => inner
            .stream()
            .into_iter()
            .any(|t| matches!(&t, TokenTree::Ident(i) if i.to_string() == "skip")),
        _ => false,
    }
}

/// Consume leading attributes, reporting whether any was `#[serde(skip)]`.
fn skip_attributes(tokens: &[TokenTree], mut pos: usize) -> (usize, bool) {
    let mut skip = false;
    while pos + 1 < tokens.len() {
        let TokenTree::Punct(p) = &tokens[pos] else {
            break;
        };
        if p.as_char() != '#' {
            break;
        }
        let TokenTree::Group(g) = &tokens[pos + 1] else {
            break;
        };
        if g.delimiter() != Delimiter::Bracket {
            break;
        }
        skip |= attr_is_serde_skip(g);
        pos += 2;
    }
    (pos, skip)
}

/// Consume a visibility qualifier (`pub`, `pub(crate)`, …) if present.
fn skip_visibility(tokens: &[TokenTree], mut pos: usize) -> usize {
    if matches!(&tokens.get(pos), Some(TokenTree::Ident(i)) if i.to_string() == "pub") {
        pos += 1;
        if matches!(
            tokens.get(pos),
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis
        ) {
            pos += 1;
        }
    }
    pos
}

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let (pos, _) = skip_attributes(&tokens, 0);
    let pos = skip_visibility(&tokens, pos);

    let keyword = match &tokens.get(pos) {
        Some(TokenTree::Ident(i)) => i.to_string(),
        other => panic!("serde shim derive: expected `struct` or `enum`, found {other:?}"),
    };
    let name = match &tokens.get(pos + 1) {
        Some(TokenTree::Ident(i)) => i.to_string(),
        other => panic!("serde shim derive: expected type name, found {other:?}"),
    };
    let rest = &tokens[pos + 2..];
    if matches!(rest.first(), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde shim derive does not support generic type `{name}`");
    }

    let shape = match keyword.as_str() {
        "struct" => match rest.first() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::NamedStruct(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Shape::TupleStruct(count_top_level_items(g.stream()))
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Shape::UnitStruct,
            other => panic!("serde shim derive: unexpected struct body {other:?}"),
        },
        "enum" => match rest.first() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::Enum(parse_variants(g.stream()))
            }
            other => panic!("serde shim derive: unexpected enum body {other:?}"),
        },
        other => panic!("serde shim derive: cannot derive for `{other}` items"),
    };
    Item { name, shape }
}

/// Parse `name: Type, …` field lists, tracking `#[serde(skip)]`.
fn parse_named_fields(stream: TokenStream) -> Vec<Field> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut pos = 0;
    while pos < tokens.len() {
        let (next, skip) = skip_attributes(&tokens, pos);
        let next = skip_visibility(&tokens, next);
        let name = match &tokens.get(next) {
            Some(TokenTree::Ident(i)) => i.to_string(),
            None => break,
            other => panic!("serde shim derive: expected field name, found {other:?}"),
        };
        fields.push(Field { name, skip });
        // Skip past the `:` and the type, up to the next top-level comma.
        // Commas inside angle brackets (`BTreeMap<String, f64>`) or groups
        // don't count; groups arrive as single atomic tokens.
        let mut angle_depth = 0usize;
        pos = next + 1;
        while pos < tokens.len() {
            if let TokenTree::Punct(p) = &tokens[pos] {
                match p.as_char() {
                    '<' => angle_depth += 1,
                    '>' => angle_depth = angle_depth.saturating_sub(1),
                    ',' if angle_depth == 0 => {
                        pos += 1;
                        break;
                    }
                    _ => {}
                }
            }
            pos += 1;
        }
    }
    fields
}

/// Count the fields of a tuple struct / tuple variant.
fn count_top_level_items(stream: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut count = 1;
    let mut angle_depth = 0usize;
    let mut trailing_comma = false;
    for token in &tokens {
        if let TokenTree::Punct(p) = token {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth = angle_depth.saturating_sub(1),
                ',' if angle_depth == 0 => {
                    count += 1;
                    trailing_comma = true;
                    continue;
                }
                _ => {}
            }
        }
        trailing_comma = false;
    }
    count - usize::from(trailing_comma)
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut variants = Vec::new();
    let mut pos = 0;
    while pos < tokens.len() {
        let (next, _) = skip_attributes(&tokens, pos);
        let name = match &tokens.get(next) {
            Some(TokenTree::Ident(i)) => i.to_string(),
            None => break,
            other => panic!("serde shim derive: expected variant name, found {other:?}"),
        };
        let mut shape = VariantShape::Unit;
        let mut cursor = next + 1;
        match tokens.get(cursor) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                shape = VariantShape::Tuple(count_top_level_items(g.stream()));
                cursor += 1;
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                shape = VariantShape::Struct(parse_named_fields(g.stream()));
                cursor += 1;
            }
            _ => {}
        }
        // Skip an explicit discriminant (`= expr`) and the separating comma.
        while cursor < tokens.len() {
            if matches!(&tokens[cursor], TokenTree::Punct(p) if p.as_char() == ',') {
                cursor += 1;
                break;
            }
            cursor += 1;
        }
        variants.push(Variant { name, shape });
        pos = cursor;
    }
    variants
}
