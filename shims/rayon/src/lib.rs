//! Offline stand-in for the [`rayon`](https://crates.io/crates/rayon) crate.
//!
//! The build environment has no access to crates.io, so this shim provides
//! the data-parallel API subset the workspace uses — `par_iter`,
//! `into_par_iter`, `par_chunks_mut`, with `map` / `enumerate` / `for_each` /
//! `collect` / `sum` — executed on a **persistent work-stealing pool**
//! (see [`pool`]) instead of rayon's full scheduler.
//!
//! The pool is lazily initialized on the first parallel call and keeps
//! `available_parallelism() - 1` worker threads alive for the life of the
//! process; the calling thread always participates as the final executor.
//! Like upstream rayon, the `RAYON_NUM_THREADS` environment variable
//! overrides the pool size: a positive integer `t` means "t executors
//! total" (so `t - 1` background workers — `RAYON_NUM_THREADS=1` runs
//! everything inline on the caller), which makes bench runs reproducible
//! across containers whose `available_parallelism` differs. Unparseable or
//! zero values fall back to the detected parallelism.
//! Every parallel call splits its items into contiguous chunks, pushes them
//! onto a shared chunk deque, and idle workers steal chunks until the job
//! drains. Compared to the previous `std::thread::scope` fork/join design,
//! the thousands of small matmuls per training epoch no longer pay a
//! thread-spawn/join round trip per call.
//!
//! Result order always matches input order and each output slot is produced
//! by exactly one chunk with a fixed, size-derived boundary, so results are
//! byte-identical to the sequential path regardless of which thread runs
//! which chunk. Substituting this shim for rayon is behaviour-preserving.

/// Everything call sites need, mirroring `rayon::prelude`.
pub mod prelude {
    pub use crate::{IntoParallelIterator, ParallelSlice, ParallelSliceMut};
}

/// Persistent work-stealing thread pool shared by every parallel call.
mod pool {
    use std::any::Any;
    use std::collections::VecDeque;
    use std::num::NonZeroUsize;
    use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
    use std::sync::{Arc, Condvar, Mutex, Once, OnceLock};

    /// A unit of work: one contiguous chunk of a parallel call. The `'static`
    /// bound is erased from caller-borrowing closures in [`run_borrowed`],
    /// which is sound because [`run`] blocks until every task has finished.
    pub(crate) type Task = Box<dyn FnOnce() + Send + 'static>;

    /// One parallel call in flight: its undistributed chunks plus completion
    /// tracking. Workers steal chunks from the front; the submitting thread
    /// drains the same deque until it is empty, then waits for stragglers.
    struct Job {
        queue: Mutex<VecDeque<Task>>,
        status: Mutex<JobStatus>,
        done: Condvar,
    }

    struct JobStatus {
        /// Tasks not yet finished (distributed or not).
        remaining: usize,
        /// First panic payload observed, re-raised on the submitting thread.
        panic: Option<Box<dyn Any + Send>>,
    }

    /// Jobs that still have chunks to hand out.
    struct PoolState {
        jobs: VecDeque<Arc<Job>>,
    }

    pub(crate) struct Pool {
        state: Mutex<PoolState>,
        work_available: Condvar,
        workers: usize,
        started: Once,
    }

    static POOL: OnceLock<Pool> = OnceLock::new();

    std::thread_local! {
        /// Stable index of the current pool worker (`0..workers`), `None` on
        /// every thread the pool did not spawn — including the caller, which
        /// participates in jobs but is not a worker. Mirrors upstream
        /// rayon's `current_thread_index` semantics.
        static WORKER_INDEX: std::cell::Cell<Option<usize>> =
            const { std::cell::Cell::new(None) };
    }

    /// The calling thread's pool-worker index, if it is a pool worker.
    pub(crate) fn current_worker_index() -> Option<usize> {
        WORKER_INDEX.with(std::cell::Cell::get)
    }

    /// Background workers to spawn: `RAYON_NUM_THREADS` executors when set
    /// to a positive integer (minus the participating caller), otherwise
    /// the detected parallelism (minus the caller).
    pub(crate) fn configured_workers(env: Option<&str>, available: usize) -> usize {
        let executors = env
            .and_then(|v| v.trim().parse::<usize>().ok())
            .filter(|&t| t > 0)
            .unwrap_or(available.max(1));
        executors - 1
    }

    /// The global pool, spawning its workers on first use.
    pub(crate) fn global() -> &'static Pool {
        let pool = POOL.get_or_init(|| Pool {
            state: Mutex::new(PoolState {
                jobs: VecDeque::new(),
            }),
            work_available: Condvar::new(),
            workers: configured_workers(
                std::env::var("RAYON_NUM_THREADS").ok().as_deref(),
                std::thread::available_parallelism()
                    .map(NonZeroUsize::get)
                    .unwrap_or(1),
            ),
            started: Once::new(),
        });
        pool.started.call_once(|| {
            for index in 0..pool.workers {
                // Detached daemon threads: they park on the condvar whenever
                // no job has chunks left and die with the process.
                std::thread::spawn(move || {
                    WORKER_INDEX.with(|slot| slot.set(Some(index)));
                    worker_loop(POOL.get().expect("pool initialized"))
                });
            }
        });
        pool
    }

    /// Number of executors a parallel call can count on (workers + caller).
    pub(crate) fn executors() -> usize {
        global().workers + 1
    }

    fn worker_loop(pool: &'static Pool) {
        loop {
            let stolen = {
                let mut state = pool.state.lock().expect("pool state lock");
                loop {
                    let mut found = None;
                    while let Some(job) = state.jobs.front() {
                        let mut queue = job.queue.lock().expect("job queue lock");
                        if let Some(task) = queue.pop_front() {
                            let job = Arc::clone(job);
                            let empty = queue.is_empty();
                            drop(queue);
                            if empty {
                                // Nothing left to distribute; retire the job
                                // from the steal list (stragglers keep running).
                                state.jobs.pop_front();
                            }
                            found = Some((job, task));
                            break;
                        }
                        drop(queue);
                        state.jobs.pop_front();
                    }
                    match found {
                        Some(pair) => break pair,
                        None => {
                            state = pool.work_available.wait(state).expect("pool condvar wait");
                        }
                    }
                }
            };
            let (job, task) = stolen;
            finish_task(&job, task);
        }
    }

    /// Run one task and record its completion (and any panic) on the job.
    fn finish_task(job: &Job, task: Task) {
        let result = catch_unwind(AssertUnwindSafe(task));
        let mut status = job.status.lock().expect("job status lock");
        status.remaining -= 1;
        if let Err(payload) = result {
            status.panic.get_or_insert(payload);
        }
        if status.remaining == 0 {
            job.done.notify_all();
        }
    }

    /// Execute `'static` tasks to completion on the pool. The calling thread
    /// participates, so this also makes nested parallelism deadlock-free: a
    /// worker that submits a sub-job drains that sub-job itself even when
    /// every other worker is busy.
    pub(crate) fn run(tasks: Vec<Task>) {
        let pool = global();
        if pool.workers == 0 || tasks.len() <= 1 {
            for task in tasks {
                task();
            }
            return;
        }
        let n_tasks = tasks.len();
        let job = Arc::new(Job {
            queue: Mutex::new(tasks.into()),
            status: Mutex::new(JobStatus {
                remaining: n_tasks,
                panic: None,
            }),
            done: Condvar::new(),
        });
        {
            let mut state = pool.state.lock().expect("pool state lock");
            state.jobs.push_back(Arc::clone(&job));
        }
        pool.work_available.notify_all();

        // Caller participates until its own chunk deque drains.
        loop {
            let task = job.queue.lock().expect("job queue lock").pop_front();
            match task {
                Some(task) => finish_task(&job, task),
                None => break,
            }
        }
        // Workers may not have reached the job before the caller drained it.
        {
            let mut state = pool.state.lock().expect("pool state lock");
            state.jobs.retain(|other| !Arc::ptr_eq(other, &job));
        }
        let mut status = job.status.lock().expect("job status lock");
        while status.remaining > 0 {
            status = job.done.wait(status).expect("job done wait");
        }
        if let Some(payload) = status.panic.take() {
            drop(status);
            resume_unwind(payload);
        }
    }

    /// Execute tasks that borrow from the caller's stack.
    ///
    /// # Safety
    ///
    /// Sound because [`run`] does not return until every task has executed
    /// (or panicked), so no borrow outlives this call; tasks are `FnOnce`
    /// and cannot be retained by the pool.
    pub(crate) fn run_borrowed(tasks: Vec<Box<dyn FnOnce() + Send + '_>>) {
        // SAFETY: see above — the borrowed lifetime is strictly contained in
        // this call, which blocks until all tasks are consumed.
        let tasks: Vec<Task> = unsafe { std::mem::transmute(tasks) };
        run(tasks);
    }
}

/// Pointer wrapper so disjoint result slots can be written from pool threads.
struct SendPtr<T>(*mut T);
// SAFETY: each task writes through a distinct, pre-allocated slot; the caller
// blocks until all tasks finish before reading.
unsafe impl<T> Send for SendPtr<T> {}
unsafe impl<T> Sync for SendPtr<T> {}

fn chunk_count(work_items: usize) -> usize {
    // A few chunks per executor lets idle threads steal from slow ones while
    // keeping per-chunk overhead (one box + two deque ops) negligible.
    (pool::executors() * 4).min(work_items).max(1)
}

/// Map `f` over `items` on the pool, preserving input order.
fn par_map<T, R, F>(items: Vec<T>, f: &F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let n = items.len();
    let chunks = chunk_count(n);
    if chunks <= 1 {
        return items.into_iter().map(f).collect();
    }
    let chunk_size = n.div_ceil(chunks);
    let mut pending: Vec<Vec<T>> = Vec::with_capacity(chunks);
    let mut items = items;
    while !items.is_empty() {
        let rest = items.split_off(items.len().min(chunk_size));
        pending.push(std::mem::replace(&mut items, rest));
    }
    let mut results: Vec<Option<Vec<R>>> = (0..pending.len()).map(|_| None).collect();
    let out = SendPtr(results.as_mut_ptr());
    let tasks: Vec<Box<dyn FnOnce() + Send + '_>> = pending
        .into_iter()
        .enumerate()
        .map(|(slot, chunk)| {
            let out = &out;
            Box::new(move || {
                let mapped: Vec<R> = chunk.into_iter().map(f).collect();
                // SAFETY: `slot` indexes a live, distinct element of `results`.
                unsafe { *out.0.add(slot) = Some(mapped) };
            }) as Box<dyn FnOnce() + Send + '_>
        })
        .collect();
    pool::run_borrowed(tasks);
    results
        .into_iter()
        .flat_map(|slot| slot.expect("pool task completed"))
        .collect()
}

/// An eager "parallel iterator": the items are materialised up front and the
/// terminal operation fans them out across the pool.
pub struct ParIter<T: Send> {
    items: Vec<T>,
}

impl<T: Send> ParIter<T> {
    /// Pair every item with its index, like `Iterator::enumerate`.
    pub fn enumerate(self) -> ParIter<(usize, T)> {
        ParIter {
            items: self.items.into_iter().enumerate().collect(),
        }
    }

    /// Lazily attach a map stage, applied in parallel by the terminal op.
    pub fn map<R, F>(self, f: F) -> ParMap<T, F>
    where
        R: Send,
        F: Fn(T) -> R + Sync,
    {
        ParMap {
            items: self.items,
            f,
        }
    }

    /// Run `f` over every item in parallel.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn(T) + Sync,
    {
        par_map(self.items, &|item| f(item));
    }
}

/// A mapped parallel iterator awaiting its terminal operation.
pub struct ParMap<T: Send, F> {
    items: Vec<T>,
    f: F,
}

impl<T: Send, F> ParMap<T, F> {
    /// Apply the map in parallel and collect in input order.
    pub fn collect<R, C>(self) -> C
    where
        R: Send,
        F: Fn(T) -> R + Sync,
        C: FromIterator<R>,
    {
        par_map(self.items, &self.f).into_iter().collect()
    }

    /// Apply the map in parallel and sum the results.
    pub fn sum<R>(self) -> R
    where
        R: Send + std::iter::Sum<R>,
        F: Fn(T) -> R + Sync,
    {
        par_map(self.items, &self.f).into_iter().sum()
    }

    /// Run the mapped closure for its side effects.
    pub fn for_each(self)
    where
        F: Fn(T) + Sync,
    {
        par_map(self.items, &|item| (self.f)(item));
    }
}

/// Conversion into a parallel iterator by value (`0..n`, `Vec<T>`, arrays).
pub trait IntoParallelIterator {
    /// The element type.
    type Item: Send;
    /// Materialise into an eager parallel iterator.
    fn into_par_iter(self) -> ParIter<Self::Item>;
}

impl IntoParallelIterator for std::ops::Range<usize> {
    type Item = usize;
    fn into_par_iter(self) -> ParIter<usize> {
        ParIter {
            items: self.collect(),
        }
    }
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    fn into_par_iter(self) -> ParIter<T> {
        ParIter { items: self }
    }
}

/// `par_iter` over shared slices (and anything that derefs to a slice).
pub trait ParallelSlice<T: Sync> {
    /// Parallel iterator over `&T` in order.
    fn par_iter(&self) -> ParIter<&T>;
}

impl<T: Sync> ParallelSlice<T> for [T] {
    fn par_iter(&self) -> ParIter<&T> {
        ParIter {
            items: self.iter().collect(),
        }
    }
}

/// `par_chunks_mut` over exclusive slices.
pub trait ParallelSliceMut<T: Send> {
    /// Parallel iterator over non-overlapping mutable chunks, in order.
    fn par_chunks_mut(&mut self, chunk_size: usize) -> ParIter<&mut [T]>;
}

impl<T: Send> ParallelSliceMut<T> for [T] {
    fn par_chunks_mut(&mut self, chunk_size: usize) -> ParIter<&mut [T]> {
        ParIter {
            items: self.chunks_mut(chunk_size).collect(),
        }
    }
}

/// Number of executors available to a parallel call — the pool's persistent
/// workers plus the calling thread, so always at least `1`. A return of `1`
/// means there are no workers and every parallel call runs inline on the
/// caller. Exposed for tests and diagnostics, mirroring upstream rayon's
/// function of the same name.
pub fn current_num_threads() -> usize {
    pool::executors()
}

/// The current thread's index within the pool, or `None` if the thread is
/// not a pool worker (the calling thread, even while executing chunks of a
/// job, is *not* a worker). Worker indices are stable for the life of the
/// process and lie in `0..current_num_threads() - 1`. Mirrors upstream
/// rayon's function of the same name; callers use it to key per-thread
/// scratch space (e.g. the packed-matmul pack buffers) without contention.
pub fn current_thread_index() -> Option<usize> {
    pool::current_worker_index()
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn worker_count_override_parses_like_rayon() {
        use crate::pool::configured_workers;
        // `RAYON_NUM_THREADS=t` means t executors total → t-1 workers.
        assert_eq!(configured_workers(Some("1"), 8), 0);
        assert_eq!(configured_workers(Some("4"), 8), 3);
        assert_eq!(configured_workers(Some(" 2 "), 1), 1);
        // Unset, unparseable or zero fall back to detected parallelism.
        assert_eq!(configured_workers(None, 8), 7);
        assert_eq!(configured_workers(Some("0"), 4), 3);
        assert_eq!(configured_workers(Some("lots"), 4), 3);
        assert_eq!(configured_workers(None, 0), 0);
    }

    #[test]
    fn map_collect_preserves_order() {
        let squares: Vec<usize> = (0..1000).into_par_iter().map(|i| i * i).collect();
        assert_eq!(squares, (0..1000).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn par_iter_sum_matches_sequential() {
        let values: Vec<f64> = (0..10_000).map(|i| i as f64).collect();
        let total: f64 = values.par_iter().map(|&v| v * 0.5).sum();
        assert_eq!(total, values.iter().map(|&v| v * 0.5).sum::<f64>());
    }

    #[test]
    fn par_chunks_mut_touches_every_chunk_once() {
        let mut data = vec![0u64; 103];
        data.par_chunks_mut(10)
            .enumerate()
            .for_each(|(i, chunk)| chunk.iter_mut().for_each(|v| *v = i as u64 + 1));
        assert!(data.iter().all(|&v| v > 0));
        assert_eq!(data[0], 1);
        assert_eq!(data[102], 11);
    }

    #[test]
    fn actually_runs_on_multiple_threads_when_available() {
        use std::collections::HashSet;
        use std::sync::Mutex;
        let seen: Mutex<HashSet<std::thread::ThreadId>> = Mutex::new(HashSet::new());
        (0..64).into_par_iter().for_each(|_| {
            seen.lock().unwrap().insert(std::thread::current().id());
            std::thread::sleep(std::time::Duration::from_millis(1));
        });
        let distinct = seen.lock().unwrap().len();
        let expected = std::thread::available_parallelism().map_or(1, |n| n.get());
        assert!(
            distinct >= expected.min(2),
            "saw {distinct} threads, expected at least {}",
            expected.min(2)
        );
    }

    #[test]
    fn pool_survives_repeated_calls() {
        // The persistent pool must stay healthy across many small jobs (the
        // training hot path issues thousands per epoch).
        for round in 0..200 {
            let out: Vec<usize> = (0..32).into_par_iter().map(|i| i + round).collect();
            assert_eq!(out, (0..32).map(|i| i + round).collect::<Vec<_>>());
        }
    }

    #[test]
    fn nested_parallelism_completes() {
        // A parallel call issued from inside a pool task must not deadlock:
        // the submitting thread drains its own sub-job.
        let totals: Vec<usize> = (0..8)
            .into_par_iter()
            .map(|i| (0..64).into_par_iter().map(|j| i * j).sum::<usize>())
            .collect();
        let expected: Vec<usize> = (0..8).map(|i| (0..64).map(|j| i * j).sum()).collect();
        assert_eq!(totals, expected);
    }

    #[test]
    fn thread_index_is_none_on_caller_and_bounded_on_workers() {
        use std::collections::HashSet;
        use std::sync::Mutex;
        // Outside any pool context the calling thread has no index.
        assert_eq!(crate::current_thread_index(), None);
        let max_workers = crate::current_num_threads() - 1;
        let seen: Mutex<HashSet<Option<usize>>> = Mutex::new(HashSet::new());
        (0..128).into_par_iter().for_each(|_| {
            let idx = crate::current_thread_index();
            if let Some(i) = idx {
                assert!(i < max_workers, "worker index {i} out of range");
            }
            seen.lock().unwrap().insert(idx);
            std::thread::sleep(std::time::Duration::from_micros(200));
        });
        // The caller participates in every job, so `None` must appear
        // whenever it executed at least one chunk; with zero workers it is
        // the only executor.
        if max_workers == 0 {
            assert_eq!(seen.lock().unwrap().len(), 1);
            assert!(seen.lock().unwrap().contains(&None));
        }
        // And the index is stable: re-running must not invent new indices.
        let before: HashSet<Option<usize>> = seen.lock().unwrap().clone();
        (0..128).into_par_iter().for_each(|_| {
            let idx = crate::current_thread_index();
            assert!(
                idx.is_none() || idx.is_some_and(|i| i < max_workers),
                "unstable index {idx:?}"
            );
        });
        assert!(before.len() <= max_workers + 1);
    }

    #[test]
    fn panics_propagate_to_the_caller() {
        let result = std::panic::catch_unwind(|| {
            (0..128).into_par_iter().for_each(|i| {
                if i == 77 {
                    panic!("boom from task");
                }
            });
        });
        assert!(result.is_err(), "worker panic must reach the caller");
        // The pool must still work afterwards.
        let sum: usize = (0..100).into_par_iter().map(|i| i).sum();
        assert_eq!(sum, 4950);
    }
}
