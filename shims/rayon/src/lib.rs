//! Offline stand-in for the [`rayon`](https://crates.io/crates/rayon) crate.
//!
//! The build environment has no access to crates.io, so this shim provides
//! the data-parallel API subset the workspace uses — `par_iter`,
//! `into_par_iter`, `par_chunks_mut`, with `map` / `enumerate` / `for_each` /
//! `collect` / `sum` — executed with **real parallelism** on scoped OS
//! threads (`std::thread::scope`), one contiguous chunk per hardware thread.
//!
//! Unlike rayon proper there is no work-stealing pool: every parallel call
//! spawns short-lived scoped threads. That is a good trade for this
//! workspace, whose parallel regions are coarse (model fits, kNN rows,
//! matmul rows). Result order always matches input order, so substituting
//! this shim for rayon is behaviour-preserving.

use std::num::NonZeroUsize;

/// Everything call sites need, mirroring `rayon::prelude`.
pub mod prelude {
    pub use crate::{IntoParallelIterator, ParallelSlice, ParallelSliceMut};
}

fn thread_count(work_items: usize) -> usize {
    std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1)
        .min(work_items)
        .max(1)
}

/// Map `f` over `items` on scoped threads, preserving input order.
fn par_map<T, R, F>(items: Vec<T>, f: &F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let threads = thread_count(items.len());
    if threads <= 1 {
        return items.into_iter().map(f).collect();
    }
    let chunk_size = items.len().div_ceil(threads);
    let mut chunks: Vec<Vec<T>> = Vec::with_capacity(threads);
    let mut items = items;
    while !items.is_empty() {
        let rest = items.split_off(items.len().min(chunk_size));
        chunks.push(std::mem::replace(&mut items, rest));
    }
    std::thread::scope(|scope| {
        let handles: Vec<_> = chunks
            .into_iter()
            .map(|chunk| scope.spawn(move || chunk.into_iter().map(f).collect::<Vec<R>>()))
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("parallel worker panicked"))
            .collect()
    })
}

/// An eager "parallel iterator": the items are materialised up front and the
/// terminal operation fans them out across threads.
pub struct ParIter<T: Send> {
    items: Vec<T>,
}

impl<T: Send> ParIter<T> {
    /// Pair every item with its index, like `Iterator::enumerate`.
    pub fn enumerate(self) -> ParIter<(usize, T)> {
        ParIter {
            items: self.items.into_iter().enumerate().collect(),
        }
    }

    /// Lazily attach a map stage, applied in parallel by the terminal op.
    pub fn map<R, F>(self, f: F) -> ParMap<T, F>
    where
        R: Send,
        F: Fn(T) -> R + Sync,
    {
        ParMap {
            items: self.items,
            f,
        }
    }

    /// Run `f` over every item in parallel.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn(T) + Sync,
    {
        par_map(self.items, &|item| f(item));
    }
}

/// A mapped parallel iterator awaiting its terminal operation.
pub struct ParMap<T: Send, F> {
    items: Vec<T>,
    f: F,
}

impl<T: Send, F> ParMap<T, F> {
    /// Apply the map in parallel and collect in input order.
    pub fn collect<R, C>(self) -> C
    where
        R: Send,
        F: Fn(T) -> R + Sync,
        C: FromIterator<R>,
    {
        par_map(self.items, &self.f).into_iter().collect()
    }

    /// Apply the map in parallel and sum the results.
    pub fn sum<R>(self) -> R
    where
        R: Send + std::iter::Sum<R>,
        F: Fn(T) -> R + Sync,
    {
        par_map(self.items, &self.f).into_iter().sum()
    }

    /// Run the mapped closure for its side effects.
    pub fn for_each(self)
    where
        F: Fn(T) + Sync,
    {
        par_map(self.items, &|item| (self.f)(item));
    }
}

/// Conversion into a parallel iterator by value (`0..n`, `Vec<T>`, arrays).
pub trait IntoParallelIterator {
    /// The element type.
    type Item: Send;
    /// Materialise into an eager parallel iterator.
    fn into_par_iter(self) -> ParIter<Self::Item>;
}

impl IntoParallelIterator for std::ops::Range<usize> {
    type Item = usize;
    fn into_par_iter(self) -> ParIter<usize> {
        ParIter {
            items: self.collect(),
        }
    }
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    fn into_par_iter(self) -> ParIter<T> {
        ParIter { items: self }
    }
}

/// `par_iter` over shared slices (and anything that derefs to a slice).
pub trait ParallelSlice<T: Sync> {
    /// Parallel iterator over `&T` in order.
    fn par_iter(&self) -> ParIter<&T>;
}

impl<T: Sync> ParallelSlice<T> for [T] {
    fn par_iter(&self) -> ParIter<&T> {
        ParIter {
            items: self.iter().collect(),
        }
    }
}

/// `par_chunks_mut` over exclusive slices.
pub trait ParallelSliceMut<T: Send> {
    /// Parallel iterator over non-overlapping mutable chunks, in order.
    fn par_chunks_mut(&mut self, chunk_size: usize) -> ParIter<&mut [T]>;
}

impl<T: Send> ParallelSliceMut<T> for [T] {
    fn par_chunks_mut(&mut self, chunk_size: usize) -> ParIter<&mut [T]> {
        ParIter {
            items: self.chunks_mut(chunk_size).collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn map_collect_preserves_order() {
        let squares: Vec<usize> = (0..1000).into_par_iter().map(|i| i * i).collect();
        assert_eq!(squares, (0..1000).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn par_iter_sum_matches_sequential() {
        let values: Vec<f64> = (0..10_000).map(|i| i as f64).collect();
        let total: f64 = values.par_iter().map(|&v| v * 0.5).sum();
        assert_eq!(total, values.iter().map(|&v| v * 0.5).sum::<f64>());
    }

    #[test]
    fn par_chunks_mut_touches_every_chunk_once() {
        let mut data = vec![0u64; 103];
        data.par_chunks_mut(10)
            .enumerate()
            .for_each(|(i, chunk)| chunk.iter_mut().for_each(|v| *v = i as u64 + 1));
        assert!(data.iter().all(|&v| v > 0));
        assert_eq!(data[0], 1);
        assert_eq!(data[102], 11);
    }

    #[test]
    fn actually_runs_on_multiple_threads_when_available() {
        use std::collections::HashSet;
        use std::sync::Mutex;
        let seen: Mutex<HashSet<std::thread::ThreadId>> = Mutex::new(HashSet::new());
        (0..64).into_par_iter().for_each(|_| {
            seen.lock().unwrap().insert(std::thread::current().id());
            std::thread::sleep(std::time::Duration::from_millis(1));
        });
        let distinct = seen.lock().unwrap().len();
        let expected = std::thread::available_parallelism().map_or(1, |n| n.get());
        assert!(
            distinct >= expected.min(2),
            "saw {distinct} threads, expected at least {}",
            expected.min(2)
        );
    }
}
