//! Offline stand-in for the [`rand_distr`](https://crates.io/crates/rand_distr)
//! crate: the four continuous/discrete distributions this workspace samples
//! from, implemented over the local `rand` shim.
//!
//! Sampling algorithms are chosen for determinism and simplicity rather than
//! peak throughput: Normal uses Box–Muller (one pair of uniforms per draw),
//! LogNormal exponentiates a Normal draw, Gumbel inverts its CDF, and
//! Poisson uses Knuth's product-of-uniforms method with a normal
//! approximation above λ = 64.

pub use rand::distributions::Distribution;
use rand::{unit_f64, RngCore};

/// Error returned by distribution constructors with invalid parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParamError(&'static str);

impl std::fmt::Display for ParamError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid distribution parameter: {}", self.0)
    }
}

impl std::error::Error for ParamError {}

/// Upstream-compatible error aliases.
pub type NormalError = ParamError;
/// See [`NormalError`].
pub type PoissonError = ParamError;
/// See [`NormalError`].
pub type GumbelError = ParamError;

/// Gaussian distribution with the given mean and standard deviation.
#[derive(Debug, Clone, Copy)]
pub struct Normal {
    mean: f64,
    std_dev: f64,
}

impl Normal {
    /// `std_dev` must be finite and non-negative.
    pub fn new(mean: f64, std_dev: f64) -> Result<Self, NormalError> {
        if !mean.is_finite() || !std_dev.is_finite() || std_dev < 0.0 {
            return Err(ParamError("Normal requires finite mean and std_dev >= 0"));
        }
        Ok(Normal { mean, std_dev })
    }

    /// Draw one standard-normal variate via Box–Muller.
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // Avoid ln(0) by nudging the first uniform away from zero.
        let u1 = unit_f64(rng).max(f64::MIN_POSITIVE);
        let u2 = unit_f64(rng);
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }
}

impl Distribution<f64> for Normal {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        self.mean + self.std_dev * Normal::standard(rng)
    }
}

/// Log-normal distribution: `exp(N(mu, sigma))`.
#[derive(Debug, Clone, Copy)]
pub struct LogNormal {
    norm: Normal,
}

impl LogNormal {
    /// `mu`/`sigma` parameterise the underlying normal.
    pub fn new(mu: f64, sigma: f64) -> Result<Self, ParamError> {
        Ok(LogNormal {
            norm: Normal::new(mu, sigma)?,
        })
    }
}

impl Distribution<f64> for LogNormal {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        self.norm.sample(rng).exp()
    }
}

/// Gumbel (type-I extreme value) distribution.
#[derive(Debug, Clone, Copy)]
pub struct Gumbel {
    location: f64,
    scale: f64,
}

impl Gumbel {
    /// `scale` must be finite and positive.
    pub fn new(location: f64, scale: f64) -> Result<Self, GumbelError> {
        if !location.is_finite() || !scale.is_finite() || scale <= 0.0 {
            return Err(ParamError("Gumbel requires finite location and scale > 0"));
        }
        Ok(Gumbel { location, scale })
    }
}

impl Distribution<f64> for Gumbel {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        let u = unit_f64(rng).max(f64::MIN_POSITIVE);
        self.location - self.scale * (-u.ln()).ln()
    }
}

/// Poisson distribution with rate `lambda`, sampled as `f64` counts.
#[derive(Debug, Clone, Copy)]
pub struct Poisson {
    lambda: f64,
}

impl Poisson {
    /// `lambda` must be finite and positive.
    pub fn new(lambda: f64) -> Result<Self, PoissonError> {
        if !lambda.is_finite() || lambda <= 0.0 {
            return Err(ParamError("Poisson requires lambda > 0"));
        }
        Ok(Poisson { lambda })
    }
}

impl Distribution<f64> for Poisson {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        if self.lambda < 64.0 {
            // Knuth: multiply uniforms until the product drops below e^-λ.
            let limit = (-self.lambda).exp();
            let mut product = unit_f64(rng);
            let mut count = 0.0;
            while product > limit {
                product *= unit_f64(rng);
                count += 1.0;
            }
            count
        } else {
            // Normal approximation for large λ, clamped at zero.
            let draw = self.lambda + self.lambda.sqrt() * Normal::standard(rng);
            draw.round().max(0.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn mean_of(samples: impl Iterator<Item = f64>) -> (f64, usize) {
        let values: Vec<f64> = samples.collect();
        let n = values.len();
        (values.iter().sum::<f64>() / n as f64, n)
    }

    #[test]
    fn normal_moments() {
        let dist = Normal::new(3.0, 2.0).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        let (mean, n) = mean_of((0..50_000).map(|_| dist.sample(&mut rng)));
        assert!((mean - 3.0).abs() < 0.05, "mean = {mean} over {n}");
    }

    #[test]
    fn lognormal_is_positive() {
        let dist = LogNormal::new(0.0, 0.5).unwrap();
        let mut rng = StdRng::seed_from_u64(2);
        assert!((0..1000).all(|_| dist.sample(&mut rng) > 0.0));
    }

    #[test]
    fn poisson_mean_tracks_lambda() {
        for lambda in [3.0, 120.0] {
            let dist = Poisson::new(lambda).unwrap();
            let mut rng = StdRng::seed_from_u64(3);
            let (mean, _) = mean_of((0..20_000).map(|_| dist.sample(&mut rng)));
            assert!(
                (mean - lambda).abs() < lambda * 0.05 + 0.1,
                "lambda {lambda}: mean = {mean}"
            );
        }
    }

    #[test]
    fn constructors_reject_bad_parameters() {
        assert!(Normal::new(0.0, -1.0).is_err());
        assert!(Gumbel::new(0.0, 0.0).is_err());
        assert!(Poisson::new(0.0).is_err());
    }
}
