//! Quickstart: generate a PanDA-like workload, fit the recommended TabDDPM
//! surrogate, sample synthetic job records and evaluate them with the
//! paper's five metrics.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use panda_surrogate::metrics::{evaluate_surrogate, EvaluationConfig};
use panda_surrogate::surrogate::{
    fit_and_sample, prepare_data, ExperimentOptions, ModelKind, TrainingBudget,
};

fn main() {
    // 1. Simulate a PanDA-like job stream (the stand-in for the real,
    //    proprietary ATLAS records), run the paper's filtering funnel and
    //    split the nine-feature modelling table 80/20 — all through the
    //    shared experiment runtime in `surrogate::experiment`.
    let options = ExperimentOptions {
        gross_records: 8_000,
        ..ExperimentOptions::default()
    };
    let data = prepare_data(&options);
    println!("filtering funnel:");
    for line in data.funnel.render() {
        println!("  {line}");
    }

    // 2. The prepared dataset carries the train/test split of the
    //    modelling table.
    let (train, test) = (&data.train, &data.test);
    println!(
        "\nmodelling table: {} rows x {} features ({} train / {} test)",
        train.n_rows() + test.n_rows(),
        train.n_cols(),
        train.n_rows(),
        test.n_rows()
    );

    // 3. Fit the paper's recommended surrogate (TabDDPM) and draw synthetic
    //    job records. Use `TrainingBudget::Standard` or `Full` for
    //    higher-quality samples at the cost of training time.
    let synthetic = fit_and_sample(
        ModelKind::TabDdpm,
        train,
        train.n_rows(),
        TrainingBudget::Smoke,
        42,
    )
    .expect("TabDDPM fits on the training table");
    println!("\nsampled {} synthetic job records", synthetic.n_rows());
    println!("first synthetic rows:");
    for r in 0..5.min(synthetic.n_rows()) {
        println!(
            "  status={:<9} site={:<10} datatype={:<14} nfiles={:<5.0} bytes={:>12.3e} workload={:>10.1}",
            synthetic.label("jobstatus", r).unwrap(),
            synthetic.label("computingsite", r).unwrap(),
            synthetic.label("datatype", r).unwrap(),
            synthetic.numerical("ninputdatafiles").unwrap()[r],
            synthetic.numerical("inputfilebytes").unwrap()[r],
            synthetic.numerical("workload").unwrap()[r],
        );
    }

    // 4. Score the synthetic data with the paper's Table-I metrics.
    let report = evaluate_surrogate(
        "TabDDPM",
        train,
        test,
        &synthetic,
        &EvaluationConfig::fast(),
    )
    .expect("synthetic table is evaluable");
    println!(
        "\n{}",
        panda_surrogate::metrics::SurrogateReport::table_header()
    );
    println!("{}", report.table_row());
}
