//! Quickstart: generate a PanDA-like workload, fit the recommended TabDDPM
//! surrogate, sample synthetic job records and evaluate them with the
//! paper's five metrics.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use panda_surrogate::metrics::{evaluate_surrogate, EvaluationConfig};
use panda_surrogate::pandasim::{
    records_to_table, FilterFunnel, GeneratorConfig, WorkloadGenerator,
};
use panda_surrogate::surrogate::{fit_and_sample, ModelKind, TrainingBudget};
use panda_surrogate::tabular::{train_test_split, SplitOptions};

fn main() {
    // 1. Simulate a PanDA-like job stream (the stand-in for the real,
    //    proprietary ATLAS records) and run the paper's filtering funnel.
    let generator = WorkloadGenerator::new(GeneratorConfig {
        gross_records: 8_000,
        ..GeneratorConfig::default()
    });
    let gross = generator.generate();
    let funnel = FilterFunnel::apply(&gross);
    println!("filtering funnel:");
    for line in funnel.render() {
        println!("  {line}");
    }

    // 2. Build the nine-feature modelling table and split it 80/20.
    let table = records_to_table(&funnel.records);
    let (train, test) = train_test_split(&table, SplitOptions::default()).expect("non-empty table");
    println!(
        "\nmodelling table: {} rows x {} features ({} train / {} test)",
        table.n_rows(),
        table.n_cols(),
        train.n_rows(),
        test.n_rows()
    );

    // 3. Fit the paper's recommended surrogate (TabDDPM) and draw synthetic
    //    job records. Use `TrainingBudget::Standard` or `Full` for
    //    higher-quality samples at the cost of training time.
    let synthetic = fit_and_sample(
        ModelKind::TabDdpm,
        &train,
        train.n_rows(),
        TrainingBudget::Smoke,
        42,
    )
    .expect("TabDDPM fits on the training table");
    println!("\nsampled {} synthetic job records", synthetic.n_rows());
    println!("first synthetic rows:");
    for r in 0..5.min(synthetic.n_rows()) {
        println!(
            "  status={:<9} site={:<10} datatype={:<14} nfiles={:<5.0} bytes={:>12.3e} workload={:>10.1}",
            synthetic.label("jobstatus", r).unwrap(),
            synthetic.label("computingsite", r).unwrap(),
            synthetic.label("datatype", r).unwrap(),
            synthetic.numerical("ninputdatafiles").unwrap()[r],
            synthetic.numerical("inputfilebytes").unwrap()[r],
            synthetic.numerical("workload").unwrap()[r],
        );
    }

    // 4. Score the synthetic data with the paper's Table-I metrics.
    let report = evaluate_surrogate(
        "TabDDPM",
        &train,
        &test,
        &synthetic,
        &EvaluationConfig::fast(),
    );
    println!("\n{}", panda_surrogate::metrics::SurrogateReport::table_header());
    println!("{}", report.table_row());
}
