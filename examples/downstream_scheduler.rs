//! Downstream use-case: calibrate a distributed-computing simulation with
//! surrogate-generated workloads.
//!
//! The paper's closing argument is that synthetic job records can feed
//! AI-based optimisers and event-based simulations of the ATLAS grid without
//! exposing real user data. This example drives the `htcsim` grid simulator
//! with (a) the ground-truth workload and (b) a TabDDPM-generated workload,
//! under two brokerage policies, and compares the simulator's responses.
//!
//! ```text
//! cargo run --release --example downstream_scheduler
//! ```

use panda_surrogate::htcsim::{BrokerPolicy, GridSimulator, SimConfig, SimJob};
use panda_surrogate::surrogate::{
    fit_and_sample, prepare_data, ExperimentOptions, ModelKind, TrainingBudget,
};

fn main() {
    let options = ExperimentOptions {
        gross_records: 12_000,
        seed: 11,
        ..ExperimentOptions::default()
    };
    let data = prepare_data(&options);
    let train = &data.train;
    let generator = &data.generator;

    let synthetic = fit_and_sample(
        ModelKind::TabDdpm,
        train,
        train.n_rows(),
        TrainingBudget::Smoke,
        11,
    )
    .expect("TabDDPM fits and samples");

    let real_jobs = SimJob::from_table(train).expect("real table has the modelling columns");
    let synthetic_jobs =
        SimJob::from_table(&synthetic).expect("synthetic table has the modelling columns");
    println!(
        "driving the grid simulator with {} real and {} synthetic jobs\n",
        real_jobs.len(),
        synthetic_jobs.len()
    );

    for policy in [BrokerPolicy::RoundRobin, BrokerPolicy::DataLocality] {
        println!("== policy: {} ==", policy.name());
        println!(
            "{:<12} {:>12} {:>12} {:>12}",
            "workload", "makespan(h)", "wait(h)", "WAN(TB)"
        );
        for (name, jobs) in [("real", &real_jobs), ("synthetic", &synthetic_jobs)] {
            let mut simulator = GridSimulator::new(
                generator.sites(),
                SimConfig {
                    policy,
                    ..SimConfig::default()
                },
            );
            let report = simulator.run(jobs);
            println!(
                "{:<12} {:>12.1} {:>12.2} {:>12.2}",
                name,
                report.makespan_hours,
                report.mean_wait_hours,
                report.wan_bytes / 1e12
            );
        }
        println!();
    }

    println!("a surrogate is useful for calibration when the synthetic rows lead the simulator");
    println!("to the same conclusions as the real rows — e.g. that data-locality brokerage");
    println!("moves far fewer bytes over the WAN than round-robin.");
}
