//! Privacy audit: how close do synthetic rows come to real training records?
//!
//! The paper's DCR (distance to closest record) metric is the guard against
//! surrogates that simply memorise the training data — a concern because
//! PanDA records ultimately derive from identifiable user activity. This
//! example sweeps SMOTE's neighbourhood size and compares it against TabDDPM
//! to show the fidelity/privacy trade-off the paper describes in §V-B(c).
//!
//! ```text
//! cargo run --release --example privacy_audit
//! ```

use panda_surrogate::metrics::{distance_to_closest_record, mean_wasserstein, DcrConfig};
use panda_surrogate::surrogate::{
    prepare_data, ExperimentOptions, SmoteConfig, SmoteSampler, TabDdpm, TabDdpmConfig,
    TabularGenerator,
};

fn main() {
    let options = ExperimentOptions {
        gross_records: 8_000,
        ..ExperimentOptions::default()
    };
    let data = prepare_data(&options);
    // Audit over the full modelling table (both splits), like the paper.
    let train = data.table;
    let n_synthetic = 2_000.min(train.n_rows());
    let dcr_config = DcrConfig::default();

    println!("rows in training table: {}\n", train.n_rows());
    println!(
        "{:<24} {:>10} {:>12}",
        "generator", "DCR (↑)", "mean WD (↓)"
    );

    // SMOTE with increasingly large neighbourhoods: interpolation reaches
    // further from the anchor rows, trading fidelity for a little distance.
    for k in [1usize, 5, 15] {
        let mut smote = SmoteSampler::new(SmoteConfig {
            k_neighbors: k,
            ..SmoteConfig::default()
        });
        smote.fit(&train).expect("SMOTE fits");
        let synthetic = smote.sample(n_synthetic, 3).expect("SMOTE samples");
        let dcr = distance_to_closest_record(&train, &synthetic, dcr_config);
        let wd = mean_wasserstein(&train, &synthetic).expect("comparable tables");
        println!(
            "{:<24} {:>10.4} {:>12.4}",
            format!("SMOTE (k = {k})"),
            dcr,
            wd
        );
    }

    // TabDDPM: a learned model that samples from the distribution rather than
    // interpolating stored rows.
    let mut ddpm = TabDdpm::new(TabDdpmConfig::fast());
    ddpm.fit(&train).expect("TabDDPM fits");
    let synthetic = ddpm.sample(n_synthetic, 3).expect("TabDDPM samples");
    let dcr = distance_to_closest_record(&train, &synthetic, dcr_config);
    let wd = mean_wasserstein(&train, &synthetic).expect("comparable tables");
    println!("{:<24} {:>10.4} {:>12.4}", "TabDDPM (fast)", dcr, wd);

    println!("\nreading the table: SMOTE rows sit almost on top of real records (tiny DCR),");
    println!("which is exactly the privacy risk the paper flags; the diffusion model keeps a");
    println!("healthier distance at a modest cost in per-feature fidelity.");
}
