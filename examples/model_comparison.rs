//! Compare all four surrogate models (TVAE, CTABGAN+, SMOTE, TabDDPM) on a
//! small simulated PanDA dataset — a miniature of the paper's Table I.
//!
//! ```text
//! cargo run --release --example model_comparison
//! ```

use panda_surrogate::metrics::{evaluate_surrogate, EvaluationConfig, SurrogateReport};
use panda_surrogate::pandasim::{
    records_to_table, FilterFunnel, GeneratorConfig, WorkloadGenerator,
};
use panda_surrogate::surrogate::{fit_and_sample, ModelKind, TrainingBudget};
use panda_surrogate::tabular::{train_test_split, SplitOptions};

fn main() {
    let generator = WorkloadGenerator::new(GeneratorConfig {
        gross_records: 10_000,
        ..GeneratorConfig::default()
    });
    let funnel = FilterFunnel::apply(&generator.generate());
    let table = records_to_table(&funnel.records);
    let (train, test) = train_test_split(&table, SplitOptions::default()).expect("non-empty table");

    println!(
        "training rows: {}, test rows: {}\n",
        train.n_rows(),
        test.n_rows()
    );
    println!("{}", SurrogateReport::table_header());

    let mut reports = Vec::new();
    for kind in ModelKind::ALL {
        let synthetic = fit_and_sample(kind, &train, train.n_rows(), TrainingBudget::Smoke, 7)
            .unwrap_or_else(|e| panic!("{} failed: {e}", kind.name()));
        let report = evaluate_surrogate(
            kind.name(),
            &train,
            &test,
            &synthetic,
            &EvaluationConfig::fast(),
        );
        println!("{}", report.table_row());
        reports.push(report);
    }

    // The qualitative ordering the paper reports: SMOTE has the worst privacy
    // (lowest DCR) while remaining highly faithful; TabDDPM balances both.
    let smote = reports.iter().find(|r| r.model == "SMOTE").unwrap();
    let ddpm = reports.iter().find(|r| r.model == "TabDDPM").unwrap();
    println!(
        "\nSMOTE DCR = {:.4} vs TabDDPM DCR = {:.4} (higher = less memorisation)",
        smote.dcr, ddpm.dcr
    );
    println!("see EXPERIMENTS.md for the full-scale run and the paper's reference values");
}
