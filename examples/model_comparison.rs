//! Compare all four surrogate models (TVAE, CTABGAN+, SMOTE, TabDDPM) on a
//! small simulated PanDA dataset — a miniature of the paper's Table I.
//!
//! ```text
//! cargo run --release --example model_comparison
//! ```

use panda_surrogate::metrics::{evaluate_surrogate, EvaluationConfig, SurrogateReport};
use panda_surrogate::surrogate::{fit_all, prepare_data, ExperimentOptions, TrainingBudget};

fn main() {
    let options = ExperimentOptions {
        gross_records: 10_000,
        budget: TrainingBudget::Smoke,
        seed: 7,
        ..ExperimentOptions::default()
    };
    let data = prepare_data(&options);

    println!(
        "training rows: {}, test rows: {}\n",
        data.train.n_rows(),
        data.test.n_rows()
    );
    println!("{}", SurrogateReport::table_header());

    // The four fits run concurrently; a model that diverges shows up as a
    // warning instead of killing the comparison.
    let fits = fit_all(&data.train, options.budget, options.seed);
    fits.report_failures();
    let mut reports = Vec::new();
    for (name, synthetic) in fits.successes() {
        let report = evaluate_surrogate(
            name,
            &data.train,
            &data.test,
            synthetic,
            &EvaluationConfig::fast(),
        )
        .expect("synthetic table is evaluable");
        println!("{}", report.table_row());
        reports.push(report);
    }

    // The qualitative ordering the paper reports: SMOTE has the worst privacy
    // (lowest DCR) while remaining highly faithful; TabDDPM balances both.
    let smote = reports.iter().find(|r| r.model == "SMOTE").unwrap();
    let ddpm = reports.iter().find(|r| r.model == "TabDDPM").unwrap();
    println!(
        "\nSMOTE DCR = {:.4} vs TabDDPM DCR = {:.4} (higher = less memorisation)",
        smote.dcr, ddpm.dcr
    );
    println!("see EXPERIMENTS.md for the full-scale run and the paper's reference values");
}
