//! Integration tests for the scenario-sweep runtime (`surrogate::sweep`):
//! any cell run standalone must be byte-identical to the same cell inside a
//! sweep, parallel and sequential sweeps must agree byte-for-byte, one
//! diverging cell must leave every other cell untouched, and the JSON
//! artifact must round-trip **typed** through the `serde_json` shim
//! (`from_str::<SweepReport>`). The durability layer is pinned here too:
//! a grid split across shards and merged must equal the unsharded run, a
//! resumed run must equal a from-scratch run without re-executing completed
//! cells, and stale artifacts must be rejected.

use std::sync::atomic::{AtomicUsize, Ordering};

use panda_surrogate::metrics::{DcrConfig, EvaluationConfig};
use panda_surrogate::surrogate::sweep::{
    run_cell, run_sweep, run_sweep_resumable_with, run_sweep_with, FitContext,
    NamedGeneratorConfig, ShardSpec, SweepArtifactError, SweepGrid, SweepOptions, SweepReport,
};
use panda_surrogate::surrogate::{ExecutionMode, ModelKind, SurrogateError, TrainingBudget};

/// A named small-variant generator config cut down for test runtime.
fn variant(name: &str, gross: usize, days: f64) -> NamedGeneratorConfig {
    let mut generator = NamedGeneratorConfig::preset("small").expect("known preset");
    generator.name = name.to_string();
    generator.config.gross_records = gross;
    generator.config.days = days;
    generator
}

/// Cheap evaluation (no MLEF probe, capped DCR) so the suite stays fast.
fn test_options() -> SweepOptions {
    SweepOptions {
        evaluation: EvaluationConfig {
            dcr: DcrConfig {
                max_synthetic_rows: 300,
                max_train_rows: 1_000,
            },
            mlef: None,
        },
        keep_tables: true,
        ..SweepOptions::default()
    }
}

#[test]
fn every_model_kind_is_byte_identical_standalone_and_in_sweep() {
    let grid = SweepGrid {
        seeds: vec![41],
        budgets: vec![TrainingBudget::Smoke],
        generators: vec![variant("small", 2_000, 150.0)],
        models: ModelKind::ALL.to_vec(),
    };
    let options = test_options();
    let sweep = run_sweep(&grid, &options);
    assert_eq!(sweep.runs.len(), 4);
    for run in &sweep.runs {
        let in_sweep = run.outcome.as_ref().unwrap_or_else(|e| {
            panic!("{} failed inside the sweep: {e}", run.cell.id());
        });
        let standalone = run_cell(&run.cell, &options);
        let standalone = standalone.outcome.as_ref().unwrap_or_else(|e| {
            panic!("{} failed standalone: {e}", run.cell.id());
        });
        // Byte-identical synthetic tables: the cell's RNG chain depends
        // only on the cell seed, never on its neighbours or scheduling.
        assert_eq!(
            in_sweep.synthetic,
            standalone.synthetic,
            "{} diverged between sweep and standalone",
            run.cell.id()
        );
        assert_eq!(in_sweep.report, standalone.report, "{}", run.cell.id());
        assert_eq!(in_sweep.train_rows, standalone.train_rows);
    }
}

#[test]
fn parallel_and_sequential_sweeps_agree_on_a_2x2x2_grid() {
    let grid = SweepGrid {
        seeds: vec![51, 52],
        budgets: vec![TrainingBudget::Smoke],
        generators: vec![
            variant("small", 1_800, 150.0),
            variant("dense", 1_800, 30.0),
        ],
        models: vec![ModelKind::Smote, ModelKind::TabDdpm],
    };
    let parallel = run_sweep(&grid, &test_options());
    let sequential = run_sweep(
        &grid,
        &SweepOptions {
            mode: ExecutionMode::Sequential,
            ..test_options()
        },
    );
    assert_eq!(parallel.runs.len(), 8);
    assert_eq!(sequential.runs.len(), 8);
    for (p, s) in parallel.runs.iter().zip(&sequential.runs) {
        // Grid-expansion order is preserved by both modes.
        assert_eq!(p.cell.id(), s.cell.id());
        let p_run = p.outcome.as_ref().expect("parallel cell passed");
        let s_run = s.outcome.as_ref().expect("sequential cell passed");
        assert_eq!(
            p_run.synthetic,
            s_run.synthetic,
            "{} diverged across modes",
            p.cell.id()
        );
        assert_eq!(p_run.report, s_run.report, "{}", p.cell.id());
    }
}

#[test]
fn one_diverging_cell_leaves_every_other_cell_untouched() {
    let grid = SweepGrid {
        seeds: vec![61, 62],
        budgets: vec![TrainingBudget::Smoke],
        generators: vec![variant("small", 1_800, 150.0)],
        models: vec![ModelKind::Smote, ModelKind::TabDdpm],
    };
    let options = test_options();
    let clean = run_sweep(&grid, &options);
    let poisoned_id = clean.runs[1].cell.id();

    let poisoned = run_sweep_with(&grid, &options, |cell, train, _: &FitContext| {
        if cell.id() == poisoned_id {
            // Stand-in for a diverging fit.
            Err(SurrogateError::InvalidTrainingData(
                "injected divergence".to_string(),
            ))
        } else {
            panda_surrogate::surrogate::fit_and_sample(
                cell.model,
                train,
                train.n_rows(),
                cell.budget,
                cell.seed,
            )
        }
    });

    assert_eq!(poisoned.runs.len(), clean.runs.len());
    let mut failed = 0;
    for (p, c) in poisoned.runs.iter().zip(&clean.runs) {
        assert_eq!(p.cell.id(), c.cell.id());
        if p.cell.id() == poisoned_id {
            let error = p.outcome.as_ref().expect_err("poisoned cell must fail");
            assert!(error.to_string().contains("injected divergence"));
            failed += 1;
        } else {
            // Every healthy cell's output is byte-identical to the clean run.
            let p_run = p.outcome.as_ref().expect("healthy cell passed");
            let c_run = c.outcome.as_ref().expect("clean cell passed");
            assert_eq!(p_run.synthetic, c_run.synthetic, "{}", p.cell.id());
            assert_eq!(p_run.report, c_run.report, "{}", p.cell.id());
        }
    }
    assert_eq!(failed, 1);
    assert_eq!(poisoned.failures().count(), 1);
    assert_eq!(poisoned.report().failed_cells, 1);
}

#[test]
fn json_artifact_round_trips_through_the_shim_parser() {
    let grid = SweepGrid {
        seeds: vec![71, 72],
        budgets: vec![TrainingBudget::Smoke],
        generators: vec![variant("small", 1_500, 150.0)],
        models: vec![ModelKind::Smote],
    };
    // Inject one failure so both row shapes (passing and failing) are
    // exercised by the round-trip.
    let outcome = run_sweep_with(&grid, &test_options(), |cell, train, _: &FitContext| {
        if cell.seed == 72 {
            Err(SurrogateError::NotFitted("injected"))
        } else {
            panda_surrogate::surrogate::fit_and_sample(
                cell.model,
                train,
                train.n_rows(),
                cell.budget,
                cell.seed,
            )
        }
    });
    let report = outcome.report();
    assert_eq!(report.total_cells, 2);
    assert_eq!(report.failed_cells, 1);

    let path = std::env::temp_dir().join("panda_surrogate_sweep_artifact_test.json");
    let json = serde_json::to_string_pretty(&report).expect("render");
    std::fs::write(&path, &json).expect("write artifact");
    let text = std::fs::read_to_string(&path).expect("read artifact back");
    std::fs::remove_file(&path).ok();

    // The typed read-back accepts the artifact and is lossless: every
    // field of every row survives the write → parse trip exactly (f64s
    // render in shortest-round-trip form), with no `Value` spelunking.
    let parsed: SweepReport = serde_json::from_str(&text).expect("re-parse artifact");
    assert_eq!(parsed, report, "typed round-trip drifted");
    assert_eq!(
        SweepReport::validate_artifact(&text).expect("artifact validates"),
        report.total_cells
    );

    // Spot-check the typed rows directly.
    assert_eq!(parsed.cells[0].model, "SMOTE");
    assert_eq!(parsed.cells[0].index, 0);
    assert!(parsed.cells[0].ok);
    assert!(!parsed.cells[1].ok);
    assert!(parsed.cells[1]
        .error
        .as_deref()
        .unwrap()
        .contains("injected"));
}

/// A cheap deterministic fitter (echoes the training split) so the
/// durability tests exercise the full prepare→evaluate→artifact pipeline
/// without paying for model training.
fn echo_fitter(
    _cell: &panda_surrogate::surrogate::sweep::SweepCell,
    train: &panda_surrogate::tabular::Table,
    _ctx: &FitContext,
) -> Result<panda_surrogate::tabular::Table, SurrogateError> {
    Ok(train.clone())
}

/// The small grid the durability tests share: 2 seeds × smoke × 1 variant ×
/// 2 models = 4 cells.
fn durability_grid() -> SweepGrid {
    SweepGrid {
        seeds: vec![81, 82],
        budgets: vec![TrainingBudget::Smoke],
        generators: vec![variant("small", 1_500, 150.0)],
        models: vec![ModelKind::Smote, ModelKind::TabDdpm],
    }
}

#[test]
fn sharded_runs_merge_into_the_unsharded_report() {
    let grid = durability_grid();
    let options = SweepOptions {
        keep_tables: false,
        ..test_options()
    };
    let full =
        run_sweep_resumable_with(&grid, &options, None, None, echo_fitter).expect("unsharded run");
    assert_eq!(full.report.total_cells, 4);
    assert!(full.report.is_complete());
    assert_eq!(full.report.shard, None);

    let mut parts = Vec::new();
    for index in 0..2 {
        let shard = ShardSpec { index, count: 2 };
        let summary = run_sweep_resumable_with(&grid, &options, Some(shard), None, echo_fitter)
            .expect("shard run");
        assert_eq!(summary.report.total_cells, 2, "round-robin split of 4");
        assert_eq!(summary.report.shard, Some(shard));
        assert!(!summary.report.is_complete());
        summary.report.validate().expect("shard artifact validates");
        parts.push(summary.report);
    }

    let merged = SweepReport::merge(&parts).expect("disjoint shards merge");
    assert!(merged.is_complete());
    merged.validate().expect("merged artifact validates");
    // The merged report is byte-identical to the unsharded run modulo
    // wall-clock: canonical forms agree at the JSON byte level.
    assert_eq!(
        serde_json::to_string_pretty(&merged.canonical()).unwrap(),
        serde_json::to_string_pretty(&full.report.canonical()).unwrap(),
        "merge of 2 shards must reproduce the unsharded artifact"
    );
    // Overlapping shards are rejected.
    assert!(matches!(
        SweepReport::merge(&[parts[0].clone(), parts[0].clone()]).unwrap_err(),
        SweepArtifactError::OverlappingCell { .. }
    ));
}

#[test]
fn resume_runs_only_the_missing_cells_and_matches_from_scratch() {
    let grid = durability_grid();
    let options = SweepOptions {
        keep_tables: false,
        ..test_options()
    };
    let full = run_sweep_resumable_with(&grid, &options, None, None, echo_fitter)
        .expect("from-scratch run");

    // Truncate the artifact to drop the last two cells, as the CI resume
    // smoke does with `sweep --drop-last`.
    let mut partial = full.report.clone();
    partial.cells.truncate(2);
    partial.total_cells = 2;
    partial.failed_cells = partial.cells.iter().filter(|row| !row.ok).count();
    partial.validate().expect("truncated artifact stays valid");

    let executed = AtomicUsize::new(0);
    let resumed = run_sweep_resumable_with(
        &grid,
        &options,
        None,
        Some(&partial),
        |cell, train, ctx: &FitContext| {
            executed.fetch_add(1, Ordering::SeqCst);
            echo_fitter(cell, train, ctx)
        },
    )
    .expect("resume run");
    assert_eq!(
        executed.load(Ordering::SeqCst),
        2,
        "only the dropped cells run"
    );
    assert_eq!(resumed.runs.len(), 2);
    assert_eq!(resumed.resumed, 2);
    assert_eq!(
        serde_json::to_string_pretty(&resumed.report.canonical()).unwrap(),
        serde_json::to_string_pretty(&full.report.canonical()).unwrap(),
        "resumed run must reproduce the from-scratch artifact"
    );
}

#[test]
fn resume_with_zero_remaining_cells_is_a_noop() {
    let grid = durability_grid();
    let options = SweepOptions {
        keep_tables: false,
        ..test_options()
    };
    let full = run_sweep_resumable_with(&grid, &options, None, None, echo_fitter)
        .expect("from-scratch run");
    let summary = run_sweep_resumable_with(
        &grid,
        &options,
        None,
        Some(&full.report),
        |cell, _train, _: &FitContext| -> Result<panda_surrogate::tabular::Table, SurrogateError> {
            panic!("cell {} must not be re-executed", cell.id());
        },
    )
    .expect("no-op resume");
    assert!(summary.runs.is_empty());
    assert_eq!(summary.resumed, 4);
    assert_eq!(
        summary.report.canonical(),
        full.report.canonical(),
        "no-op resume must reproduce the prior artifact"
    );
}

#[test]
fn resume_rejects_stale_or_corrupt_artifacts() {
    let grid = durability_grid();
    let options = SweepOptions {
        keep_tables: false,
        ..test_options()
    };
    let full = run_sweep_resumable_with(&grid, &options, None, None, echo_fitter)
        .expect("from-scratch run");
    let reject = |prior: &SweepReport| {
        run_sweep_resumable_with(
            &grid,
            &options,
            None,
            Some(prior),
            |cell,
             _train,
             _: &FitContext|
             -> Result<panda_surrogate::tabular::Table, SurrogateError> {
                panic!("cell {} must not run from a rejected artifact", cell.id());
            },
        )
        .unwrap_err()
    };

    // A tampered fingerprint (stale artifact from an edited grid).
    let mut stale = full.report.clone();
    stale.grid_fingerprint = "ffffffffffffffff".to_string();
    assert!(matches!(
        reject(&stale),
        SweepArtifactError::FingerprintMismatch { .. }
    ));
    // An artifact of a genuinely different grid: one more seed.
    let mut bigger = grid.clone();
    bigger.seeds.push(83);
    assert!(matches!(
        run_sweep_resumable_with(&bigger, &options, None, Some(&full.report), echo_fitter)
            .unwrap_err(),
        SweepArtifactError::FingerprintMismatch { .. }
    ));
    // Changed evaluation options alone also invalidate the artifact.
    let no_dcr_cap = SweepOptions {
        evaluation: EvaluationConfig::fast(),
        ..test_options()
    };
    assert!(matches!(
        run_sweep_resumable_with(&grid, &no_dcr_cap, None, Some(&full.report), echo_fitter)
            .unwrap_err(),
        SweepArtifactError::FingerprintMismatch { .. }
    ));
    // A pre-durability schema version.
    let mut old = full.report.clone();
    old.schema_version = 1;
    assert!(matches!(
        reject(&old),
        SweepArtifactError::SchemaVersion { found: 1 }
    ));
    // A row whose id does not exist in this grid.
    let mut unknown = full.report.clone();
    unknown.cells[0].id = "s9999-smoke-small-smote".to_string();
    assert!(matches!(
        reject(&unknown),
        SweepArtifactError::UnknownCell { .. }
    ));
    // A row recorded at the wrong index.
    let mut shifted = full.report.clone();
    shifted.cells[0].index = 3;
    assert!(matches!(
        reject(&shifted),
        SweepArtifactError::IndexMismatch { .. }
    ));
}

/// Kill-mid-run simulation: a journaled sweep is truncated mid-row (as a
/// SIGKILL during an append would leave it), recovered, and resumed — and
/// the resumed artifact is canonically byte-identical to the uninterrupted
/// run.
#[test]
fn torn_journal_recovers_and_resumes_into_the_uninterrupted_artifact() {
    use panda_surrogate::surrogate::sweep::{
        grid_fingerprint, run_sweep_resumable, run_sweep_resumable_journaled, JournalHeader,
        JournalWriter, JOURNAL_VERSION,
    };

    let grid = durability_grid();
    let options = SweepOptions {
        keep_tables: false,
        ..test_options()
    };
    let path = std::env::temp_dir().join(format!(
        "panda_surrogate_torn_journal_{}.jsonl",
        std::process::id()
    ));
    let header = JournalHeader {
        journal_version: JOURNAL_VERSION,
        grid_fingerprint: grid_fingerprint(&grid, &options),
        grid_cells: grid.len(),
        shard: None,
    };
    let writer = JournalWriter::create(&path, &header).expect("create journal");
    let full = run_sweep_resumable_journaled(&grid, &options, None, None, Some(&writer))
        .expect("journaled run");
    let text = std::fs::read_to_string(&path).expect("read journal");
    std::fs::remove_file(&path).ok();

    // The intact journal already recovers into the full artifact.
    let recovered = SweepReport::recover_journal(&text).expect("recover intact journal");
    assert_eq!(
        serde_json::to_string_pretty(&recovered.canonical()).unwrap(),
        serde_json::to_string_pretty(&full.report.canonical()).unwrap(),
        "intact journal must recover the full artifact"
    );

    // Tear the journal mid-way through its fourth line (header + 2 complete
    // rows + half of row 3), as a crash during an append would.
    let newlines: Vec<usize> = text
        .char_indices()
        .filter(|&(_, c)| c == '\n')
        .map(|(i, _)| i)
        .collect();
    assert_eq!(newlines.len(), 5, "header + 4 rows, newline-terminated");
    let row3_start = newlines[2] + 1;
    let row3_end = newlines[3];
    let torn = &text[..row3_start + (row3_end - row3_start) / 2];
    let prior = SweepReport::recover_journal(torn).expect("recover torn journal");
    assert_eq!(prior.total_cells, 2, "the torn row is dropped");

    // Resuming from the recovered prior reproduces the uninterrupted run.
    let resumed =
        run_sweep_resumable(&grid, &options, None, Some(&prior)).expect("resume from journal");
    assert_eq!(resumed.resumed, 2);
    assert_eq!(resumed.runs.len(), 2);
    assert_eq!(
        serde_json::to_string_pretty(&resumed.report.canonical()).unwrap(),
        serde_json::to_string_pretty(&full.report.canonical()).unwrap(),
        "journal-recovered resume must equal the uninterrupted artifact"
    );
}

/// Failed rows produced by injected faults (typed error_kind, attempts)
/// survive sharding, merging, and resuming unchanged.
#[test]
fn fault_rows_survive_shard_merge_and_resume_round_trips() {
    let grid = durability_grid();
    let options = SweepOptions {
        keep_tables: false,
        faults: panda_surrogate::surrogate::FaultPlan::parse("cell1:panic,cell3:budget")
            .expect("valid plan"),
        ..test_options()
    };
    // A cooperative fitter: polls the budget control like a real epoch
    // loop, then echoes the training split.
    let cooperative = |_cell: &panda_surrogate::surrogate::sweep::SweepCell,
                       train: &panda_surrogate::tabular::Table,
                       ctx: &FitContext|
     -> Result<panda_surrogate::tabular::Table, SurrogateError> {
        ctx.control.check_epoch(0)?;
        Ok(train.clone())
    };

    let full =
        run_sweep_resumable_with(&grid, &options, None, None, cooperative).expect("unsharded run");
    assert_eq!(full.report.failed_cells, 2);
    let kinds: Vec<Option<&str>> = full
        .report
        .cells
        .iter()
        .map(|row| row.error_kind.as_deref())
        .collect();
    assert_eq!(kinds, vec![None, Some("panic"), None, Some("budget")]);
    assert!(full.report.cells.iter().all(|row| row.attempts == 1));
    full.report
        .validate()
        .expect("artifact with failed rows validates");

    // Shard → merge reproduces the unsharded artifact, failed rows intact.
    let mut parts = Vec::new();
    for index in 0..2 {
        let shard = ShardSpec { index, count: 2 };
        let summary = run_sweep_resumable_with(&grid, &options, Some(shard), None, cooperative)
            .expect("shard run");
        parts.push(summary.report);
    }
    let merged = SweepReport::merge(&parts).expect("shards merge");
    assert_eq!(
        serde_json::to_string_pretty(&merged.canonical()).unwrap(),
        serde_json::to_string_pretty(&full.report.canonical()).unwrap(),
        "failed rows must survive the shard/merge round trip"
    );

    // Resume: drop the two failed rows, rerun only them, equal artifact.
    let mut partial = full.report.clone();
    partial.cells.retain(|row| row.ok);
    partial.total_cells = partial.cells.len();
    partial.failed_cells = 0;
    let resumed = run_sweep_resumable_with(&grid, &options, None, Some(&partial), cooperative)
        .expect("resume over failed cells");
    assert_eq!(resumed.resumed, 2);
    assert_eq!(
        serde_json::to_string_pretty(&resumed.report.canonical()).unwrap(),
        serde_json::to_string_pretty(&full.report.canonical()).unwrap(),
        "re-running the failed cells must reproduce their typed rows"
    );
}

/// Retried sweeps stay end-to-end deterministic through the real model
/// pipeline: an attempt-bounded fault fails the first attempt, the retry
/// succeeds under its derived seed, and two identical runs agree
/// canonically, byte for byte.
#[test]
fn retried_cells_are_deterministic_through_the_real_pipeline() {
    let grid = SweepGrid {
        seeds: vec![81, 82],
        budgets: vec![TrainingBudget::Smoke],
        generators: vec![variant("small", 1_500, 150.0)],
        models: vec![ModelKind::Smote],
    };
    let options = SweepOptions {
        keep_tables: false,
        retries: 1,
        faults: panda_surrogate::surrogate::FaultPlan::parse("cell0:nan:1").expect("valid plan"),
        ..test_options()
    };
    let first = run_sweep(&grid, &options);
    let second = run_sweep(&grid, &options);
    let report = first.report();
    assert_eq!(report.failed_cells, 0, "the retry must recover the cell");
    assert_eq!(report.cells[0].attempts, 2);
    assert_eq!(report.cells[1].attempts, 1);
    assert_eq!(
        serde_json::to_string_pretty(&report.canonical()).unwrap(),
        serde_json::to_string_pretty(&second.report().canonical()).unwrap(),
        "same grid, options and fault plan must reproduce the same artifact"
    );
}

/// `--checkpoint-dir` sweeps persist every fitted cell as a loadable
/// checkpoint AND stay byte-identical to plain sweeps: the checkpointing
/// fitter is the same computation with a save in the middle, and the
/// persisted artifacts resample the exact synthetic bytes the sweep
/// produced.
#[test]
fn durable_sweep_checkpoints_every_cell_and_stays_byte_identical() {
    use panda_surrogate::surrogate::checkpoint::CheckpointRegistry;
    use panda_surrogate::surrogate::sweep::run_sweep_resumable_durable;

    let grid = SweepGrid {
        seeds: vec![61, 62],
        budgets: vec![TrainingBudget::Smoke],
        generators: vec![variant("small", 1_500, 150.0)],
        models: vec![ModelKind::Smote, ModelKind::TabDdpm],
    };
    let options = SweepOptions {
        sample_rows: Some(120),
        ..test_options()
    };
    let dir = std::env::temp_dir().join(format!("panda_sweep_durable_test_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();

    let durable = run_sweep_resumable_durable(&grid, &options, None, None, None, Some(&dir))
        .expect("durable sweep");
    let plain = run_sweep(&grid, &options);
    assert_eq!(durable.runs.len(), 4);

    let registry = CheckpointRegistry::load_dir(&dir).expect("checkpoint dir loads");
    assert!(!registry.is_degraded());
    assert_eq!(
        registry.entries.len(),
        4,
        "every fitted cell must leave a checkpoint"
    );

    for (durable_run, plain_run) in durable.runs.iter().zip(&plain.runs) {
        let cell = &durable_run.cell;
        assert_eq!(cell.id(), plain_run.cell.id());
        let durable_table = &durable_run.outcome.as_ref().expect("cell passed").synthetic;
        let plain_table = &plain_run.outcome.as_ref().expect("cell passed").synthetic;
        // Checkpointing must not perturb the sweep's own outputs...
        assert_eq!(
            durable_table,
            plain_table,
            "{} diverged under --checkpoint-dir",
            cell.id()
        );
        // ...and the persisted checkpoint must resample those exact bytes
        // (the sweep samples with the cell seed + 1 after fitting).
        let checkpoint = registry
            .entries
            .iter()
            .find(|c| c.key() == cell.id())
            .unwrap_or_else(|| panic!("no checkpoint for {}", cell.id()));
        let resampled = checkpoint
            .sample(120, cell.seed.wrapping_add(1))
            .expect("checkpoint samples");
        assert_eq!(
            Some(&resampled),
            durable_table.as_ref(),
            "{} checkpoint resample is not byte-identical",
            cell.id()
        );
    }

    std::fs::remove_dir_all(&dir).unwrap();
}

/// Injected delays under a virtual clock charge the cell's wall-clock
/// accounting without sleeping: a sweep carrying 90 s of injected delay
/// finishes in real seconds, but its rows still report the delay.
#[test]
fn virtual_clock_charges_injected_delays_without_sleeping() {
    use panda_surrogate::surrogate::{FaultClock, FaultPlan};

    let grid = SweepGrid {
        seeds: vec![71],
        budgets: vec![TrainingBudget::Smoke],
        generators: vec![variant("small", 1_200, 150.0)],
        models: vec![ModelKind::Smote],
    };
    let options = SweepOptions {
        keep_tables: false,
        faults: FaultPlan::parse("cell0:delay:90000ms").expect("valid plan"),
        clock: FaultClock::Virtual,
        ..test_options()
    };
    let start = std::time::Instant::now();
    let outcome = run_sweep(&grid, &options);
    let real_elapsed = start.elapsed();
    assert!(
        real_elapsed < std::time::Duration::from_secs(60),
        "virtual clock must not sleep through the 90s injected delay \
         (took {real_elapsed:?})"
    );
    let report = outcome.report();
    assert_eq!(report.failed_cells, 0);
    assert!(
        report.cells[0].wall_ms >= 90_000.0,
        "the 90s virtual delay must be charged to wall_ms, got {}",
        report.cells[0].wall_ms
    );
}
