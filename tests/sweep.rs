//! Integration tests for the scenario-sweep runtime (`surrogate::sweep`):
//! any cell run standalone must be byte-identical to the same cell inside a
//! sweep, parallel and sequential sweeps must agree byte-for-byte, one
//! diverging cell must leave every other cell untouched, and the JSON
//! artifact must round-trip through the `serde_json` shim.

use panda_surrogate::metrics::{DcrConfig, EvaluationConfig};
use panda_surrogate::surrogate::sweep::{
    run_cell, run_sweep, run_sweep_with, NamedGeneratorConfig, SweepGrid, SweepOptions, SweepReport,
};
use panda_surrogate::surrogate::{ExecutionMode, ModelKind, SurrogateError, TrainingBudget};

/// A named small-variant generator config cut down for test runtime.
fn variant(name: &str, gross: usize, days: f64) -> NamedGeneratorConfig {
    let mut generator = NamedGeneratorConfig::preset("small").expect("known preset");
    generator.name = name.to_string();
    generator.config.gross_records = gross;
    generator.config.days = days;
    generator
}

/// Cheap evaluation (no MLEF probe, capped DCR) so the suite stays fast.
fn test_options() -> SweepOptions {
    SweepOptions {
        evaluation: EvaluationConfig {
            dcr: DcrConfig {
                max_synthetic_rows: 300,
                max_train_rows: 1_000,
            },
            mlef: None,
        },
        keep_tables: true,
        ..SweepOptions::default()
    }
}

#[test]
fn every_model_kind_is_byte_identical_standalone_and_in_sweep() {
    let grid = SweepGrid {
        seeds: vec![41],
        budgets: vec![TrainingBudget::Smoke],
        generators: vec![variant("small", 2_000, 150.0)],
        models: ModelKind::ALL.to_vec(),
    };
    let options = test_options();
    let sweep = run_sweep(&grid, &options);
    assert_eq!(sweep.runs.len(), 4);
    for run in &sweep.runs {
        let in_sweep = run.outcome.as_ref().unwrap_or_else(|e| {
            panic!("{} failed inside the sweep: {e}", run.cell.id());
        });
        let standalone = run_cell(&run.cell, &options);
        let standalone = standalone.outcome.as_ref().unwrap_or_else(|e| {
            panic!("{} failed standalone: {e}", run.cell.id());
        });
        // Byte-identical synthetic tables: the cell's RNG chain depends
        // only on the cell seed, never on its neighbours or scheduling.
        assert_eq!(
            in_sweep.synthetic,
            standalone.synthetic,
            "{} diverged between sweep and standalone",
            run.cell.id()
        );
        assert_eq!(in_sweep.report, standalone.report, "{}", run.cell.id());
        assert_eq!(in_sweep.train_rows, standalone.train_rows);
    }
}

#[test]
fn parallel_and_sequential_sweeps_agree_on_a_2x2x2_grid() {
    let grid = SweepGrid {
        seeds: vec![51, 52],
        budgets: vec![TrainingBudget::Smoke],
        generators: vec![
            variant("small", 1_800, 150.0),
            variant("dense", 1_800, 30.0),
        ],
        models: vec![ModelKind::Smote, ModelKind::TabDdpm],
    };
    let parallel = run_sweep(&grid, &test_options());
    let sequential = run_sweep(
        &grid,
        &SweepOptions {
            mode: ExecutionMode::Sequential,
            ..test_options()
        },
    );
    assert_eq!(parallel.runs.len(), 8);
    assert_eq!(sequential.runs.len(), 8);
    for (p, s) in parallel.runs.iter().zip(&sequential.runs) {
        // Grid-expansion order is preserved by both modes.
        assert_eq!(p.cell.id(), s.cell.id());
        let p_run = p.outcome.as_ref().expect("parallel cell passed");
        let s_run = s.outcome.as_ref().expect("sequential cell passed");
        assert_eq!(
            p_run.synthetic,
            s_run.synthetic,
            "{} diverged across modes",
            p.cell.id()
        );
        assert_eq!(p_run.report, s_run.report, "{}", p.cell.id());
    }
}

#[test]
fn one_diverging_cell_leaves_every_other_cell_untouched() {
    let grid = SweepGrid {
        seeds: vec![61, 62],
        budgets: vec![TrainingBudget::Smoke],
        generators: vec![variant("small", 1_800, 150.0)],
        models: vec![ModelKind::Smote, ModelKind::TabDdpm],
    };
    let options = test_options();
    let clean = run_sweep(&grid, &options);
    let poisoned_id = clean.runs[1].cell.id();

    let poisoned = run_sweep_with(&grid, &options, |cell, train| {
        if cell.id() == poisoned_id {
            // Stand-in for a diverging fit.
            Err(SurrogateError::InvalidTrainingData(
                "injected divergence".to_string(),
            ))
        } else {
            panda_surrogate::surrogate::fit_and_sample(
                cell.model,
                train,
                train.n_rows(),
                cell.budget,
                cell.seed,
            )
        }
    });

    assert_eq!(poisoned.runs.len(), clean.runs.len());
    let mut failed = 0;
    for (p, c) in poisoned.runs.iter().zip(&clean.runs) {
        assert_eq!(p.cell.id(), c.cell.id());
        if p.cell.id() == poisoned_id {
            let error = p.outcome.as_ref().expect_err("poisoned cell must fail");
            assert!(error.to_string().contains("injected divergence"));
            failed += 1;
        } else {
            // Every healthy cell's output is byte-identical to the clean run.
            let p_run = p.outcome.as_ref().expect("healthy cell passed");
            let c_run = c.outcome.as_ref().expect("clean cell passed");
            assert_eq!(p_run.synthetic, c_run.synthetic, "{}", p.cell.id());
            assert_eq!(p_run.report, c_run.report, "{}", p.cell.id());
        }
    }
    assert_eq!(failed, 1);
    assert_eq!(poisoned.failures().count(), 1);
    assert_eq!(poisoned.report().failed_cells, 1);
}

#[test]
fn json_artifact_round_trips_through_the_shim_parser() {
    use serde_json::ValueExt;

    let grid = SweepGrid {
        seeds: vec![71, 72],
        budgets: vec![TrainingBudget::Smoke],
        generators: vec![variant("small", 1_500, 150.0)],
        models: vec![ModelKind::Smote],
    };
    // Inject one failure so both row shapes (passing and failing) are
    // exercised by the round-trip.
    let outcome = run_sweep_with(&grid, &test_options(), |cell, train| {
        if cell.seed == 72 {
            Err(SurrogateError::NotFitted("injected"))
        } else {
            panda_surrogate::surrogate::fit_and_sample(
                cell.model,
                train,
                train.n_rows(),
                cell.budget,
                cell.seed,
            )
        }
    });
    let report = outcome.report();
    assert_eq!(report.total_cells, 2);
    assert_eq!(report.failed_cells, 1);

    let path = std::env::temp_dir().join("panda_surrogate_sweep_artifact_test.json");
    let json = serde_json::to_string_pretty(&report).expect("render");
    std::fs::write(&path, &json).expect("write artifact");
    let text = std::fs::read_to_string(&path).expect("read artifact back");
    std::fs::remove_file(&path).ok();

    // The shim parser accepts the artifact and the cell count round-trips.
    let parsed = serde_json::from_str(&text).expect("re-parse artifact");
    assert_eq!(
        parsed
            .get("cells")
            .and_then(|c| c.as_array())
            .map(<[_]>::len),
        Some(report.total_cells)
    );
    assert_eq!(
        SweepReport::validate_artifact(&text).expect("artifact validates"),
        report.total_cells
    );

    // Spot-check one row survived the trip with its values intact.
    let rows = parsed.get("cells").and_then(|c| c.as_array()).unwrap();
    let first = &rows[0];
    assert_eq!(first.get("model").and_then(|v| v.as_str()), Some("SMOTE"));
    assert_eq!(
        first.get("wd").and_then(|v| v.as_f64()),
        report.cells[0].wd,
        "wd drifted through the JSON round-trip"
    );
}
