//! Property-based tests over the metric kernels and the preprocessing
//! substrate — the invariants the evaluation relies on.
//!
//! The original suite used `proptest`, which is unavailable in the offline
//! build environment, so the same properties are checked over 64 seeded
//! pseudo-random cases per test (deterministic — failures are reproducible
//! by construction).

use panda_surrogate::metrics::{jensen_shannon_divergence, pearson, theils_u, wasserstein_1d};
use panda_surrogate::tabular::{
    histogram, Column, NumericTransform, QuantileTransformer, StandardScaler, Table,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeMap;

const CASES: u64 = 64;

/// Run `check` once per case with a per-case deterministic generator.
fn for_each_case(test_seed: u64, mut check: impl FnMut(&mut StdRng)) {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(test_seed.wrapping_mul(1_000_003) + case);
        check(&mut rng);
    }
}

fn finite_vec(rng: &mut StdRng, max_len: usize) -> Vec<f64> {
    let len = rng.gen_range(2..max_len);
    (0..len).map(|_| rng.gen_range(-1e6..1e6)).collect()
}

#[test]
fn wasserstein_is_nonnegative_and_symmetric() {
    for_each_case(1, |rng| {
        let a = finite_vec(rng, 50);
        let b = finite_vec(rng, 50);
        let d_ab = wasserstein_1d(&a, &b).unwrap();
        let d_ba = wasserstein_1d(&b, &a).unwrap();
        assert!(d_ab >= 0.0);
        assert!((d_ab - d_ba).abs() < 1e-9 * (1.0 + d_ab.abs()));
    });
}

#[test]
fn wasserstein_identity_of_indiscernibles() {
    for_each_case(2, |rng| {
        let a = finite_vec(rng, 50);
        assert!(wasserstein_1d(&a, &a).unwrap() < 1e-9);
    });
}

#[test]
fn wasserstein_translation_equals_shift() {
    for_each_case(3, |rng| {
        let a = finite_vec(rng, 40);
        let shift = rng.gen_range(0.1..1e3);
        let b: Vec<f64> = a.iter().map(|v| v + shift).collect();
        let d = wasserstein_1d(&a, &b).unwrap();
        assert!((d - shift).abs() < 1e-6 * (1.0 + shift));
    });
}

#[test]
fn pearson_is_bounded_and_scale_invariant() {
    for_each_case(4, |rng| {
        let a = finite_vec(rng, 40);
        let scale = rng.gen_range(0.1..100.0);
        let b: Vec<f64> = a.iter().map(|v| v * scale).collect();
        let r = pearson(&a, &b);
        assert!((-1.0 - 1e-12..=1.0 + 1e-12).contains(&r));
        // Perfectly linearly related (unless a is constant).
        let distinct = a.iter().any(|&v| (v - a[0]).abs() > 1e-9);
        if distinct {
            assert!((r - 1.0).abs() < 1e-6);
        }
    });
}

#[test]
fn jsd_is_symmetric_and_bounded() {
    for_each_case(5, |rng| {
        let counts = |rng: &mut StdRng| -> Vec<u32> {
            let len = rng.gen_range(2..6);
            (0..len).map(|_| rng.gen_range(1u32..100)).collect()
        };
        let p_counts = counts(rng);
        let q_counts = counts(rng);
        let to_dist = |counts: &[u32]| -> BTreeMap<String, f64> {
            let total: f64 = counts.iter().map(|&c| c as f64).sum();
            counts
                .iter()
                .enumerate()
                .map(|(i, &c)| (format!("label{i}"), c as f64 / total))
                .collect()
        };
        // Shared label space.
        let p = to_dist(&p_counts);
        let q = to_dist(&q_counts);
        let pq = jensen_shannon_divergence(&p, &q);
        let qp = jensen_shannon_divergence(&q, &p);
        assert!((pq - qp).abs() < 1e-12);
        assert!(pq >= 0.0);
        assert!(pq <= 2f64.ln() + 1e-12);
    });
}

#[test]
fn theils_u_is_bounded() {
    for_each_case(6, |rng| {
        let len = rng.gen_range(10..60);
        let codes_x: Vec<u32> = (0..len).map(|_| rng.gen_range(0u32..5)).collect();
        let shift = rng.gen_range(0u32..3);
        let codes_y: Vec<u32> = codes_x.iter().map(|c| (c + shift) % 5).collect();
        let u = theils_u(&codes_x, &codes_y);
        assert!((0.0..=1.0).contains(&u));
        // y is a bijection of x, so it fully determines x.
        assert!(u > 1.0 - 1e-9);
    });
}

#[test]
fn quantile_transform_preserves_order_and_roundtrips() {
    for_each_case(7, |rng| {
        let len = rng.gen_range(5..60);
        let values: Vec<f64> = (0..len).map(|_| rng.gen_range(-1e5..1e5)).collect();
        let mut qt = QuantileTransformer::new();
        let z = qt.fit_transform(&values).unwrap();
        // Order preservation.
        for i in 0..values.len() {
            for j in 0..values.len() {
                if values[i] < values[j] {
                    assert!(z[i] <= z[j] + 1e-12);
                }
            }
        }
        // Round-trip accuracy relative to the data span.
        let min = values.iter().copied().fold(f64::INFINITY, f64::min);
        let max = values.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let span = (max - min).max(1e-9);
        let back = qt.inverse_transform(&z).unwrap();
        for (orig, rec) in values.iter().zip(&back) {
            assert!((orig - rec).abs() <= 0.02 * span + 1e-9);
        }
    });
}

#[test]
fn standard_scaler_roundtrips() {
    for_each_case(8, |rng| {
        let values = finite_vec(rng, 50);
        let mut scaler = StandardScaler::new();
        let z = scaler.fit_transform(&values).unwrap();
        let back = scaler.inverse_transform(&z).unwrap();
        for (orig, rec) in values.iter().zip(&back) {
            assert!((orig - rec).abs() <= 1e-6 * (1.0 + orig.abs()));
        }
    });
}

#[test]
fn histogram_mass_is_conserved() {
    for_each_case(9, |rng| {
        let len = rng.gen_range(1..200);
        let values: Vec<f64> = (0..len).map(|_| rng.gen_range(-1e3..1e3)).collect();
        let bins = rng.gen_range(1usize..32);
        let h = histogram(&values, bins).unwrap();
        assert_eq!(h.counts.iter().sum::<u64>(), values.len() as u64);
        let pmf_sum: f64 = h.pmf().iter().sum();
        assert!((pmf_sum - 1.0).abs() < 1e-9);
    });
}

#[test]
fn table_take_preserves_row_content() {
    for_each_case(10, |rng| {
        let len = rng.gen_range(3..40);
        let values: Vec<f64> = (0..len).map(|_| rng.gen_range(-1e3..1e3)).collect();
        let labels: Vec<String> = (0..values.len()).map(|i| format!("cat{}", i % 3)).collect();
        let mut table = Table::new();
        table
            .push_column("x", Column::Numerical(values.clone()))
            .unwrap();
        table
            .push_column("c", Column::from_labels(&labels))
            .unwrap();
        let picks = rng.gen_range(1usize..10);
        let indices: Vec<usize> = (0..picks).map(|_| rng.gen_range(0..values.len())).collect();
        let sub = table.take(&indices);
        assert_eq!(sub.n_rows(), indices.len());
        for (row, &src) in indices.iter().enumerate() {
            assert_eq!(sub.numerical("x").unwrap()[row], values[src]);
            assert_eq!(sub.label("c", row).unwrap(), labels[src].as_str());
        }
    });
}
