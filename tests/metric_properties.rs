//! Property-based tests (proptest) over the metric kernels and the
//! preprocessing substrate — the invariants the evaluation relies on.

use panda_surrogate::metrics::{
    jensen_shannon_divergence, pearson, theils_u, wasserstein_1d,
};
use panda_surrogate::tabular::{
    histogram, Column, NumericTransform, QuantileTransformer, StandardScaler, Table,
};
use proptest::prelude::*;
use std::collections::BTreeMap;

fn finite_vec(max_len: usize) -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(-1e6f64..1e6, 2..max_len)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn wasserstein_is_nonnegative_and_symmetric(a in finite_vec(50), b in finite_vec(50)) {
        let d_ab = wasserstein_1d(&a, &b);
        let d_ba = wasserstein_1d(&b, &a);
        prop_assert!(d_ab >= 0.0);
        prop_assert!((d_ab - d_ba).abs() < 1e-9 * (1.0 + d_ab.abs()));
    }

    #[test]
    fn wasserstein_identity_of_indiscernibles(a in finite_vec(50)) {
        prop_assert!(wasserstein_1d(&a, &a) < 1e-9);
    }

    #[test]
    fn wasserstein_translation_equals_shift(a in finite_vec(40), shift in 0.1f64..1e3) {
        let b: Vec<f64> = a.iter().map(|v| v + shift).collect();
        let d = wasserstein_1d(&a, &b);
        prop_assert!((d - shift).abs() < 1e-6 * (1.0 + shift));
    }

    #[test]
    fn pearson_is_bounded_and_scale_invariant(a in finite_vec(40), scale in 0.1f64..100.0) {
        let b: Vec<f64> = a.iter().map(|v| v * scale).collect();
        let r = pearson(&a, &b);
        prop_assert!(r <= 1.0 + 1e-12 && r >= -1.0 - 1e-12);
        // Perfectly linearly related (unless a is constant).
        let distinct = a.iter().any(|&v| (v - a[0]).abs() > 1e-9);
        if distinct {
            prop_assert!((r - 1.0).abs() < 1e-6);
        }
    }

    #[test]
    fn jsd_is_symmetric_and_bounded(
        p_counts in prop::collection::vec(1u32..100, 2..6),
        q_counts in prop::collection::vec(1u32..100, 2..6),
    ) {
        let to_dist = |counts: &[u32], prefix: &str| -> BTreeMap<String, f64> {
            let total: f64 = counts.iter().map(|&c| c as f64).sum();
            counts
                .iter()
                .enumerate()
                .map(|(i, &c)| (format!("{prefix}{i}"), c as f64 / total))
                .collect()
        };
        // Shared label space.
        let p = to_dist(&p_counts, "label");
        let q = to_dist(&q_counts, "label");
        let pq = jensen_shannon_divergence(&p, &q);
        let qp = jensen_shannon_divergence(&q, &p);
        prop_assert!((pq - qp).abs() < 1e-12);
        prop_assert!(pq >= 0.0);
        prop_assert!(pq <= 2f64.ln() + 1e-12);
    }

    #[test]
    fn theils_u_is_bounded(codes_x in prop::collection::vec(0u32..5, 10..60), shift in 0u32..3) {
        let codes_y: Vec<u32> = codes_x.iter().map(|c| (c + shift) % 5).collect();
        let u = theils_u(&codes_x, &codes_y);
        prop_assert!((0.0..=1.0).contains(&u));
        // y is a bijection of x, so it fully determines x.
        prop_assert!(u > 1.0 - 1e-9);
    }

    #[test]
    fn quantile_transform_preserves_order_and_roundtrips(values in prop::collection::vec(-1e5f64..1e5, 5..60)) {
        let mut qt = QuantileTransformer::new();
        let z = qt.fit_transform(&values).unwrap();
        // Order preservation.
        for i in 0..values.len() {
            for j in 0..values.len() {
                if values[i] < values[j] {
                    prop_assert!(z[i] <= z[j] + 1e-12);
                }
            }
        }
        // Round-trip accuracy relative to the data span.
        let min = values.iter().copied().fold(f64::INFINITY, f64::min);
        let max = values.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let span = (max - min).max(1e-9);
        let back = qt.inverse_transform(&z).unwrap();
        for (orig, rec) in values.iter().zip(&back) {
            prop_assert!((orig - rec).abs() <= 0.02 * span + 1e-9);
        }
    }

    #[test]
    fn standard_scaler_roundtrips(values in prop::collection::vec(-1e6f64..1e6, 2..50)) {
        let mut scaler = StandardScaler::new();
        let z = scaler.fit_transform(&values).unwrap();
        let back = scaler.inverse_transform(&z).unwrap();
        for (orig, rec) in values.iter().zip(&back) {
            prop_assert!((orig - rec).abs() <= 1e-6 * (1.0 + orig.abs()));
        }
    }

    #[test]
    fn histogram_mass_is_conserved(values in prop::collection::vec(-1e3f64..1e3, 1..200), bins in 1usize..32) {
        let h = histogram(&values, bins).unwrap();
        prop_assert_eq!(h.counts.iter().sum::<u64>(), values.len() as u64);
        let pmf_sum: f64 = h.pmf().iter().sum();
        prop_assert!((pmf_sum - 1.0).abs() < 1e-9);
    }

    #[test]
    fn table_take_preserves_row_content(
        values in prop::collection::vec(-1e3f64..1e3, 3..40),
        pick in prop::collection::vec(0usize..3, 1..10),
    ) {
        let labels: Vec<String> = (0..values.len()).map(|i| format!("cat{}", i % 3)).collect();
        let mut table = Table::new();
        table.push_column("x", Column::Numerical(values.clone())).unwrap();
        table.push_column("c", Column::from_labels(&labels)).unwrap();
        let indices: Vec<usize> = pick.iter().map(|&p| p % values.len()).collect();
        let sub = table.take(&indices);
        prop_assert_eq!(sub.n_rows(), indices.len());
        for (row, &src) in indices.iter().enumerate() {
            prop_assert_eq!(sub.numerical("x").unwrap()[row], values[src]);
            prop_assert_eq!(sub.label("c", row).unwrap(), labels[src].as_str());
        }
    }
}
