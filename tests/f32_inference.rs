//! End-to-end validation of the `f32` inference/sampling tier.
//!
//! The `f32` path cannot be validated bitwise against `f64` — rounding the
//! fitted weights once and running every forward pass in single precision
//! necessarily moves individual values. What the tier *does* promise is
//! distributional equivalence: each model's `sample_f32` draws the same RNG
//! stream as `sample`, so the two synthetic tables for one seed are the
//! same draw at two precisions, and their Wasserstein / Jensen-Shannon
//! deltas must be tiny. These tests pin those deltas, plus the guarantees
//! that *are* exact: seed determinism of the f32 path and the default
//! trait-method passthrough.

use panda_surrogate::metrics::{mean_jsd, mean_wasserstein};
use panda_surrogate::surrogate::{
    CtabGan, CtabGanConfig, SmoteConfig, SmoteSampler, SurrogateError, TabDdpm, TabDdpmConfig,
    TabularGenerator, Tvae, TvaeConfig,
};
use panda_surrogate::tabular::{Column, Table};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Two-cluster toy table: (small workload, "BNL") vs (large workload,
/// "CERN"), the shape the per-model unit tests train on.
fn toy(n: usize, seed: u64) -> Table {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut values = Vec::with_capacity(n);
    let mut labels = Vec::with_capacity(n);
    for _ in 0..n {
        if rng.gen_bool(0.65) {
            values.push(rng.gen_range(1.0..10.0));
            labels.push("BNL");
        } else {
            values.push(rng.gen_range(80.0..120.0));
            labels.push("CERN");
        }
    }
    let mut t = Table::new();
    t.push_column("workload", Column::Numerical(values))
        .unwrap();
    t.push_column("site", Column::from_labels(&labels)).unwrap();
    t
}

/// Fit `model`, sample both tiers from one seed, and pin the f32 tier's
/// contract: schema parity, seed determinism, and distributional deltas
/// within `wd_bound` / `jsd_bound` of the f64 draw.
fn check_f32_tier<G: TabularGenerator>(mut model: G, train: &Table, wd_bound: f64, jsd_bound: f64) {
    model.fit(train).unwrap();
    let n = 400;
    let hi = model.sample(n, 33).unwrap();
    let lo = model.sample_f32(n, 33).unwrap();
    let name = model.name();

    assert_eq!(lo.n_rows(), n, "{name}: row count");
    assert_eq!(lo.names(), hi.names(), "{name}: schema");

    // Deterministic given the seed, and seed-sensitive.
    assert_eq!(
        lo,
        model.sample_f32(n, 33).unwrap(),
        "{name}: f32 sampling must be seed-deterministic"
    );
    assert_ne!(
        lo,
        model.sample_f32(n, 34).unwrap(),
        "{name}: different seeds must differ"
    );

    // Distributional deltas between the two precisions of the same draw.
    let wd = mean_wasserstein(&hi, &lo).unwrap();
    assert!(
        wd <= wd_bound,
        "{name}: f32 vs f64 Wasserstein delta {wd} exceeds {wd_bound}"
    );
    let jsd = mean_jsd(&hi, &lo).unwrap();
    assert!(
        jsd <= jsd_bound,
        "{name}: f32 vs f64 JSD delta {jsd} exceeds {jsd_bound}"
    );

    // And the f32 tier must track the training data about as well as the
    // f64 tier does (no silent fidelity collapse from the precision drop).
    let fidelity_gap =
        (mean_wasserstein(train, &lo).unwrap() - mean_wasserstein(train, &hi).unwrap()).abs();
    assert!(
        fidelity_gap <= wd_bound,
        "{name}: fidelity gap vs train {fidelity_gap} exceeds {wd_bound}"
    );
}

#[test]
fn tvae_f32_sampling_is_distributionally_equivalent() {
    // One decoder forward pass: single-precision rounding barely moves the
    // decoded quantiles.
    check_f32_tier(Tvae::new(TvaeConfig::fast()), &toy(300, 1), 0.02, 0.05);
}

#[test]
fn ctabgan_f32_sampling_is_distributionally_equivalent() {
    // One generator forward pass + argmax decode; categorical flips are
    // possible only for rows sitting exactly on a decision boundary.
    check_f32_tier(
        CtabGan::new(CtabGanConfig::fast()),
        &toy(300, 2),
        0.02,
        0.05,
    );
}

#[test]
fn tabddpm_f32_sampling_is_distributionally_equivalent() {
    // The reverse process feeds f32 outputs back through the denoiser for
    // `timesteps` rounds, so rounding can amplify; the bound is looser but
    // still pins distributional equivalence.
    check_f32_tier(
        TabDdpm::new(TabDdpmConfig::fast()),
        &toy(300, 3),
        0.05,
        0.08,
    );
}

#[test]
fn default_sample_f32_is_the_f64_path() {
    // Models without an f32 override (SMOTE interpolates rows directly; no
    // MLP to down-convert) fall back to `sample` — bit-identical tables.
    let train = toy(200, 4);
    let mut smote = SmoteSampler::new(SmoteConfig::default());
    smote.fit(&train).unwrap();
    assert_eq!(
        smote.sample_f32(100, 7).unwrap(),
        smote.sample(100, 7).unwrap()
    );
}

#[test]
fn f32_sampling_before_fit_errors_like_f64() {
    for result in [
        TabDdpm::new(TabDdpmConfig::fast()).sample_f32(5, 0),
        CtabGan::new(CtabGanConfig::fast()).sample_f32(5, 0),
        Tvae::new(TvaeConfig::fast()).sample_f32(5, 0),
    ] {
        assert!(matches!(result, Err(SurrogateError::NotFitted(_))));
    }
}
