//! Downstream integration: the HTC-grid simulator consuming real and
//! surrogate-generated workloads (experiment E6).

use panda_surrogate::htcsim::{BrokerPolicy, GridSimulator, SimConfig, SimJob};
use panda_surrogate::surrogate::{
    fit_and_sample, prepare_data, ExperimentOptions, ModelKind, TrainingBudget,
};

fn setup() -> (
    panda_surrogate::pandasim::WorkloadGenerator,
    panda_surrogate::tabular::Table,
) {
    let data = prepare_data(&ExperimentOptions {
        gross_records: 5_000,
        ..ExperimentOptions::default()
    });
    (data.generator, data.table)
}

#[test]
fn simulator_completes_real_and_synthetic_workloads() {
    let (generator, table) = setup();
    let synthetic = fit_and_sample(
        ModelKind::Smote,
        &table,
        table.n_rows(),
        TrainingBudget::Smoke,
        3,
    )
    .expect("SMOTE fits");

    for jobs in [
        SimJob::from_table(&table).expect("real table has the modelling columns"),
        SimJob::from_table(&synthetic).expect("synthetic table has the modelling columns"),
    ] {
        let mut simulator = GridSimulator::new(generator.sites(), SimConfig::default());
        let report = simulator.run(&jobs);
        assert_eq!(report.completed, jobs.len());
        assert!(report.makespan_hours > 0.0);
        assert!(report.mean_utilization > 0.0);
    }
}

#[test]
fn policy_ordering_is_preserved_under_synthetic_workloads() {
    // The qualitative conclusion "data-locality brokerage moves fewer bytes
    // over the WAN than round-robin" must hold whether the simulator is fed
    // real or surrogate data — that is what makes the surrogate usable for
    // calibration.
    let (generator, table) = setup();
    let synthetic = fit_and_sample(
        ModelKind::Smote,
        &table,
        table.n_rows(),
        TrainingBudget::Smoke,
        4,
    )
    .expect("SMOTE fits");

    for (label, source) in [("real", &table), ("synthetic", &synthetic)] {
        let jobs = SimJob::from_table(source).expect("modelling columns present");
        let mut wan_by_policy = Vec::new();
        for policy in [BrokerPolicy::DataLocality, BrokerPolicy::RoundRobin] {
            let mut simulator = GridSimulator::new(
                generator.sites(),
                SimConfig {
                    policy,
                    ..SimConfig::default()
                },
            );
            let report = simulator.run(&jobs);
            wan_by_policy.push(report.wan_bytes);
        }
        assert!(
            wan_by_policy[0] < wan_by_policy[1],
            "{label}: locality {} >= round-robin {}",
            wan_by_policy[0],
            wan_by_policy[1]
        );
    }
}

#[test]
fn synthetic_workload_yields_similar_simulator_response() {
    // A fidelity check at the application level: total delivered core-hours
    // implied by the synthetic workload should be within a factor of ~3 of
    // the real one (SMOTE interpolates real rows, so the aggregate volume is
    // close).
    let (generator, table) = setup();
    let synthetic = fit_and_sample(
        ModelKind::Smote,
        &table,
        table.n_rows(),
        TrainingBudget::Smoke,
        5,
    )
    .expect("SMOTE fits");

    let run = |t: &panda_surrogate::tabular::Table| {
        let jobs = SimJob::from_table(t).expect("modelling columns present");
        let mut simulator = GridSimulator::new(generator.sites(), SimConfig::default());
        simulator.run(&jobs)
    };
    let real_report = run(&table);
    let synthetic_report = run(&synthetic);

    let ratio = synthetic_report.makespan_hours / real_report.makespan_hours.max(1e-9);
    assert!(
        (0.33..3.0).contains(&ratio),
        "makespan ratio {ratio} (real {}, synthetic {})",
        real_report.makespan_hours,
        synthetic_report.makespan_hours
    );
}
