//! Integration tests for crash-safe model checkpoints
//! (`surrogate::checkpoint`): a fitted generator saved, reloaded and
//! resampled must be byte-identical to the in-memory original for every
//! model kind; truncation at *every* byte offset and single-character
//! corruption must be rejected with typed errors; and a checkpoint
//! directory with damaged entries must load degraded, never fail.
//!
//! CI reruns this suite under every `SURROGATE_SIMD` tier (see the
//! simd-matrix job), so the byte-identity guarantee is pinned across
//! dispatch paths too.

use std::path::PathBuf;

use panda_surrogate::surrogate::checkpoint::{
    Checkpoint, CheckpointError, CheckpointRegistry, CHECKPOINT_VERSION,
};
use panda_surrogate::surrogate::{build_payload, ModelKind, TrainingBudget};
use panda_surrogate::tabular::{Column, Table};

/// A deterministic mixed-type training table, small enough that all four
/// models fit in test time.
fn toy(n: usize) -> Table {
    let values: Vec<f64> = (0..n)
        .map(|i| (i as f64 * 1.37).sin() * 40.0 + i as f64 * 0.25 + 5.0)
        .collect();
    let labels: Vec<&str> = (0..n)
        .map(|i| match i % 3 {
            0 => "BNL",
            1 => "CERN",
            _ => "SLAC",
        })
        .collect();
    let mut t = Table::new();
    t.push_column("workload", Column::Numerical(values))
        .unwrap();
    t.push_column("site", Column::from_labels(&labels)).unwrap();
    t
}

/// Fit a checkpointable payload of `kind` on the toy table.
fn fitted(kind: ModelKind, seed: u64) -> Checkpoint {
    let train = toy(90);
    let mut payload = build_payload(kind, TrainingBudget::Smoke, seed);
    payload
        .generator_mut()
        .fit(&train)
        .unwrap_or_else(|e| panic!("{} failed to fit: {e}", kind.name()));
    Checkpoint::new("small", seed, TrainingBudget::Smoke, payload)
}

fn temp_path(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("panda_ckpt_it_{}_{name}", std::process::id()))
}

#[test]
fn save_load_sample_is_byte_identical_for_every_model_kind() {
    for kind in ModelKind::ALL {
        let checkpoint = fitted(kind, 2024);
        let path = temp_path(&checkpoint.file_name());
        checkpoint.save(&path).unwrap();

        let loaded = Checkpoint::load(&path).unwrap_or_else(|e| {
            panic!("{} failed to reload: {e}", kind.name());
        });
        assert_eq!(loaded.model, kind);
        assert_eq!(loaded.key(), checkpoint.key());

        // The reloaded generator must sample the *same bytes* as the
        // fitted in-memory one — the property that makes "train once,
        // serve forever" sound. Table derives PartialEq, so this is a
        // full bit-level comparison of every float.
        for sample_seed in [7u64, 2025] {
            let original = checkpoint.sample(48, sample_seed).unwrap();
            let reloaded = loaded.sample(48, sample_seed).unwrap();
            assert_eq!(
                original,
                reloaded,
                "{} sampled differently after reload (seed {sample_seed})",
                kind.name()
            );
        }
        // The f32 inference ladder round-trips too (the SIMD matrix
        // reruns this test per tier).
        assert_eq!(
            checkpoint.payload.generator().sample_f32(16, 3).unwrap(),
            loaded.payload.generator().sample_f32(16, 3).unwrap(),
            "{} f32 sampling diverged after reload",
            kind.name()
        );

        // A second save of the reloaded model is byte-identical on disk.
        let resaved = temp_path(&format!("resave-{}", checkpoint.file_name()));
        loaded.save(&resaved).unwrap();
        assert_eq!(
            std::fs::read(&path).unwrap(),
            std::fs::read(&resaved).unwrap(),
            "{} re-render is not byte-stable",
            kind.name()
        );
        std::fs::remove_file(&path).unwrap();
        std::fs::remove_file(&resaved).unwrap();
    }
}

#[test]
fn truncation_at_every_byte_offset_is_rejected() {
    // SMOTE keeps the artifact small enough to scan every prefix.
    let text = fitted(ModelKind::Smote, 7).render();
    assert!(Checkpoint::parse(&text).is_ok());
    for offset in 0..text.len() {
        if !text.is_char_boundary(offset) {
            continue;
        }
        let truncated = &text[..offset];
        let err = match Checkpoint::parse(truncated) {
            Ok(_) => panic!(
                "truncation to {offset} of {} bytes was accepted",
                text.len()
            ),
            Err(err) => err,
        };
        // Every truncation is typed as damage to a named section —
        // mostly Truncated (missing trailing newline / missing payload),
        // with Malformed for a torn header line cut exactly at its
        // newline.
        assert!(
            matches!(
                err,
                CheckpointError::Truncated { .. } | CheckpointError::Malformed { .. }
            ),
            "offset {offset}: unexpected error {err:?}"
        );
    }
}

#[test]
fn single_character_corruption_is_rejected_everywhere() {
    let text = fitted(ModelKind::Smote, 11).render();
    // Swap each character for a same-class substitute (digit for digit,
    // letter for letter) at a spread of offsets: such edits usually keep
    // the line perfectly parseable JSON, so only the content fingerprint
    // can catch them.
    let mut checked = 0usize;
    for offset in (0..text.len()).step_by(97) {
        let original = text.as_bytes()[offset];
        let substitute = match original {
            b'0'..=b'8' => original + 1,
            b'9' => b'0',
            b'a'..=b'y' => original + 1,
            _ => continue,
        };
        let mut corrupted = text.clone().into_bytes();
        corrupted[offset] = substitute;
        let corrupted = String::from_utf8(corrupted).unwrap();
        assert!(
            Checkpoint::parse(&corrupted).is_err(),
            "flipping byte {offset} ({:?} -> {:?}) went undetected",
            original as char,
            substitute as char
        );
        checked += 1;
    }
    assert!(checked >= 20, "only {checked} corruption sites exercised");

    // A digit edit inside the payload line specifically must be caught by
    // the fingerprint (it stays valid JSON).
    let payload_start = text.find('\n').unwrap() + 1;
    let digit_at = (payload_start..text.len())
        .find(|&i| text.as_bytes()[i].is_ascii_digit())
        .expect("payload contains digits");
    let mut corrupted = text.clone().into_bytes();
    corrupted[digit_at] = if corrupted[digit_at] == b'9' {
        b'8'
    } else {
        b'9'
    };
    let err = Checkpoint::parse(&String::from_utf8(corrupted).unwrap()).unwrap_err();
    assert!(
        matches!(err, CheckpointError::FingerprintMismatch { .. }),
        "payload digit edit produced {err:?}, not a fingerprint mismatch"
    );
    assert_eq!(err.section(), "fingerprint");
}

#[test]
fn stale_schema_and_header_surgery_are_typed() {
    let text = fitted(ModelKind::Smote, 13).render();

    let stale = text.replace(
        &format!("{{\"checkpoint_version\":{CHECKPOINT_VERSION}"),
        "{\"checkpoint_version\":99",
    );
    assert_eq!(
        Checkpoint::parse(&stale).unwrap_err(),
        CheckpointError::SchemaVersion { found: 99 }
    );

    // Editing header metadata (the seed) leaves the payload intact but
    // still trips the fingerprint, because it covers the identity tokens.
    let reseeded = text.replace("\"seed\":13", "\"seed\":14");
    assert_ne!(reseeded, text);
    let err = Checkpoint::parse(&reseeded).unwrap_err();
    assert!(
        matches!(err, CheckpointError::FingerprintMismatch { .. }),
        "{err:?}"
    );
}

#[test]
fn registry_load_degrades_instead_of_failing() {
    let dir = temp_path("registry");
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();

    // Two good checkpoints, one truncated one, and a stray staging file —
    // the only trace a kill -9 between temp-write and rename can leave.
    let smote = fitted(ModelKind::Smote, 21);
    smote.save_to_dir(&dir).unwrap();
    let ddpm = fitted(ModelKind::TabDdpm, 21);
    ddpm.save_to_dir(&dir).unwrap();
    let rendered = smote.render();
    std::fs::write(
        dir.join("s9-smoke-small-smote.ckpt"),
        &rendered.as_bytes()[..rendered.len() / 2],
    )
    .unwrap();
    std::fs::write(dir.join("killed-mid-write.ckpt.tmp"), b"{\"checkpoint_").unwrap();

    let registry = CheckpointRegistry::load_dir(&dir).unwrap();
    assert_eq!(registry.entries.len(), 2);
    assert!(registry.is_degraded());
    assert_eq!(registry.quarantined.len(), 1);
    assert_eq!(registry.quarantined[0].file, "s9-smoke-small-smote.ckpt");
    assert_eq!(registry.ignored_temp, 1);

    // The surviving entries still sample byte-identically to their
    // in-memory originals.
    let loaded_smote = registry
        .entries
        .iter()
        .find(|c| c.model == ModelKind::Smote)
        .unwrap();
    assert_eq!(
        loaded_smote.sample(32, 5).unwrap(),
        smote.sample(32, 5).unwrap()
    );

    std::fs::remove_dir_all(&dir).unwrap();
}
