//! Oracle pins for the calendar event queue (tentpole of the planetary-scale
//! simulator): the bucketed `CalendarQueue` must pop randomized event
//! streams in exactly the order of the seed `HeapQueue` — including FIFO
//! order among equal timestamps — and a full simulation run must produce a
//! byte-identical serialized `SimReport` on either scheduler.

use panda_surrogate::htcsim::{
    BrokerPolicy, CalendarQueue, Event, EventKind, EventScheduler, GridSimulator, HeapQueue,
    JobArena, SimConfig,
};
use panda_surrogate::pandasim::{FilterFunnel, GeneratorConfig, SiteCatalog, WorkloadGenerator};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Interleaved push/pop script applied to both schedulers in lock-step.
fn run_script<Q: EventScheduler>(seed: u64, ops: usize) -> Vec<Event> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut queue = Q::default();
    let mut popped = Vec::new();
    for step in 0..ops {
        // Bias towards pushes so the queue grows through resize thresholds,
        // with bursts of pops to drain it back down.
        let push = queue.is_empty() || rng.gen_bool(0.6);
        if push {
            // Coarse time grid (quarter-hours over ~50 h) to force many
            // equal-timestamp collisions, plus occasional far-future spikes
            // that exercise the sparse direct-search fallback.
            let time = if rng.gen_bool(0.02) {
                rng.gen_range(0..4) as f64 * 10_000.0 + 5_000.0
            } else {
                rng.gen_range(0..200) as f64 * 0.25
            };
            queue.push(time, EventKind::JobArrival { job: step as u32 });
        } else {
            let before = queue.len();
            let event = queue.pop().expect("non-empty queue pops Some");
            assert_eq!(queue.len(), before - 1);
            popped.push(event);
        }
    }
    // Drain the remainder.
    while let Some(event) = queue.pop() {
        popped.push(event);
    }
    assert!(queue.is_empty());
    popped
}

#[test]
fn randomized_streams_pop_identically_on_both_schedulers() {
    for seed in 0..8u64 {
        let heap = run_script::<HeapQueue>(seed, 4_000);
        let calendar = run_script::<CalendarQueue>(seed, 4_000);
        assert_eq!(
            heap.len(),
            calendar.len(),
            "seed {seed}: drained event counts differ"
        );
        for (i, (h, c)) in heap.iter().zip(&calendar).enumerate() {
            assert_eq!(h, c, "seed {seed}: pop {i} diverges");
        }
    }
}

#[test]
fn equal_timestamp_bursts_drain_in_fifo_order() {
    fn check<Q: EventScheduler>() {
        let mut queue = Q::default();
        // Three waves of pushes at the same two timestamps.
        for wave in 0..3u32 {
            for j in 0..50u32 {
                queue.push(
                    1.0,
                    EventKind::JobArrival {
                        job: wave * 100 + j,
                    },
                );
                queue.push(
                    2.0,
                    EventKind::JobFinish {
                        job: wave * 100 + j,
                        site: 0,
                    },
                );
            }
        }
        let mut last_seq_at = [None::<u64>, None::<u64>];
        let mut last_time = f64::NEG_INFINITY;
        while let Some(event) = queue.pop() {
            assert!(event.time >= last_time, "time order violated");
            last_time = event.time;
            let slot = if event.time == 1.0 { 0 } else { 1 };
            if let Some(prev) = last_seq_at[slot] {
                assert!(
                    event.sequence > prev,
                    "FIFO violated at t={}: sequence {} after {}",
                    event.time,
                    event.sequence,
                    prev
                );
            }
            last_seq_at[slot] = Some(event.sequence);
        }
    }
    check::<HeapQueue>();
    check::<CalendarQueue>();
}

/// A workload big enough to push the calendar queue through several grow
/// resizes and the simulator through heavy pending-queue churn.
fn workload() -> (SiteCatalog, JobArena) {
    let generator = WorkloadGenerator::new(GeneratorConfig::small());
    let gross = generator.generate();
    let funnel = FilterFunnel::apply(&gross);
    let jobs: Vec<_> = funnel
        .records
        .iter()
        .map(panda_surrogate::htcsim::SimJob::from_record)
        .collect();
    (generator.sites().clone(), JobArena::from_jobs(&jobs))
}

#[test]
fn sim_report_is_byte_identical_across_schedulers() {
    let (catalog, arena) = workload();
    for policy in BrokerPolicy::ALL {
        let config = SimConfig {
            policy,
            ..SimConfig::default()
        };
        let mut heap_sim = GridSimulator::new(&catalog, config.clone());
        let mut calendar_sim = GridSimulator::new(&catalog, config);
        let heap_report = heap_sim.run_arena_with::<HeapQueue>(&arena);
        let calendar_report = calendar_sim.run_arena_with::<CalendarQueue>(&arena);
        let heap_bytes = serde_json::to_string(&heap_report).expect("report serializes");
        let calendar_bytes = serde_json::to_string(&calendar_report).expect("report serializes");
        assert_eq!(
            heap_bytes,
            calendar_bytes,
            "policy {}: serialized reports diverge",
            policy.name()
        );
        assert_eq!(calendar_report.completed, arena.len());
    }
}

#[test]
fn slot_starved_runs_agree_too() {
    // Scarce slots maximise pending-queue churn and re-dispatch traffic —
    // the paths where a pop-order divergence would actually change physics.
    let (catalog, arena) = workload();
    let config = SimConfig {
        slot_fraction: 0.001,
        ..SimConfig::default()
    };
    let mut heap_sim = GridSimulator::new(&catalog, config.clone());
    let mut calendar_sim = GridSimulator::new(&catalog, config);
    let heap_report = heap_sim.run_arena_with::<HeapQueue>(&arena);
    let calendar_report = calendar_sim.run_arena_with::<CalendarQueue>(&arena);
    assert_eq!(
        serde_json::to_string(&heap_report).unwrap(),
        serde_json::to_string(&calendar_report).unwrap()
    );
}
