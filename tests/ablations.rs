//! Ablation studies over the design choices listed in DESIGN.md §5.
//!
//! These are quality-oriented counterparts of the Criterion `ablations`
//! bench: they check that the trade-offs the paper discusses actually show up
//! in the metrics (e.g. SMOTE's privacy risk shrinking as interpolation
//! reaches further, diffusion quality improving with more timesteps).

use panda_surrogate::metrics::{distance_to_closest_record, mean_wasserstein, DcrConfig};
use panda_surrogate::nn::matrix::reference;
use panda_surrogate::nn::Matrix;
use panda_surrogate::surrogate::{
    prepare_data, ExperimentOptions, SmoteConfig, SmoteSampler, TabDdpm, TabDdpmConfig, TableCodec,
    TabularGenerator,
};
use panda_surrogate::tabular::Table;

/// The live kernels must still agree bit-for-bit with the frozen seed
/// reference on training-shaped products. Every pinned tolerance below was
/// measured through these kernels; this anchor means a future kernel change
/// that breaks bit-exactness (e.g. an FMA tier) shows up here first rather
/// than as a mysterious tolerance failure in the ablation numbers.
#[test]
fn live_kernels_match_the_seed_reference_on_training_shapes() {
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    let mut rng = StdRng::seed_from_u64(77);
    for &(m, k, n) in &[(64usize, 33usize, 17usize), (97, 61, 113)] {
        let a = Matrix::randn(m, k, 1.0, &mut rng);
        let b = Matrix::randn(k, n, 1.0, &mut rng);
        assert_eq!(
            a.matmul(&b).data(),
            reference::matmul(&a, &b).data(),
            "live matmul drifted from nn::matrix::reference on {m}x{k}x{n}"
        );
    }
}

fn training_table(gross: usize, seed: u64) -> Table {
    // The full (unsplit) modelling table from the shared preparation path.
    let data = prepare_data(&ExperimentOptions {
        gross_records: gross,
        seed,
        ..ExperimentOptions::default()
    });
    data.table
}

#[test]
fn smote_neighbourhood_size_trades_privacy_for_fidelity() {
    let train = training_table(4_000, 21);
    let dcr_config = DcrConfig {
        max_synthetic_rows: 800,
        max_train_rows: 4_000,
    };
    let mut dcr_by_k = Vec::new();
    for k in [1usize, 15] {
        let mut smote = SmoteSampler::new(SmoteConfig {
            k_neighbors: k,
            ..SmoteConfig::default()
        });
        smote.fit(&train).unwrap();
        let synthetic = smote.sample(1_000, 5).unwrap();
        let dcr = distance_to_closest_record(&train, &synthetic, dcr_config);
        let wd = mean_wasserstein(&train, &synthetic).unwrap();
        // Fidelity stays high for any k. Re-pinned (2026-07, PR 4) from the
        // seed-era `wd < 0.15` against the bit-exact kernels: measured WD is
        // 0.0082 (k=1) / 0.0102 (k=15) at this seed, so 0.03 is a ~3x margin
        // that still fails on any real fidelity regression.
        assert!(wd < 0.03, "k={k}: WD {wd}");
        dcr_by_k.push((k, dcr));
    }
    // Interpolating towards the 15th-nearest neighbour strays further from
    // the anchor than interpolating towards the 1st-nearest one.
    assert!(
        dcr_by_k[1].1 > dcr_by_k[0].1,
        "DCR did not grow with k: {dcr_by_k:?}"
    );
}

#[test]
fn tabddpm_with_more_timesteps_is_at_least_as_faithful() {
    let train = training_table(3_000, 22);
    let mut wd_by_steps = Vec::new();
    for timesteps in [3usize, 20] {
        let mut model = TabDdpm::new(TabDdpmConfig {
            timesteps,
            ..TabDdpmConfig::fast()
        });
        model.fit(&train).unwrap();
        let synthetic = model.sample(1_500, 9).unwrap();
        wd_by_steps.push((timesteps, mean_wasserstein(&train, &synthetic).unwrap()));
    }
    // A 3-step reverse process is a very coarse sampler; 20 steps must not
    // be meaningfully worse. Re-pinned (2026-07, PR 4) from the seed-era
    // `* 1.25 + 0.02` slack against the bit-exact kernels: measured WD is
    // 0.3741 (t=3) vs 0.3765 (t=20) at this seed — a 0.7% gap — so a 5%
    // ratio plus 0.01 absolute slack is a real bound instead of a bound
    // that a 25% degradation would still have slipped through.
    assert!(
        wd_by_steps[1].1 <= wd_by_steps[0].1 * 1.05 + 0.01,
        "more timesteps degraded fidelity: {wd_by_steps:?}"
    );
}

#[test]
fn codec_one_hot_layout_matches_vocabulary_sizes() {
    let train = training_table(2_000, 23);
    let codec = TableCodec::fit(&train).unwrap();
    let expected_width: usize = train
        .columns()
        .iter()
        .map(|c| match c {
            panda_surrogate::tabular::Column::Numerical(_) => 1,
            panda_surrogate::tabular::Column::Categorical { vocab, .. } => vocab.len(),
        })
        .sum();
    assert_eq!(codec.encoded_width(), expected_width);
    // Encoding and decoding the training table must preserve every
    // categorical label (the decode is arg-max over exact one-hots).
    let encoded = codec.encode(&train).unwrap();
    let decoded = codec.decode(&encoded).unwrap();
    for column in ["jobstatus", "computingsite", "datatype"] {
        for r in (0..train.n_rows()).step_by(97) {
            assert_eq!(
                decoded.label(column, r).unwrap(),
                train.label(column, r).unwrap()
            );
        }
    }
}

#[test]
fn dcr_space_choice_numeric_only_vs_mixed() {
    // Dropping the categorical columns from the DCR computation loses the
    // mismatch penalty, so the mixed-space DCR is never smaller than the
    // numeric-only one on the same rows.
    let train = training_table(2_500, 24);
    let mut smote = SmoteSampler::new(SmoteConfig::default());
    smote.fit(&train).unwrap();
    let synthetic = smote.sample(600, 2).unwrap();

    let dcr_config = DcrConfig {
        max_synthetic_rows: 600,
        max_train_rows: 3_000,
    };
    let mixed = distance_to_closest_record(&train, &synthetic, dcr_config);

    let numeric_columns = [
        "creationtime",
        "ninputdatafiles",
        "inputfilebytes",
        "workload",
    ];
    let train_numeric = train.select(&numeric_columns).unwrap();
    let synthetic_numeric = synthetic.select(&numeric_columns).unwrap();
    let numeric_only = distance_to_closest_record(&train_numeric, &synthetic_numeric, dcr_config);

    assert!(
        mixed + 1e-9 >= numeric_only,
        "mixed {mixed} < numeric-only {numeric_only}"
    );
}
