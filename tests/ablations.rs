//! Ablation studies over the design choices listed in DESIGN.md §5.
//!
//! These are quality-oriented counterparts of the Criterion `ablations`
//! bench: they check that the trade-offs the paper discusses actually show up
//! in the metrics (e.g. SMOTE's privacy risk shrinking as interpolation
//! reaches further, diffusion quality improving with more timesteps).

use panda_surrogate::metrics::{distance_to_closest_record, mean_wasserstein, DcrConfig};
use panda_surrogate::surrogate::{
    prepare_data, ExperimentOptions, SmoteConfig, SmoteSampler, TabDdpm, TabDdpmConfig, TableCodec,
    TabularGenerator,
};
use panda_surrogate::tabular::Table;

fn training_table(gross: usize, seed: u64) -> Table {
    // The full (unsplit) modelling table from the shared preparation path.
    let data = prepare_data(&ExperimentOptions {
        gross_records: gross,
        seed,
        ..ExperimentOptions::default()
    });
    data.table
}

#[test]
fn smote_neighbourhood_size_trades_privacy_for_fidelity() {
    let train = training_table(4_000, 21);
    let dcr_config = DcrConfig {
        max_synthetic_rows: 800,
        max_train_rows: 4_000,
    };
    let mut dcr_by_k = Vec::new();
    for k in [1usize, 15] {
        let mut smote = SmoteSampler::new(SmoteConfig {
            k_neighbors: k,
            ..SmoteConfig::default()
        });
        smote.fit(&train).unwrap();
        let synthetic = smote.sample(1_000, 5).unwrap();
        let dcr = distance_to_closest_record(&train, &synthetic, dcr_config);
        let wd = mean_wasserstein(&train, &synthetic);
        // Fidelity stays high for any k.
        assert!(wd < 0.15, "k={k}: WD {wd}");
        dcr_by_k.push((k, dcr));
    }
    // Interpolating towards the 15th-nearest neighbour strays further from
    // the anchor than interpolating towards the 1st-nearest one.
    assert!(
        dcr_by_k[1].1 > dcr_by_k[0].1,
        "DCR did not grow with k: {dcr_by_k:?}"
    );
}

#[test]
fn tabddpm_with_more_timesteps_is_at_least_as_faithful() {
    let train = training_table(3_000, 22);
    let mut wd_by_steps = Vec::new();
    for timesteps in [3usize, 20] {
        let mut model = TabDdpm::new(TabDdpmConfig {
            timesteps,
            ..TabDdpmConfig::fast()
        });
        model.fit(&train).unwrap();
        let synthetic = model.sample(1_500, 9).unwrap();
        wd_by_steps.push((timesteps, mean_wasserstein(&train, &synthetic)));
    }
    // A 3-step reverse process is a very coarse sampler; 20 steps must not be
    // worse (allowing a small tolerance for sampling noise).
    assert!(
        wd_by_steps[1].1 <= wd_by_steps[0].1 * 1.25 + 0.02,
        "more timesteps degraded fidelity: {wd_by_steps:?}"
    );
}

#[test]
fn codec_one_hot_layout_matches_vocabulary_sizes() {
    let train = training_table(2_000, 23);
    let codec = TableCodec::fit(&train).unwrap();
    let expected_width: usize = train
        .columns()
        .iter()
        .map(|c| match c {
            panda_surrogate::tabular::Column::Numerical(_) => 1,
            panda_surrogate::tabular::Column::Categorical { vocab, .. } => vocab.len(),
        })
        .sum();
    assert_eq!(codec.encoded_width(), expected_width);
    // Encoding and decoding the training table must preserve every
    // categorical label (the decode is arg-max over exact one-hots).
    let encoded = codec.encode(&train).unwrap();
    let decoded = codec.decode(&encoded).unwrap();
    for column in ["jobstatus", "computingsite", "datatype"] {
        for r in (0..train.n_rows()).step_by(97) {
            assert_eq!(
                decoded.label(column, r).unwrap(),
                train.label(column, r).unwrap()
            );
        }
    }
}

#[test]
fn dcr_space_choice_numeric_only_vs_mixed() {
    // Dropping the categorical columns from the DCR computation loses the
    // mismatch penalty, so the mixed-space DCR is never smaller than the
    // numeric-only one on the same rows.
    let train = training_table(2_500, 24);
    let mut smote = SmoteSampler::new(SmoteConfig::default());
    smote.fit(&train).unwrap();
    let synthetic = smote.sample(600, 2).unwrap();

    let dcr_config = DcrConfig {
        max_synthetic_rows: 600,
        max_train_rows: 3_000,
    };
    let mixed = distance_to_closest_record(&train, &synthetic, dcr_config);

    let numeric_columns = [
        "creationtime",
        "ninputdatafiles",
        "inputfilebytes",
        "workload",
    ];
    let train_numeric = train.select(&numeric_columns).unwrap();
    let synthetic_numeric = synthetic.select(&numeric_columns).unwrap();
    let numeric_only = distance_to_closest_record(&train_numeric, &synthetic_numeric, dcr_config);

    assert!(
        mixed + 1e-9 >= numeric_only,
        "mixed {mixed} < numeric-only {numeric_only}"
    );
}
