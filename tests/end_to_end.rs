//! End-to-end integration tests spanning every crate in the workspace:
//! workload generation → filtering → modelling table → surrogate fitting →
//! evaluation, mirroring the structure of the paper's experiment pipeline.

use panda_surrogate::metrics::{evaluate_surrogate, EvaluationConfig};
use panda_surrogate::pandasim::PAPER_FEATURES;
use panda_surrogate::surrogate::{
    fit_and_sample, prepare_data, ExperimentOptions, ModelKind, TrainingBudget,
};
use panda_surrogate::tabular::{FeatureKind, Table};

fn prepared(gross: usize, seed: u64) -> (Table, Table) {
    let data = prepare_data(&ExperimentOptions {
        gross_records: gross,
        seed,
        ..ExperimentOptions::default()
    });
    (data.train, data.test)
}

#[test]
fn modelling_table_has_the_paper_schema() {
    let (train, test) = prepared(4_000, 1);
    for table in [&train, &test] {
        assert_eq!(table.n_cols(), 9);
        let schema = table.schema();
        for name in &PAPER_FEATURES[..5] {
            assert_eq!(schema.kind_of(name).unwrap(), FeatureKind::Categorical);
        }
        for name in &PAPER_FEATURES[5..] {
            assert_eq!(schema.kind_of(name).unwrap(), FeatureKind::Numerical);
        }
        // Workload must be strictly positive (cores × HS23 × CPU hours).
        assert!(table
            .numerical("workload")
            .unwrap()
            .iter()
            .all(|&w| w > 0.0 && w.is_finite()));
    }
}

#[test]
fn every_model_produces_schema_compatible_synthetic_data() {
    let (train, _test) = prepared(4_000, 2);
    for kind in ModelKind::ALL {
        let synthetic = fit_and_sample(kind, &train, 500, TrainingBudget::Smoke, 3)
            .unwrap_or_else(|e| panic!("{}: {e}", kind.name()));
        assert_eq!(synthetic.n_rows(), 500, "{}", kind.name());
        assert_eq!(synthetic.names(), train.names(), "{}", kind.name());
        // Every categorical label must come from the training vocabulary.
        for column in [
            "jobstatus",
            "computingsite",
            "project",
            "prodstep",
            "datatype",
        ] {
            let train_vocab = train.vocab(column).unwrap();
            for r in 0..synthetic.n_rows() {
                let label = synthetic.label(column, r).unwrap();
                assert!(
                    train_vocab.iter().any(|v| v == label),
                    "{}: unseen label {label} in {column}",
                    kind.name()
                );
            }
        }
    }
}

#[test]
fn copying_the_training_data_is_detected_as_a_privacy_failure() {
    let (train, test) = prepared(3_000, 3);
    let report =
        evaluate_surrogate("copy", &train, &test, &train, &EvaluationConfig::fast()).unwrap();
    // Perfect fidelity on every distributional metric…
    assert!(report.wd < 1e-9);
    assert!(report.jsd < 1e-9);
    assert!(report.diff_corr < 1e-9);
    assert!(report.diff_mlef.unwrap().abs() < 1e-9);
    // …but zero distance to the training records.
    assert!(report.dcr < 1e-9);
}

#[test]
fn smote_is_more_faithful_but_less_private_than_a_marginal_shuffle() {
    let (train, test) = prepared(4_000, 4);

    // SMOTE synthetic data.
    let smote = fit_and_sample(
        ModelKind::Smote,
        &train,
        train.n_rows(),
        TrainingBudget::Smoke,
        5,
    )
    .expect("SMOTE fits");

    // A "marginal-only" baseline: independently shuffle every column, which
    // preserves per-feature distributions but destroys all correlations.
    let shuffled = {
        use rand::seq::SliceRandom;
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(9);
        let n = train.n_rows();
        let mut result = train.clone();
        for name in train.names() {
            let mut perm: Vec<usize> = (0..n).collect();
            perm.shuffle(&mut rng);
            let permuted_column = train.select(&[name.as_str()]).unwrap().take(&perm);
            *result.column_mut(name).unwrap() = permuted_column.columns()[0].clone();
        }
        result
    };

    let config = EvaluationConfig::fast();
    let smote_report = evaluate_surrogate("SMOTE", &train, &test, &smote, &config).unwrap();
    let shuffled_report = evaluate_surrogate("shuffle", &train, &test, &shuffled, &config).unwrap();

    // Absolute fidelity pins, added with the PR 4 test-hardening pass: the
    // relational assertions below stay green even if *both* surrogates
    // degrade together, so pin SMOTE's marginal fidelity outright. Measured
    // through the bit-exact kernels at this seed: WD 0.0097, JSD 0.0024 —
    // a 3x margin still fails on any real regression.
    assert!(smote_report.wd < 0.03, "SMOTE WD {}", smote_report.wd);
    assert!(smote_report.jsd < 0.01, "SMOTE JSD {}", smote_report.jsd);

    // The shuffle keeps marginals, so WD/JSD stay tiny for both; the paper's
    // discriminating metrics are correlation structure and MLEF.
    assert!(
        smote_report.diff_corr < shuffled_report.diff_corr,
        "SMOTE {} vs shuffle {}",
        smote_report.diff_corr,
        shuffled_report.diff_corr
    );
    assert!(
        smote_report.diff_mlef.unwrap() < shuffled_report.diff_mlef.unwrap(),
        "SMOTE {:?} vs shuffle {:?}",
        smote_report.diff_mlef,
        shuffled_report.diff_mlef
    );
    // And SMOTE, interpolating between real rows, sits much closer to the
    // training data than the shuffled rows do.
    assert!(smote_report.dcr < shuffled_report.dcr + 1e-9);
}

#[test]
fn generated_stream_is_reproducible_across_the_whole_pipeline() {
    let (train_a, _) = prepared(2_500, 7);
    let (train_b, _) = prepared(2_500, 7);
    assert_eq!(train_a, train_b);
    let synth_a =
        fit_and_sample(ModelKind::Smote, &train_a, 100, TrainingBudget::Smoke, 1).unwrap();
    let synth_b =
        fit_and_sample(ModelKind::Smote, &train_b, 100, TrainingBudget::Smoke, 1).unwrap();
    assert_eq!(synth_a, synth_b);
}
