//! Integration tests for the parallel experiment runtime
//! (`surrogate::experiment`): parallel and sequential fits must be
//! byte-identical for the same seed, and one failing model must not take
//! the other three down with it.

use panda_surrogate::surrogate::{
    fit_all, fit_all_with_mode, fit_and_sample, fit_models_with, prepare_data, sample_all_models,
    ExecutionMode, ExperimentOptions, ModelKind, SurrogateError, TrainingBudget,
};
use panda_surrogate::tabular::Table;

fn small_train() -> Table {
    let data = prepare_data(&ExperimentOptions {
        gross_records: 2_500,
        seed: 31,
        ..ExperimentOptions::default()
    });
    data.train
}

#[test]
fn parallel_and_sequential_fits_are_byte_identical() {
    let train = small_train();
    let parallel = fit_all_with_mode(ExecutionMode::Parallel, &train, TrainingBudget::Smoke, 17);
    let sequential =
        fit_all_with_mode(ExecutionMode::Sequential, &train, TrainingBudget::Smoke, 17);

    assert_eq!(parallel.runs.len(), 4);
    assert_eq!(sequential.runs.len(), 4);
    for (p, s) in parallel.runs.iter().zip(&sequential.runs) {
        // Table-I order is preserved by both modes.
        assert_eq!(p.kind, s.kind);
        let p_table = p.outcome.as_ref().unwrap_or_else(|e| {
            panic!("{} failed in parallel mode: {e}", p.kind.name());
        });
        let s_table = s.outcome.as_ref().unwrap_or_else(|e| {
            panic!("{} failed in sequential mode: {e}", s.kind.name());
        });
        // Byte-identical synthetic tables: each model derives its RNG only
        // from the experiment seed, never from scheduling order.
        assert_eq!(p_table, s_table, "{} diverged across modes", p.kind.name());
    }
}

#[test]
fn fit_all_matches_the_single_model_pipeline() {
    let train = small_train();
    let report = fit_all(&train, TrainingBudget::Smoke, 3);
    for run in &report.runs {
        let direct = fit_and_sample(run.kind, &train, train.n_rows(), TrainingBudget::Smoke, 3)
            .expect("direct fit succeeds");
        assert_eq!(run.outcome.as_ref().unwrap(), &direct);
    }
}

#[test]
fn failing_model_is_isolated_from_the_other_three() {
    let train = small_train();
    let report = fit_models_with(&ModelKind::ALL, ExecutionMode::Parallel, |kind| {
        if kind == ModelKind::CtabGan {
            // Stand-in for a diverging GAN.
            Err(SurrogateError::InvalidTrainingData(
                "injected divergence".to_string(),
            ))
        } else {
            fit_and_sample(kind, &train, train.n_rows(), TrainingBudget::Smoke, 5)
        }
    });

    // The other three models completed normally…
    assert_eq!(report.successes().count(), 3);
    assert!(report
        .successes()
        .all(|(_, table)| table.n_rows() == train.n_rows()));
    // …and the failure is reported against the right model.
    let failures: Vec<ModelKind> = report.failures().map(|(kind, _)| kind).collect();
    assert_eq!(failures, vec![ModelKind::CtabGan]);

    let error = report.into_tables().unwrap_err();
    assert_eq!(error.failures.len(), 1);
    assert!(error.to_string().contains("CTABGAN+"));
    assert!(error.to_string().contains("injected divergence"));
}

#[test]
fn sample_all_models_returns_tables_in_table_one_order() {
    let train = small_train();
    let tables = sample_all_models(&train, TrainingBudget::Smoke, 9).expect("all models fit");
    let names: Vec<&str> = tables.iter().map(|(name, _)| *name).collect();
    assert_eq!(names, vec!["TVAE", "CTABGAN+", "SMOTE", "TabDDPM"]);
    for (name, table) in &tables {
        assert_eq!(table.n_rows(), train.n_rows(), "{name}");
        assert_eq!(table.names(), train.names(), "{name}");
    }
}
