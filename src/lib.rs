//! # panda-surrogate
//!
//! A Rust reproduction of *"AI Surrogate Model for Distributed Computing
//! Workloads"* (SC 2024): generative surrogate models for PanDA/ATLAS-style
//! job-submission records, plus every substrate needed to train and evaluate
//! them — a synthetic workload generator, a small neural-network stack, a
//! gradient-boosting regressor, the paper's evaluation metrics, and an
//! event-driven distributed-computing simulator for downstream validation.
//!
//! This facade crate simply re-exports the workspace crates under one roof so
//! examples and downstream users can depend on a single package:
//!
//! * [`surrogate`] — the four generative models (SMOTE, TVAE, CTABGAN+,
//!   TabDDPM) and the fit/sample pipeline (the paper's core contribution).
//! * [`pandasim`] — the synthetic PanDA job-record generator and the Fig. 3
//!   filtering funnel (substitute for the proprietary ATLAS data).
//! * [`tabular`] — mixed-type tables, encodings and transforms.
//! * [`nn`] — matrices, MLPs, losses and optimizers.
//! * [`gbdt`] — gradient-boosted regression trees (the CatBoost substitute
//!   used by the machine-learning-efficacy metric).
//! * [`metrics`] — Wasserstein distance, Jensen–Shannon divergence,
//!   association matrices, distance-to-closest-record and MLEF.
//! * [`htcsim`] — an event-driven HTC-grid simulator that consumes real or
//!   synthetic workloads.
//!
//! See `examples/quickstart.rs` for an end-to-end walkthrough.

pub use gbdt;
pub use htcsim;
pub use metrics;
pub use nn;
pub use pandasim;
pub use surrogate;
pub use tabular;
