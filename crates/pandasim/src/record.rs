//! The raw simulated PanDA job record.

use serde::{Deserialize, Serialize};

/// Terminal (or near-terminal) status of a job, mirroring the four-valued
/// `jobstatus` column of the paper's filtered dataset.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum JobStatus {
    /// Job completed successfully.
    Finished,
    /// Job ran but exited with an error.
    Failed,
    /// Job was cancelled by the user or the brokerage.
    Cancelled,
    /// Job was closed by the system (e.g. superseded task).
    Closed,
}

impl JobStatus {
    /// All statuses, in a fixed order.
    pub const ALL: [JobStatus; 4] = [
        JobStatus::Finished,
        JobStatus::Failed,
        JobStatus::Cancelled,
        JobStatus::Closed,
    ];

    /// Lower-case label as it appears in the PanDA records.
    pub fn label(self) -> &'static str {
        match self {
            JobStatus::Finished => "finished",
            JobStatus::Failed => "failed",
            JobStatus::Cancelled => "cancelled",
            JobStatus::Closed => "closed",
        }
    }

    /// Whether the status is terminal with the job having consumed resources.
    pub fn consumed_resources(self) -> bool {
        matches!(self, JobStatus::Finished | JobStatus::Failed)
    }
}

/// Which PanDA workflow produced the job. The paper keeps only user-analysis
/// jobs; centralized production is filtered out in the funnel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum JobSource {
    /// End-user analysis payload (the paper's focus).
    UserAnalysis,
    /// Centrally managed production (reconstruction, derivation, MC).
    Production,
}

/// One simulated PanDA job record.
///
/// The field set is a superset of the nine features the paper keeps
/// (see [`crate::convert::PAPER_FEATURES`]); the extra fields exist so the
/// filtering funnel and the downstream HTC simulator have something to chew
/// on, exactly as the >100-column raw PanDA records do.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JobRecord {
    /// Unique id within the generated stream.
    pub job_id: u64,
    /// Creation time in days since the start of the collection window.
    pub creation_time_days: f64,
    /// Workflow that produced the job.
    pub source: JobSource,
    /// Anonymised user index.
    pub user_id: u32,
    /// Terminal status.
    pub status: JobStatus,
    /// Name of the computing site that executed the job.
    pub computing_site: String,
    /// Project section of the input dataset name (e.g. `mc23_13p6TeV`).
    pub project: String,
    /// Production step section of the input dataset name (e.g. `deriv`).
    pub prodstep: String,
    /// Data type section of the input dataset name (e.g. `DAOD_PHYS`).
    pub datatype: String,
    /// Full input dataset name.
    pub dataset_name: String,
    /// Number of input data files.
    pub n_input_files: u32,
    /// Total size of the input files in bytes.
    pub input_file_bytes: f64,
    /// Number of cores allocated to the job.
    pub cores: u32,
    /// CPU time consumed, in seconds.
    pub cpu_time_s: f64,
    /// HS23 benchmark score per core of the executing site.
    pub hs23_per_core: f64,
}

impl JobRecord {
    /// Derived total computation workload, defined as in the paper:
    /// number of cores × per-core processing power × CPU time
    /// (expressed in HS23 × hours).
    pub fn workload(&self) -> f64 {
        self.cores as f64 * self.hs23_per_core * (self.cpu_time_s / 3600.0)
    }

    /// Whether the input dataset is a derived analysis object data (DAOD)
    /// product — the only dataset family the paper keeps.
    pub fn is_daod_input(&self) -> bool {
        self.datatype.starts_with("DAOD")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record() -> JobRecord {
        JobRecord {
            job_id: 1,
            creation_time_days: 3.5,
            source: JobSource::UserAnalysis,
            user_id: 7,
            status: JobStatus::Finished,
            computing_site: "BNL_PROD".to_string(),
            project: "mc23_13p6TeV".to_string(),
            prodstep: "deriv".to_string(),
            datatype: "DAOD_PHYS".to_string(),
            dataset_name: "mc23_13p6TeV.12345.deriv.DAOD_PHYS.e1_s2_r3_p4".to_string(),
            n_input_files: 10,
            input_file_bytes: 5e9,
            cores: 8,
            cpu_time_s: 7200.0,
            hs23_per_core: 15.0,
        }
    }

    #[test]
    fn workload_is_cores_times_power_times_hours() {
        let r = record();
        assert!((r.workload() - 8.0 * 15.0 * 2.0).abs() < 1e-9);
    }

    #[test]
    fn daod_detection() {
        let mut r = record();
        assert!(r.is_daod_input());
        r.datatype = "AOD".to_string();
        assert!(!r.is_daod_input());
        r.datatype = "DAOD_PHYSLITE".to_string();
        assert!(r.is_daod_input());
    }

    #[test]
    fn status_labels_and_resource_consumption() {
        assert_eq!(JobStatus::Finished.label(), "finished");
        assert_eq!(JobStatus::ALL.len(), 4);
        assert!(JobStatus::Failed.consumed_resources());
        assert!(!JobStatus::Cancelled.consumed_resources());
    }
}
