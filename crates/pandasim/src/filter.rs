//! The Fig. 3(b) filtering funnel.
//!
//! The paper reduces ~2.08M gross PanDA records down to the modelling table
//! by (1) keeping only user-analysis jobs, (2) keeping only jobs whose input
//! is a DAOD dataset, (3) keeping only jobs that reached a terminal state
//! with valid accounting (positive CPU time, non-empty input), and finally
//! (4) splitting 80/20 into training and test sets. This module reproduces
//! that funnel and reports the count surviving each stage so the
//! `fig3_profile` experiment can print the same diagram.

use serde::{Deserialize, Serialize};

use crate::record::{JobRecord, JobSource};

/// One stage of the funnel with the number of records surviving it.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FunnelStage {
    /// Human-readable stage name.
    pub name: String,
    /// Records remaining after the stage.
    pub remaining: usize,
    /// Records dropped by the stage.
    pub dropped: usize,
}

/// The full funnel: stages plus the surviving records.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FilterFunnel {
    /// Stages in application order.
    pub stages: Vec<FunnelStage>,
    /// Records surviving every stage.
    #[serde(skip)]
    pub records: Vec<JobRecord>,
}

impl FilterFunnel {
    /// Apply the paper's filtering pipeline to a gross record stream.
    pub fn apply(gross: &[JobRecord]) -> Self {
        let mut stages = Vec::new();
        let mut current: Vec<JobRecord> = gross.to_vec();
        stages.push(FunnelStage {
            name: "gross PanDA records".to_string(),
            remaining: current.len(),
            dropped: 0,
        });

        let mut step =
            |name: &str, current: &mut Vec<JobRecord>, pred: &dyn Fn(&JobRecord) -> bool| {
                let before = current.len();
                current.retain(|r| pred(r));
                stages.push(FunnelStage {
                    name: name.to_string(),
                    remaining: current.len(),
                    dropped: before - current.len(),
                });
            };

        step("user-analysis jobs only", &mut current, &|r| {
            r.source == JobSource::UserAnalysis
        });
        step("DAOD input datasets only", &mut current, &|r| {
            r.is_daod_input()
        });
        step(
            "terminal status with valid accounting",
            &mut current,
            &|r| r.cpu_time_s > 0.0 && r.n_input_files > 0 && r.input_file_bytes > 0.0,
        );

        Self {
            stages,
            records: current,
        }
    }

    /// Number of records surviving the whole funnel.
    pub fn surviving(&self) -> usize {
        self.records.len()
    }

    /// Render the funnel as text lines, one per stage, in the style of the
    /// paper's Fig. 3(b).
    pub fn render(&self) -> Vec<String> {
        self.stages
            .iter()
            .map(|s| format!("{:<40} {:>10}  (-{})", s.name, s.remaining, s.dropped))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::{GeneratorConfig, WorkloadGenerator};

    #[test]
    fn funnel_is_monotone_decreasing() {
        let gross = WorkloadGenerator::new(GeneratorConfig::small()).generate();
        let funnel = FilterFunnel::apply(&gross);
        assert_eq!(funnel.stages[0].remaining, gross.len());
        for w in funnel.stages.windows(2) {
            assert!(w[1].remaining <= w[0].remaining);
            assert_eq!(w[0].remaining - w[1].remaining, w[1].dropped);
        }
        assert_eq!(funnel.surviving(), funnel.stages.last().unwrap().remaining);
    }

    #[test]
    fn surviving_records_are_user_daod_terminal() {
        let gross = WorkloadGenerator::new(GeneratorConfig::small()).generate();
        let funnel = FilterFunnel::apply(&gross);
        assert!(
            funnel.surviving() > gross.len() / 4,
            "funnel too aggressive"
        );
        for r in &funnel.records {
            assert_eq!(r.source, JobSource::UserAnalysis);
            assert!(r.is_daod_input());
            assert!(r.cpu_time_s > 0.0);
        }
    }

    #[test]
    fn render_has_one_line_per_stage() {
        let gross = WorkloadGenerator::new(GeneratorConfig::small()).generate();
        let funnel = FilterFunnel::apply(&gross);
        let lines = funnel.render();
        assert_eq!(lines.len(), funnel.stages.len());
        assert!(lines[0].contains("gross"));
    }

    #[test]
    fn empty_input_produces_empty_funnel() {
        let funnel = FilterFunnel::apply(&[]);
        assert_eq!(funnel.surviving(), 0);
        assert!(funnel.stages.iter().all(|s| s.remaining == 0));
    }
}
