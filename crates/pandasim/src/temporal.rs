//! The submission-intensity model.
//!
//! The paper highlights that the number of submitted jobs fluctuates strongly
//! over the 150-day window (Fig. 4(a), `creationdate` column) and speculates
//! about weekly periodicity. The simulator composes three effects:
//!
//! * a **diurnal cycle** (analysers submit more during the European/US day),
//! * a **weekly cycle** (weekends are quieter),
//! * **campaign bursts** — conference deadlines and derivation campaigns that
//!   multiply activity for a few days at a time,
//!
//! into a non-homogeneous Poisson intensity λ(t). Job creation times are then
//! drawn by thinning a homogeneous process with the peak rate.

use rand::Rng;
use serde::{Deserialize, Serialize};

/// A multiplicative activity burst (e.g. a conference deadline).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Burst {
    /// Centre of the burst, in days since the window start.
    pub center_day: f64,
    /// Gaussian width of the burst, in days.
    pub width_days: f64,
    /// Peak multiplicative boost (added on top of the baseline of 1.0).
    pub amplitude: f64,
}

/// Non-homogeneous submission-intensity profile.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TemporalProfile {
    /// Length of the collection window in days (the paper uses 150).
    pub days: f64,
    /// Relative depth of the diurnal modulation in `[0, 1)`.
    pub diurnal_depth: f64,
    /// Relative depth of the weekend dip in `[0, 1)`.
    pub weekend_depth: f64,
    /// Campaign bursts.
    pub bursts: Vec<Burst>,
}

impl TemporalProfile {
    /// An ATLAS-like 150-day profile with three campaign bursts.
    pub fn atlas_like(days: f64) -> Self {
        let bursts = vec![
            Burst {
                center_day: days * 0.22,
                width_days: 4.0,
                amplitude: 1.8,
            },
            Burst {
                center_day: days * 0.55,
                width_days: 6.0,
                amplitude: 2.6,
            },
            Burst {
                center_day: days * 0.85,
                width_days: 3.0,
                amplitude: 1.2,
            },
        ];
        Self {
            days,
            diurnal_depth: 0.35,
            weekend_depth: 0.45,
            bursts,
        }
    }

    /// Relative intensity λ(t)/λ₀ at time `t_days`. Always positive and
    /// bounded by [`TemporalProfile::peak_intensity`].
    pub fn intensity(&self, t_days: f64) -> f64 {
        let hour_of_day = (t_days.fract()) * 24.0;
        // Peak analysis activity around 15:00 UTC (European afternoon,
        // US morning).
        let diurnal = 1.0
            - self.diurnal_depth
                * 0.5
                * (1.0 + -((hour_of_day - 15.0) / 24.0 * std::f64::consts::TAU).cos());
        let day_of_week = (t_days.floor() as i64).rem_euclid(7);
        let weekly = if day_of_week >= 5 {
            1.0 - self.weekend_depth
        } else {
            1.0
        };
        let burst: f64 = self
            .bursts
            .iter()
            .map(|b| b.amplitude * (-0.5 * ((t_days - b.center_day) / b.width_days).powi(2)).exp())
            .sum();
        (diurnal * weekly) * (1.0 + burst)
    }

    /// Upper bound of the relative intensity, used for thinning.
    pub fn peak_intensity(&self) -> f64 {
        let max_burst: f64 = self.bursts.iter().map(|b| b.amplitude).sum();
        (1.0 + max_burst) * 1.05
    }

    /// Draw `n` creation times (in days) from the profile via thinning,
    /// returned sorted ascending.
    pub fn sample_times<R: Rng>(&self, n: usize, rng: &mut R) -> Vec<f64> {
        let peak = self.peak_intensity();
        let mut times = Vec::with_capacity(n);
        while times.len() < n {
            let t = rng.gen_range(0.0..self.days);
            let accept = self.intensity(t) / peak;
            if rng.gen_bool(accept.clamp(0.0, 1.0)) {
                times.push(t);
            }
        }
        times.sort_by(|a, b| a.partial_cmp(b).expect("finite times"));
        times
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn intensity_positive_and_bounded() {
        let p = TemporalProfile::atlas_like(150.0);
        let peak = p.peak_intensity();
        for i in 0..2000 {
            let t = i as f64 * 0.075;
            let lam = p.intensity(t);
            assert!(lam > 0.0, "t={t}");
            assert!(lam <= peak, "t={t} lam={lam} peak={peak}");
        }
    }

    #[test]
    fn weekends_are_quieter() {
        let p = TemporalProfile::atlas_like(150.0);
        // Compare the same hour on a weekday (day 1) and a weekend (day 6),
        // both far from any burst centre? Day 1 and 6 are near burst at 33;
        // use days 101 (weekday) and 104 (?)  — compute explicitly:
        // day index mod 7 >= 5 is weekend.
        let weekday = 100.0 + 0.5; // 100 % 7 = 2 -> weekday
        let weekend = 103.0 + 0.5; // 103 % 7 = 5 -> weekend
        assert!(p.intensity(weekday) > p.intensity(weekend));
    }

    #[test]
    fn bursts_raise_intensity() {
        let p = TemporalProfile::atlas_like(150.0);
        // Compare the burst centre against the same hour-of-day and the same
        // day-of-week five weeks later, so only the burst term differs.
        let burst_center = p.bursts[1].center_day;
        let quiet = burst_center + 35.0;
        assert!(p.intensity(burst_center) > 1.5 * p.intensity(quiet));
    }

    #[test]
    fn sampled_times_sorted_and_in_range() {
        let p = TemporalProfile::atlas_like(150.0);
        let mut rng = StdRng::seed_from_u64(5);
        let times = p.sample_times(5_000, &mut rng);
        assert_eq!(times.len(), 5_000);
        assert!(times.windows(2).all(|w| w[0] <= w[1]));
        assert!(times.iter().all(|&t| (0.0..150.0).contains(&t)));
    }

    #[test]
    fn sampled_times_cluster_around_bursts() {
        let p = TemporalProfile::atlas_like(150.0);
        let mut rng = StdRng::seed_from_u64(6);
        let times = p.sample_times(30_000, &mut rng);
        let burst = p.bursts[1];
        let near: usize = times
            .iter()
            .filter(|&&t| (t - burst.center_day).abs() < burst.width_days)
            .count();
        let far: usize = times
            .iter()
            .filter(|&&t| (t - 120.0).abs() < burst.width_days)
            .count();
        assert!(near as f64 > 1.5 * far as f64, "near={near} far={far}");
    }
}
