//! The computing-site catalogue.
//!
//! ATLAS runs on ~150 heterogeneous grid sites; a handful of large Tier-1
//! centres execute the majority of user-analysis jobs while a long tail of
//! Tier-2s picks up the rest. Each site has an HS23 benchmark score per core
//! (used by the paper to normalise CPU time into a site-independent
//! workload), a capacity weight that drives how often the brokerage sends
//! jobs there, and a reliability that drives the failure rate.

use rand::distributions::{Distribution, WeightedIndex};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// A single computing site.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Site {
    /// PanDA queue / site name, e.g. `"BNL_PROD"`.
    pub name: String,
    /// HS23 benchmark score per core. Real sites span roughly 10–30.
    pub hs23_per_core: f64,
    /// Relative share of user-analysis jobs brokered to this site.
    pub capacity_weight: f64,
    /// Probability that a job that ran to completion finished successfully.
    pub reliability: f64,
    /// Number of execution slots (used by the `htcsim` downstream simulator).
    pub slots: u32,
    /// Tier of the site in the grid hierarchy (0, 1 or 2).
    pub tier: u8,
}

/// The catalogue of sites used by the generator and the downstream simulator.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SiteCatalog {
    sites: Vec<Site>,
    weights: Vec<f64>,
}

impl SiteCatalog {
    /// Build a catalogue from an explicit list of sites.
    pub fn new(sites: Vec<Site>) -> Self {
        let weights = sites.iter().map(|s| s.capacity_weight).collect();
        Self { sites, weights }
    }

    /// The default ATLAS-like catalogue: a few dominant Tier-0/1 centres and a
    /// long tail of Tier-2 sites, with capacity weights decaying roughly like
    /// a Zipf law so the categorical `computingsite` column is heavily
    /// imbalanced (as in Fig. 4(b) of the paper, where BNL dominates).
    pub fn atlas_like(n_tier2: usize) -> Self {
        let mut sites = Vec::new();
        let majors: [(&str, f64, f64, u32, u8); 8] = [
            ("BNL_PROD", 17.0, 30.0, 24_000, 1),
            ("CERN-P1", 18.5, 16.0, 16_000, 0),
            ("FZK-LCG2", 16.0, 10.0, 12_000, 1),
            ("IN2P3-CC", 15.5, 8.0, 10_000, 1),
            ("RAL-LCG2", 16.5, 7.0, 10_000, 1),
            ("TRIUMF-LCG2", 15.0, 5.0, 8_000, 1),
            ("SWT2_CPB", 14.0, 4.5, 8_000, 2),
            ("MWT2", 14.5, 4.0, 8_000, 2),
        ];
        for (name, hs23, weight, slots, tier) in majors {
            sites.push(Site {
                name: name.to_string(),
                hs23_per_core: hs23,
                capacity_weight: weight,
                reliability: 0.93 + 0.04 * (tier == 1 || tier == 0) as u8 as f64,
                slots,
                tier,
            });
        }
        for i in 0..n_tier2 {
            // Zipf-like tail: weight ~ 3 / (i + 2).
            let weight = 3.0 / (i as f64 + 2.0);
            sites.push(Site {
                name: format!("T2-{:03}", i),
                hs23_per_core: 10.0 + 8.0 * ((i * 37 % 100) as f64 / 100.0),
                capacity_weight: weight,
                reliability: 0.85 + 0.1 * ((i * 13 % 100) as f64 / 100.0),
                slots: 1_000 + 200 * (i as u32 % 10),
                tier: 2,
            });
        }
        Self::new(sites)
    }

    /// Number of sites.
    pub fn len(&self) -> usize {
        self.sites.len()
    }

    /// Whether the catalogue is empty.
    pub fn is_empty(&self) -> bool {
        self.sites.is_empty()
    }

    /// All sites.
    pub fn sites(&self) -> &[Site] {
        &self.sites
    }

    /// Site by index.
    pub fn get(&self, index: usize) -> &Site {
        &self.sites[index]
    }

    /// Find a site by name.
    pub fn by_name(&self, name: &str) -> Option<&Site> {
        self.sites.iter().find(|s| s.name == name)
    }

    /// Sample a site index according to the capacity weights.
    pub fn sample_index<R: Rng>(&self, rng: &mut R) -> usize {
        let dist = WeightedIndex::new(&self.weights).expect("non-empty positive weights");
        dist.sample(rng)
    }

    /// Total capacity weight (normalisation constant of the site popularity).
    pub fn total_weight(&self) -> f64 {
        self.weights.iter().sum()
    }
}

impl Default for SiteCatalog {
    fn default() -> Self {
        Self::atlas_like(40)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn atlas_like_catalog_shape() {
        let cat = SiteCatalog::atlas_like(40);
        assert_eq!(cat.len(), 48);
        assert!(cat.by_name("BNL_PROD").is_some());
        assert!(cat.by_name("T2-000").is_some());
        assert!(cat.by_name("NOPE").is_none());
        assert!(!cat.is_empty());
    }

    #[test]
    fn sampling_respects_imbalance() {
        let cat = SiteCatalog::atlas_like(40);
        let mut rng = StdRng::seed_from_u64(1);
        let mut counts = vec![0usize; cat.len()];
        for _ in 0..20_000 {
            counts[cat.sample_index(&mut rng)] += 1;
        }
        // BNL (index 0, weight 30) must dominate any single tail site.
        let bnl = counts[0];
        let tail_max = counts[8..].iter().copied().max().unwrap();
        assert!(bnl > 3 * tail_max, "bnl={bnl} tail_max={tail_max}");
        // Every weight is positive so nothing should be starved badly.
        assert!(counts.iter().filter(|&&c| c > 0).count() > cat.len() / 2);
    }

    #[test]
    fn hs23_scores_in_realistic_band() {
        let cat = SiteCatalog::default();
        for site in cat.sites() {
            assert!(site.hs23_per_core >= 10.0 && site.hs23_per_core <= 30.0);
            assert!(site.reliability > 0.5 && site.reliability <= 1.0);
            assert!(site.slots > 0);
        }
    }
}
