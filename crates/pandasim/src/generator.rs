//! The top-level workload generator.
//!
//! Couples the site catalogue, dataset catalogue, user population and
//! temporal profile into a stream of [`JobRecord`]s with the cross-feature
//! correlations the paper's evaluation probes:
//!
//! * `workload` grows with the number and size of input files (each file
//!   costs CPU proportional to its size), with the user's payload cost and
//!   with the executing site's HS23 score;
//! * `jobstatus` depends on the site reliability and on the job size
//!   (long jobs fail more often), and on the user's cancel rate;
//! * `datatype` is coupled to the user (analysers stick to their derivation
//!   format) and to the file-count / size distributions;
//! * `computingsite` popularity is Zipf-like and additionally coupled to
//!   the project (data-taking projects are pinned closer to the Tier-0/1s).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rand_distr::{Distribution, LogNormal};
use serde::{Deserialize, Serialize};

use crate::dataset::DaodCatalog;
use crate::record::{JobRecord, JobSource, JobStatus};
use crate::site::SiteCatalog;
use crate::temporal::TemporalProfile;
use crate::user::UserPopulation;

/// Configuration of the synthetic PanDA stream.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GeneratorConfig {
    /// Length of the collection window in days (paper: 150).
    pub days: f64,
    /// Number of *gross* records to generate (paper: ~2.08M; default scaled
    /// down so experiments run on a laptop — pass a larger value to scale up).
    pub gross_records: usize,
    /// Fraction of gross records that are user-analysis jobs (the rest are
    /// centralized production and are removed by the funnel).
    pub user_analysis_fraction: f64,
    /// Number of distinct analysis users.
    pub n_users: usize,
    /// Number of Tier-2 sites in addition to the 8 major centres.
    pub n_tier2_sites: usize,
    /// RNG seed; the full stream is reproducible from this value.
    pub seed: u64,
}

impl Default for GeneratorConfig {
    fn default() -> Self {
        Self {
            days: 150.0,
            gross_records: 60_000,
            user_analysis_fraction: 0.62,
            n_users: 300,
            n_tier2_sites: 40,
            seed: 2024,
        }
    }
}

impl GeneratorConfig {
    /// A small configuration for unit tests and doc examples.
    pub fn small() -> Self {
        Self {
            gross_records: 4_000,
            n_users: 60,
            n_tier2_sites: 12,
            ..Self::default()
        }
    }

    /// The names accepted by [`GeneratorConfig::preset`], in a stable order.
    /// These are the generator-variant axis of scenario sweeps
    /// (`surrogate::sweep`): each preset stresses a different structural
    /// property of the stream while keeping the same nine-feature schema.
    pub const PRESET_NAMES: [&'static str; 5] =
        ["default", "small", "tier2_heavy", "user_heavy", "burst"];

    /// Look up a named preset. The preset keeps the default seed; sweep
    /// runners override `seed` per cell.
    pub fn preset(name: &str) -> Option<Self> {
        match name {
            "default" => Some(Self::default()),
            "small" => Some(Self::small()),
            // Long-tail site mix: triple the Tier-2 population so the
            // `computingsite` marginal gets a much heavier tail.
            "tier2_heavy" => Some(Self {
                n_tier2_sites: 120,
                ..Self::default()
            }),
            // Analysis-dominated stream: most gross records survive the
            // user-analysis funnel stage, shifting the status/source mix.
            "user_heavy" => Some(Self {
                user_analysis_fraction: 0.85,
                ..Self::default()
            }),
            // Same record count compressed into a 30-day window: a dense
            // campaign burst with much higher submission intensity.
            "burst" => Some(Self {
                days: 30.0,
                ..Self::default()
            }),
            _ => None,
        }
    }
}

/// Generates reproducible synthetic PanDA job streams.
#[derive(Debug, Clone)]
pub struct WorkloadGenerator {
    config: GeneratorConfig,
    sites: SiteCatalog,
    temporal: TemporalProfile,
}

impl WorkloadGenerator {
    /// Build a generator with the ATLAS-like default catalogues.
    pub fn new(config: GeneratorConfig) -> Self {
        let sites = SiteCatalog::atlas_like(config.n_tier2_sites);
        let temporal = TemporalProfile::atlas_like(config.days);
        Self {
            config,
            sites,
            temporal,
        }
    }

    /// The site catalogue in use (shared with the downstream simulator).
    pub fn sites(&self) -> &SiteCatalog {
        &self.sites
    }

    /// The generator configuration.
    pub fn config(&self) -> &GeneratorConfig {
        &self.config
    }

    /// Generate the gross record stream (before any filtering), sorted by
    /// creation time.
    pub fn generate(&self) -> Vec<JobRecord> {
        let cfg = &self.config;
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let mut daod_catalog = DaodCatalog::atlas_like();
        let users = UserPopulation::generate(cfg.n_users, &mut rng);
        let times = self.temporal.sample_times(cfg.gross_records, &mut rng);

        let mut records = Vec::with_capacity(cfg.gross_records);
        for (job_id, creation_time_days) in times.into_iter().enumerate() {
            let is_user = rng.gen_bool(cfg.user_analysis_fraction);
            let source = if is_user {
                JobSource::UserAnalysis
            } else {
                JobSource::Production
            };
            let user = users.sample(&mut rng);

            // User-analysis inputs are mostly (not exclusively) DAOD; the
            // funnel later removes the non-DAOD remainder, mirroring Fig. 3(b).
            let force_daod = is_user && rng.gen_bool(0.9);
            let dataset = daod_catalog.sample_dataset(&mut rng, force_daod);

            // Jobs read a contiguous chunk of the dataset.
            let frac = rng.gen_range(0.05f64..1.0).powf(0.7);
            let n_input_files = ((dataset.n_files as f64 * frac).round() as u32).max(1);
            let mean_file_bytes = dataset.total_bytes / dataset.n_files as f64;
            let size_noise = LogNormal::new(0.0f64, 0.25)
                .expect("valid")
                .sample(&mut rng);
            let input_file_bytes = mean_file_bytes * n_input_files as f64 * size_noise;

            // Site choice: data projects lean towards Tier-0/1 (first 6
            // entries of the catalogue) to create a project↔site correlation.
            let site_idx = if dataset.project.starts_with("data") && rng.gen_bool(0.55) {
                rng.gen_range(0..6.min(self.sites.len()))
            } else {
                self.sites.sample_index(&mut rng)
            };
            let site = self.sites.get(site_idx);

            // CPU cost: proportional to data volume, modulated by the user's
            // payload cost and the datatype (PHYSLITE is cheap per byte).
            let datatype_cost = match dataset.datatype.as_str() {
                "DAOD_PHYSLITE" => 0.45,
                "DAOD_PHYS" => 1.0,
                "AOD" | "ESD" => 2.2,
                "RAW" | "HITS" => 3.0,
                _ => 1.4,
            };
            let gb = input_file_bytes / 1e9;
            let cpu_noise = LogNormal::new(0.0f64, 0.45)
                .expect("valid")
                .sample(&mut rng);
            // Production payloads are heavier per byte than user analysis.
            let source_cost = if is_user { 1.0 } else { 2.5 };
            let cpu_time_s = (user.median_cpu_per_file_s * n_input_files as f64 * 0.5
                + 95.0 * gb * datatype_cost)
                * source_cost
                * cpu_noise
                / site.hs23_per_core.max(1.0)
                * 12.0;
            let cpu_time_s = cpu_time_s.clamp(10.0, 4.0 * 86_400.0);

            let cores = if is_user {
                user.typical_cores
            } else {
                *[8u32, 16, 64].get(rng.gen_range(0..3)).expect("in range")
            };

            // Status: cancellation by the user, otherwise failure odds grow
            // with wall time and shrink with site reliability.
            let status = if rng.gen_bool(user.cancel_rate) {
                JobStatus::Cancelled
            } else if rng.gen_bool(0.015) {
                JobStatus::Closed
            } else {
                let wall_days = cpu_time_s / cores as f64 / 86_400.0;
                let fail_p = (1.0 - site.reliability) + 0.08 * wall_days.min(2.0);
                if rng.gen_bool(fail_p.clamp(0.0, 0.9)) {
                    JobStatus::Failed
                } else {
                    JobStatus::Finished
                }
            };

            records.push(JobRecord {
                job_id: job_id as u64,
                creation_time_days,
                source,
                user_id: user.user_id,
                status,
                computing_site: site.name.clone(),
                project: dataset.project.clone(),
                prodstep: dataset.prodstep.clone(),
                datatype: dataset.datatype.clone(),
                dataset_name: dataset.name.clone(),
                n_input_files,
                input_file_bytes,
                cores,
                cpu_time_s,
                hs23_per_core: site.hs23_per_core,
            });
        }
        records
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pearson(x: &[f64], y: &[f64]) -> f64 {
        let n = x.len() as f64;
        let mx = x.iter().sum::<f64>() / n;
        let my = y.iter().sum::<f64>() / n;
        let cov: f64 = x.iter().zip(y).map(|(a, b)| (a - mx) * (b - my)).sum();
        let sx: f64 = x.iter().map(|a| (a - mx).powi(2)).sum::<f64>().sqrt();
        let sy: f64 = y.iter().map(|b| (b - my).powi(2)).sum::<f64>().sqrt();
        cov / (sx * sy)
    }

    #[test]
    fn generates_requested_count_sorted_by_time() {
        let gen = WorkloadGenerator::new(GeneratorConfig::small());
        let records = gen.generate();
        assert_eq!(records.len(), 4_000);
        assert!(records
            .windows(2)
            .all(|w| w[0].creation_time_days <= w[1].creation_time_days));
    }

    #[test]
    fn stream_is_reproducible_from_seed() {
        let a = WorkloadGenerator::new(GeneratorConfig::small()).generate();
        let b = WorkloadGenerator::new(GeneratorConfig::small()).generate();
        assert_eq!(a, b);
        let mut cfg = GeneratorConfig::small();
        cfg.seed = 999;
        let c = WorkloadGenerator::new(cfg).generate();
        assert_ne!(a, c);
    }

    #[test]
    fn contains_both_sources_and_all_statuses() {
        let records = WorkloadGenerator::new(GeneratorConfig::small()).generate();
        let user = records
            .iter()
            .filter(|r| r.source == JobSource::UserAnalysis)
            .count();
        assert!(user > 1_000 && user < 3_800, "user = {user}");
        for status in JobStatus::ALL {
            assert!(
                records.iter().any(|r| r.status == status),
                "missing {status:?}"
            );
        }
    }

    #[test]
    fn workload_correlates_with_input_size() {
        let records = WorkloadGenerator::new(GeneratorConfig::small()).generate();
        let logw: Vec<f64> = records.iter().map(|r| r.workload().ln()).collect();
        let logb: Vec<f64> = records.iter().map(|r| r.input_file_bytes.ln()).collect();
        let lognf: Vec<f64> = records
            .iter()
            .map(|r| (r.n_input_files as f64).ln())
            .collect();
        assert!(pearson(&logw, &logb) > 0.25, "corr(w, bytes) too weak");
        assert!(pearson(&logw, &lognf) > 0.15, "corr(w, nfiles) too weak");
    }

    #[test]
    fn workload_is_positive_and_bounded() {
        let records = WorkloadGenerator::new(GeneratorConfig::small()).generate();
        for r in &records {
            assert!(r.workload() > 0.0);
            assert!(r.workload().is_finite());
            assert!(r.cpu_time_s <= 4.0 * 86_400.0 + 1.0);
            assert!(r.n_input_files >= 1);
        }
    }

    #[test]
    fn every_named_preset_resolves_and_unknown_names_do_not() {
        for name in GeneratorConfig::PRESET_NAMES {
            let config = GeneratorConfig::preset(name)
                .unwrap_or_else(|| panic!("preset {name} did not resolve"));
            // Presets keep the default seed so sweeps own the seed axis.
            assert_eq!(config.seed, GeneratorConfig::default().seed, "{name}");
        }
        assert!(GeneratorConfig::preset("no_such_preset").is_none());
        assert!(
            GeneratorConfig::preset("Default").is_none(),
            "names are exact"
        );
    }

    #[test]
    fn presets_change_the_axis_they_claim_to() {
        let default = GeneratorConfig::default();
        let tier2 = GeneratorConfig::preset("tier2_heavy").unwrap();
        assert!(tier2.n_tier2_sites > default.n_tier2_sites);
        let user = GeneratorConfig::preset("user_heavy").unwrap();
        assert!(user.user_analysis_fraction > default.user_analysis_fraction);
        let burst = GeneratorConfig::preset("burst").unwrap();
        assert!(burst.days < default.days);
        assert_eq!(burst.gross_records, default.gross_records);
    }

    #[test]
    fn site_usage_is_imbalanced() {
        let records = WorkloadGenerator::new(GeneratorConfig::small()).generate();
        let bnl = records
            .iter()
            .filter(|r| r.computing_site == "BNL_PROD")
            .count();
        assert!(
            bnl as f64 > records.len() as f64 * 0.1,
            "BNL share too small: {bnl}"
        );
    }
}
