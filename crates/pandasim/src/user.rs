//! The analysis-user population.
//!
//! ATLAS has thousands of analysers but submission activity is heavily
//! skewed: a small number of power users (and group accounts) submit most
//! user-analysis jobs. Each user also has a characteristic "style" — which
//! data types they read, how large their tasks are, and how many cores they
//! request — which is what couples the categorical columns to each other and
//! to the numerical ones in the real records.

use rand::distributions::{Distribution, WeightedIndex};
use rand::Rng;
use rand_distr::LogNormal;
use serde::{Deserialize, Serialize};

/// Behavioural profile of a single analysis user.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct UserProfile {
    /// Anonymised user index.
    pub user_id: u32,
    /// Relative submission rate (heavy-tailed across the population).
    pub activity_weight: f64,
    /// Index into the DAOD datatype vocabulary this user prefers.
    pub preferred_datatype_bias: usize,
    /// Median per-file CPU seconds of this user's payload.
    pub median_cpu_per_file_s: f64,
    /// Typical core count requested (1, 4 or 8).
    pub typical_cores: u32,
    /// Probability the user cancels a task before it finishes.
    pub cancel_rate: f64,
}

/// The user population with a weighted sampler.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct UserPopulation {
    users: Vec<UserProfile>,
    weights: Vec<f64>,
}

impl UserPopulation {
    /// Build a population of `n_users` with Pareto-like activity weights.
    pub fn generate<R: Rng>(n_users: usize, rng: &mut R) -> Self {
        assert!(n_users > 0, "population must not be empty");
        let cpu_dist = LogNormal::new(60f64.ln(), 0.9).expect("valid lognormal");
        let users: Vec<UserProfile> = (0..n_users)
            .map(|i| {
                // Zipf-like activity: user i has weight ~ 1 / (i+1)^0.9.
                let activity_weight = 1.0 / ((i + 1) as f64).powf(0.9);
                let typical_cores = *[1u32, 1, 4, 8]
                    .get(rng.gen_range(0..4))
                    .expect("index in range");
                UserProfile {
                    user_id: i as u32,
                    activity_weight,
                    preferred_datatype_bias: rng.gen_range(0..10),
                    median_cpu_per_file_s: cpu_dist.sample(rng).clamp(5.0, 3600.0),
                    typical_cores,
                    cancel_rate: rng.gen_range(0.005..0.05),
                }
            })
            .collect();
        let weights = users.iter().map(|u| u.activity_weight).collect();
        Self { users, weights }
    }

    /// Number of users.
    pub fn len(&self) -> usize {
        self.users.len()
    }

    /// Whether the population is empty.
    pub fn is_empty(&self) -> bool {
        self.users.is_empty()
    }

    /// All user profiles.
    pub fn users(&self) -> &[UserProfile] {
        &self.users
    }

    /// Sample a user according to activity weights.
    pub fn sample<'a, R: Rng>(&'a self, rng: &mut R) -> &'a UserProfile {
        let dist = WeightedIndex::new(&self.weights).expect("positive weights");
        &self.users[dist.sample(rng)]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn population_has_requested_size() {
        let mut rng = StdRng::seed_from_u64(1);
        let pop = UserPopulation::generate(250, &mut rng);
        assert_eq!(pop.len(), 250);
        assert!(!pop.is_empty());
    }

    #[test]
    fn activity_is_heavy_tailed() {
        let mut rng = StdRng::seed_from_u64(2);
        let pop = UserPopulation::generate(100, &mut rng);
        let mut counts = vec![0usize; 100];
        for _ in 0..20_000 {
            counts[pop.sample(&mut rng).user_id as usize] += 1;
        }
        let top = counts[0];
        let bottom = counts[99];
        assert!(top > 5 * bottom.max(1), "top={top} bottom={bottom}");
    }

    #[test]
    fn profiles_have_sane_ranges() {
        let mut rng = StdRng::seed_from_u64(3);
        let pop = UserPopulation::generate(50, &mut rng);
        for u in pop.users() {
            assert!(u.median_cpu_per_file_s >= 5.0 && u.median_cpu_per_file_s <= 3600.0);
            assert!(matches!(u.typical_cores, 1 | 4 | 8));
            assert!(u.cancel_rate > 0.0 && u.cancel_rate < 0.1);
        }
    }

    #[test]
    #[should_panic(expected = "population must not be empty")]
    fn empty_population_panics() {
        let mut rng = StdRng::seed_from_u64(4);
        let _ = UserPopulation::generate(0, &mut rng);
    }
}
