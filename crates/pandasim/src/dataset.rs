//! DAOD dataset nomenclature and popularity model.
//!
//! ATLAS dataset names are structured:
//! `project.datasetNumber.description.prodstep.datatype.version`.
//! The paper splits the name into its meaningful sections — `project`,
//! `prodstep` and `datatype` — and keeps those as categorical features
//! together with the number of input files and their total size. Most
//! datasets are read only once or twice, so dataset *names* have enormous
//! cardinality while the section values are small categorical vocabularies
//! with a strongly imbalanced usage profile (e.g. `DAOD_PHYS` and
//! `DAOD_PHYSLITE` dominate).

use rand::distributions::{Distribution, WeightedIndex};
use rand::Rng;
use rand_distr::{LogNormal, Poisson};
use serde::{Deserialize, Serialize};

/// A reference to a (possibly shared) input dataset.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DatasetRef {
    /// Full dataset name.
    pub name: String,
    /// Project section (`mc23_13p6TeV`, `data22_13p6TeV`, …).
    pub project: String,
    /// Production step section (`deriv`, `merge`, `recon`, `simul`).
    pub prodstep: String,
    /// Data type section (`DAOD_PHYS`, `DAOD_PHYSLITE`, `AOD`, …).
    pub datatype: String,
    /// Number of files in the dataset.
    pub n_files: u32,
    /// Total dataset size in bytes.
    pub total_bytes: f64,
}

/// Weighted vocabularies for the three name sections plus file-count /
/// size models, from which concrete datasets are drawn.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DaodCatalog {
    projects: Vec<(String, f64)>,
    prodsteps: Vec<(String, f64)>,
    daod_types: Vec<(String, f64)>,
    non_daod_types: Vec<(String, f64)>,
    /// Fraction of generated datasets whose datatype is a DAOD flavour.
    pub daod_fraction: f64,
    next_dataset_number: u64,
}

impl Default for DaodCatalog {
    fn default() -> Self {
        Self::atlas_like()
    }
}

impl DaodCatalog {
    /// An ATLAS-Run-3-like catalogue of name sections with imbalanced usage
    /// weights. Weights are loosely modelled on public ATLAS computing
    /// documentation: PHYS/PHYSLITE dominate derivations, Monte Carlo
    /// projects outnumber data projects roughly 2:1 in user analysis.
    pub fn atlas_like() -> Self {
        let projects = vec![
            ("mc23_13p6TeV".to_string(), 34.0),
            ("mc20_13TeV".to_string(), 22.0),
            ("data22_13p6TeV".to_string(), 16.0),
            ("data23_13p6TeV".to_string(), 12.0),
            ("data18_13TeV".to_string(), 8.0),
            ("mc16_13TeV".to_string(), 5.0),
            ("valid1".to_string(), 2.0),
            ("user".to_string(), 1.0),
        ];
        let prodsteps = vec![
            ("deriv".to_string(), 70.0),
            ("merge".to_string(), 14.0),
            ("recon".to_string(), 10.0),
            ("simul".to_string(), 4.0),
            ("evgen".to_string(), 2.0),
        ];
        let daod_types = vec![
            ("DAOD_PHYS".to_string(), 40.0),
            ("DAOD_PHYSLITE".to_string(), 30.0),
            ("DAOD_TOPQ1".to_string(), 8.0),
            ("DAOD_HIGG1D1".to_string(), 6.0),
            ("DAOD_EXOT2".to_string(), 5.0),
            ("DAOD_SUSY5".to_string(), 4.0),
            ("DAOD_JETM3".to_string(), 3.0),
            ("DAOD_EGAM1".to_string(), 2.0),
            ("DAOD_MUON0".to_string(), 1.0),
            ("DAOD_TAUP1".to_string(), 1.0),
        ];
        let non_daod_types = vec![
            ("AOD".to_string(), 40.0),
            ("ESD".to_string(), 10.0),
            ("HITS".to_string(), 20.0),
            ("EVNT".to_string(), 15.0),
            ("RAW".to_string(), 10.0),
            ("NTUP_PILEUP".to_string(), 5.0),
        ];
        Self {
            projects,
            prodsteps,
            daod_types,
            non_daod_types,
            daod_fraction: 0.78,
            next_dataset_number: 100_000,
        }
    }

    /// Distinct project labels.
    pub fn project_labels(&self) -> Vec<&str> {
        self.projects.iter().map(|(p, _)| p.as_str()).collect()
    }

    /// Distinct production-step labels.
    pub fn prodstep_labels(&self) -> Vec<&str> {
        self.prodsteps.iter().map(|(p, _)| p.as_str()).collect()
    }

    /// Distinct DAOD data-type labels.
    pub fn daod_type_labels(&self) -> Vec<&str> {
        self.daod_types.iter().map(|(p, _)| p.as_str()).collect()
    }

    fn pick<'a, R: Rng>(items: &'a [(String, f64)], rng: &mut R) -> &'a str {
        let dist = WeightedIndex::new(items.iter().map(|(_, w)| *w)).expect("positive weights");
        items[dist.sample(rng)].0.as_str()
    }

    /// Draw a new concrete dataset. `force_daod` restricts the datatype to the
    /// DAOD family (used for user-analysis inputs); otherwise the datatype is
    /// DAOD with probability [`DaodCatalog::daod_fraction`].
    pub fn sample_dataset<R: Rng>(&mut self, rng: &mut R, force_daod: bool) -> DatasetRef {
        let project = Self::pick(&self.projects, rng).to_string();
        let prodstep = Self::pick(&self.prodsteps, rng).to_string();
        let is_daod = force_daod || rng.gen_bool(self.daod_fraction);
        let datatype = if is_daod {
            Self::pick(&self.daod_types, rng).to_string()
        } else {
            Self::pick(&self.non_daod_types, rng).to_string()
        };

        // File count: Poisson around a datatype-dependent mean; PHYSLITE
        // datasets are smaller per file but have more files available.
        let mean_files = match datatype.as_str() {
            "DAOD_PHYSLITE" => 60.0,
            "DAOD_PHYS" => 45.0,
            "RAW" | "HITS" => 120.0,
            _ => 25.0,
        };
        let n_files = Poisson::new(mean_files).expect("positive mean").sample(rng) as u32 + 1;

        // Per-file size: log-normal around a datatype-dependent median.
        let median_file_gb: f64 = match datatype.as_str() {
            "DAOD_PHYSLITE" => 0.4,
            "DAOD_PHYS" => 1.6,
            "AOD" => 3.0,
            "RAW" => 5.0,
            _ => 1.0,
        };
        let ln = LogNormal::new(median_file_gb.ln(), 0.6).expect("valid lognormal");
        let per_file_bytes = ln.sample(rng) * 1e9;
        let total_bytes = per_file_bytes * n_files as f64;

        self.next_dataset_number += 1;
        let name = format!(
            "{project}.{number:08}.{prodstep}.{datatype}.e{e}_s{s}_r{r}_p{p}",
            project = project,
            number = self.next_dataset_number,
            prodstep = prodstep,
            datatype = datatype,
            e = rng.gen_range(3000..9000),
            s = rng.gen_range(3000..4000),
            r = rng.gen_range(13000..15000),
            p = rng.gen_range(5000..6000),
        );

        DatasetRef {
            name,
            project,
            prodstep,
            datatype,
            n_files,
            total_bytes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::collections::HashMap;

    #[test]
    fn dataset_names_have_six_sections() {
        let mut cat = DaodCatalog::atlas_like();
        let mut rng = StdRng::seed_from_u64(3);
        let ds = cat.sample_dataset(&mut rng, true);
        let sections: Vec<&str> = ds.name.split('.').collect();
        assert_eq!(sections.len(), 5, "name = {}", ds.name);
        assert_eq!(sections[0], ds.project);
        assert_eq!(sections[2], ds.prodstep);
        assert_eq!(sections[3], ds.datatype);
    }

    #[test]
    fn forced_daod_always_daod() {
        let mut cat = DaodCatalog::atlas_like();
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..200 {
            let ds = cat.sample_dataset(&mut rng, true);
            assert!(ds.datatype.starts_with("DAOD"), "{}", ds.datatype);
            assert!(ds.n_files >= 1);
            assert!(ds.total_bytes > 0.0);
        }
    }

    #[test]
    fn unforced_mix_contains_non_daod() {
        let mut cat = DaodCatalog::atlas_like();
        let mut rng = StdRng::seed_from_u64(7);
        let mut non_daod = 0;
        for _ in 0..500 {
            let ds = cat.sample_dataset(&mut rng, false);
            if !ds.datatype.starts_with("DAOD") {
                non_daod += 1;
            }
        }
        assert!(non_daod > 50, "non_daod = {non_daod}");
        assert!(non_daod < 250, "non_daod = {non_daod}");
    }

    #[test]
    fn datatype_usage_is_imbalanced() {
        let mut cat = DaodCatalog::atlas_like();
        let mut rng = StdRng::seed_from_u64(11);
        let mut counts: HashMap<String, usize> = HashMap::new();
        for _ in 0..5_000 {
            let ds = cat.sample_dataset(&mut rng, true);
            *counts.entry(ds.datatype).or_default() += 1;
        }
        let phys = counts.get("DAOD_PHYS").copied().unwrap_or(0);
        let rare = counts.get("DAOD_TAUP1").copied().unwrap_or(0);
        assert!(phys > 10 * rare.max(1), "phys={phys} rare={rare}");
    }

    #[test]
    fn dataset_names_are_unique() {
        let mut cat = DaodCatalog::atlas_like();
        let mut rng = StdRng::seed_from_u64(13);
        let mut names = std::collections::HashSet::new();
        for _ in 0..1000 {
            assert!(names.insert(cat.sample_dataset(&mut rng, true).name));
        }
    }
}
