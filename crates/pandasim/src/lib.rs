//! Statistical simulator of PanDA/ATLAS user-analysis job records.
//!
//! The paper trains its surrogate models on 150 days of real job-submission
//! records from the ATLAS experiment's PanDA workload-management system —
//! data we cannot redistribute. This crate is the documented substitution: a
//! statistical simulator that reproduces the *structural* properties the
//! paper's evaluation depends on:
//!
//! * mixed categorical / numerical features with heavy class imbalance
//!   (a handful of sites and data types dominate, with a long tail),
//! * a multi-modal `workload` distribution (distinct analysis campaign modes),
//! * clear time-varying submission intensity (diurnal + weekly cycles plus
//!   campaign bursts) in `creationtime`,
//! * strong cross-feature correlations (`workload` with the number and size of
//!   input files, with the executing site's HS23 power and with the data
//!   type; job status with job size and site reliability),
//! * the DAOD dataset nomenclature (project / production step / data type)
//!   from which the paper derives its categorical dataset features,
//! * the Fig. 3(b) filtering funnel from gross PanDA records down to the
//!   train/test tables used by the generative models.
//!
//! Modules:
//!
//! * [`site`] — the computing-site catalogue with HS23 benchmark scores,
//! * [`dataset`] — DAOD (and non-DAOD) dataset nomenclature and popularity,
//! * [`user`] — the analysis-user population and task-size behaviour,
//! * [`temporal`] — the submission-intensity model,
//! * [`record`] — the raw job record,
//! * [`generator`] — the top-level [`WorkloadGenerator`](generator::WorkloadGenerator),
//! * [`filter`] — the filtering funnel producing the modelling table,
//! * [`convert`] — conversion into a [`tabular::Table`] with the paper's
//!   nine features.

pub mod convert;
pub mod dataset;
pub mod filter;
pub mod generator;
pub mod record;
pub mod site;
pub mod temporal;
pub mod user;

pub use convert::{records_to_table, PAPER_FEATURES};
pub use dataset::{DaodCatalog, DatasetRef};
pub use filter::{FilterFunnel, FunnelStage};
pub use generator::{GeneratorConfig, WorkloadGenerator};
pub use record::{JobRecord, JobSource, JobStatus};
pub use site::{Site, SiteCatalog};
