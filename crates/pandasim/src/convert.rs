//! Conversion from job records to the paper's nine-feature modelling table.
//!
//! The paper keeps five categorical features (job status, computing site,
//! project, production step, data type) and four numerical ones (workload,
//! creation time, number of input files, input byte size). `creationtime` is
//! expressed in days since the start of the window; `workload` is the
//! derived cores × HS23 × CPU-hours quantity.

use tabular::{Column, Table};

use crate::record::JobRecord;

/// The paper's feature columns in canonical order
/// (five categorical followed by four numerical).
pub const PAPER_FEATURES: [&str; 9] = [
    "jobstatus",
    "computingsite",
    "project",
    "prodstep",
    "datatype",
    "creationtime",
    "ninputdatafiles",
    "inputfilebytes",
    "workload",
];

/// Convert filtered job records into the nine-feature modelling table.
pub fn records_to_table(records: &[JobRecord]) -> Table {
    let mut table = Table::new();

    let status: Vec<&str> = records.iter().map(|r| r.status.label()).collect();
    let site: Vec<&str> = records.iter().map(|r| r.computing_site.as_str()).collect();
    let project: Vec<&str> = records.iter().map(|r| r.project.as_str()).collect();
    let prodstep: Vec<&str> = records.iter().map(|r| r.prodstep.as_str()).collect();
    let datatype: Vec<&str> = records.iter().map(|r| r.datatype.as_str()).collect();

    table
        .push_column("jobstatus", Column::from_labels(&status))
        .expect("fresh table accepts columns");
    table
        .push_column("computingsite", Column::from_labels(&site))
        .expect("fresh table accepts columns");
    table
        .push_column("project", Column::from_labels(&project))
        .expect("fresh table accepts columns");
    table
        .push_column("prodstep", Column::from_labels(&prodstep))
        .expect("fresh table accepts columns");
    table
        .push_column("datatype", Column::from_labels(&datatype))
        .expect("fresh table accepts columns");

    table
        .push_column(
            "creationtime",
            Column::Numerical(records.iter().map(|r| r.creation_time_days).collect()),
        )
        .expect("fresh table accepts columns");
    table
        .push_column(
            "ninputdatafiles",
            Column::Numerical(records.iter().map(|r| r.n_input_files as f64).collect()),
        )
        .expect("fresh table accepts columns");
    table
        .push_column(
            "inputfilebytes",
            Column::Numerical(records.iter().map(|r| r.input_file_bytes).collect()),
        )
        .expect("fresh table accepts columns");
    table
        .push_column(
            "workload",
            Column::Numerical(records.iter().map(|r| r.workload()).collect()),
        )
        .expect("fresh table accepts columns");

    table
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::filter::FilterFunnel;
    use crate::generator::{GeneratorConfig, WorkloadGenerator};
    use tabular::FeatureKind;

    #[test]
    fn table_has_paper_schema() {
        let gross = WorkloadGenerator::new(GeneratorConfig::small()).generate();
        let funnel = FilterFunnel::apply(&gross);
        let table = records_to_table(&funnel.records);
        assert_eq!(table.n_rows(), funnel.surviving());
        assert_eq!(table.n_cols(), 9);
        let schema = table.schema();
        for name in &PAPER_FEATURES[..5] {
            assert_eq!(schema.kind_of(name).unwrap(), FeatureKind::Categorical);
        }
        for name in &PAPER_FEATURES[5..] {
            assert_eq!(schema.kind_of(name).unwrap(), FeatureKind::Numerical);
        }
    }

    #[test]
    fn numeric_columns_match_records() {
        let gross = WorkloadGenerator::new(GeneratorConfig::small()).generate();
        let funnel = FilterFunnel::apply(&gross);
        let table = records_to_table(&funnel.records);
        let workload = table.numerical("workload").unwrap();
        for (r, w) in funnel.records.iter().zip(workload) {
            assert!((r.workload() - w).abs() < 1e-9);
        }
        let status_vocab = table.vocab("jobstatus").unwrap();
        assert!(status_vocab.len() <= 4);
    }

    #[test]
    fn empty_record_list_gives_empty_table() {
        let table = records_to_table(&[]);
        assert_eq!(table.n_rows(), 0);
        assert_eq!(table.n_cols(), 9);
    }
}
