//! Minimal CSV interchange for mixed-type tables.
//!
//! Only what the experiment harness needs: writing a table out so figure
//! series can be plotted externally, and reading one back (with an explicit
//! schema) for round-trips. Quoting is supported for commas inside labels.

use std::io::{BufRead, BufReader, Read, Write};

use crate::error::TabularError;
use crate::schema::{FeatureKind, Schema};
use crate::table::{Column, Table};

/// Write a table as CSV with a header row.
pub fn write_csv<W: Write>(table: &Table, mut writer: W) -> std::io::Result<()> {
    let header: Vec<String> = table.names().iter().map(|n| quote(n)).collect();
    writeln!(writer, "{}", header.join(","))?;
    for row in 0..table.n_rows() {
        let mut cells = Vec::with_capacity(table.n_cols());
        for (name, col) in table.names().iter().zip(table.columns()) {
            match col {
                Column::Numerical(v) => cells.push(format_float(v[row])),
                Column::Categorical { .. } => {
                    let label = table.label(name, row).unwrap_or("");
                    cells.push(quote(label));
                }
            }
        }
        writeln!(writer, "{}", cells.join(","))?;
    }
    Ok(())
}

fn format_float(v: f64) -> String {
    if v.is_finite() && v.fract() == 0.0 && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

fn quote(s: &str) -> String {
    if s.contains(',') || s.contains('"') || s.contains('\n') {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_string()
    }
}

/// Split a CSV line into cells, honouring double-quote escaping.
fn split_line(line: &str) -> Vec<String> {
    let mut cells = Vec::new();
    let mut cur = String::new();
    let mut in_quotes = false;
    let mut chars = line.chars().peekable();
    while let Some(c) = chars.next() {
        match c {
            '"' if in_quotes => {
                if chars.peek() == Some(&'"') {
                    cur.push('"');
                    chars.next();
                } else {
                    in_quotes = false;
                }
            }
            '"' => in_quotes = true,
            ',' if !in_quotes => {
                cells.push(std::mem::take(&mut cur));
            }
            _ => cur.push(c),
        }
    }
    cells.push(cur);
    cells
}

/// Read a CSV (with header) into a table, interpreting each column according
/// to the provided schema. Columns present in the file but absent from the
/// schema are ignored; schema columns missing from the file are an error.
pub fn read_csv<R: Read>(reader: R, schema: &Schema) -> Result<Table, TabularError> {
    let mut lines = BufReader::new(reader).lines();
    let header_line = lines
        .next()
        .ok_or(TabularError::Empty("CSV input"))?
        .map_err(|_| TabularError::Empty("CSV header"))?;
    let header = split_line(&header_line);

    let mut col_positions = Vec::with_capacity(schema.len());
    for spec in schema.features() {
        let pos = header
            .iter()
            .position(|h| h == &spec.name)
            .ok_or_else(|| TabularError::UnknownColumn(spec.name.clone()))?;
        col_positions.push(pos);
    }

    let mut numeric_data: Vec<Vec<f64>> = vec![Vec::new(); schema.len()];
    let mut string_data: Vec<Vec<String>> = vec![Vec::new(); schema.len()];

    for (row_idx, line) in lines.enumerate() {
        let line = line.map_err(|_| TabularError::Empty("CSV row"))?;
        if line.trim().is_empty() {
            continue;
        }
        let cells = split_line(&line);
        for (i, spec) in schema.features().iter().enumerate() {
            let cell = cells
                .get(col_positions[i])
                .map(String::as_str)
                .unwrap_or("");
            match spec.kind {
                FeatureKind::Numerical => {
                    let v = cell
                        .trim()
                        .parse::<f64>()
                        .map_err(|_| TabularError::Parse {
                            row: row_idx + 2,
                            column: spec.name.clone(),
                            value: cell.to_string(),
                        })?;
                    numeric_data[i].push(v);
                }
                FeatureKind::Categorical => string_data[i].push(cell.to_string()),
            }
        }
    }

    let mut table = Table::new();
    for (i, spec) in schema.features().iter().enumerate() {
        let col = match spec.kind {
            FeatureKind::Numerical => Column::Numerical(std::mem::take(&mut numeric_data[i])),
            FeatureKind::Categorical => Column::from_labels(&string_data[i]),
        };
        table.push_column(&spec.name, col)?;
    }
    Ok(table)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::FeatureSpec;

    fn sample_table() -> Table {
        let mut t = Table::new();
        t.push_column("workload", Column::Numerical(vec![1.5, 2.0, -3.25]))
            .unwrap();
        t.push_column(
            "site",
            Column::from_labels(&["BNL-ATLAS", "CERN, Tier0", "SLAC"]),
        )
        .unwrap();
        t
    }

    #[test]
    fn csv_roundtrip_preserves_values() {
        let t = sample_table();
        let mut buf = Vec::new();
        write_csv(&t, &mut buf).unwrap();
        let schema = Schema::new(vec![
            FeatureSpec::numerical("workload"),
            FeatureSpec::categorical("site"),
        ]);
        let back = read_csv(buf.as_slice(), &schema).unwrap();
        assert_eq!(back.n_rows(), 3);
        assert_eq!(
            back.numerical("workload").unwrap(),
            t.numerical("workload").unwrap()
        );
        assert_eq!(back.label("site", 1).unwrap(), "CERN, Tier0");
    }

    #[test]
    fn csv_quoted_cells() {
        let line = r#"a,"b,c","d""e""#;
        assert_eq!(split_line(line), vec!["a", "b,c", "d\"e"]);
    }

    #[test]
    fn csv_missing_column_errors() {
        let t = sample_table();
        let mut buf = Vec::new();
        write_csv(&t, &mut buf).unwrap();
        let schema = Schema::new(vec![FeatureSpec::numerical("nonexistent")]);
        assert!(read_csv(buf.as_slice(), &schema).is_err());
    }

    #[test]
    fn csv_bad_number_errors() {
        let csv = "x\nnot_a_number\n";
        let schema = Schema::new(vec![FeatureSpec::numerical("x")]);
        let err = read_csv(csv.as_bytes(), &schema).unwrap_err();
        assert!(matches!(err, TabularError::Parse { .. }));
    }

    #[test]
    fn csv_skips_blank_lines() {
        let csv = "x\n1\n\n2\n";
        let schema = Schema::new(vec![FeatureSpec::numerical("x")]);
        let t = read_csv(csv.as_bytes(), &schema).unwrap();
        assert_eq!(t.n_rows(), 2);
    }
}
