//! Deterministic train/test splitting.
//!
//! The paper splits 150 days of PanDA records 80/20 into train and test sets.
//! Splitting here is seeded and reproducible; the shuffled variant uses a
//! Fisher–Yates permutation from a caller-supplied seed, and the chronological
//! variant mirrors time-ordered splits used for temporal data.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use crate::error::TabularError;
use crate::table::Table;

/// Options controlling [`train_test_split`].
#[derive(Debug, Clone, Copy)]
pub struct SplitOptions {
    /// Fraction of rows assigned to the training set, in `(0, 1)`.
    pub train_fraction: f64,
    /// Shuffle rows before splitting. If false, the first rows (chronological
    /// order for the PanDA stream) become the training set.
    pub shuffle: bool,
    /// RNG seed used when shuffling.
    pub seed: u64,
}

impl Default for SplitOptions {
    fn default() -> Self {
        Self {
            train_fraction: 0.8,
            shuffle: true,
            seed: 42,
        }
    }
}

/// Split a table into (train, test) according to `options`.
pub fn train_test_split(
    table: &Table,
    options: SplitOptions,
) -> Result<(Table, Table), TabularError> {
    if table.n_rows() == 0 {
        return Err(TabularError::Empty("train_test_split input"));
    }
    if !(options.train_fraction > 0.0 && options.train_fraction < 1.0) {
        return Err(TabularError::LengthMismatch {
            context: "train_fraction must be in (0, 1)",
            expected: 1,
            found: 0,
        });
    }
    let n = table.n_rows();
    let mut indices: Vec<usize> = (0..n).collect();
    if options.shuffle {
        let mut rng = StdRng::seed_from_u64(options.seed);
        indices.shuffle(&mut rng);
    }
    let n_train = ((n as f64) * options.train_fraction).round() as usize;
    let n_train = n_train.clamp(1, n - 1);
    let train_idx = &indices[..n_train];
    let test_idx = &indices[n_train..];
    Ok((table.take(train_idx), table.take(test_idx)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table::Column;

    fn table(n: usize) -> Table {
        let mut t = Table::new();
        t.push_column("x", Column::Numerical((0..n).map(|i| i as f64).collect()))
            .unwrap();
        t
    }

    #[test]
    fn split_sizes_match_fraction() {
        let t = table(100);
        let (train, test) = train_test_split(&t, SplitOptions::default()).unwrap();
        assert_eq!(train.n_rows(), 80);
        assert_eq!(test.n_rows(), 20);
    }

    #[test]
    fn split_is_deterministic_for_fixed_seed() {
        let t = table(50);
        let a = train_test_split(&t, SplitOptions::default()).unwrap();
        let b = train_test_split(&t, SplitOptions::default()).unwrap();
        assert_eq!(a.0.numerical("x").unwrap(), b.0.numerical("x").unwrap());
        let c = train_test_split(
            &t,
            SplitOptions {
                seed: 7,
                ..Default::default()
            },
        )
        .unwrap();
        assert_ne!(a.0.numerical("x").unwrap(), c.0.numerical("x").unwrap());
    }

    #[test]
    fn chronological_split_keeps_order() {
        let t = table(10);
        let (train, test) = train_test_split(
            &t,
            SplitOptions {
                shuffle: false,
                train_fraction: 0.7,
                seed: 0,
            },
        )
        .unwrap();
        assert_eq!(
            train.numerical("x").unwrap(),
            &[0.0, 1.0, 2.0, 3.0, 4.0, 5.0, 6.0]
        );
        assert_eq!(test.numerical("x").unwrap(), &[7.0, 8.0, 9.0]);
    }

    #[test]
    fn split_partitions_all_rows() {
        let t = table(37);
        let (train, test) = train_test_split(&t, SplitOptions::default()).unwrap();
        let mut all: Vec<f64> = train
            .numerical("x")
            .unwrap()
            .iter()
            .chain(test.numerical("x").unwrap())
            .copied()
            .collect();
        all.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let expected: Vec<f64> = (0..37).map(|i| i as f64).collect();
        assert_eq!(all, expected);
    }

    #[test]
    fn invalid_inputs_rejected() {
        let t = table(10);
        assert!(train_test_split(
            &t,
            SplitOptions {
                train_fraction: 1.5,
                ..Default::default()
            }
        )
        .is_err());
        assert!(train_test_split(&Table::new(), SplitOptions::default()).is_err());
    }
}
