//! Numerical feature transforms.
//!
//! The paper normalises numerical columns with scikit-learn's Gaussian
//! quantile transformation before training the surrogate models. This module
//! provides that transform ([`QuantileTransformer`]) along with the standard
//! scaler, min-max scaler and a log1p transform used elsewhere in the
//! pipeline. All transforms are fit/transform/inverse-transform and are
//! serialisable so a fitted preprocessing pipeline can be persisted with a
//! trained model.

use serde::{Deserialize, Serialize};

use crate::error::TabularError;

/// Common interface of all numerical transforms.
pub trait NumericTransform {
    /// Fit the transform to the values of one column.
    fn fit(&mut self, values: &[f64]) -> Result<(), TabularError>;
    /// Map original values into the transformed space.
    fn transform(&self, values: &[f64]) -> Result<Vec<f64>, TabularError>;
    /// Map transformed values back to the original space.
    fn inverse_transform(&self, values: &[f64]) -> Result<Vec<f64>, TabularError>;

    /// Convenience: fit then transform.
    fn fit_transform(&mut self, values: &[f64]) -> Result<Vec<f64>, TabularError> {
        self.fit(values)?;
        self.transform(values)
    }
}

/// Inverse of the standard normal CDF (Acklam's rational approximation).
///
/// Maximum absolute error ≈ 1.15e-9 over the open unit interval, which is far
/// below anything the surrogate pipeline can resolve.
pub fn inverse_normal_cdf(p: f64) -> f64 {
    debug_assert!(p > 0.0 && p < 1.0, "p must be in (0, 1), got {p}");
    const A: [f64; 6] = [
        -3.969683028665376e+01,
        2.209460984245205e+02,
        -2.759285104469687e+02,
        1.383_577_518_672_69e2,
        -3.066479806614716e+01,
        2.506628277459239e+00,
    ];
    const B: [f64; 5] = [
        -5.447609879822406e+01,
        1.615858368580409e+02,
        -1.556989798598866e+02,
        6.680131188771972e+01,
        -1.328068155288572e+01,
    ];
    const C: [f64; 6] = [
        -7.784894002430293e-03,
        -3.223964580411365e-01,
        -2.400758277161838e+00,
        -2.549732539343734e+00,
        4.374664141464968e+00,
        2.938163982698783e+00,
    ];
    const D: [f64; 4] = [
        7.784695709041462e-03,
        3.224671290700398e-01,
        2.445134137142996e+00,
        3.754408661907416e+00,
    ];
    const P_LOW: f64 = 0.02425;
    const P_HIGH: f64 = 1.0 - P_LOW;

    if p < P_LOW {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= P_HIGH {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        let q = (-2.0 * (1.0 - p).ln()).sqrt();
        -(((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    }
}

/// Standard normal CDF via the complementary error function approximation.
pub fn normal_cdf(x: f64) -> f64 {
    0.5 * erfc_scalar(-x / std::f64::consts::SQRT_2)
}

/// Complementary error function (Numerical Recipes rational Chebyshev fit,
/// fractional error < 1.2e-7 everywhere).
fn erfc_scalar(x: f64) -> f64 {
    let z = x.abs();
    let t = 1.0 / (1.0 + 0.5 * z);
    let ans = t
        * (-z * z - 1.26551223
            + t * (1.00002368
                + t * (0.37409196
                    + t * (0.09678418
                        + t * (-0.18628806
                            + t * (0.27886807
                                + t * (-1.13520398
                                    + t * (1.48851587 + t * (-0.82215223 + t * 0.17087277)))))))))
            .exp();
    if x >= 0.0 {
        ans
    } else {
        2.0 - ans
    }
}

/// Gaussian quantile transform: empirical CDF followed by the inverse
/// standard-normal CDF (the `output_distribution="normal"` mode of
/// scikit-learn's `QuantileTransformer`).
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct QuantileTransformer {
    /// Sorted reference values (the fitted empirical quantiles).
    references: Vec<f64>,
    /// Clamp for the empirical CDF so the normal quantile stays finite.
    eps: f64,
}

impl QuantileTransformer {
    /// New, unfitted transformer.
    pub fn new() -> Self {
        Self {
            references: Vec::new(),
            eps: 1e-7,
        }
    }

    fn check_fitted(&self) -> Result<(), TabularError> {
        if self.references.is_empty() {
            Err(TabularError::NotFitted("QuantileTransformer"))
        } else {
            Ok(())
        }
    }

    /// Empirical CDF of `x` against the fitted references, linearly
    /// interpolated between order statistics so that
    /// `inverse_transform(transform(x)) ≈ x` for values inside the fitted
    /// range (mirroring scikit-learn's interpolation behaviour).
    fn ecdf(&self, x: f64) -> f64 {
        let n = self.references.len();
        if n == 1 {
            return 0.5;
        }
        let refs = &self.references;
        if x <= refs[0] {
            return self.eps;
        }
        if x >= refs[n - 1] {
            return 1.0 - self.eps;
        }
        // Index of the first reference strictly greater than x.
        let hi = refs.partition_point(|&r| r <= x);
        let lo = hi - 1;
        let span = refs[hi] - refs[lo];
        let frac = if span > 0.0 {
            (x - refs[lo]) / span
        } else {
            0.0
        };
        let rank = lo as f64 + frac;
        (rank / (n - 1) as f64).clamp(self.eps, 1.0 - self.eps)
    }
}

impl NumericTransform for QuantileTransformer {
    fn fit(&mut self, values: &[f64]) -> Result<(), TabularError> {
        if values.is_empty() {
            return Err(TabularError::Empty("QuantileTransformer::fit input"));
        }
        let mut refs: Vec<f64> = values.iter().copied().filter(|v| v.is_finite()).collect();
        if refs.is_empty() {
            return Err(TabularError::Empty("QuantileTransformer finite values"));
        }
        refs.sort_unstable_by(|a, b| a.partial_cmp(b).expect("finite values"));
        self.references = refs;
        Ok(())
    }

    fn transform(&self, values: &[f64]) -> Result<Vec<f64>, TabularError> {
        self.check_fitted()?;
        Ok(values
            .iter()
            .map(|&x| inverse_normal_cdf(self.ecdf(x)))
            .collect())
    }

    fn inverse_transform(&self, values: &[f64]) -> Result<Vec<f64>, TabularError> {
        self.check_fitted()?;
        let n = self.references.len();
        Ok(values
            .iter()
            .map(|&z| {
                let p = normal_cdf(z).clamp(self.eps, 1.0 - self.eps);
                // Linear interpolation between adjacent order statistics.
                let pos = p * (n - 1) as f64;
                let lo = pos.floor() as usize;
                let hi = (lo + 1).min(n - 1);
                let frac = pos - lo as f64;
                self.references[lo] * (1.0 - frac) + self.references[hi] * frac
            })
            .collect())
    }
}

/// Zero-mean unit-variance scaler.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct StandardScaler {
    mean: f64,
    std: f64,
    fitted: bool,
}

impl Default for StandardScaler {
    fn default() -> Self {
        Self::new()
    }
}

impl StandardScaler {
    /// New, unfitted scaler.
    pub fn new() -> Self {
        Self {
            mean: 0.0,
            std: 1.0,
            fitted: false,
        }
    }

    /// Fitted mean.
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Fitted standard deviation (never zero; degenerate columns get 1.0).
    pub fn std(&self) -> f64 {
        self.std
    }
}

impl NumericTransform for StandardScaler {
    fn fit(&mut self, values: &[f64]) -> Result<(), TabularError> {
        if values.is_empty() {
            return Err(TabularError::Empty("StandardScaler::fit input"));
        }
        let n = values.len() as f64;
        let mean = values.iter().sum::<f64>() / n;
        let var = values.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / n;
        self.mean = mean;
        self.std = if var.sqrt() > 1e-12 { var.sqrt() } else { 1.0 };
        self.fitted = true;
        Ok(())
    }

    fn transform(&self, values: &[f64]) -> Result<Vec<f64>, TabularError> {
        if !self.fitted {
            return Err(TabularError::NotFitted("StandardScaler"));
        }
        Ok(values.iter().map(|v| (v - self.mean) / self.std).collect())
    }

    fn inverse_transform(&self, values: &[f64]) -> Result<Vec<f64>, TabularError> {
        if !self.fitted {
            return Err(TabularError::NotFitted("StandardScaler"));
        }
        Ok(values.iter().map(|v| v * self.std + self.mean).collect())
    }
}

/// Min-max scaler mapping the fitted range onto `[0, 1]`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MinMaxScaler {
    min: f64,
    max: f64,
    fitted: bool,
}

impl Default for MinMaxScaler {
    fn default() -> Self {
        Self::new()
    }
}

impl MinMaxScaler {
    /// New, unfitted scaler.
    pub fn new() -> Self {
        Self {
            min: 0.0,
            max: 1.0,
            fitted: false,
        }
    }
}

impl NumericTransform for MinMaxScaler {
    fn fit(&mut self, values: &[f64]) -> Result<(), TabularError> {
        if values.is_empty() {
            return Err(TabularError::Empty("MinMaxScaler::fit input"));
        }
        self.min = values.iter().copied().fold(f64::INFINITY, f64::min);
        self.max = values.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        if (self.max - self.min).abs() < 1e-12 {
            self.max = self.min + 1.0;
        }
        self.fitted = true;
        Ok(())
    }

    fn transform(&self, values: &[f64]) -> Result<Vec<f64>, TabularError> {
        if !self.fitted {
            return Err(TabularError::NotFitted("MinMaxScaler"));
        }
        let span = self.max - self.min;
        Ok(values.iter().map(|v| (v - self.min) / span).collect())
    }

    fn inverse_transform(&self, values: &[f64]) -> Result<Vec<f64>, TabularError> {
        if !self.fitted {
            return Err(TabularError::NotFitted("MinMaxScaler"));
        }
        let span = self.max - self.min;
        Ok(values.iter().map(|v| v * span + self.min).collect())
    }
}

/// `ln(1 + x)` transform for heavy-tailed non-negative columns
/// (input file bytes, workload core-hours).
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct LogTransform {
    /// Shift applied before the logarithm so the argument stays positive.
    shift: f64,
    fitted: bool,
}

impl LogTransform {
    /// New, unfitted transform.
    pub fn new() -> Self {
        Self::default()
    }
}

impl NumericTransform for LogTransform {
    fn fit(&mut self, values: &[f64]) -> Result<(), TabularError> {
        if values.is_empty() {
            return Err(TabularError::Empty("LogTransform::fit input"));
        }
        let min = values.iter().copied().fold(f64::INFINITY, f64::min);
        self.shift = if min < 0.0 { -min } else { 0.0 };
        self.fitted = true;
        Ok(())
    }

    fn transform(&self, values: &[f64]) -> Result<Vec<f64>, TabularError> {
        if !self.fitted {
            return Err(TabularError::NotFitted("LogTransform"));
        }
        Ok(values.iter().map(|v| (v + self.shift).ln_1p()).collect())
    }

    fn inverse_transform(&self, values: &[f64]) -> Result<Vec<f64>, TabularError> {
        if !self.fitted {
            return Err(TabularError::NotFitted("LogTransform"));
        }
        Ok(values.iter().map(|v| v.exp_m1() - self.shift).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inverse_normal_cdf_matches_known_quantiles() {
        assert!((inverse_normal_cdf(0.5)).abs() < 1e-9);
        assert!((inverse_normal_cdf(0.975) - 1.959964).abs() < 1e-4);
        assert!((inverse_normal_cdf(0.025) + 1.959964).abs() < 1e-4);
        assert!((inverse_normal_cdf(0.841344746) - 1.0).abs() < 1e-4);
    }

    #[test]
    fn normal_cdf_roundtrips_quantile() {
        for &p in &[0.01, 0.1, 0.3, 0.5, 0.7, 0.9, 0.99] {
            let z = inverse_normal_cdf(p);
            assert!((normal_cdf(z) - p).abs() < 1e-6, "p={p}");
        }
    }

    #[test]
    fn quantile_transform_is_roughly_standard_normal() {
        let values: Vec<f64> = (0..2000)
            .map(|i| (i as f64 * 0.37).sin() * 50.0 + i as f64)
            .collect();
        let mut qt = QuantileTransformer::new();
        let z = qt.fit_transform(&values).unwrap();
        let mean = z.iter().sum::<f64>() / z.len() as f64;
        let var = z.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / z.len() as f64;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.1, "var {var}");
    }

    #[test]
    fn quantile_transform_roundtrip() {
        let values: Vec<f64> = (0..500).map(|i| (i as f64).powf(1.3) + 10.0).collect();
        let mut qt = QuantileTransformer::new();
        let z = qt.fit_transform(&values).unwrap();
        let back = qt.inverse_transform(&z).unwrap();
        for (orig, rec) in values.iter().zip(&back) {
            let tol = orig.abs() * 0.02 + 1.0;
            assert!((orig - rec).abs() < tol, "{orig} vs {rec}");
        }
    }

    #[test]
    fn quantile_transform_preserves_order() {
        let values = vec![5.0, 1.0, 3.0, 9.0, 7.0, 2.0];
        let mut qt = QuantileTransformer::new();
        let z = qt.fit_transform(&values).unwrap();
        for i in 0..values.len() {
            for j in 0..values.len() {
                if values[i] < values[j] {
                    assert!(z[i] < z[j]);
                }
            }
        }
    }

    #[test]
    fn standard_scaler_roundtrip() {
        let values = vec![10.0, 20.0, 30.0, 40.0];
        let mut s = StandardScaler::new();
        let z = s.fit_transform(&values).unwrap();
        let mean = z.iter().sum::<f64>() / z.len() as f64;
        assert!(mean.abs() < 1e-12);
        let back = s.inverse_transform(&z).unwrap();
        for (a, b) in values.iter().zip(&back) {
            assert!((a - b).abs() < 1e-9);
        }
    }

    #[test]
    fn standard_scaler_degenerate_column() {
        let values = vec![3.0; 10];
        let mut s = StandardScaler::new();
        let z = s.fit_transform(&values).unwrap();
        assert!(z.iter().all(|v| v.abs() < 1e-12));
        assert_eq!(s.std(), 1.0);
    }

    #[test]
    fn minmax_scaler_bounds() {
        let values = vec![-5.0, 0.0, 5.0, 10.0];
        let mut s = MinMaxScaler::new();
        let z = s.fit_transform(&values).unwrap();
        assert_eq!(z.first().copied().unwrap(), 0.0);
        assert_eq!(z.last().copied().unwrap(), 1.0);
        let back = s.inverse_transform(&z).unwrap();
        for (a, b) in values.iter().zip(&back) {
            assert!((a - b).abs() < 1e-9);
        }
    }

    #[test]
    fn log_transform_roundtrip_nonnegative() {
        let values = vec![0.0, 1.0, 100.0, 1e9, 2.5e12];
        let mut t = LogTransform::new();
        let z = t.fit_transform(&values).unwrap();
        let back = t.inverse_transform(&z).unwrap();
        for (a, b) in values.iter().zip(&back) {
            let tol = a.abs() * 1e-9 + 1e-9;
            assert!((a - b).abs() <= tol, "{a} vs {b}");
        }
    }

    #[test]
    fn transforms_error_before_fit() {
        assert!(QuantileTransformer::new().transform(&[1.0]).is_err());
        assert!(StandardScaler::new().transform(&[1.0]).is_err());
        assert!(MinMaxScaler::new().transform(&[1.0]).is_err());
        assert!(LogTransform::new().transform(&[1.0]).is_err());
    }

    #[test]
    fn fit_on_empty_is_error() {
        assert!(QuantileTransformer::new().fit(&[]).is_err());
        assert!(StandardScaler::new().fit(&[]).is_err());
        assert!(MinMaxScaler::new().fit(&[]).is_err());
        assert!(LogTransform::new().fit(&[]).is_err());
    }
}
