//! Column statistics: histograms, value counts and summaries.
//!
//! These feed the Fig. 3(a) dataset profile, the Fig. 4 per-feature
//! distribution plots, and the metric kernels in the `metrics` crate.

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use crate::error::TabularError;
use crate::table::{Column, Table};

/// A fixed-width histogram over a numerical column.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Histogram {
    /// Left edge of the first bin.
    pub min: f64,
    /// Right edge of the last bin.
    pub max: f64,
    /// Raw bin counts.
    pub counts: Vec<u64>,
    /// Total number of finite samples binned.
    pub total: u64,
}

impl Histogram {
    /// Bin width.
    pub fn bin_width(&self) -> f64 {
        (self.max - self.min) / self.counts.len() as f64
    }

    /// Bin centres, useful for plotting/serialising series.
    pub fn centers(&self) -> Vec<f64> {
        let w = self.bin_width();
        (0..self.counts.len())
            .map(|i| self.min + (i as f64 + 0.5) * w)
            .collect()
    }

    /// Counts normalised to a probability mass function (sums to 1 when any
    /// samples were binned).
    pub fn pmf(&self) -> Vec<f64> {
        if self.total == 0 {
            return vec![0.0; self.counts.len()];
        }
        self.counts
            .iter()
            .map(|&c| c as f64 / self.total as f64)
            .collect()
    }
}

/// Compute a histogram of `values` with `bins` bins over an explicit range.
///
/// Values outside the range are clamped into the first/last bin; non-finite
/// values are ignored.
pub fn histogram_with_range(values: &[f64], bins: usize, min: f64, max: f64) -> Histogram {
    assert!(bins > 0, "histogram needs at least one bin");
    assert!(max > min, "histogram range must be non-degenerate");
    let mut counts = vec![0u64; bins];
    let mut total = 0u64;
    let scale = bins as f64 / (max - min);
    for &v in values {
        if !v.is_finite() {
            continue;
        }
        let mut idx = ((v - min) * scale).floor() as i64;
        if idx < 0 {
            idx = 0;
        }
        if idx >= bins as i64 {
            idx = bins as i64 - 1;
        }
        counts[idx as usize] += 1;
        total += 1;
    }
    Histogram {
        min,
        max,
        counts,
        total,
    }
}

/// Compute a histogram with the range taken from the data itself.
pub fn histogram(values: &[f64], bins: usize) -> Result<Histogram, TabularError> {
    let finite: Vec<f64> = values.iter().copied().filter(|v| v.is_finite()).collect();
    if finite.is_empty() {
        return Err(TabularError::Empty("histogram input"));
    }
    let min = finite.iter().copied().fold(f64::INFINITY, f64::min);
    let mut max = finite.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    if (max - min).abs() < f64::EPSILON {
        max = min + 1.0;
    }
    Ok(histogram_with_range(&finite, bins, min, max))
}

/// Count occurrences of each category label, sorted by descending count
/// (ties broken by label for determinism).
pub fn value_counts(column: &Column) -> Result<Vec<(String, u64)>, TabularError> {
    match column {
        Column::Categorical { codes, vocab } => {
            let mut counts = vec![0u64; vocab.len()];
            for &c in codes {
                if (c as usize) < counts.len() {
                    counts[c as usize] += 1;
                }
            }
            let mut out: Vec<(String, u64)> = vocab.iter().cloned().zip(counts).collect();
            out.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
            Ok(out)
        }
        Column::Numerical(_) => Err(TabularError::KindMismatch {
            column: "<value_counts>".to_string(),
            expected: "categorical",
        }),
    }
}

/// Normalised category frequencies keyed by label.
pub fn frequency_map(column: &Column) -> Result<HashMap<String, f64>, TabularError> {
    let counts = value_counts(column)?;
    let total: u64 = counts.iter().map(|(_, c)| c).sum();
    if total == 0 {
        return Err(TabularError::Empty("frequency_map input"));
    }
    Ok(counts
        .into_iter()
        .map(|(label, c)| (label, c as f64 / total as f64))
        .collect())
}

/// Summary statistics of one column, matching the dataset profile in
/// Fig. 3(a) of the paper (kind + number of unique entries), extended with
/// basic moments for numerical columns.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ColumnSummary {
    /// Column name.
    pub name: String,
    /// "N" or "C" per the paper's notation.
    pub kind: String,
    /// Number of distinct values.
    pub unique: usize,
    /// Mean (numerical columns only).
    pub mean: Option<f64>,
    /// Standard deviation (numerical columns only).
    pub std: Option<f64>,
    /// Minimum (numerical columns only).
    pub min: Option<f64>,
    /// Maximum (numerical columns only).
    pub max: Option<f64>,
}

/// Summarise every column of a table.
pub fn summarize(table: &Table) -> Vec<ColumnSummary> {
    table
        .names()
        .iter()
        .zip(table.columns())
        .map(|(name, col)| match col {
            Column::Numerical(v) => {
                let finite: Vec<f64> = v.iter().copied().filter(|x| x.is_finite()).collect();
                let n = finite.len().max(1) as f64;
                let mean = finite.iter().sum::<f64>() / n;
                let var = finite.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n;
                ColumnSummary {
                    name: name.clone(),
                    kind: "N".to_string(),
                    unique: col.cardinality(),
                    mean: Some(mean),
                    std: Some(var.sqrt()),
                    min: finite.iter().copied().fold(None, |acc: Option<f64>, x| {
                        Some(acc.map_or(x, |a| a.min(x)))
                    }),
                    max: finite.iter().copied().fold(None, |acc: Option<f64>, x| {
                        Some(acc.map_or(x, |a| a.max(x)))
                    }),
                }
            }
            Column::Categorical { .. } => ColumnSummary {
                name: name.clone(),
                kind: "C".to_string(),
                unique: col.cardinality(),
                mean: None,
                std: None,
                min: None,
                max: None,
            },
        })
        .collect()
}

/// Top-`k` most frequent labels of a categorical column with normalised
/// frequencies, as plotted in Fig. 4(b).
pub fn top_k_frequencies(column: &Column, k: usize) -> Result<Vec<(String, f64)>, TabularError> {
    let counts = value_counts(column)?;
    let total: u64 = counts.iter().map(|(_, c)| c).sum();
    if total == 0 {
        return Err(TabularError::Empty("top_k_frequencies input"));
    }
    Ok(counts
        .into_iter()
        .take(k)
        .map(|(label, c)| (label, c as f64 / total as f64))
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table::Column;

    #[test]
    fn histogram_counts_and_pmf() {
        let values = vec![0.0, 0.1, 0.2, 0.9, 1.0];
        let h = histogram(&values, 2).unwrap();
        assert_eq!(h.counts.iter().sum::<u64>(), 5);
        assert_eq!(h.total, 5);
        let pmf = h.pmf();
        assert!((pmf.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert_eq!(h.counts[0], 3);
        assert_eq!(h.counts[1], 2);
    }

    #[test]
    fn histogram_ignores_non_finite() {
        let values = vec![1.0, f64::NAN, 2.0, f64::INFINITY];
        let h = histogram(&values, 4).unwrap();
        assert_eq!(h.total, 2);
    }

    #[test]
    fn histogram_with_range_clamps() {
        let h = histogram_with_range(&[-10.0, 0.5, 10.0], 2, 0.0, 1.0);
        assert_eq!(h.counts, vec![1, 2]);
    }

    #[test]
    fn histogram_degenerate_column() {
        let h = histogram(&[5.0; 8], 4).unwrap();
        assert_eq!(h.total, 8);
        assert_eq!(h.counts.iter().sum::<u64>(), 8);
    }

    #[test]
    fn histogram_empty_errors() {
        assert!(histogram(&[], 4).is_err());
        assert!(histogram(&[f64::NAN], 4).is_err());
    }

    #[test]
    fn value_counts_sorted_desc() {
        let col = Column::from_labels(&["a", "b", "a", "c", "a", "b"]);
        let counts = value_counts(&col).unwrap();
        assert_eq!(counts[0], ("a".to_string(), 3));
        assert_eq!(counts[1], ("b".to_string(), 2));
        assert_eq!(counts[2], ("c".to_string(), 1));
    }

    #[test]
    fn value_counts_on_numeric_errors() {
        assert!(value_counts(&Column::Numerical(vec![1.0])).is_err());
    }

    #[test]
    fn top_k_frequencies_normalised() {
        let col = Column::from_labels(&["x", "x", "y", "z"]);
        let top = top_k_frequencies(&col, 2).unwrap();
        assert_eq!(top.len(), 2);
        assert!((top[0].1 - 0.5).abs() < 1e-12);
    }

    #[test]
    fn frequency_map_sums_to_one() {
        let col = Column::from_labels(&["a", "b", "b", "c"]);
        let freq = frequency_map(&col).unwrap();
        let sum: f64 = freq.values().sum();
        assert!((sum - 1.0).abs() < 1e-12);
    }

    #[test]
    fn summarize_mixed_table() {
        let mut t = Table::new();
        t.push_column("w", Column::Numerical(vec![1.0, 2.0, 3.0]))
            .unwrap();
        t.push_column("s", Column::from_labels(&["a", "b", "a"]))
            .unwrap();
        let summary = summarize(&t);
        assert_eq!(summary.len(), 2);
        assert_eq!(summary[0].kind, "N");
        assert_eq!(summary[0].unique, 3);
        assert!((summary[0].mean.unwrap() - 2.0).abs() < 1e-12);
        assert_eq!(summary[1].kind, "C");
        assert_eq!(summary[1].unique, 2);
        assert!(summary[1].mean.is_none());
    }
}
