//! Feature kinds and table schemas.

use serde::{Deserialize, Serialize};

use crate::error::TabularError;

/// Whether a feature holds continuous numbers or discrete categories.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FeatureKind {
    /// Continuous (or ordinal treated as continuous) feature stored as `f64`.
    Numerical,
    /// Discrete feature stored as integer codes into a string vocabulary.
    Categorical,
}

impl FeatureKind {
    /// Short human-readable tag matching the paper's Fig. 3(a) ("N" / "C").
    pub fn tag(self) -> &'static str {
        match self {
            FeatureKind::Numerical => "N",
            FeatureKind::Categorical => "C",
        }
    }
}

/// Description of a single feature column.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FeatureSpec {
    /// Column name, e.g. `"computingsite"`.
    pub name: String,
    /// Numerical or categorical.
    pub kind: FeatureKind,
}

impl FeatureSpec {
    /// Create a numerical feature spec.
    pub fn numerical(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            kind: FeatureKind::Numerical,
        }
    }

    /// Create a categorical feature spec.
    pub fn categorical(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            kind: FeatureKind::Categorical,
        }
    }
}

/// Ordered collection of feature specs describing a table.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Schema {
    features: Vec<FeatureSpec>,
}

impl Schema {
    /// Build a schema from a list of feature specs.
    pub fn new(features: Vec<FeatureSpec>) -> Self {
        Self { features }
    }

    /// Number of features.
    pub fn len(&self) -> usize {
        self.features.len()
    }

    /// Whether the schema has no features.
    pub fn is_empty(&self) -> bool {
        self.features.is_empty()
    }

    /// All feature specs in column order.
    pub fn features(&self) -> &[FeatureSpec] {
        &self.features
    }

    /// Names of all features in column order.
    pub fn names(&self) -> Vec<&str> {
        self.features.iter().map(|f| f.name.as_str()).collect()
    }

    /// Index of a feature by name.
    pub fn index_of(&self, name: &str) -> Result<usize, TabularError> {
        self.features
            .iter()
            .position(|f| f.name == name)
            .ok_or_else(|| TabularError::UnknownColumn(name.to_string()))
    }

    /// Kind of the feature with the given name.
    pub fn kind_of(&self, name: &str) -> Result<FeatureKind, TabularError> {
        self.index_of(name).map(|i| self.features[i].kind)
    }

    /// Names of numerical features in column order.
    pub fn numerical_names(&self) -> Vec<&str> {
        self.features
            .iter()
            .filter(|f| f.kind == FeatureKind::Numerical)
            .map(|f| f.name.as_str())
            .collect()
    }

    /// Names of categorical features in column order.
    pub fn categorical_names(&self) -> Vec<&str> {
        self.features
            .iter()
            .filter(|f| f.kind == FeatureKind::Categorical)
            .map(|f| f.name.as_str())
            .collect()
    }

    /// Append a feature spec, returning an error if the name already exists.
    pub fn push(&mut self, spec: FeatureSpec) -> Result<(), TabularError> {
        if self.features.iter().any(|f| f.name == spec.name) {
            return Err(TabularError::UnknownColumn(format!(
                "duplicate column `{}`",
                spec.name
            )));
        }
        self.features.push(spec);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Schema {
        Schema::new(vec![
            FeatureSpec::categorical("jobstatus"),
            FeatureSpec::categorical("computingsite"),
            FeatureSpec::numerical("workload"),
            FeatureSpec::numerical("inputfilebytes"),
        ])
    }

    #[test]
    fn index_and_kind_lookup() {
        let s = sample();
        assert_eq!(s.index_of("workload").unwrap(), 2);
        assert_eq!(s.kind_of("jobstatus").unwrap(), FeatureKind::Categorical);
        assert_eq!(s.kind_of("workload").unwrap(), FeatureKind::Numerical);
        assert!(s.index_of("nope").is_err());
    }

    #[test]
    fn kind_partition_preserves_order() {
        let s = sample();
        assert_eq!(s.numerical_names(), vec!["workload", "inputfilebytes"]);
        assert_eq!(s.categorical_names(), vec!["jobstatus", "computingsite"]);
        assert_eq!(s.len(), 4);
        assert!(!s.is_empty());
    }

    #[test]
    fn duplicate_push_rejected() {
        let mut s = sample();
        assert!(s.push(FeatureSpec::numerical("workload")).is_err());
        assert!(s.push(FeatureSpec::numerical("nfiles")).is_ok());
        assert_eq!(s.len(), 5);
    }

    #[test]
    fn kind_tags_match_paper_notation() {
        assert_eq!(FeatureKind::Numerical.tag(), "N");
        assert_eq!(FeatureKind::Categorical.tag(), "C");
    }
}
