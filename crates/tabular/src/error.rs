//! Error type shared across the tabular substrate.

use std::fmt;

/// Errors raised by table construction, encoding and transformation.
#[derive(Debug, Clone, PartialEq)]
pub enum TabularError {
    /// Two columns (or a column and the table) disagree on the number of rows.
    LengthMismatch {
        /// What was being combined when the mismatch was detected.
        context: &'static str,
        /// Expected number of rows.
        expected: usize,
        /// Number of rows actually supplied.
        found: usize,
    },
    /// A column name was not present in the table.
    UnknownColumn(String),
    /// A column had the wrong kind for the requested operation.
    KindMismatch {
        /// Column name.
        column: String,
        /// What kind the operation required.
        expected: &'static str,
    },
    /// A categorical code was outside the column's vocabulary.
    InvalidCode {
        /// Column name.
        column: String,
        /// Offending code.
        code: u32,
        /// Vocabulary size.
        cardinality: usize,
    },
    /// A transform was used before being fitted.
    NotFitted(&'static str),
    /// Parsing a CSV cell failed.
    Parse {
        /// 1-based row number in the file.
        row: usize,
        /// Column name.
        column: String,
        /// The offending cell contents.
        value: String,
    },
    /// An empty table or column where data was required.
    Empty(&'static str),
}

impl fmt::Display for TabularError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TabularError::LengthMismatch {
                context,
                expected,
                found,
            } => write!(
                f,
                "length mismatch in {context}: expected {expected} rows, found {found}"
            ),
            TabularError::UnknownColumn(name) => write!(f, "unknown column `{name}`"),
            TabularError::KindMismatch { column, expected } => {
                write!(f, "column `{column}` is not {expected}")
            }
            TabularError::InvalidCode {
                column,
                code,
                cardinality,
            } => write!(
                f,
                "code {code} out of range for column `{column}` (cardinality {cardinality})"
            ),
            TabularError::NotFitted(what) => write!(f, "{what} used before fit"),
            TabularError::Parse { row, column, value } => {
                write!(
                    f,
                    "failed to parse `{value}` in column `{column}` at row {row}"
                )
            }
            TabularError::Empty(what) => write!(f, "{what} is empty"),
        }
    }
}

impl std::error::Error for TabularError {}
