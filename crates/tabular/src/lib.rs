//! Columnar mixed-type tabular data substrate.
//!
//! The PanDA job records studied in the paper are structured tables mixing
//! categorical columns (job status, computing site, project, production step,
//! data type) and numerical columns (workload, creation time, number of input
//! files, input byte size). This crate provides the data structures and
//! preprocessing steps every other crate in the workspace builds on:
//!
//! * [`schema`] — feature kinds and table schemas,
//! * [`table`] — the columnar [`Table`](table::Table) container,
//! * [`encode`] — one-hot / label encodings for categorical columns,
//! * [`transform`] — numerical transforms (Gaussian quantile, standard,
//!   min-max, log1p) mirroring the scikit-learn preprocessing the paper uses,
//! * [`split`] — deterministic train/test splitting,
//! * [`stats`] — histograms, value counts and per-column summaries,
//! * [`io`] — a small CSV reader/writer for interchange.

pub mod encode;
pub mod error;
pub mod io;
pub mod schema;
pub mod split;
pub mod stats;
pub mod table;
pub mod transform;

pub use encode::{LabelEncoder, OneHotEncoder};
pub use error::TabularError;
pub use schema::{FeatureKind, FeatureSpec, Schema};
pub use split::{train_test_split, SplitOptions};
pub use stats::{histogram, value_counts, ColumnSummary, Histogram};
pub use table::{Column, Table};
pub use transform::{
    LogTransform, MinMaxScaler, NumericTransform, QuantileTransformer, StandardScaler,
};
