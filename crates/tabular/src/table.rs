//! The columnar [`Table`] container for mixed categorical/numerical data.

use serde::{Deserialize, Serialize};

use crate::error::TabularError;
use crate::schema::{FeatureKind, FeatureSpec, Schema};

/// A single column of data.
///
/// Numerical columns are dense `f64` vectors. Categorical columns are stored
/// as `u32` codes into a per-column string vocabulary, which keeps the hot
/// loops (metric kernels, encoders, model codecs) free of string handling.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Column {
    /// Continuous values.
    Numerical(Vec<f64>),
    /// Category codes plus the vocabulary they index into.
    Categorical {
        /// Per-row code; always `< vocab.len()`.
        codes: Vec<u32>,
        /// Distinct category labels. Index = code.
        vocab: Vec<String>,
    },
}

impl Column {
    /// Number of rows in the column.
    pub fn len(&self) -> usize {
        match self {
            Column::Numerical(v) => v.len(),
            Column::Categorical { codes, .. } => codes.len(),
        }
    }

    /// Whether the column has no rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The feature kind of this column.
    pub fn kind(&self) -> FeatureKind {
        match self {
            Column::Numerical(_) => FeatureKind::Numerical,
            Column::Categorical { .. } => FeatureKind::Categorical,
        }
    }

    /// Numerical values, if this is a numerical column.
    pub fn as_numerical(&self) -> Option<&[f64]> {
        match self {
            Column::Numerical(v) => Some(v),
            Column::Categorical { .. } => None,
        }
    }

    /// Category codes, if this is a categorical column.
    pub fn as_codes(&self) -> Option<&[u32]> {
        match self {
            Column::Categorical { codes, .. } => Some(codes),
            Column::Numerical(_) => None,
        }
    }

    /// Vocabulary, if this is a categorical column.
    pub fn vocab(&self) -> Option<&[String]> {
        match self {
            Column::Categorical { vocab, .. } => Some(vocab),
            Column::Numerical(_) => None,
        }
    }

    /// Number of distinct categories (vocabulary size) or, for numerical
    /// columns, the number of distinct finite values.
    pub fn cardinality(&self) -> usize {
        match self {
            Column::Categorical { vocab, .. } => vocab.len(),
            Column::Numerical(v) => {
                let mut sorted: Vec<u64> = v
                    .iter()
                    .filter(|x| x.is_finite())
                    .map(|x| x.to_bits())
                    .collect();
                sorted.sort_unstable();
                sorted.dedup();
                sorted.len()
            }
        }
    }

    /// Build a categorical column from string labels, constructing the
    /// vocabulary in first-appearance order.
    pub fn from_labels<S: AsRef<str>>(labels: &[S]) -> Self {
        let mut vocab: Vec<String> = Vec::new();
        let mut codes = Vec::with_capacity(labels.len());
        for label in labels {
            let label = label.as_ref();
            let code = match vocab.iter().position(|v| v == label) {
                Some(i) => i as u32,
                None => {
                    vocab.push(label.to_string());
                    (vocab.len() - 1) as u32
                }
            };
            codes.push(code);
        }
        Column::Categorical { codes, vocab }
    }

    /// Select a subset of rows by index (indices may repeat).
    pub fn take(&self, indices: &[usize]) -> Column {
        match self {
            Column::Numerical(v) => Column::Numerical(indices.iter().map(|&i| v[i]).collect()),
            Column::Categorical { codes, vocab } => Column::Categorical {
                codes: indices.iter().map(|&i| codes[i]).collect(),
                vocab: vocab.clone(),
            },
        }
    }
}

/// Columnar table of mixed categorical/numerical features.
///
/// Column order is meaningful and reflected by [`Table::schema`].
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Table {
    names: Vec<String>,
    columns: Vec<Column>,
    rows: usize,
}

impl Table {
    /// Create an empty table with no columns.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of rows.
    pub fn n_rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn n_cols(&self) -> usize {
        self.columns.len()
    }

    /// Whether the table has no rows or no columns.
    pub fn is_empty(&self) -> bool {
        self.rows == 0 || self.columns.is_empty()
    }

    /// Column names in order.
    pub fn names(&self) -> &[String] {
        &self.names
    }

    /// All columns in order.
    pub fn columns(&self) -> &[Column] {
        &self.columns
    }

    /// Derive the schema (name + kind per column).
    pub fn schema(&self) -> Schema {
        Schema::new(
            self.names
                .iter()
                .zip(&self.columns)
                .map(|(name, col)| FeatureSpec {
                    name: name.clone(),
                    kind: col.kind(),
                })
                .collect(),
        )
    }

    /// Append a column. The first column fixes the row count; later columns
    /// must match it.
    pub fn push_column(
        &mut self,
        name: impl Into<String>,
        column: Column,
    ) -> Result<(), TabularError> {
        let name = name.into();
        if self.names.contains(&name) {
            return Err(TabularError::UnknownColumn(format!(
                "duplicate column `{name}`"
            )));
        }
        if self.columns.is_empty() {
            self.rows = column.len();
        } else if column.len() != self.rows {
            return Err(TabularError::LengthMismatch {
                context: "push_column",
                expected: self.rows,
                found: column.len(),
            });
        }
        self.names.push(name);
        self.columns.push(column);
        Ok(())
    }

    /// Index of a column by name.
    pub fn index_of(&self, name: &str) -> Result<usize, TabularError> {
        self.names
            .iter()
            .position(|n| n == name)
            .ok_or_else(|| TabularError::UnknownColumn(name.to_string()))
    }

    /// Column by name.
    pub fn column(&self, name: &str) -> Result<&Column, TabularError> {
        self.index_of(name).map(|i| &self.columns[i])
    }

    /// Mutable column by name.
    pub fn column_mut(&mut self, name: &str) -> Result<&mut Column, TabularError> {
        let i = self.index_of(name)?;
        Ok(&mut self.columns[i])
    }

    /// Numerical values of a column, erroring if it is categorical.
    pub fn numerical(&self, name: &str) -> Result<&[f64], TabularError> {
        self.column(name)?
            .as_numerical()
            .ok_or_else(|| TabularError::KindMismatch {
                column: name.to_string(),
                expected: "numerical",
            })
    }

    /// Codes of a categorical column, erroring if it is numerical.
    pub fn codes(&self, name: &str) -> Result<&[u32], TabularError> {
        self.column(name)?
            .as_codes()
            .ok_or_else(|| TabularError::KindMismatch {
                column: name.to_string(),
                expected: "categorical",
            })
    }

    /// Vocabulary of a categorical column.
    pub fn vocab(&self, name: &str) -> Result<&[String], TabularError> {
        self.column(name)?
            .vocab()
            .ok_or_else(|| TabularError::KindMismatch {
                column: name.to_string(),
                expected: "categorical",
            })
    }

    /// String label of a categorical cell.
    pub fn label(&self, name: &str, row: usize) -> Result<&str, TabularError> {
        let col = self.column(name)?;
        match col {
            Column::Categorical { codes, vocab } => {
                let code = codes[row];
                vocab
                    .get(code as usize)
                    .map(String::as_str)
                    .ok_or(TabularError::InvalidCode {
                        column: name.to_string(),
                        code,
                        cardinality: vocab.len(),
                    })
            }
            Column::Numerical(_) => Err(TabularError::KindMismatch {
                column: name.to_string(),
                expected: "categorical",
            }),
        }
    }

    /// Select a subset of rows by index (indices may repeat), preserving
    /// column order and vocabularies.
    pub fn take(&self, indices: &[usize]) -> Table {
        Table {
            names: self.names.clone(),
            columns: self.columns.iter().map(|c| c.take(indices)).collect(),
            rows: indices.len(),
        }
    }

    /// Keep only the named columns, in the given order.
    pub fn select(&self, names: &[&str]) -> Result<Table, TabularError> {
        let mut out = Table::new();
        for &name in names {
            let i = self.index_of(name)?;
            out.push_column(name, self.columns[i].clone())?;
        }
        Ok(out)
    }

    /// Vertically stack another table with an identical schema under this one.
    pub fn vstack(&self, other: &Table) -> Result<Table, TabularError> {
        if self.names != other.names {
            return Err(TabularError::LengthMismatch {
                context: "vstack (column sets differ)",
                expected: self.names.len(),
                found: other.names.len(),
            });
        }
        let mut out = Table::new();
        for (i, name) in self.names.iter().enumerate() {
            let merged = match (&self.columns[i], &other.columns[i]) {
                (Column::Numerical(a), Column::Numerical(b)) => {
                    let mut v = a.clone();
                    v.extend_from_slice(b);
                    Column::Numerical(v)
                }
                (
                    Column::Categorical {
                        codes: ca,
                        vocab: va,
                    },
                    Column::Categorical {
                        codes: cb,
                        vocab: vb,
                    },
                ) => {
                    // Re-map the other table's codes into this table's
                    // vocabulary, extending it for unseen labels.
                    let mut vocab = va.clone();
                    let mut codes = ca.clone();
                    let mut remap = Vec::with_capacity(vb.len());
                    for label in vb {
                        let code = match vocab.iter().position(|v| v == label) {
                            Some(j) => j as u32,
                            None => {
                                vocab.push(label.clone());
                                (vocab.len() - 1) as u32
                            }
                        };
                        remap.push(code);
                    }
                    codes.extend(cb.iter().map(|&c| remap[c as usize]));
                    Column::Categorical { codes, vocab }
                }
                _ => {
                    return Err(TabularError::KindMismatch {
                        column: name.clone(),
                        expected: "matching column kinds",
                    })
                }
            };
            out.push_column(name, merged)?;
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> Table {
        let mut t = Table::new();
        t.push_column("workload", Column::Numerical(vec![1.0, 2.0, 3.0, 4.0]))
            .unwrap();
        t.push_column("site", Column::from_labels(&["BNL", "CERN", "BNL", "SLAC"]))
            .unwrap();
        t
    }

    #[test]
    fn push_and_lookup() {
        let t = toy();
        assert_eq!(t.n_rows(), 4);
        assert_eq!(t.n_cols(), 2);
        assert_eq!(t.numerical("workload").unwrap(), &[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(t.codes("site").unwrap(), &[0, 1, 0, 2]);
        assert_eq!(t.vocab("site").unwrap(), &["BNL", "CERN", "SLAC"]);
        assert_eq!(t.label("site", 3).unwrap(), "SLAC");
    }

    #[test]
    fn length_mismatch_rejected() {
        let mut t = toy();
        let err = t
            .push_column("bad", Column::Numerical(vec![1.0]))
            .unwrap_err();
        assert!(matches!(err, TabularError::LengthMismatch { .. }));
    }

    #[test]
    fn duplicate_column_rejected() {
        let mut t = toy();
        assert!(t
            .push_column("site", Column::Numerical(vec![0.0; 4]))
            .is_err());
    }

    #[test]
    fn kind_mismatch_rejected() {
        let t = toy();
        assert!(t.numerical("site").is_err());
        assert!(t.codes("workload").is_err());
    }

    #[test]
    fn take_preserves_vocab_and_order() {
        let t = toy();
        let sub = t.take(&[3, 0, 0]);
        assert_eq!(sub.n_rows(), 3);
        assert_eq!(sub.numerical("workload").unwrap(), &[4.0, 1.0, 1.0]);
        assert_eq!(sub.codes("site").unwrap(), &[2, 0, 0]);
        assert_eq!(sub.vocab("site").unwrap(), t.vocab("site").unwrap());
    }

    #[test]
    fn select_reorders_columns() {
        let t = toy();
        let s = t.select(&["site", "workload"]).unwrap();
        assert_eq!(s.names(), &["site".to_string(), "workload".to_string()]);
        assert!(t.select(&["missing"]).is_err());
    }

    #[test]
    fn vstack_remaps_vocabulary() {
        let t = toy();
        let mut other = Table::new();
        other
            .push_column("workload", Column::Numerical(vec![5.0]))
            .unwrap();
        other
            .push_column("site", Column::from_labels(&["TOKYO"]))
            .unwrap();
        let stacked = t.vstack(&other).unwrap();
        assert_eq!(stacked.n_rows(), 5);
        assert_eq!(stacked.label("site", 4).unwrap(), "TOKYO");
        assert_eq!(stacked.vocab("site").unwrap().len(), 4);
    }

    #[test]
    fn schema_reflects_columns() {
        let t = toy();
        let s = t.schema();
        assert_eq!(s.kind_of("workload").unwrap(), FeatureKind::Numerical);
        assert_eq!(s.kind_of("site").unwrap(), FeatureKind::Categorical);
    }

    #[test]
    fn cardinality_counts_distinct() {
        let t = toy();
        assert_eq!(t.column("site").unwrap().cardinality(), 3);
        assert_eq!(t.column("workload").unwrap().cardinality(), 4);
    }
}
