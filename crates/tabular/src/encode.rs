//! Categorical encodings.
//!
//! The surrogate models in the paper represent every categorical entry as a
//! one-hot vector; the MLEF probe uses integer label codes. Both encoders are
//! fitted on training data and reusable on synthetic data so unseen labels are
//! handled consistently.

use serde::{Deserialize, Serialize};

use crate::error::TabularError;

/// Maps string labels to dense integer codes.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct LabelEncoder {
    vocab: Vec<String>,
}

impl LabelEncoder {
    /// New, empty encoder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Fit the vocabulary from labels, in first-appearance order.
    pub fn fit<S: AsRef<str>>(&mut self, labels: &[S]) {
        self.vocab.clear();
        for label in labels {
            let label = label.as_ref();
            if !self.vocab.iter().any(|v| v == label) {
                self.vocab.push(label.to_string());
            }
        }
    }

    /// Build directly from an existing vocabulary.
    pub fn from_vocab(vocab: Vec<String>) -> Self {
        Self { vocab }
    }

    /// Vocabulary size.
    pub fn cardinality(&self) -> usize {
        self.vocab.len()
    }

    /// The fitted vocabulary.
    pub fn vocab(&self) -> &[String] {
        &self.vocab
    }

    /// Code of a label, if known.
    pub fn code(&self, label: &str) -> Option<u32> {
        self.vocab.iter().position(|v| v == label).map(|i| i as u32)
    }

    /// Label of a code.
    pub fn label(&self, code: u32) -> Result<&str, TabularError> {
        self.vocab
            .get(code as usize)
            .map(String::as_str)
            .ok_or(TabularError::InvalidCode {
                column: "<label-encoder>".to_string(),
                code,
                cardinality: self.vocab.len(),
            })
    }

    /// Encode labels to codes; unknown labels map to a fresh code appended to
    /// the vocabulary only if `extend` is true, otherwise they error.
    pub fn encode<S: AsRef<str>>(
        &mut self,
        labels: &[S],
        extend: bool,
    ) -> Result<Vec<u32>, TabularError> {
        let mut out = Vec::with_capacity(labels.len());
        for label in labels {
            let label = label.as_ref();
            match self.code(label) {
                Some(c) => out.push(c),
                None if extend => {
                    self.vocab.push(label.to_string());
                    out.push((self.vocab.len() - 1) as u32);
                }
                None => {
                    return Err(TabularError::UnknownColumn(format!(
                        "unknown label `{label}`"
                    )))
                }
            }
        }
        Ok(out)
    }
}

/// One-hot encoder over integer category codes.
///
/// The encoder is defined by the cardinality fixed at fit time; codes at or
/// above the cardinality (e.g. labels only present in synthetic data) encode
/// to the all-zeros vector, mirroring scikit-learn's
/// `handle_unknown="ignore"`.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct OneHotEncoder {
    cardinality: usize,
}

impl OneHotEncoder {
    /// Encoder for a column with the given number of categories.
    pub fn new(cardinality: usize) -> Self {
        Self { cardinality }
    }

    /// Fit from codes (cardinality = max code + 1).
    pub fn fit(&mut self, codes: &[u32]) -> Result<(), TabularError> {
        if codes.is_empty() {
            return Err(TabularError::Empty("OneHotEncoder::fit input"));
        }
        self.cardinality = codes.iter().copied().max().unwrap_or(0) as usize + 1;
        Ok(())
    }

    /// Width of the one-hot block.
    pub fn width(&self) -> usize {
        self.cardinality
    }

    /// Encode a slice of codes into a dense row-major matrix
    /// (`codes.len()` × `width()`).
    pub fn encode(&self, codes: &[u32]) -> Vec<f64> {
        let mut out = vec![0.0; codes.len() * self.cardinality];
        for (row, &code) in codes.iter().enumerate() {
            let code = code as usize;
            if code < self.cardinality {
                out[row * self.cardinality + code] = 1.0;
            }
        }
        out
    }

    /// Decode one-hot (or soft probability) rows back to codes by argmax.
    pub fn decode(&self, rows: &[f64]) -> Result<Vec<u32>, TabularError> {
        if self.cardinality == 0 {
            return Err(TabularError::NotFitted("OneHotEncoder"));
        }
        if !rows.len().is_multiple_of(self.cardinality) {
            return Err(TabularError::LengthMismatch {
                context: "OneHotEncoder::decode",
                expected: self.cardinality,
                found: rows.len(),
            });
        }
        Ok(rows
            .chunks_exact(self.cardinality)
            .map(|chunk| {
                let mut best = 0usize;
                let mut best_v = f64::NEG_INFINITY;
                for (i, &v) in chunk.iter().enumerate() {
                    if v > best_v {
                        best_v = v;
                        best = i;
                    }
                }
                best as u32
            })
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn label_encoder_roundtrip() {
        let labels = ["finished", "failed", "finished", "cancelled"];
        let mut enc = LabelEncoder::new();
        enc.fit(&labels);
        assert_eq!(enc.cardinality(), 3);
        let codes = enc.encode(&labels, false).unwrap();
        assert_eq!(codes, vec![0, 1, 0, 2]);
        assert_eq!(enc.label(1).unwrap(), "failed");
        assert_eq!(enc.code("cancelled"), Some(2));
        assert!(enc.label(9).is_err());
    }

    #[test]
    fn label_encoder_unknown_handling() {
        let mut enc = LabelEncoder::new();
        enc.fit(&["a", "b"]);
        assert!(enc.encode(&["c"], false).is_err());
        let codes = enc.encode(&["c", "a"], true).unwrap();
        assert_eq!(codes, vec![2, 0]);
        assert_eq!(enc.cardinality(), 3);
    }

    #[test]
    fn one_hot_roundtrip() {
        let codes = vec![0u32, 2, 1, 2];
        let mut enc = OneHotEncoder::default();
        enc.fit(&codes).unwrap();
        assert_eq!(enc.width(), 3);
        let dense = enc.encode(&codes);
        assert_eq!(dense.len(), 12);
        assert_eq!(&dense[0..3], &[1.0, 0.0, 0.0]);
        assert_eq!(&dense[3..6], &[0.0, 0.0, 1.0]);
        let decoded = enc.decode(&dense).unwrap();
        assert_eq!(decoded, codes);
    }

    #[test]
    fn one_hot_soft_decode_is_argmax() {
        let enc = OneHotEncoder::new(3);
        let soft = vec![0.1, 0.7, 0.2, 0.5, 0.3, 0.2];
        assert_eq!(enc.decode(&soft).unwrap(), vec![1, 0]);
    }

    #[test]
    fn one_hot_out_of_range_code_encodes_to_zeros() {
        let enc = OneHotEncoder::new(2);
        let dense = enc.encode(&[5]);
        assert_eq!(dense, vec![0.0, 0.0]);
    }

    #[test]
    fn one_hot_decode_shape_errors() {
        let enc = OneHotEncoder::new(3);
        assert!(enc.decode(&[0.0, 1.0]).is_err());
        let unfitted = OneHotEncoder::new(0);
        assert!(unfitted.decode(&[]).is_err());
    }
}
