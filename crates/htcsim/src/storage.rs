//! Dataset replica catalogue and wide-area transfer model.

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

/// Which sites hold a replica of each dataset.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct ReplicaCatalog {
    replicas: HashMap<String, Vec<usize>>,
}

impl ReplicaCatalog {
    /// Empty catalogue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a replica of `dataset` at `site`.
    pub fn add_replica(&mut self, dataset: &str, site: usize) {
        let entry = self.replicas.entry(dataset.to_string()).or_default();
        if !entry.contains(&site) {
            entry.push(site);
        }
    }

    /// Sites holding a replica of `dataset` (empty if unknown).
    pub fn sites_with(&self, dataset: &str) -> &[usize] {
        self.replicas.get(dataset).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Whether `site` already holds `dataset`.
    pub fn has_replica(&self, dataset: &str, site: usize) -> bool {
        self.sites_with(dataset).contains(&site)
    }

    /// Number of datasets known to the catalogue.
    pub fn n_datasets(&self) -> usize {
        self.replicas.len()
    }
}

/// Simple wide-area transfer cost model.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct TransferModel {
    /// Effective wide-area bandwidth per transfer, in bytes per second.
    pub bandwidth_bytes_per_s: f64,
    /// Fixed latency overhead per transfer, in hours.
    pub latency_hours: f64,
}

impl Default for TransferModel {
    fn default() -> Self {
        Self {
            // 1 GB/s effective per transfer stream, 5-minute setup overhead.
            bandwidth_bytes_per_s: 1e9,
            latency_hours: 5.0 / 60.0,
        }
    }
}

impl TransferModel {
    /// Hours needed to move `bytes` to a site without a replica; zero when
    /// the data is already local.
    pub fn transfer_hours(&self, bytes: f64, is_local: bool) -> f64 {
        if is_local || bytes <= 0.0 {
            return 0.0;
        }
        self.latency_hours + bytes / self.bandwidth_bytes_per_s / 3600.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn replica_bookkeeping() {
        let mut cat = ReplicaCatalog::new();
        cat.add_replica("ds1", 0);
        cat.add_replica("ds1", 2);
        cat.add_replica("ds1", 0); // duplicate ignored
        cat.add_replica("ds2", 1);
        assert_eq!(cat.sites_with("ds1"), &[0, 2]);
        assert!(cat.has_replica("ds1", 2));
        assert!(!cat.has_replica("ds1", 1));
        assert!(cat.sites_with("unknown").is_empty());
        assert_eq!(cat.n_datasets(), 2);
    }

    #[test]
    fn local_data_transfers_instantly() {
        let model = TransferModel::default();
        assert_eq!(model.transfer_hours(1e12, true), 0.0);
        assert_eq!(model.transfer_hours(0.0, false), 0.0);
    }

    #[test]
    fn remote_transfer_time_scales_with_bytes() {
        let model = TransferModel {
            bandwidth_bytes_per_s: 1e9,
            latency_hours: 0.1,
        };
        let one_tb = model.transfer_hours(1e12, false);
        let ten_tb = model.transfer_hours(1e13, false);
        assert!(one_tb > 0.1);
        assert!(ten_tb > 5.0 * one_tb);
        // 1 TB at 1 GB/s is 1000 s ≈ 0.28 h plus latency.
        assert!((one_tb - (0.1 + 1000.0 / 3600.0)).abs() < 1e-9);
    }
}
