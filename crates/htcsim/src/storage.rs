//! Interned identifiers, the dataset replica catalogue, and the wide-area
//! transfer model.
//!
//! Dataset and site names are interned once into `u32` symbols by a
//! [`SymbolTable`]; everything on the simulator's hot path — the replica
//! catalogue, brokerage and the event loop — then works in integer ids with
//! no string hashing or allocation per event.

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

/// Interned dataset identifier (index into the owning [`SymbolTable`]).
pub type DatasetId = u32;
/// Interned site identifier (index into the simulator's site arena).
pub type SiteId = u32;

/// A string interner mapping names to dense `u32` symbols.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct SymbolTable {
    names: Vec<String>,
    index: HashMap<String, u32>,
}

impl SymbolTable {
    /// Empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Intern `name`, returning its stable symbol (existing or fresh).
    pub fn intern(&mut self, name: &str) -> u32 {
        if let Some(&id) = self.index.get(name) {
            return id;
        }
        let id = u32::try_from(self.names.len()).expect("more than u32::MAX interned symbols");
        self.names.push(name.to_string());
        self.index.insert(name.to_string(), id);
        id
    }

    /// Symbol of `name`, if it has been interned.
    pub fn get(&self, name: &str) -> Option<u32> {
        self.index.get(name).copied()
    }

    /// Name behind a symbol.
    pub fn resolve(&self, id: u32) -> &str {
        &self.names[id as usize]
    }

    /// Number of interned symbols.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// All interned names in symbol order.
    pub fn names(&self) -> &[String] {
        &self.names
    }
}

/// Which sites hold a replica of each dataset, in struct-of-arrays form:
/// one site list per interned [`DatasetId`], so lookups on the brokerage
/// hot path are a bounds-checked index instead of a string hash.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct ReplicaCatalog {
    replicas: Vec<Vec<SiteId>>,
}

impl ReplicaCatalog {
    /// Empty catalogue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Empty catalogue pre-sized for `n_datasets` interned datasets.
    pub fn with_datasets(n_datasets: usize) -> Self {
        Self {
            replicas: vec![Vec::new(); n_datasets],
        }
    }

    /// Register a replica of `dataset` at `site`.
    pub fn add_replica(&mut self, dataset: DatasetId, site: SiteId) {
        let idx = dataset as usize;
        if idx >= self.replicas.len() {
            self.replicas.resize(idx + 1, Vec::new());
        }
        let entry = &mut self.replicas[idx];
        if !entry.contains(&site) {
            entry.push(site);
        }
    }

    /// Sites holding a replica of `dataset` (empty if unknown).
    pub fn sites_with(&self, dataset: DatasetId) -> &[SiteId] {
        self.replicas
            .get(dataset as usize)
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// Whether `site` already holds `dataset`.
    #[inline]
    pub fn has_replica(&self, dataset: DatasetId, site: SiteId) -> bool {
        self.sites_with(dataset).contains(&site)
    }

    /// Number of datasets with at least one replica.
    pub fn n_datasets(&self) -> usize {
        self.replicas.iter().filter(|r| !r.is_empty()).count()
    }
}

/// Simple wide-area transfer cost model.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct TransferModel {
    /// Effective wide-area bandwidth per transfer, in bytes per second.
    pub bandwidth_bytes_per_s: f64,
    /// Fixed latency overhead per transfer, in hours.
    pub latency_hours: f64,
}

impl Default for TransferModel {
    fn default() -> Self {
        Self {
            // 1 GB/s effective per transfer stream, 5-minute setup overhead.
            bandwidth_bytes_per_s: 1e9,
            latency_hours: 5.0 / 60.0,
        }
    }
}

impl TransferModel {
    /// Hours needed to move `bytes` to a site without a replica; zero when
    /// the data is already local.
    #[inline]
    pub fn transfer_hours(&self, bytes: f64, is_local: bool) -> f64 {
        if is_local || bytes <= 0.0 {
            return 0.0;
        }
        self.latency_hours + bytes / self.bandwidth_bytes_per_s / 3600.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn symbols_are_dense_and_stable() {
        let mut table = SymbolTable::new();
        assert!(table.is_empty());
        let a = table.intern("mc23.AOD");
        let b = table.intern("data22.DAOD");
        assert_eq!(table.intern("mc23.AOD"), a);
        assert_ne!(a, b);
        assert_eq!(table.resolve(a), "mc23.AOD");
        assert_eq!(table.resolve(b), "data22.DAOD");
        assert_eq!(table.get("data22.DAOD"), Some(b));
        assert_eq!(table.get("missing"), None);
        assert_eq!(table.len(), 2);
        assert_eq!(
            table.names(),
            &["mc23.AOD".to_string(), "data22.DAOD".to_string()]
        );
    }

    #[test]
    fn replica_bookkeeping() {
        let mut cat = ReplicaCatalog::with_datasets(2);
        cat.add_replica(0, 0);
        cat.add_replica(0, 2);
        cat.add_replica(0, 0); // duplicate ignored
        cat.add_replica(1, 1);
        assert_eq!(cat.sites_with(0), &[0, 2]);
        assert!(cat.has_replica(0, 2));
        assert!(!cat.has_replica(0, 1));
        assert!(cat.sites_with(7).is_empty());
        assert_eq!(cat.n_datasets(), 2);
    }

    #[test]
    fn catalog_grows_on_demand() {
        let mut cat = ReplicaCatalog::new();
        cat.add_replica(5, 3);
        assert_eq!(cat.sites_with(5), &[3]);
        assert!(cat.sites_with(0).is_empty());
        assert_eq!(cat.n_datasets(), 1);
    }

    #[test]
    fn local_data_transfers_instantly() {
        let model = TransferModel::default();
        assert_eq!(model.transfer_hours(1e12, true), 0.0);
        assert_eq!(model.transfer_hours(0.0, false), 0.0);
    }

    #[test]
    fn remote_transfer_time_scales_with_bytes() {
        let model = TransferModel {
            bandwidth_bytes_per_s: 1e9,
            latency_hours: 0.1,
        };
        let one_tb = model.transfer_hours(1e12, false);
        let ten_tb = model.transfer_hours(1e13, false);
        assert!(one_tb > 0.1);
        assert!(ten_tb > 5.0 * one_tb);
        // 1 TB at 1 GB/s is 1000 s ≈ 0.28 h plus latency.
        assert!((one_tb - (0.1 + 1000.0 / 3600.0)).abs() < 1e-9);
    }
}
