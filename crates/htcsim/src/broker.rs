//! Job-to-site brokerage policies.

use serde::{Deserialize, Serialize};

use crate::site::SimSite;
use crate::storage::{DatasetId, ReplicaCatalog, TransferModel};

/// The brokerage policy deciding which site a job is dispatched to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum BrokerPolicy {
    /// Cycle through sites regardless of load or data placement
    /// (the naive baseline).
    RoundRobin,
    /// Pick the site with the most free slots.
    LeastLoaded,
    /// Prefer sites that already hold the input dataset, falling back to the
    /// least-loaded site when no replica site has capacity. This mirrors the
    /// data-aware brokerage the paper's optimisation target cares about.
    DataLocality,
}

impl BrokerPolicy {
    /// All policies, for sweeps.
    pub const ALL: [BrokerPolicy; 3] = [
        BrokerPolicy::RoundRobin,
        BrokerPolicy::LeastLoaded,
        BrokerPolicy::DataLocality,
    ];

    /// Short name for reports.
    pub fn name(self) -> &'static str {
        match self {
            BrokerPolicy::RoundRobin => "round-robin",
            BrokerPolicy::LeastLoaded => "least-loaded",
            BrokerPolicy::DataLocality => "data-locality",
        }
    }

    /// Parse a policy from its report name (or enum spelling).
    pub fn parse(name: &str) -> Option<Self> {
        let lower = name.to_ascii_lowercase();
        BrokerPolicy::ALL
            .into_iter()
            .find(|p| p.name().replace('-', "") == lower.replace(['-', '_'], ""))
    }

    /// Choose a site for a job needing `cores` cores and reading `dataset`.
    ///
    /// Returns `None` when no site can currently accommodate the job (the
    /// simulator then parks the job until a slot frees up). The round-robin
    /// cursor only advances when some site is feasible, and ties (equal free
    /// slots, equal locality cost) resolve to the smallest site index —
    /// both invariants are load-bearing for run-to-run determinism. This is
    /// the per-event hot path: no allocation, one pass over the site arena.
    #[allow(clippy::too_many_arguments)] // mirrors the simulator's brokerage context
    pub fn choose(
        self,
        sites: &[SimSite],
        cores: u32,
        dataset: DatasetId,
        catalog: &ReplicaCatalog,
        transfer: &TransferModel,
        bytes: f64,
        round_robin_cursor: &mut usize,
    ) -> Option<usize> {
        if !sites.iter().any(|s| s.can_run(cores)) {
            return None;
        }
        match self {
            BrokerPolicy::RoundRobin => {
                // Advance the cursor until we land on a feasible site.
                for _ in 0..sites.len() {
                    let candidate = *round_robin_cursor % sites.len();
                    *round_robin_cursor += 1;
                    if sites[candidate].can_run(cores) {
                        return Some(candidate);
                    }
                }
                sites.iter().position(|s| s.can_run(cores))
            }
            BrokerPolicy::LeastLoaded => {
                let mut best: Option<(usize, u32)> = None;
                for (i, site) in sites.iter().enumerate() {
                    if !site.can_run(cores) {
                        continue;
                    }
                    let free = site.free_slots();
                    if best.is_none_or(|(_, best_free)| free > best_free) {
                        best = Some((i, free));
                    }
                }
                best.map(|(i, _)| i)
            }
            BrokerPolicy::DataLocality => {
                // Score = estimated hours lost to transfer minus a small bonus
                // for free capacity; lower is better.
                let mut best: Option<(usize, f64)> = None;
                for (i, site) in sites.iter().enumerate() {
                    if !site.can_run(cores) {
                        continue;
                    }
                    let local = catalog.has_replica(dataset, i as u32);
                    let cost =
                        transfer.transfer_hours(bytes, local) - 1e-3 * site.free_slots() as f64;
                    if best.is_none_or(|(_, best_cost)| cost < best_cost) {
                        best = Some((i, cost));
                    }
                }
                best.map(|(i, _)| i)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const DS: DatasetId = 0;

    fn sites() -> Vec<SimSite> {
        vec![
            SimSite::new("A", 10, 15.0),
            SimSite::new("B", 10, 15.0),
            SimSite::new("C", 4, 15.0),
        ]
    }

    #[test]
    fn round_robin_cycles_through_sites() {
        let sites = sites();
        let catalog = ReplicaCatalog::new();
        let transfer = TransferModel::default();
        let mut cursor = 0;
        let picks: Vec<usize> = (0..6)
            .map(|_| {
                BrokerPolicy::RoundRobin
                    .choose(&sites, 1, DS, &catalog, &transfer, 1e9, &mut cursor)
                    .unwrap()
            })
            .collect();
        assert_eq!(picks, vec![0, 1, 2, 0, 1, 2]);
    }

    #[test]
    fn infeasible_round_robin_leaves_the_cursor_alone() {
        let mut sites = sites();
        for s in &mut sites {
            let slots = s.slots;
            s.acquire(slots);
        }
        let catalog = ReplicaCatalog::new();
        let transfer = TransferModel::default();
        let mut cursor = 1;
        assert!(BrokerPolicy::RoundRobin
            .choose(&sites, 1, DS, &catalog, &transfer, 1e9, &mut cursor)
            .is_none());
        assert_eq!(cursor, 1, "cursor must not move when nothing is feasible");
    }

    #[test]
    fn least_loaded_prefers_free_capacity() {
        let mut sites = sites();
        sites[0].acquire(9);
        sites[1].acquire(2);
        let catalog = ReplicaCatalog::new();
        let transfer = TransferModel::default();
        let mut cursor = 0;
        let pick = BrokerPolicy::LeastLoaded
            .choose(&sites, 1, DS, &catalog, &transfer, 1e9, &mut cursor)
            .unwrap();
        assert_eq!(pick, 1);
    }

    #[test]
    fn least_loaded_ties_resolve_to_the_smallest_index() {
        let sites = sites(); // A and B both idle with 10 slots
        let catalog = ReplicaCatalog::new();
        let transfer = TransferModel::default();
        let mut cursor = 0;
        let pick = BrokerPolicy::LeastLoaded
            .choose(&sites, 1, DS, &catalog, &transfer, 1e9, &mut cursor)
            .unwrap();
        assert_eq!(pick, 0);
    }

    #[test]
    fn data_locality_prefers_replica_site() {
        let sites = sites();
        let mut catalog = ReplicaCatalog::new();
        catalog.add_replica(DS, 2);
        let transfer = TransferModel::default();
        let mut cursor = 0;
        let pick = BrokerPolicy::DataLocality
            .choose(&sites, 1, DS, &catalog, &transfer, 5e11, &mut cursor)
            .unwrap();
        assert_eq!(pick, 2);
    }

    #[test]
    fn data_locality_falls_back_when_replica_site_is_full() {
        let mut sites = sites();
        sites[2].acquire(4); // replica site has no free slots
        let mut catalog = ReplicaCatalog::new();
        catalog.add_replica(DS, 2);
        let transfer = TransferModel::default();
        let mut cursor = 0;
        let pick = BrokerPolicy::DataLocality
            .choose(&sites, 1, DS, &catalog, &transfer, 5e11, &mut cursor)
            .unwrap();
        assert_ne!(pick, 2);
    }

    #[test]
    fn no_capacity_returns_none() {
        let mut sites = sites();
        for s in &mut sites {
            let slots = s.slots;
            s.acquire(slots);
        }
        let catalog = ReplicaCatalog::new();
        let transfer = TransferModel::default();
        let mut cursor = 0;
        for policy in BrokerPolicy::ALL {
            assert!(policy
                .choose(&sites, 1, DS, &catalog, &transfer, 1e9, &mut cursor)
                .is_none());
        }
    }

    #[test]
    fn oversized_jobs_skip_small_sites() {
        let sites = sites();
        let catalog = ReplicaCatalog::new();
        let transfer = TransferModel::default();
        let mut cursor = 0;
        // 8 cores cannot fit on site C (4 slots).
        for _ in 0..10 {
            let pick = BrokerPolicy::RoundRobin
                .choose(&sites, 8, DS, &catalog, &transfer, 1e9, &mut cursor)
                .unwrap();
            assert_ne!(pick, 2);
        }
    }

    #[test]
    fn policy_names_parse_back() {
        for policy in BrokerPolicy::ALL {
            assert_eq!(BrokerPolicy::parse(policy.name()), Some(policy));
        }
        assert_eq!(
            BrokerPolicy::parse("RoundRobin"),
            Some(BrokerPolicy::RoundRobin)
        );
        assert_eq!(
            BrokerPolicy::parse("least_loaded"),
            Some(BrokerPolicy::LeastLoaded)
        );
        assert_eq!(BrokerPolicy::parse("fifo"), None);
    }
}
