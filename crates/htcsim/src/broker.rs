//! Job-to-site brokerage policies.

use serde::{Deserialize, Serialize};

use crate::site::SimSite;
use crate::storage::{ReplicaCatalog, TransferModel};

/// The brokerage policy deciding which site a job is dispatched to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum BrokerPolicy {
    /// Cycle through sites regardless of load or data placement
    /// (the naive baseline).
    RoundRobin,
    /// Pick the site with the most free slots.
    LeastLoaded,
    /// Prefer sites that already hold the input dataset, falling back to the
    /// least-loaded site when no replica site has capacity. This mirrors the
    /// data-aware brokerage the paper's optimisation target cares about.
    DataLocality,
}

impl BrokerPolicy {
    /// All policies, for sweeps.
    pub const ALL: [BrokerPolicy; 3] = [
        BrokerPolicy::RoundRobin,
        BrokerPolicy::LeastLoaded,
        BrokerPolicy::DataLocality,
    ];

    /// Short name for reports.
    pub fn name(self) -> &'static str {
        match self {
            BrokerPolicy::RoundRobin => "round-robin",
            BrokerPolicy::LeastLoaded => "least-loaded",
            BrokerPolicy::DataLocality => "data-locality",
        }
    }

    /// Choose a site for a job needing `cores` cores and reading `dataset`.
    ///
    /// Returns `None` when no site can currently accommodate the job (the
    /// simulator then parks the job until a slot frees up).
    #[allow(clippy::too_many_arguments)] // mirrors the simulator's brokerage context
    pub fn choose(
        self,
        sites: &[SimSite],
        cores: u32,
        dataset: &str,
        catalog: &ReplicaCatalog,
        transfer: &TransferModel,
        bytes: f64,
        round_robin_cursor: &mut usize,
    ) -> Option<usize> {
        let feasible: Vec<usize> = sites
            .iter()
            .enumerate()
            .filter(|(_, s)| s.can_run(cores))
            .map(|(i, _)| i)
            .collect();
        if feasible.is_empty() {
            return None;
        }
        match self {
            BrokerPolicy::RoundRobin => {
                // Advance the cursor until we land on a feasible site.
                for _ in 0..sites.len() {
                    let candidate = *round_robin_cursor % sites.len();
                    *round_robin_cursor += 1;
                    if feasible.contains(&candidate) {
                        return Some(candidate);
                    }
                }
                feasible.first().copied()
            }
            BrokerPolicy::LeastLoaded => feasible.into_iter().max_by(|&a, &b| {
                sites[a]
                    .free_slots()
                    .cmp(&sites[b].free_slots())
                    .then_with(|| b.cmp(&a))
            }),
            BrokerPolicy::DataLocality => {
                // Score = estimated hours lost to transfer minus a small bonus
                // for free capacity; lower is better.
                feasible.into_iter().min_by(|&a, &b| {
                    let cost = |i: usize| {
                        let local = catalog.has_replica(dataset, i);
                        let t = transfer.transfer_hours(bytes, local);
                        t - 1e-3 * sites[i].free_slots() as f64
                    };
                    cost(a)
                        .partial_cmp(&cost(b))
                        .unwrap_or(std::cmp::Ordering::Equal)
                })
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sites() -> Vec<SimSite> {
        vec![
            SimSite::new("A", 10, 15.0),
            SimSite::new("B", 10, 15.0),
            SimSite::new("C", 4, 15.0),
        ]
    }

    #[test]
    fn round_robin_cycles_through_sites() {
        let sites = sites();
        let catalog = ReplicaCatalog::new();
        let transfer = TransferModel::default();
        let mut cursor = 0;
        let picks: Vec<usize> = (0..6)
            .map(|_| {
                BrokerPolicy::RoundRobin
                    .choose(&sites, 1, "ds", &catalog, &transfer, 1e9, &mut cursor)
                    .unwrap()
            })
            .collect();
        assert_eq!(picks, vec![0, 1, 2, 0, 1, 2]);
    }

    #[test]
    fn least_loaded_prefers_free_capacity() {
        let mut sites = sites();
        sites[0].acquire(9);
        sites[1].acquire(2);
        let catalog = ReplicaCatalog::new();
        let transfer = TransferModel::default();
        let mut cursor = 0;
        let pick = BrokerPolicy::LeastLoaded
            .choose(&sites, 1, "ds", &catalog, &transfer, 1e9, &mut cursor)
            .unwrap();
        assert_eq!(pick, 1);
    }

    #[test]
    fn data_locality_prefers_replica_site() {
        let sites = sites();
        let mut catalog = ReplicaCatalog::new();
        catalog.add_replica("ds", 2);
        let transfer = TransferModel::default();
        let mut cursor = 0;
        let pick = BrokerPolicy::DataLocality
            .choose(&sites, 1, "ds", &catalog, &transfer, 5e11, &mut cursor)
            .unwrap();
        assert_eq!(pick, 2);
    }

    #[test]
    fn data_locality_falls_back_when_replica_site_is_full() {
        let mut sites = sites();
        sites[2].acquire(4); // replica site has no free slots
        let mut catalog = ReplicaCatalog::new();
        catalog.add_replica("ds", 2);
        let transfer = TransferModel::default();
        let mut cursor = 0;
        let pick = BrokerPolicy::DataLocality
            .choose(&sites, 1, "ds", &catalog, &transfer, 5e11, &mut cursor)
            .unwrap();
        assert_ne!(pick, 2);
    }

    #[test]
    fn no_capacity_returns_none() {
        let mut sites = sites();
        for s in &mut sites {
            let slots = s.slots;
            s.acquire(slots);
        }
        let catalog = ReplicaCatalog::new();
        let transfer = TransferModel::default();
        let mut cursor = 0;
        for policy in BrokerPolicy::ALL {
            assert!(policy
                .choose(&sites, 1, "ds", &catalog, &transfer, 1e9, &mut cursor)
                .is_none());
        }
    }

    #[test]
    fn oversized_jobs_skip_small_sites() {
        let sites = sites();
        let catalog = ReplicaCatalog::new();
        let transfer = TransferModel::default();
        let mut cursor = 0;
        // 8 cores cannot fit on site C (4 slots).
        for _ in 0..10 {
            let pick = BrokerPolicy::RoundRobin
                .choose(&sites, 8, "ds", &catalog, &transfer, 1e9, &mut cursor)
                .unwrap();
            assert_ne!(pick, 2);
        }
    }
}
