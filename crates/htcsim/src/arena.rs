//! Arena-indexed struct-of-arrays job storage.
//!
//! A [`JobArena`] holds every job of a simulation run as parallel column
//! vectors (the columnar idiom of the modelling tables, applied to the
//! simulator): arrival times, core counts, CPU hours, input bytes, plus
//! interned `u32` symbols for dataset and origin-site names. The event loop
//! indexes jobs by `u32` handle and never touches a `String`, which is what
//! makes the per-event path allocation-free at tens of millions of events.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::sim::SimJob;
use crate::storage::{DatasetId, SymbolTable};

/// Origin symbol for jobs whose originating site is unknown.
pub const NO_ORIGIN: u32 = u32::MAX;

/// A typed error naming the workload-table column that could not be read.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum SimInputError {
    /// A required numerical column was missing or of the wrong kind.
    Column {
        /// Name of the offending column.
        column: String,
        /// The underlying table error, rendered.
        detail: String,
    },
    /// The job population exceeds the arena's `u32` index space.
    TooManyJobs {
        /// Number of rows offered.
        rows: usize,
    },
}

impl fmt::Display for SimInputError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimInputError::Column { column, detail } => {
                write!(f, "workload table column `{column}` unusable: {detail}")
            }
            SimInputError::TooManyJobs { rows } => {
                write!(
                    f,
                    "workload has {rows} rows, exceeding the u32 job-index space"
                )
            }
        }
    }
}

impl std::error::Error for SimInputError {}

/// Struct-of-arrays storage for the jobs of one simulation run.
#[derive(Debug, Clone, Default)]
pub struct JobArena {
    /// Arrival (submission) time in hours from the start of the window.
    pub arrival_hours: Vec<f64>,
    /// Cores requested.
    pub cores: Vec<u32>,
    /// CPU time needed, in hours (HS23-normalised; see [`SimJob`]).
    pub cpu_hours: Vec<f64>,
    /// Interned input dataset per job.
    pub dataset: Vec<DatasetId>,
    /// Input size in bytes.
    pub input_bytes: Vec<f64>,
    /// Interned origin-site symbol per job ([`NO_ORIGIN`] when unknown).
    pub origin: Vec<u32>,
    datasets: SymbolTable,
    origin_sites: SymbolTable,
}

impl JobArena {
    /// Empty arena.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of jobs.
    pub fn len(&self) -> usize {
        self.arrival_hours.len()
    }

    /// Whether the arena holds no jobs.
    pub fn is_empty(&self) -> bool {
        self.arrival_hours.is_empty()
    }

    /// Number of distinct interned datasets.
    pub fn n_datasets(&self) -> usize {
        self.datasets.len()
    }

    /// Name behind a dataset symbol.
    pub fn dataset_name(&self, id: DatasetId) -> &str {
        self.datasets.resolve(id)
    }

    /// The origin-site symbol table (symbol order = first-seen order).
    pub fn origin_site_names(&self) -> &[String] {
        self.origin_sites.names()
    }

    /// Append one job.
    pub fn push(
        &mut self,
        arrival_hours: f64,
        cores: u32,
        cpu_hours: f64,
        dataset: &str,
        input_bytes: f64,
        origin_site: Option<&str>,
    ) -> u32 {
        let id = u32::try_from(self.len()).expect("more than u32::MAX jobs in one arena");
        self.arrival_hours.push(arrival_hours);
        self.cores.push(cores.max(1));
        self.cpu_hours.push(cpu_hours);
        self.dataset.push(self.datasets.intern(dataset));
        self.input_bytes.push(input_bytes);
        self.origin
            .push(origin_site.map_or(NO_ORIGIN, |s| self.origin_sites.intern(s)));
        id
    }

    /// Build an arena from row-structured jobs.
    pub fn from_jobs(jobs: &[SimJob]) -> Self {
        let mut arena = Self::with_capacity(jobs.len());
        for job in jobs {
            arena.push(
                job.arrival_hours,
                job.cores,
                job.cpu_hours,
                &job.dataset,
                job.input_bytes,
                job.origin_site.as_deref(),
            );
        }
        arena
    }

    /// Empty arena with room for `n` jobs.
    pub fn with_capacity(n: usize) -> Self {
        Self {
            arrival_hours: Vec::with_capacity(n),
            cores: Vec::with_capacity(n),
            cpu_hours: Vec::with_capacity(n),
            dataset: Vec::with_capacity(n),
            input_bytes: Vec::with_capacity(n),
            origin: Vec::with_capacity(n),
            datasets: SymbolTable::new(),
            origin_sites: SymbolTable::new(),
        }
    }

    /// Materialise job `index` back into row form (for compatibility paths;
    /// the simulator itself never does this).
    pub fn job(&self, index: usize) -> SimJob {
        SimJob {
            arrival_hours: self.arrival_hours[index],
            cores: self.cores[index],
            cpu_hours: self.cpu_hours[index],
            dataset: self.datasets.resolve(self.dataset[index]).to_string(),
            input_bytes: self.input_bytes[index],
            origin_site: match self.origin[index] {
                NO_ORIGIN => None,
                id => Some(self.origin_sites.resolve(id).to_string()),
            },
        }
    }

    /// Build an arena from the nine-feature modelling table produced by
    /// `pandasim::records_to_table` (or sampled from a surrogate model).
    ///
    /// Dataset identity is not part of the nine features, so each row gets a
    /// project/datatype-derived pseudo-dataset — the granularity at which
    /// the surrogate models actually learn locality structure. The three
    /// numerical columns (`creationtime`, `inputfilebytes`, `workload`) are
    /// required; a missing or non-numerical one is a typed
    /// [`SimInputError::Column`] naming it. Label columns degrade to
    /// `"unknown"` when absent, matching the seed behaviour.
    pub fn from_table(table: &tabular::Table) -> Result<Self, SimInputError> {
        let n = table.n_rows();
        if u32::try_from(n).is_err() {
            return Err(SimInputError::TooManyJobs { rows: n });
        }
        let required = |name: &str| {
            table.numerical(name).map_err(|e| SimInputError::Column {
                column: name.to_string(),
                detail: e.to_string(),
            })
        };
        let creation = required("creationtime")?;
        let bytes = required("inputfilebytes")?;
        let workload = required("workload")?;
        // Label columns, fetched as codes+vocab once so the per-row path is
        // an integer lookup; a missing column degrades to all-"unknown".
        let labels = |name: &str| -> Option<(&[u32], &[String])> {
            match (table.codes(name), table.vocab(name)) {
                (Ok(codes), Ok(vocab)) => Some((codes, vocab)),
                _ => None,
            }
        };
        let project = labels("project");
        let datatype = labels("datatype");
        let site = labels("computingsite");
        fn label_at<'a>(col: Option<(&'a [u32], &'a [String])>, r: usize) -> &'a str {
            col.and_then(|(codes, vocab)| vocab.get(codes[r] as usize))
                .map_or("unknown", String::as_str)
        }

        let mut arena = Self::with_capacity(n);
        let mut key = String::new();
        for r in 0..n {
            key.clear();
            key.push_str(label_at(project, r));
            key.push('.');
            key.push_str(label_at(datatype, r));
            // Workload is cores × HS23 × hours; convert back to CPU hours
            // assuming a reference HS23 of 15 and 4 cores.
            let cpu_hours = (workload[r] / 15.0 / 4.0).clamp(1e-3, 96.0 * 4.0);
            arena.push(
                creation[r] * 24.0,
                4,
                cpu_hours,
                &key,
                bytes[r].max(0.0),
                Some(label_at(site, r)),
            );
        }
        Ok(arena)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tabular::{Column, Table};

    fn toy_table() -> Table {
        let mut table = Table::new();
        table
            .push_column("creationtime", Column::Numerical(vec![0.0, 0.5, 1.0]))
            .unwrap();
        table
            .push_column("inputfilebytes", Column::Numerical(vec![1e9, -5.0, 2e10]))
            .unwrap();
        table
            .push_column("workload", Column::Numerical(vec![600.0, 60.0, 1e9]))
            .unwrap();
        table
            .push_column(
                "project",
                Column::Categorical {
                    codes: vec![0, 0, 1],
                    vocab: vec!["mc23".to_string(), "data22".to_string()],
                },
            )
            .unwrap();
        table
            .push_column(
                "datatype",
                Column::Categorical {
                    codes: vec![0, 1, 0],
                    vocab: vec!["AOD".to_string(), "DAOD".to_string()],
                },
            )
            .unwrap();
        table
            .push_column(
                "computingsite",
                Column::Categorical {
                    codes: vec![0, 1, 0],
                    vocab: vec!["BNL".to_string(), "CERN".to_string()],
                },
            )
            .unwrap();
        table
    }

    #[test]
    fn from_table_interns_datasets_and_origins() {
        let arena = JobArena::from_table(&toy_table()).unwrap();
        assert_eq!(arena.len(), 3);
        assert_eq!(arena.n_datasets(), 3);
        assert_eq!(arena.dataset_name(arena.dataset[0]), "mc23.AOD");
        assert_eq!(arena.dataset_name(arena.dataset[1]), "mc23.DAOD");
        assert_eq!(arena.dataset_name(arena.dataset[2]), "data22.AOD");
        assert_eq!(
            arena.origin_site_names(),
            &["BNL".to_string(), "CERN".to_string()]
        );
        assert_eq!(arena.input_bytes[1], 0.0, "negative bytes clamp to zero");
        assert_eq!(arena.arrival_hours[2], 24.0);
        assert!((arena.cpu_hours[0] - 10.0).abs() < 1e-12);
        assert_eq!(
            arena.cpu_hours[2], 384.0,
            "cpu hours clamp at 96 h × 4 cores"
        );
    }

    #[test]
    fn missing_required_column_is_a_typed_error() {
        let mut table = toy_table();
        table = {
            // Rebuild without the workload column.
            let mut t = Table::new();
            for name in ["creationtime", "inputfilebytes", "project"] {
                t.push_column(name, table.column(name).unwrap().clone())
                    .unwrap();
            }
            t
        };
        let err = JobArena::from_table(&table).unwrap_err();
        match &err {
            SimInputError::Column { column, .. } => assert_eq!(column, "workload"),
            other => panic!("unexpected error {other:?}"),
        }
        assert!(
            err.to_string().contains("workload"),
            "error names the column: {err}"
        );
    }

    #[test]
    fn missing_label_columns_degrade_to_unknown() {
        let mut table = Table::new();
        table
            .push_column("creationtime", Column::Numerical(vec![0.0]))
            .unwrap();
        table
            .push_column("inputfilebytes", Column::Numerical(vec![1e9]))
            .unwrap();
        table
            .push_column("workload", Column::Numerical(vec![60.0]))
            .unwrap();
        let arena = JobArena::from_table(&table).unwrap();
        assert_eq!(arena.dataset_name(arena.dataset[0]), "unknown.unknown");
        assert_eq!(arena.origin_site_names(), &["unknown".to_string()]);
    }

    #[test]
    fn round_trips_through_row_jobs() {
        let arena = JobArena::from_table(&toy_table()).unwrap();
        let jobs: Vec<SimJob> = (0..arena.len()).map(|i| arena.job(i)).collect();
        let rebuilt = JobArena::from_jobs(&jobs);
        assert_eq!(rebuilt.len(), arena.len());
        for i in 0..arena.len() {
            assert_eq!(rebuilt.job(i), arena.job(i));
        }
    }
}
