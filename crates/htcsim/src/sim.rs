//! The grid simulator main loop and its summary report.

use serde::{Deserialize, Serialize};

use pandasim::{JobRecord, SiteCatalog};

use crate::broker::BrokerPolicy;
use crate::event::{EventKind, EventQueue};
use crate::site::SimSite;
use crate::storage::{ReplicaCatalog, TransferModel};

/// One job as the simulator sees it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimJob {
    /// Arrival (submission) time in hours from the start of the window.
    pub arrival_hours: f64,
    /// Cores requested.
    pub cores: u32,
    /// CPU time needed, in hours (site-independent, HS23-normalised work is
    /// `cores × hs23 × wall`, so wall time depends on the executing site).
    pub cpu_hours: f64,
    /// Input dataset name (for the replica catalogue).
    pub dataset: String,
    /// Input size in bytes.
    pub input_bytes: f64,
    /// Site that held the input in the originating record (seeds the replica
    /// catalogue).
    pub origin_site: Option<String>,
}

impl SimJob {
    /// Build a simulator job from a PanDA record.
    pub fn from_record(record: &JobRecord) -> Self {
        Self {
            arrival_hours: record.creation_time_days * 24.0,
            cores: record.cores.max(1),
            cpu_hours: (record.cpu_time_s / 3600.0).max(1e-3),
            dataset: record.dataset_name.clone(),
            input_bytes: record.input_file_bytes.max(0.0),
            origin_site: Some(record.computing_site.clone()),
        }
    }

    /// Build simulator jobs from the nine-feature modelling table produced by
    /// `pandasim::records_to_table` (or by a surrogate model). Dataset
    /// identity is not part of the nine features, so each row gets a
    /// project/datatype-derived pseudo-dataset, which keeps the locality
    /// structure at the granularity the surrogate models actually learn.
    pub fn from_table(table: &tabular::Table) -> Vec<Self> {
        let n = table.n_rows();
        let creation = table
            .numerical("creationtime")
            .expect("creationtime column");
        let bytes = table
            .numerical("inputfilebytes")
            .expect("inputfilebytes column");
        let workload = table.numerical("workload").expect("workload column");
        (0..n)
            .map(|r| {
                let project = table.label("project", r).unwrap_or("unknown");
                let datatype = table.label("datatype", r).unwrap_or("unknown");
                let site = table.label("computingsite", r).unwrap_or("unknown");
                // Workload is cores × HS23 × hours; convert back to CPU hours
                // assuming a reference HS23 of 15 and 4 cores.
                let cpu_hours = (workload[r] / 15.0 / 4.0).clamp(1e-3, 96.0 * 4.0);
                Self {
                    arrival_hours: creation[r] * 24.0,
                    cores: 4,
                    cpu_hours,
                    dataset: format!("{project}.{datatype}"),
                    input_bytes: bytes[r].max(0.0),
                    origin_site: Some(site.to_string()),
                }
            })
            .collect()
    }
}

/// Simulator configuration.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SimConfig {
    /// Brokerage policy in force.
    pub policy: BrokerPolicy,
    /// Transfer cost model.
    pub transfer: TransferModel,
    /// Fraction of each site's real slot count exposed to the simulated
    /// user-analysis share (keeps queues realistic when feeding a subsample
    /// of the full workload).
    pub slot_fraction: f64,
    /// Reference HS23 per core used to convert CPU hours to wall hours.
    pub reference_hs23: f64,
}

impl Default for SimConfig {
    fn default() -> Self {
        Self {
            policy: BrokerPolicy::DataLocality,
            transfer: TransferModel::default(),
            slot_fraction: 0.02,
            reference_hs23: 15.0,
        }
    }
}

/// Aggregate response of one simulation run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimReport {
    /// Brokerage policy used.
    pub policy: String,
    /// Number of jobs completed.
    pub completed: usize,
    /// Time at which the last job finished, in hours.
    pub makespan_hours: f64,
    /// Mean time a job spent waiting for a slot, in hours.
    pub mean_wait_hours: f64,
    /// Mean wide-area transfer time per job, in hours.
    pub mean_transfer_hours: f64,
    /// Total bytes moved over the wide-area network.
    pub wan_bytes: f64,
    /// Mean utilisation across sites over the makespan.
    pub mean_utilization: f64,
}

/// The event-driven grid simulator.
#[derive(Debug)]
pub struct GridSimulator {
    config: SimConfig,
    sites: Vec<SimSite>,
    catalog: ReplicaCatalog,
}

impl GridSimulator {
    /// Build a simulator over a site catalogue.
    pub fn new(catalog: &SiteCatalog, config: SimConfig) -> Self {
        let sites = catalog
            .sites()
            .iter()
            .map(|s| {
                let slots = ((s.slots as f64 * config.slot_fraction).round() as u32).max(8);
                SimSite::new(&s.name, slots, s.hs23_per_core)
            })
            .collect();
        Self {
            config,
            sites,
            catalog: ReplicaCatalog::new(),
        }
    }

    /// Number of simulated sites.
    pub fn n_sites(&self) -> usize {
        self.sites.len()
    }

    fn site_index(&self, name: &str) -> Option<usize> {
        self.sites.iter().position(|s| s.name == name)
    }

    /// Run the simulation over a list of jobs and return the aggregate
    /// response. Jobs whose origin site is known seed the replica catalogue,
    /// so data-aware policies have locality information to exploit.
    pub fn run(&mut self, jobs: &[SimJob]) -> SimReport {
        // Seed replicas from the origin sites.
        for job in jobs {
            if let Some(origin) = &job.origin_site {
                if let Some(idx) = self.site_index(origin) {
                    self.catalog.add_replica(&job.dataset, idx);
                }
            }
        }

        let mut queue = EventQueue::new();
        for (i, job) in jobs.iter().enumerate() {
            queue.push(job.arrival_hours.max(0.0), EventKind::JobArrival { job: i });
        }

        let mut pending: Vec<usize> = Vec::new();
        let mut wait_hours = vec![0.0f64; jobs.len()];
        let mut transfer_hours = vec![0.0f64; jobs.len()];
        let mut arrival_time = vec![0.0f64; jobs.len()];
        let mut completed = 0usize;
        let mut makespan: f64 = 0.0;
        let mut wan_bytes = 0.0f64;
        let mut rr_cursor = 0usize;

        let dispatch = |job_idx: usize,
                        now: f64,
                        sites: &mut Vec<SimSite>,
                        catalog: &ReplicaCatalog,
                        queue: &mut EventQueue,
                        wan_bytes: &mut f64,
                        transfer_hours: &mut Vec<f64>,
                        rr_cursor: &mut usize|
         -> bool {
            let job = &jobs[job_idx];
            let choice = self.config.policy.choose(
                sites,
                job.cores,
                &job.dataset,
                catalog,
                &self.config.transfer,
                job.input_bytes,
                rr_cursor,
            );
            let Some(site_idx) = choice else {
                return false;
            };
            sites[site_idx].acquire(job.cores);
            let local = catalog.has_replica(&job.dataset, site_idx);
            let t_hours = self.config.transfer.transfer_hours(job.input_bytes, local);
            if !local {
                *wan_bytes += job.input_bytes;
            }
            transfer_hours[job_idx] = t_hours;
            queue.push(
                now + t_hours,
                EventKind::TransferComplete {
                    job: job_idx,
                    site: site_idx,
                },
            );
            true
        };

        while let Some(event) = queue.pop() {
            let now = event.time;
            match event.kind {
                EventKind::JobArrival { job } => {
                    arrival_time[job] = now;
                    if !dispatch(
                        job,
                        now,
                        &mut self.sites,
                        &self.catalog,
                        &mut queue,
                        &mut wan_bytes,
                        &mut transfer_hours,
                        &mut rr_cursor,
                    ) {
                        pending.push(job);
                    } else {
                        wait_hours[job] = 0.0;
                    }
                }
                EventKind::TransferComplete { job, site } => {
                    // Wall time: CPU hours scaled by the site's speed relative
                    // to the reference, divided across the cores.
                    let speed = self.sites[site].hs23_per_core / self.config.reference_hs23;
                    let wall = (jobs[job].cpu_hours / jobs[job].cores as f64 / speed).max(1e-4);
                    queue.push(now + wall, EventKind::JobFinish { job, site });
                }
                EventKind::JobFinish { job, site } => {
                    let speed = self.sites[site].hs23_per_core / self.config.reference_hs23;
                    let wall = (jobs[job].cpu_hours / jobs[job].cores as f64 / speed).max(1e-4);
                    self.sites[site].release(jobs[job].cores, wall);
                    completed += 1;
                    makespan = makespan.max(now);

                    // Try to start parked jobs now that slots freed up.
                    let mut still_pending = Vec::new();
                    for &p in &pending {
                        if dispatch(
                            p,
                            now,
                            &mut self.sites,
                            &self.catalog,
                            &mut queue,
                            &mut wan_bytes,
                            &mut transfer_hours,
                            &mut rr_cursor,
                        ) {
                            wait_hours[p] = now - arrival_time[p];
                        } else {
                            still_pending.push(p);
                        }
                    }
                    pending = still_pending;
                }
            }
        }

        let n = jobs.len().max(1) as f64;
        let mean_utilization = if makespan > 0.0 {
            self.sites
                .iter()
                .map(|s| s.utilization(makespan))
                .sum::<f64>()
                / self.sites.len().max(1) as f64
        } else {
            0.0
        };
        SimReport {
            policy: self.config.policy.name().to_string(),
            completed,
            makespan_hours: makespan,
            mean_wait_hours: wait_hours.iter().sum::<f64>() / n,
            mean_transfer_hours: transfer_hours.iter().sum::<f64>() / n,
            wan_bytes,
            mean_utilization,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pandasim::{FilterFunnel, GeneratorConfig, WorkloadGenerator};

    fn small_jobs() -> (SiteCatalog, Vec<SimJob>) {
        let generator = WorkloadGenerator::new(GeneratorConfig::small());
        let gross = generator.generate();
        let funnel = FilterFunnel::apply(&gross);
        let jobs: Vec<SimJob> = funnel
            .records
            .iter()
            .take(400)
            .map(SimJob::from_record)
            .collect();
        (generator.sites().clone(), jobs)
    }

    #[test]
    fn all_jobs_complete() {
        let (catalog, jobs) = small_jobs();
        let mut sim = GridSimulator::new(&catalog, SimConfig::default());
        let report = sim.run(&jobs);
        assert_eq!(report.completed, jobs.len());
        assert!(report.makespan_hours > 0.0);
        assert!(report.mean_wait_hours >= 0.0);
        assert!(report.mean_utilization >= 0.0 && report.mean_utilization <= 1.0);
    }

    #[test]
    fn data_locality_moves_fewer_bytes_than_round_robin() {
        let (catalog, jobs) = small_jobs();
        let mut locality = GridSimulator::new(
            &catalog,
            SimConfig {
                policy: BrokerPolicy::DataLocality,
                ..Default::default()
            },
        );
        let mut round_robin = GridSimulator::new(
            &catalog,
            SimConfig {
                policy: BrokerPolicy::RoundRobin,
                ..Default::default()
            },
        );
        let locality_report = locality.run(&jobs);
        let rr_report = round_robin.run(&jobs);
        assert!(
            locality_report.wan_bytes < rr_report.wan_bytes,
            "locality {} vs round-robin {}",
            locality_report.wan_bytes,
            rr_report.wan_bytes
        );
    }

    #[test]
    fn empty_job_list_is_a_noop() {
        let (catalog, _) = small_jobs();
        let mut sim = GridSimulator::new(&catalog, SimConfig::default());
        let report = sim.run(&[]);
        assert_eq!(report.completed, 0);
        assert_eq!(report.makespan_hours, 0.0);
    }

    #[test]
    fn jobs_from_table_have_sane_fields() {
        let generator = WorkloadGenerator::new(GeneratorConfig::small());
        let gross = generator.generate();
        let funnel = FilterFunnel::apply(&gross);
        let table = pandasim::records_to_table(&funnel.records);
        let jobs = SimJob::from_table(&table);
        assert_eq!(jobs.len(), table.n_rows());
        for job in jobs.iter().take(100) {
            assert!(job.arrival_hours >= 0.0);
            assert!(job.cpu_hours > 0.0);
            assert!(job.cores >= 1);
            assert!(!job.dataset.is_empty());
        }
    }

    #[test]
    fn slot_starved_grid_still_finishes_with_queueing() {
        let (catalog, jobs) = small_jobs();
        let mut sim = GridSimulator::new(
            &catalog,
            SimConfig {
                slot_fraction: 0.001, // extremely scarce slots
                ..Default::default()
            },
        );
        let report = sim.run(&jobs[..150.min(jobs.len())]);
        assert_eq!(report.completed, 150.min(jobs.len()));
        // With scarce slots some jobs must have waited.
        assert!(report.mean_wait_hours >= 0.0);
    }
}
