//! The grid simulator main loop and its summary report.
//!
//! The loop is generic over the [`EventScheduler`] so the calendar queue can
//! be pinned byte-identical against the binary-heap oracle, and it runs
//! entirely over [`JobArena`] struct-of-arrays storage: after setup, a
//! simulated event touches only integer ids and pre-allocated vectors — no
//! per-event allocation, hashing, or string traffic.

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use pandasim::{JobRecord, SiteCatalog};

use crate::arena::{JobArena, SimInputError, NO_ORIGIN};
use crate::broker::BrokerPolicy;
use crate::event::{CalendarQueue, EventKind, EventScheduler};
use crate::site::SimSite;
use crate::storage::{ReplicaCatalog, TransferModel};

/// One job as the simulator sees it (row form; the simulator itself runs on
/// the columnar [`JobArena`]).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimJob {
    /// Arrival (submission) time in hours from the start of the window.
    pub arrival_hours: f64,
    /// Cores requested.
    pub cores: u32,
    /// CPU time needed, in hours (site-independent, HS23-normalised work is
    /// `cores × hs23 × wall`, so wall time depends on the executing site).
    pub cpu_hours: f64,
    /// Input dataset name (for the replica catalogue).
    pub dataset: String,
    /// Input size in bytes.
    pub input_bytes: f64,
    /// Site that held the input in the originating record (seeds the replica
    /// catalogue).
    pub origin_site: Option<String>,
}

impl SimJob {
    /// Build a simulator job from a PanDA record.
    pub fn from_record(record: &JobRecord) -> Self {
        Self {
            arrival_hours: record.creation_time_days * 24.0,
            cores: record.cores.max(1),
            cpu_hours: (record.cpu_time_s / 3600.0).max(1e-3),
            dataset: record.dataset_name.clone(),
            input_bytes: record.input_file_bytes.max(0.0),
            origin_site: Some(record.computing_site.clone()),
        }
    }

    /// Build simulator jobs from the nine-feature modelling table produced by
    /// `pandasim::records_to_table` (or by a surrogate model). See
    /// [`JobArena::from_table`] for the column contract; a missing required
    /// column is a typed [`SimInputError`] naming it.
    pub fn from_table(table: &tabular::Table) -> Result<Vec<Self>, SimInputError> {
        let arena = JobArena::from_table(table)?;
        Ok((0..arena.len()).map(|i| arena.job(i)).collect())
    }
}

/// Simulator configuration.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SimConfig {
    /// Brokerage policy in force.
    pub policy: BrokerPolicy,
    /// Transfer cost model.
    pub transfer: TransferModel,
    /// Fraction of each site's real slot count exposed to the simulated
    /// user-analysis share (keeps queues realistic when feeding a subsample
    /// of the full workload).
    pub slot_fraction: f64,
    /// Reference HS23 per core used to convert CPU hours to wall hours.
    pub reference_hs23: f64,
}

impl Default for SimConfig {
    fn default() -> Self {
        Self {
            policy: BrokerPolicy::DataLocality,
            transfer: TransferModel::default(),
            slot_fraction: 0.02,
            reference_hs23: 15.0,
        }
    }
}

/// Aggregate response of one simulation run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimReport {
    /// Brokerage policy used.
    pub policy: String,
    /// Number of jobs completed.
    pub completed: usize,
    /// Time at which the last job finished, in hours.
    pub makespan_hours: f64,
    /// Mean time a job spent waiting for a slot, in hours.
    pub mean_wait_hours: f64,
    /// Mean wide-area transfer time per job, in hours.
    pub mean_transfer_hours: f64,
    /// Total bytes moved over the wide-area network.
    pub wan_bytes: f64,
    /// Mean utilisation across sites over the makespan.
    pub mean_utilization: f64,
}

/// Time-resolved observables of one simulation run, for fidelity
/// comparisons (the `simloop` harness): the pending-queue depth binned over
/// the makespan plus per-site utilisation and completion counts.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimTrace {
    /// Width of each queue-depth bin, in hours (`makespan / bins`).
    pub bin_hours: f64,
    /// Time-weighted mean pending-queue depth per bin.
    pub queue_depth: Vec<f64>,
    /// Site names, aligned with the per-site vectors.
    pub site_names: Vec<String>,
    /// Utilisation of each site over the makespan.
    pub site_utilization: Vec<f64>,
    /// Jobs completed at each site.
    pub site_jobs_completed: Vec<u64>,
}

/// The event-driven grid simulator.
#[derive(Debug)]
pub struct GridSimulator {
    config: SimConfig,
    sites: Vec<SimSite>,
    site_lookup: HashMap<String, usize>,
}

/// Dispatch one job: broker it, account the transfer, and schedule its
/// `TransferComplete`. Returns false when no site has capacity.
#[allow(clippy::too_many_arguments)] // the full brokerage context, passed flat
fn dispatch<Q: EventScheduler>(
    arena: &JobArena,
    job: u32,
    now: f64,
    config: &SimConfig,
    sites: &mut [SimSite],
    catalog: &ReplicaCatalog,
    queue: &mut Q,
    wan_bytes: &mut f64,
    transfer_hours: &mut [f64],
    rr_cursor: &mut usize,
) -> bool {
    let j = job as usize;
    let choice = config.policy.choose(
        sites,
        arena.cores[j],
        arena.dataset[j],
        catalog,
        &config.transfer,
        arena.input_bytes[j],
        rr_cursor,
    );
    let Some(site_idx) = choice else {
        return false;
    };
    sites[site_idx].acquire(arena.cores[j]);
    let local = catalog.has_replica(arena.dataset[j], site_idx as u32);
    let t_hours = config.transfer.transfer_hours(arena.input_bytes[j], local);
    if !local {
        *wan_bytes += arena.input_bytes[j];
    }
    transfer_hours[j] = t_hours;
    queue.push(
        now + t_hours,
        EventKind::TransferComplete {
            job,
            site: site_idx as u32,
        },
    );
    true
}

impl GridSimulator {
    /// Build a simulator over a site catalogue.
    pub fn new(catalog: &SiteCatalog, config: SimConfig) -> Self {
        let sites: Vec<SimSite> = catalog
            .sites()
            .iter()
            .map(|s| {
                let slots = ((s.slots as f64 * config.slot_fraction).round() as u32).max(8);
                SimSite::new(&s.name, slots, s.hs23_per_core)
            })
            .collect();
        let site_lookup = sites
            .iter()
            .enumerate()
            .map(|(i, s)| (s.name.clone(), i))
            .collect();
        Self {
            config,
            sites,
            site_lookup,
        }
    }

    /// Number of simulated sites.
    pub fn n_sites(&self) -> usize {
        self.sites.len()
    }

    /// The simulated sites (post-run state carries utilisation counters).
    pub fn sites(&self) -> &[SimSite] {
        &self.sites
    }

    /// Run the simulation over row-structured jobs (compatibility path:
    /// builds a [`JobArena`] and runs on the default calendar queue).
    pub fn run(&mut self, jobs: &[SimJob]) -> SimReport {
        let arena = JobArena::from_jobs(jobs);
        self.run_arena(&arena)
    }

    /// Run the simulation over an arena on the default [`CalendarQueue`].
    pub fn run_arena(&mut self, arena: &JobArena) -> SimReport {
        self.run_inner::<CalendarQueue>(arena, None)
    }

    /// Run on an explicit scheduler implementation — the hook the oracle
    /// tests and throughput benches use to pin [`CalendarQueue`] against
    /// [`HeapQueue`] byte for byte.
    pub fn run_arena_with<Q: EventScheduler>(&mut self, arena: &JobArena) -> SimReport {
        self.run_inner::<Q>(arena, None)
    }

    /// Run on the default scheduler while recording a [`SimTrace`] with
    /// `bins` queue-depth bins over the makespan.
    pub fn run_arena_traced(&mut self, arena: &JobArena, bins: usize) -> (SimReport, SimTrace) {
        let mut samples: Vec<(f64, u32)> = Vec::new();
        let report = self.run_inner::<CalendarQueue>(arena, Some(&mut samples));
        let trace = self.bin_trace(&samples, report.makespan_hours, bins);
        (report, trace)
    }

    /// Convert raw `(time, depth)` step samples into a binned trace.
    fn bin_trace(&self, samples: &[(f64, u32)], makespan: f64, bins: usize) -> SimTrace {
        let bins = bins.max(1);
        let mut queue_depth = vec![0.0f64; bins];
        let bin_hours = if makespan > 0.0 {
            makespan / bins as f64
        } else {
            0.0
        };
        if bin_hours > 0.0 {
            // Samples are a right-continuous step function of pending depth.
            let mut prev_t = 0.0f64;
            let mut depth = 0u32;
            let integrate = |from: f64, to: f64, d: u32, acc: &mut [f64]| {
                if d == 0 || to <= from {
                    return;
                }
                let (from, to) = (from.min(makespan), to.min(makespan));
                let mut lo = from;
                while lo < to {
                    let bin = ((lo / bin_hours) as usize).min(bins - 1);
                    let edge = ((bin + 1) as f64 * bin_hours).min(to);
                    acc[bin] += d as f64 * (edge - lo);
                    if edge <= lo {
                        break;
                    }
                    lo = edge;
                }
            };
            for &(t, d) in samples {
                integrate(prev_t, t, depth, &mut queue_depth);
                prev_t = t.max(prev_t);
                depth = d;
            }
            integrate(prev_t, makespan, depth, &mut queue_depth);
            for v in &mut queue_depth {
                *v /= bin_hours;
            }
        }
        SimTrace {
            bin_hours,
            queue_depth,
            site_names: self.sites.iter().map(|s| s.name.clone()).collect(),
            site_utilization: self.sites.iter().map(|s| s.utilization(makespan)).collect(),
            site_jobs_completed: self.sites.iter().map(|s| s.jobs_completed).collect(),
        }
    }

    /// The event loop. Jobs whose origin site is known seed a per-run
    /// replica catalogue, so data-aware policies have locality information
    /// to exploit. When `trace` is given, every pending-depth change is
    /// recorded as a `(time, depth)` step sample.
    fn run_inner<Q: EventScheduler>(
        &mut self,
        arena: &JobArena,
        mut trace: Option<&mut Vec<(f64, u32)>>,
    ) -> SimReport {
        let config = &self.config;
        let sites = &mut self.sites;

        // Map each interned origin symbol to a simulated site once, then
        // seed replicas with pure integer traffic.
        let origin_to_site: Vec<Option<usize>> = arena
            .origin_site_names()
            .iter()
            .map(|name| self.site_lookup.get(name).copied())
            .collect();
        let mut catalog = ReplicaCatalog::with_datasets(arena.n_datasets());
        for j in 0..arena.len() {
            let origin = arena.origin[j];
            if origin != NO_ORIGIN {
                if let Some(site) = origin_to_site[origin as usize] {
                    catalog.add_replica(arena.dataset[j], site as u32);
                }
            }
        }

        let mut queue = Q::default();
        for (i, &arrival) in arena.arrival_hours.iter().enumerate() {
            queue.push(arrival.max(0.0), EventKind::JobArrival { job: i as u32 });
        }

        let mut pending: Vec<u32> = Vec::new();
        let mut wait_hours = vec![0.0f64; arena.len()];
        let mut transfer_hours = vec![0.0f64; arena.len()];
        let mut arrival_time = vec![0.0f64; arena.len()];
        let mut completed = 0usize;
        let mut makespan: f64 = 0.0;
        let mut wan_bytes = 0.0f64;
        let mut rr_cursor = 0usize;

        while let Some(event) = queue.pop() {
            let now = event.time;
            match event.kind {
                EventKind::JobArrival { job } => {
                    arrival_time[job as usize] = now;
                    if !dispatch(
                        arena,
                        job,
                        now,
                        config,
                        sites,
                        &catalog,
                        &mut queue,
                        &mut wan_bytes,
                        &mut transfer_hours,
                        &mut rr_cursor,
                    ) {
                        pending.push(job);
                        if let Some(samples) = trace.as_deref_mut() {
                            samples.push((now, pending.len() as u32));
                        }
                    } else {
                        wait_hours[job as usize] = 0.0;
                    }
                }
                EventKind::TransferComplete { job, site } => {
                    // Wall time: CPU hours scaled by the site's speed relative
                    // to the reference, divided across the cores.
                    let j = job as usize;
                    let speed = sites[site as usize].hs23_per_core / config.reference_hs23;
                    let wall = (arena.cpu_hours[j] / arena.cores[j] as f64 / speed).max(1e-4);
                    queue.push(now + wall, EventKind::JobFinish { job, site });
                }
                EventKind::JobFinish { job, site } => {
                    let j = job as usize;
                    let speed = sites[site as usize].hs23_per_core / config.reference_hs23;
                    let wall = (arena.cpu_hours[j] / arena.cores[j] as f64 / speed).max(1e-4);
                    sites[site as usize].release(arena.cores[j], wall);
                    completed += 1;
                    makespan = makespan.max(now);

                    // Try to start parked jobs now that slots freed up:
                    // in-place, in arrival order, no per-event allocation.
                    let before = pending.len();
                    pending.retain(|&p| {
                        if dispatch(
                            arena,
                            p,
                            now,
                            config,
                            sites,
                            &catalog,
                            &mut queue,
                            &mut wan_bytes,
                            &mut transfer_hours,
                            &mut rr_cursor,
                        ) {
                            wait_hours[p as usize] = now - arrival_time[p as usize];
                            false
                        } else {
                            true
                        }
                    });
                    if pending.len() != before {
                        if let Some(samples) = trace.as_deref_mut() {
                            samples.push((now, pending.len() as u32));
                        }
                    }
                }
            }
        }

        let n = arena.len().max(1) as f64;
        let mean_utilization = if makespan > 0.0 {
            sites.iter().map(|s| s.utilization(makespan)).sum::<f64>() / sites.len().max(1) as f64
        } else {
            0.0
        };
        SimReport {
            policy: config.policy.name().to_string(),
            completed,
            makespan_hours: makespan,
            mean_wait_hours: wait_hours.iter().sum::<f64>() / n,
            mean_transfer_hours: transfer_hours.iter().sum::<f64>() / n,
            wan_bytes,
            mean_utilization,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::HeapQueue;
    use pandasim::{FilterFunnel, GeneratorConfig, WorkloadGenerator};

    fn small_jobs() -> (SiteCatalog, Vec<SimJob>) {
        let generator = WorkloadGenerator::new(GeneratorConfig::small());
        let gross = generator.generate();
        let funnel = FilterFunnel::apply(&gross);
        let jobs: Vec<SimJob> = funnel
            .records
            .iter()
            .take(400)
            .map(SimJob::from_record)
            .collect();
        (generator.sites().clone(), jobs)
    }

    #[test]
    fn all_jobs_complete() {
        let (catalog, jobs) = small_jobs();
        let mut sim = GridSimulator::new(&catalog, SimConfig::default());
        let report = sim.run(&jobs);
        assert_eq!(report.completed, jobs.len());
        assert!(report.makespan_hours > 0.0);
        assert!(report.mean_wait_hours >= 0.0);
        assert!(report.mean_utilization >= 0.0 && report.mean_utilization <= 1.0);
    }

    #[test]
    fn calendar_and_heap_schedulers_agree_exactly() {
        let (catalog, jobs) = small_jobs();
        let arena = JobArena::from_jobs(&jobs);
        for policy in BrokerPolicy::ALL {
            let config = SimConfig {
                policy,
                ..Default::default()
            };
            let mut heap_sim = GridSimulator::new(&catalog, config.clone());
            let mut cal_sim = GridSimulator::new(&catalog, config);
            let heap = heap_sim.run_arena_with::<HeapQueue>(&arena);
            let cal = cal_sim.run_arena_with::<CalendarQueue>(&arena);
            assert_eq!(heap, cal, "policy {}", policy.name());
        }
    }

    #[test]
    fn data_locality_moves_fewer_bytes_than_round_robin() {
        let (catalog, jobs) = small_jobs();
        let mut locality = GridSimulator::new(
            &catalog,
            SimConfig {
                policy: BrokerPolicy::DataLocality,
                ..Default::default()
            },
        );
        let mut round_robin = GridSimulator::new(
            &catalog,
            SimConfig {
                policy: BrokerPolicy::RoundRobin,
                ..Default::default()
            },
        );
        let locality_report = locality.run(&jobs);
        let rr_report = round_robin.run(&jobs);
        assert!(
            locality_report.wan_bytes < rr_report.wan_bytes,
            "locality {} vs round-robin {}",
            locality_report.wan_bytes,
            rr_report.wan_bytes
        );
    }

    #[test]
    fn empty_job_list_is_a_noop() {
        let (catalog, _) = small_jobs();
        let mut sim = GridSimulator::new(&catalog, SimConfig::default());
        let report = sim.run(&[]);
        assert_eq!(report.completed, 0);
        assert_eq!(report.makespan_hours, 0.0);
    }

    #[test]
    fn jobs_from_table_have_sane_fields() {
        let generator = WorkloadGenerator::new(GeneratorConfig::small());
        let gross = generator.generate();
        let funnel = FilterFunnel::apply(&gross);
        let table = pandasim::records_to_table(&funnel.records);
        let jobs = SimJob::from_table(&table).expect("full modelling table");
        assert_eq!(jobs.len(), table.n_rows());
        for job in jobs.iter().take(100) {
            assert!(job.arrival_hours >= 0.0);
            assert!(job.cpu_hours > 0.0);
            assert!(job.cores >= 1);
            assert!(!job.dataset.is_empty());
        }
    }

    #[test]
    fn slot_starved_grid_still_finishes_with_queueing() {
        let (catalog, jobs) = small_jobs();
        let mut sim = GridSimulator::new(
            &catalog,
            SimConfig {
                slot_fraction: 0.001, // extremely scarce slots
                ..Default::default()
            },
        );
        let report = sim.run(&jobs[..150.min(jobs.len())]);
        assert_eq!(report.completed, 150.min(jobs.len()));
        // With scarce slots some jobs must have waited.
        assert!(report.mean_wait_hours >= 0.0);
    }

    #[test]
    fn traced_run_matches_untraced_report() {
        let (catalog, jobs) = small_jobs();
        let arena = JobArena::from_jobs(&jobs);
        let mut plain = GridSimulator::new(&catalog, SimConfig::default());
        let mut traced = GridSimulator::new(&catalog, SimConfig::default());
        let report = plain.run_arena(&arena);
        let (traced_report, trace) = traced.run_arena_traced(&arena, 24);
        assert_eq!(report, traced_report, "tracing must not perturb the run");
        assert_eq!(trace.queue_depth.len(), 24);
        assert_eq!(trace.site_names.len(), trace.site_utilization.len());
        assert_eq!(trace.site_names.len(), trace.site_jobs_completed.len());
        assert!((trace.bin_hours * 24.0 - report.makespan_hours).abs() < 1e-9);
        assert!(trace.queue_depth.iter().all(|&d| d >= 0.0 && d.is_finite()));
        let total_completed: u64 = trace.site_jobs_completed.iter().sum();
        assert_eq!(total_completed as usize, report.completed);
    }

    #[test]
    fn queue_depth_trace_sees_slot_starvation() {
        // A single 8-slot site (the floor) with a burst of 4-core jobs at
        // t=0 can run only two at a time — the rest must park.
        let catalog = SiteCatalog::new(vec![pandasim::Site {
            name: "ONLY".to_string(),
            hs23_per_core: 15.0,
            capacity_weight: 1.0,
            reliability: 1.0,
            slots: 8,
            tier: 1,
        }]);
        let mut arena = JobArena::new();
        for _ in 0..32 {
            arena.push(0.0, 4, 1.0, "ds", 0.0, Some("ONLY"));
        }
        let mut starved = GridSimulator::new(&catalog, SimConfig::default());
        let (report, trace) = starved.run_arena_traced(&arena, 16);
        assert_eq!(report.completed, 32);
        assert!(report.mean_wait_hours > 0.0);
        assert!(
            trace.queue_depth.iter().any(|&d| d > 0.0),
            "a slot-starved grid must show queueing in the trace"
        );
    }
}
