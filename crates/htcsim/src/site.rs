//! Execution sites with slot accounting.

use serde::{Deserialize, Serialize};

/// Runtime state of one computing site in the simulation.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SimSite {
    /// Site name.
    pub name: String,
    /// Total execution slots (cores available to the simulated share).
    pub slots: u32,
    /// Slots currently occupied.
    pub busy: u32,
    /// HS23 benchmark score per core.
    pub hs23_per_core: f64,
    /// Cumulative core-hours delivered (for utilisation accounting).
    pub core_hours_delivered: f64,
    /// Number of jobs completed at this site.
    pub jobs_completed: u64,
}

impl SimSite {
    /// New idle site.
    pub fn new(name: impl Into<String>, slots: u32, hs23_per_core: f64) -> Self {
        assert!(slots > 0, "a site needs at least one slot");
        assert!(hs23_per_core > 0.0, "HS23 score must be positive");
        Self {
            name: name.into(),
            slots,
            busy: 0,
            hs23_per_core,
            core_hours_delivered: 0.0,
            jobs_completed: 0,
        }
    }

    /// Free slots right now.
    pub fn free_slots(&self) -> u32 {
        self.slots - self.busy
    }

    /// Whether the site can start a job needing `cores` cores.
    pub fn can_run(&self, cores: u32) -> bool {
        self.free_slots() >= cores
    }

    /// Occupy `cores` slots.
    pub fn acquire(&mut self, cores: u32) {
        assert!(self.can_run(cores), "site {} over-committed", self.name);
        self.busy += cores;
    }

    /// Release `cores` slots after a job of `wall_hours` finished.
    pub fn release(&mut self, cores: u32, wall_hours: f64) {
        assert!(self.busy >= cores, "releasing more cores than busy");
        self.busy -= cores;
        self.core_hours_delivered += cores as f64 * wall_hours;
        self.jobs_completed += 1;
    }

    /// Fraction of total slot-hours used over a horizon.
    pub fn utilization(&self, horizon_hours: f64) -> f64 {
        if horizon_hours <= 0.0 {
            return 0.0;
        }
        (self.core_hours_delivered / (self.slots as f64 * horizon_hours)).clamp(0.0, 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slot_accounting() {
        let mut s = SimSite::new("BNL", 10, 17.0);
        assert_eq!(s.free_slots(), 10);
        assert!(s.can_run(8));
        s.acquire(8);
        assert_eq!(s.free_slots(), 2);
        assert!(!s.can_run(4));
        s.release(8, 2.0);
        assert_eq!(s.free_slots(), 10);
        assert_eq!(s.jobs_completed, 1);
        assert!((s.core_hours_delivered - 16.0).abs() < 1e-12);
    }

    #[test]
    fn utilization_is_bounded() {
        let mut s = SimSite::new("T2", 4, 12.0);
        s.acquire(4);
        s.release(4, 10.0);
        assert!((s.utilization(20.0) - 0.5).abs() < 1e-12);
        assert_eq!(s.utilization(0.0), 0.0);
        assert!(s.utilization(1.0) <= 1.0);
    }

    #[test]
    #[should_panic(expected = "over-committed")]
    fn overcommit_panics() {
        let mut s = SimSite::new("X", 2, 10.0);
        s.acquire(3);
    }

    #[test]
    #[should_panic(expected = "at least one slot")]
    fn zero_slots_panics() {
        let _ = SimSite::new("X", 0, 10.0);
    }
}
