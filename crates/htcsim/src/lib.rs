//! Event-driven simulator of a distributed high-throughput-computing grid.
//!
//! The paper motivates its surrogate models as a safe source of training and
//! calibration data for optimising *data placement and job allocation* on the
//! globally distributed ATLAS computing grid (Fig. 2), and explicitly lists
//! "more realistic workload inputs to calibrate large-scale event-based
//! simulations" as a use of the synthetic data. This crate is that
//! downstream consumer: a discrete-event simulation of computing sites with
//! bounded execution slots, a replica catalogue with wide-area transfer
//! costs, and pluggable brokerage policies. Feeding it a real workload and a
//! surrogate-generated workload and comparing the simulator's responses is an
//! additional, application-level check of surrogate fidelity (the
//! `downstream` and `simloop` experiment binaries).
//!
//! Built for planetary scale: jobs live in struct-of-arrays
//! [`arena`] storage with interned `u32` dataset/site ids, events flow
//! through a bucketed [`event::CalendarQueue`] (amortised `O(1)` vs the
//! heap's `O(log n)`, byte-identical pop order), and the per-event path
//! performs no allocation — tens of millions of job events per run.
//!
//! * [`event`] — the time-ordered event schedulers (calendar queue + heap
//!   oracle),
//! * [`arena`] — columnar job storage with interned identifiers,
//! * [`site`] — execution sites with slot accounting,
//! * [`storage`] — symbol interning, the dataset replica catalogue, and the
//!   transfer-time model,
//! * [`broker`] — job-to-site brokerage policies,
//! * [`sim`] — the [`GridSimulator`](sim::GridSimulator) main loop, its
//!   summary report, and the time-resolved [`SimTrace`](sim::SimTrace).

pub mod arena;
pub mod broker;
pub mod event;
pub mod sim;
pub mod site;
pub mod storage;

pub use arena::{JobArena, SimInputError, NO_ORIGIN};
pub use broker::BrokerPolicy;
pub use event::{CalendarQueue, Event, EventKind, EventScheduler, HeapQueue};
pub use sim::{GridSimulator, SimConfig, SimJob, SimReport, SimTrace};
pub use site::SimSite;
pub use storage::{DatasetId, ReplicaCatalog, SiteId, SymbolTable, TransferModel};
