//! Event-driven simulator of a distributed high-throughput-computing grid.
//!
//! The paper motivates its surrogate models as a safe source of training and
//! calibration data for optimising *data placement and job allocation* on the
//! globally distributed ATLAS computing grid (Fig. 2), and explicitly lists
//! "more realistic workload inputs to calibrate large-scale event-based
//! simulations" as a use of the synthetic data. This crate is that
//! downstream consumer: a discrete-event simulation of computing sites with
//! bounded execution slots, a replica catalogue with wide-area transfer
//! costs, and pluggable brokerage policies. Feeding it a real workload and a
//! surrogate-generated workload and comparing the simulator's responses is an
//! additional, application-level check of surrogate fidelity (the
//! `downstream` experiment binary).
//!
//! * [`event`] — the time-ordered event queue,
//! * [`site`] — execution sites with slot accounting,
//! * [`storage`] — dataset replica catalogue and the transfer-time model,
//! * [`broker`] — job-to-site brokerage policies,
//! * [`sim`] — the [`GridSimulator`](sim::GridSimulator) main loop and its
//!   summary report.

pub mod broker;
pub mod event;
pub mod sim;
pub mod site;
pub mod storage;

pub use broker::BrokerPolicy;
pub use event::{Event, EventKind, EventQueue};
pub use sim::{GridSimulator, SimConfig, SimJob, SimReport};
pub use site::SimSite;
pub use storage::{ReplicaCatalog, TransferModel};
