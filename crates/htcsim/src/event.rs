//! The time-ordered event queues driving the simulation.
//!
//! Two interchangeable schedulers implement [`EventScheduler`]:
//!
//! * [`HeapQueue`] — the seed binary-heap queue, preserved verbatim as the
//!   frozen oracle and perf baseline (`O(log n)` push/pop);
//! * [`CalendarQueue`] — a bucketed calendar queue (Brown 1988): events
//!   hash into a circular array of time buckets sized so the head bucket
//!   holds `O(1)` events, giving amortised constant-time operations at the
//!   tens-of-millions-of-events scale the planetary workloads need.
//!
//! Both pop in the identical total order — ascending `(time, sequence)`,
//! where `sequence` is the monotone insertion counter — so equal-timestamp
//! events drain in FIFO order and a simulation run is byte-identical under
//! either scheduler (pinned by the `queue_oracle` integration suite).

use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// What happens when an event fires. Indices are `u32` arena handles into
/// the simulator's job/site storage, keeping an [`Event`] at 24 bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// A job enters the brokerage queue.
    JobArrival {
        /// Index into the simulator's job arena.
        job: u32,
    },
    /// A job's input transfer completes and the job can start computing.
    TransferComplete {
        /// Index into the simulator's job arena.
        job: u32,
        /// Site the job was brokered to.
        site: u32,
    },
    /// A job finishes and frees its slot.
    JobFinish {
        /// Index into the simulator's job arena.
        job: u32,
        /// Site the job ran on.
        site: u32,
    },
}

/// A scheduled event.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Event {
    /// Simulation time in hours.
    pub time: f64,
    /// Monotone sequence number breaking ties deterministically.
    pub sequence: u64,
    /// The event payload.
    pub kind: EventKind,
}

impl Eq for Event {}

impl Ord for Event {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest event pops first.
        other
            .time
            .partial_cmp(&self.time)
            .unwrap_or(Ordering::Equal)
            .then_with(|| other.sequence.cmp(&self.sequence))
    }
}

impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// The scheduler contract shared by [`HeapQueue`] and [`CalendarQueue`]:
/// `pop` returns pending events in ascending `(time, sequence)` order.
pub trait EventScheduler: Default {
    /// Schedule an event at an absolute time (must be finite).
    fn push(&mut self, time: f64, kind: EventKind);
    /// Pop the earliest event (FIFO among equal timestamps).
    fn pop(&mut self) -> Option<Event>;
    /// Number of pending events.
    fn len(&self) -> usize;
    /// Whether the queue is empty.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Min-heap of events keyed by time (ties broken by insertion order) — the
/// seed scheduler, kept as the oracle the calendar queue is pinned against
/// and as the frozen baseline of the `htcsim_throughput` perf entries.
#[derive(Debug, Default)]
pub struct HeapQueue {
    heap: BinaryHeap<Event>,
    next_sequence: u64,
}

impl HeapQueue {
    /// Empty queue.
    pub fn new() -> Self {
        Self::default()
    }
}

impl EventScheduler for HeapQueue {
    fn push(&mut self, time: f64, kind: EventKind) {
        assert!(time.is_finite(), "event time must be finite");
        let sequence = self.next_sequence;
        self.next_sequence += 1;
        self.heap.push(Event {
            time,
            sequence,
            kind,
        });
    }

    fn pop(&mut self) -> Option<Event> {
        self.heap.pop()
    }

    fn len(&self) -> usize {
        self.heap.len()
    }
}

/// Smallest calendar size (a power of two, so bucket mapping is a mask).
const MIN_BUCKET_BITS: u32 = 6;

/// Largest calendar size. Past this point more buckets stop paying: each
/// bucket is a separately-allocated `Vec`, so a million-bucket calendar
/// turns every push into a cold random access, while a sorted bucket
/// absorbs tens of resident events at the cost of a short `memmove`.
/// Deep queues therefore grow occupancy, not bucket count.
const MAX_BUCKET_BITS: u32 = 16;

/// Descending `(time, sequence)` order, so the queue-minimum of a sorted
/// bucket sits at the back where `Vec::pop` removes it in `O(1)`.
#[inline]
fn descending(a: &Event, b: &Event) -> Ordering {
    b.time
        .partial_cmp(&a.time)
        .unwrap_or(Ordering::Equal)
        .then_with(|| b.sequence.cmp(&a.sequence))
}

/// One calendar day: its events, kept sorted descending by
/// `(time, sequence)` whenever `sorted` is set (resize redistributes raw
/// and re-sorts lazily on the cursor's first visit).
#[derive(Debug, Clone, Default)]
struct Bucket {
    events: Vec<Event>,
    sorted: bool,
}

impl Bucket {
    /// Insert preserving the descending invariant when it holds (a
    /// binary-search position plus a short memmove), or defer to the lazy
    /// re-sort when it does not.
    #[inline]
    fn insert(&mut self, event: Event) {
        if self.sorted {
            let at = self
                .events
                .partition_point(|e| descending(e, &event) == Ordering::Less);
            self.events.insert(at, event);
        } else {
            self.events.push(event);
        }
    }

    /// The bucket's `(time, sequence)`-minimum without assuming sortedness.
    fn min(&self) -> Option<&Event> {
        if self.sorted {
            self.events.last()
        } else {
            self.events.iter().min_by(|a, b| descending(b, a))
        }
    }
}

/// A bucketed calendar queue with amortised `O(1)` push/pop.
///
/// Events hash by `time / width` into a circular array of buckets (one
/// "day" each), each kept sorted descending so the day's earliest event is
/// an `O(1)` `Vec::pop` off the back; a pop scans forward from the current
/// day, so equal timestamps drain in insertion order exactly like
/// [`HeapQueue`]. The calendar resizes (doubling/halving, re-estimating
/// the bucket width from the live event population) to hold the average
/// occupancy near a cache-line's worth of events per bucket, and falls
/// back to a direct minimum search when a whole "year" of buckets turns up
/// empty — the sparse-queue escape hatch that keeps pops from spinning
/// over empty days.
#[derive(Debug)]
pub struct CalendarQueue {
    buckets: Vec<Bucket>,
    /// `buckets.len() - 1`; the length is a power of two.
    mask: usize,
    /// Hours spanned by one bucket.
    width: f64,
    /// Cursor: the bucket the virtual clock is currently in.
    current: usize,
    /// Upper time bound of the cursor bucket.
    bucket_top: f64,
    len: usize,
    next_sequence: u64,
}

impl Default for CalendarQueue {
    fn default() -> Self {
        Self::with_bits(MIN_BUCKET_BITS, 1.0)
    }
}

impl CalendarQueue {
    /// Empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    fn with_bits(bits: u32, width: f64) -> Self {
        let n = 1usize << bits;
        Self {
            buckets: vec![
                Bucket {
                    events: Vec::new(),
                    sorted: true,
                };
                n
            ],
            mask: n - 1,
            width,
            current: 0,
            bucket_top: width,
            len: 0,
            next_sequence: 0,
        }
    }

    #[inline]
    fn bucket_of(&self, time: f64) -> usize {
        // Times are non-negative in the simulator; clamp defensively so a
        // (finite) negative time maps to day zero instead of wrapping.
        let day = (time.max(0.0) / self.width) as u64;
        (day as usize) & self.mask
    }

    /// Point the cursor at the day containing `time`.
    fn seek(&mut self, time: f64) {
        let day = (time.max(0.0) / self.width).floor();
        self.current = (day as u64 as usize) & self.mask;
        self.bucket_top = (day + 1.0) * self.width;
    }

    /// Rebuild the calendar with `bits` buckets, re-estimating the bucket
    /// width from the live events so average occupancy stays near one.
    fn resize(&mut self, bits: u32) {
        let mut events: Vec<Event> = Vec::with_capacity(self.len);
        for bucket in &mut self.buckets {
            events.append(&mut bucket.events);
        }
        let width = Self::estimate_width(&events).unwrap_or(self.width);
        *self = Self::with_bits(bits, width);
        if let Some(first) = events.iter().min_by(|a, b| {
            a.time
                .partial_cmp(&b.time)
                .unwrap_or(Ordering::Equal)
                .then_with(|| a.sequence.cmp(&b.sequence))
        }) {
            self.seek(first.time);
        }
        // Preserve sequence numbers verbatim: FIFO ties survive resizes.
        self.next_sequence = events.iter().map(|e| e.sequence + 1).max().unwrap_or(0);
        self.len = events.len();
        for event in events {
            let b = self.bucket_of(event.time);
            // Raw append; the descending invariant is restored lazily when
            // the cursor first visits the bucket (one sort instead of n
            // binary inserts).
            self.buckets[b].events.push(event);
            self.buckets[b].sorted = false;
        }
    }

    /// Robust bucket width from the live population: a few mean gaps over
    /// the lower 90% of event times. Sizing off the full `(hi - lo)` span
    /// lets a small tail of far-future events (long WAN transfers) inflate
    /// the width by orders of magnitude, smearing the near-term mass into
    /// overfull buckets whose per-pop min-scan then dominates; cutting the
    /// top decile keeps head buckets at `O(1)` occupancy regardless of the
    /// tail. `None` when the population is too small or degenerate to
    /// estimate from (the caller keeps the previous width).
    fn estimate_width(events: &[Event]) -> Option<f64> {
        if events.len() < 2 {
            return None;
        }
        let mut times: Vec<f64> = events.iter().map(|e| e.time).collect();
        let cut = ((times.len() * 9) / 10).clamp(1, times.len() - 1);
        times.select_nth_unstable_by(cut, |a, b| a.partial_cmp(b).unwrap_or(Ordering::Equal));
        let p90 = times[cut];
        let lo = times[..cut].iter().copied().fold(p90, f64::min);
        if p90 > lo {
            return Some(((p90 - lo) / cut as f64 * 3.0).max(1e-9));
        }
        // Degenerate lower mass (all ties): fall back to the full span.
        let hi = times.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        if hi > lo {
            Some(((hi - lo) / times.len() as f64 * 3.0).max(1e-9))
        } else {
            None
        }
    }

    /// Pop the `(time, sequence)`-minimum of the cursor bucket if it is due
    /// before `limit`, sorting the bucket first if a resize left it raw.
    fn pop_due(&mut self, limit: f64) -> Option<Event> {
        let bucket = &mut self.buckets[self.current];
        if bucket.events.is_empty() {
            return None;
        }
        if !bucket.sorted {
            bucket.events.sort_unstable_by(descending);
            bucket.sorted = true;
        }
        let head = *bucket.events.last().expect("bucket is non-empty");
        if head.time >= limit {
            return None;
        }
        bucket.events.pop();
        self.len -= 1;
        Some(head)
    }

    /// Bucket holding the global `(time, sequence)`-minimum — the sparse
    /// fallback after a fruitless full-year scan.
    fn direct_min_bucket(&self) -> Option<usize> {
        let mut best: Option<(usize, &Event)> = None;
        for (b, bucket) in self.buckets.iter().enumerate() {
            let Some(e) = bucket.min() else { continue };
            let better = match best {
                None => true,
                Some((_, cur)) => {
                    e.time < cur.time || (e.time == cur.time && e.sequence < cur.sequence)
                }
            };
            if better {
                best = Some((b, e));
            }
        }
        best.map(|(b, _)| b)
    }
}

impl EventScheduler for CalendarQueue {
    fn push(&mut self, time: f64, kind: EventKind) {
        assert!(time.is_finite(), "event time must be finite");
        let sequence = self.next_sequence;
        self.next_sequence += 1;
        let event = Event {
            time,
            sequence,
            kind,
        };
        if self.len == 0 || time < self.bucket_top - self.width {
            // First event, or one scheduled before the cursor's day (the
            // simulator never does this, but the queue stays correct for
            // arbitrary streams): rewind the cursor so the pop scan starts
            // no later than this event.
            self.seek(time);
        }
        let b = self.bucket_of(time);
        self.buckets[b].insert(event);
        self.len += 1;
        if self.len > 2 * self.buckets.len() && self.buckets.len() < (1 << MAX_BUCKET_BITS) {
            self.resize(self.buckets.len().trailing_zeros() + 1);
        }
    }

    fn pop(&mut self) -> Option<Event> {
        if self.len == 0 {
            return None;
        }
        if self.buckets.len() > (1 << MIN_BUCKET_BITS) && self.len < self.buckets.len() / 4 {
            self.resize(self.buckets.len().trailing_zeros() - 1);
        }
        for _ in 0..=self.mask {
            let limit = self.bucket_top;
            if let Some(event) = self.pop_due(limit) {
                return Some(event);
            }
            self.current = (self.current + 1) & self.mask;
            self.bucket_top += self.width;
        }
        // A full year of empty days: jump straight to the global minimum.
        let b = self
            .direct_min_bucket()
            .expect("len > 0 but no event found in any bucket");
        let time = self.buckets[b]
            .min()
            .expect("direct-min bucket is non-empty")
            .time;
        self.seek(time);
        self.current = b;
        self.pop_due(f64::INFINITY)
    }

    fn len(&self) -> usize {
        self.len
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain<Q: EventScheduler>(q: &mut Q) -> Vec<Event> {
        std::iter::from_fn(|| q.pop()).collect()
    }

    #[test]
    fn events_pop_in_time_order() {
        fn check<Q: EventScheduler>() {
            let mut q = Q::default();
            q.push(5.0, EventKind::JobArrival { job: 0 });
            q.push(1.0, EventKind::JobArrival { job: 1 });
            q.push(3.0, EventKind::JobArrival { job: 2 });
            let order: Vec<f64> = drain(&mut q).iter().map(|e| e.time).collect();
            assert_eq!(order, vec![1.0, 3.0, 5.0]);
        }
        check::<HeapQueue>();
        check::<CalendarQueue>();
    }

    #[test]
    fn ties_break_by_insertion_order() {
        fn check<Q: EventScheduler>() {
            let mut q = Q::default();
            q.push(2.0, EventKind::JobArrival { job: 10 });
            q.push(2.0, EventKind::JobArrival { job: 20 });
            assert_eq!(q.pop().unwrap().kind, EventKind::JobArrival { job: 10 });
            assert_eq!(q.pop().unwrap().kind, EventKind::JobArrival { job: 20 });
        }
        check::<HeapQueue>();
        check::<CalendarQueue>();
    }

    #[test]
    fn len_and_empty_track_contents() {
        fn check<Q: EventScheduler>() {
            let mut q = Q::default();
            assert!(q.is_empty());
            q.push(1.0, EventKind::JobFinish { job: 0, site: 0 });
            assert_eq!(q.len(), 1);
            assert!(q.pop().is_some());
            assert!(q.is_empty());
            assert!(q.pop().is_none());
        }
        check::<HeapQueue>();
        check::<CalendarQueue>();
        let mut q = CalendarQueue::new();
        assert!(q.is_empty());
        q.push(1.0, EventKind::JobFinish { job: 0, site: 0 });
        assert_eq!(q.len(), 1);
        q.pop();
        assert!(q.is_empty());
        assert!(q.pop().is_none());
    }

    #[test]
    #[should_panic(expected = "event time must be finite")]
    fn non_finite_time_panics_on_the_calendar() {
        let mut q = CalendarQueue::new();
        q.push(f64::NAN, EventKind::JobArrival { job: 0 });
    }

    #[test]
    #[should_panic(expected = "event time must be finite")]
    fn non_finite_time_panics_on_the_heap() {
        let mut q = HeapQueue::new();
        q.push(f64::INFINITY, EventKind::JobArrival { job: 0 });
    }

    #[test]
    fn calendar_survives_growth_and_shrink_resizes() {
        let mut q = CalendarQueue::new();
        // Push far more events than the initial 64 buckets, with heavy
        // duplication to exercise FIFO ties across resizes.
        let n = 4096u32;
        for i in 0..n {
            let t = f64::from(i % 97) * 0.25;
            q.push(t, EventKind::JobArrival { job: i });
        }
        assert_eq!(q.len(), n as usize);
        let events = drain(&mut q);
        assert_eq!(events.len(), n as usize);
        for pair in events.windows(2) {
            assert!(
                pair[0].time < pair[1].time
                    || (pair[0].time == pair[1].time && pair[0].sequence < pair[1].sequence),
                "out of order: {:?} then {:?}",
                pair[0],
                pair[1]
            );
        }
    }

    #[test]
    fn calendar_handles_sparse_far_future_events() {
        let mut q = CalendarQueue::new();
        q.push(0.5, EventKind::JobArrival { job: 0 });
        // Six orders of magnitude later: the direct-search fallback must
        // find it instead of spinning over empty days.
        q.push(500_000.0, EventKind::JobArrival { job: 1 });
        assert_eq!(q.pop().unwrap().kind, EventKind::JobArrival { job: 0 });
        assert_eq!(q.pop().unwrap().kind, EventKind::JobArrival { job: 1 });
        assert!(q.pop().is_none());
    }

    #[test]
    fn calendar_accepts_pushes_behind_the_cursor() {
        let mut q = CalendarQueue::new();
        q.push(100.0, EventKind::JobArrival { job: 0 });
        assert_eq!(q.pop().unwrap().time, 100.0);
        // Not a legal DES schedule (time flows backwards), but the queue
        // still drains in global order.
        q.push(1.0, EventKind::JobArrival { job: 1 });
        q.push(50.0, EventKind::JobArrival { job: 2 });
        let order: Vec<f64> = drain(&mut q).iter().map(|e| e.time).collect();
        assert_eq!(order, vec![1.0, 50.0]);
    }
}
