//! The time-ordered event queue driving the simulation.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// What happens when an event fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// A job enters the brokerage queue.
    JobArrival {
        /// Index into the simulator's job list.
        job: usize,
    },
    /// A job's input transfer completes and the job can start computing.
    TransferComplete {
        /// Index into the simulator's job list.
        job: usize,
        /// Site the job was brokered to.
        site: usize,
    },
    /// A job finishes and frees its slot.
    JobFinish {
        /// Index into the simulator's job list.
        job: usize,
        /// Site the job ran on.
        site: usize,
    },
}

/// A scheduled event.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Event {
    /// Simulation time in hours.
    pub time: f64,
    /// Monotone sequence number breaking ties deterministically.
    pub sequence: u64,
    /// The event payload.
    pub kind: EventKind,
}

impl Eq for Event {}

impl Ord for Event {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest event pops first.
        other
            .time
            .partial_cmp(&self.time)
            .unwrap_or(Ordering::Equal)
            .then_with(|| other.sequence.cmp(&self.sequence))
    }
}

impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Min-heap of events keyed by time (ties broken by insertion order).
#[derive(Debug, Default)]
pub struct EventQueue {
    heap: BinaryHeap<Event>,
    next_sequence: u64,
}

impl EventQueue {
    /// Empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Schedule an event at an absolute time.
    pub fn push(&mut self, time: f64, kind: EventKind) {
        assert!(time.is_finite(), "event time must be finite");
        let sequence = self.next_sequence;
        self.next_sequence += 1;
        self.heap.push(Event {
            time,
            sequence,
            kind,
        });
    }

    /// Pop the earliest event.
    pub fn pop(&mut self) -> Option<Event> {
        self.heap.pop()
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_pop_in_time_order() {
        let mut q = EventQueue::new();
        q.push(5.0, EventKind::JobArrival { job: 0 });
        q.push(1.0, EventKind::JobArrival { job: 1 });
        q.push(3.0, EventKind::JobArrival { job: 2 });
        let order: Vec<f64> = std::iter::from_fn(|| q.pop()).map(|e| e.time).collect();
        assert_eq!(order, vec![1.0, 3.0, 5.0]);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        q.push(2.0, EventKind::JobArrival { job: 10 });
        q.push(2.0, EventKind::JobArrival { job: 20 });
        let first = q.pop().unwrap();
        let second = q.pop().unwrap();
        assert_eq!(first.kind, EventKind::JobArrival { job: 10 });
        assert_eq!(second.kind, EventKind::JobArrival { job: 20 });
    }

    #[test]
    fn len_and_empty_track_contents() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        q.push(1.0, EventKind::JobFinish { job: 0, site: 0 });
        assert_eq!(q.len(), 1);
        q.pop();
        assert!(q.is_empty());
        assert!(q.pop().is_none());
    }

    #[test]
    #[should_panic(expected = "event time must be finite")]
    fn non_finite_time_panics() {
        let mut q = EventQueue::new();
        q.push(f64::NAN, EventKind::JobArrival { job: 0 });
    }
}
