//! The common interface of all surrogate models.

use std::fmt;

use tabular::{Table, TabularError};

use crate::fault::FitControl;

/// Errors raised while fitting or sampling a surrogate model.
#[derive(Debug, Clone, PartialEq)]
pub enum SurrogateError {
    /// The model was asked to sample before being fitted.
    NotFitted(&'static str),
    /// The training table was unusable (empty, wrong schema, …).
    InvalidTrainingData(String),
    /// An underlying tabular operation failed.
    Tabular(TabularError),
    /// The fit was cancelled by its [`crate::fault::CellBudget`] after
    /// completing this many epochs.
    BudgetExceeded {
        /// Epochs that finished before the budget tripped.
        completed_epochs: usize,
    },
    /// Training diverged: the mean loss of this epoch was NaN or infinite.
    NonFiniteLoss {
        /// 0-based epoch whose mean loss was non-finite.
        epoch: usize,
    },
    /// The fit panicked; the panic was captured and lowered to this error so
    /// one poisoned model never takes down a parallel run.
    Panicked {
        /// The panic payload, rendered as a string.
        message: String,
    },
}

impl fmt::Display for SurrogateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SurrogateError::NotFitted(model) => write!(f, "{model} sampled before fit"),
            SurrogateError::InvalidTrainingData(msg) => {
                write!(f, "invalid training data: {msg}")
            }
            SurrogateError::Tabular(e) => write!(f, "tabular error: {e}"),
            SurrogateError::BudgetExceeded { completed_epochs } => {
                write!(f, "budget exceeded after {completed_epochs} epochs")
            }
            SurrogateError::NonFiniteLoss { epoch } => {
                write!(f, "non-finite training loss at epoch {epoch}")
            }
            SurrogateError::Panicked { message } => {
                write!(f, "fit panicked: {message}")
            }
        }
    }
}

impl std::error::Error for SurrogateError {}

impl From<TabularError> for SurrogateError {
    fn from(value: TabularError) -> Self {
        SurrogateError::Tabular(value)
    }
}

/// One sampling request inside a [`TabularGenerator::sample_batch`] call:
/// how many rows to draw and under which seed.
///
/// Each spec is its own deterministic RNG stream — batching specs together
/// never changes any spec's output relative to a standalone
/// [`TabularGenerator::sample`] call with the same `(rows, seed)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SampleSpec {
    /// Synthetic rows to draw for this request.
    pub rows: usize,
    /// Seed of this request's RNG stream.
    pub seed: u64,
}

impl SampleSpec {
    /// Bundle a row count with its sampling seed.
    pub fn new(rows: usize, seed: u64) -> Self {
        Self { rows, seed }
    }

    /// Total rows across a batch of specs.
    pub fn total_rows(specs: &[SampleSpec]) -> usize {
        specs.iter().map(|s| s.rows).sum()
    }

    /// Rows of the `2ᵏ`-padded stacked batch the MLP-backed generators run
    /// their coalesced forward passes over: the next power of two at or
    /// above the total (and at least 1), so the packed kernels always see
    /// power-of-two row blocks. Padding rows are zeros, computed and then
    /// discarded — row-independent kernels make them invisible to every
    /// real row.
    pub fn padded_rows(specs: &[SampleSpec]) -> usize {
        Self::total_rows(specs).next_power_of_two()
    }
}

/// A generative model over mixed-type tabular data.
///
/// Implementations are deterministic given the seeds in their configuration,
/// so experiments are reproducible end to end.
pub trait TabularGenerator {
    /// Human-readable model name as used in the paper's tables.
    fn name(&self) -> &'static str;

    /// Fit the model to a training table.
    fn fit(&mut self, train: &Table) -> Result<(), SurrogateError>;

    /// Fit under a cooperative cancellation token.
    ///
    /// Models with epoch loops override this to call
    /// [`FitControl::check_epoch`] once per epoch, so a
    /// [`crate::fault::CellBudget`] can stop a runaway fit with a typed
    /// [`SurrogateError::BudgetExceeded`]. The default ignores the token —
    /// correct for near-instant fits like SMOTE, where a budget is a
    /// documented no-op.
    fn fit_with_control(
        &mut self,
        train: &Table,
        control: &FitControl,
    ) -> Result<(), SurrogateError> {
        let _ = control;
        self.fit(train)
    }

    /// Sample `n` synthetic rows with the same schema as the training table.
    fn sample(&self, n: usize, seed: u64) -> Result<Table, SurrogateError>;

    /// Sample `n` rows on the reduced-precision `f32` inference tier.
    ///
    /// Models whose sampling path is dominated by MLP inference override
    /// this to run the network forward passes in `f32` (double the SIMD
    /// lanes of the packed kernels), drawing the *same* RNG stream as
    /// [`TabularGenerator::sample`] so the two paths differ only by
    /// precision. Results are still fully deterministic given the seed, but
    /// are **not** bit-identical to the `f64` path — the end-to-end tests
    /// bound the distributional deltas (Wasserstein/JSD) instead. The
    /// default falls back to the `f64` path, so every generator supports
    /// the call.
    fn sample_f32(&self, n: usize, seed: u64) -> Result<Table, SurrogateError> {
        self.sample(n, seed)
    }

    /// Sample several independent requests in one call, one output table per
    /// spec, in spec order.
    ///
    /// The contract is **byte-identity**: `sample_batch(specs)[i]` equals
    /// `sample(specs[i].rows, specs[i].seed)` exactly, for every spec and
    /// every batch composition. MLP-backed generators override this to draw
    /// each spec's noise from its own RNG stream, stack the per-spec blocks
    /// into one `2ᵏ`-row-padded matrix, and run a *single* packed-kernel
    /// forward pass per network step (reusing one packed buffer across the
    /// batch) before splitting the rows back out — the serving loop's
    /// micro-batching rides on this. Identity holds because every kernel on
    /// the path computes each output row from its input row alone, with a
    /// row-count-independent reduction order. The default handles the specs
    /// sequentially, which satisfies the contract trivially.
    fn sample_batch(&self, specs: &[SampleSpec]) -> Result<Vec<Table>, SurrogateError> {
        specs.iter().map(|s| self.sample(s.rows, s.seed)).collect()
    }
}
