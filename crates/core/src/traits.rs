//! The common interface of all surrogate models.

use std::fmt;

use tabular::{Table, TabularError};

/// Errors raised while fitting or sampling a surrogate model.
#[derive(Debug, Clone, PartialEq)]
pub enum SurrogateError {
    /// The model was asked to sample before being fitted.
    NotFitted(&'static str),
    /// The training table was unusable (empty, wrong schema, …).
    InvalidTrainingData(String),
    /// An underlying tabular operation failed.
    Tabular(TabularError),
}

impl fmt::Display for SurrogateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SurrogateError::NotFitted(model) => write!(f, "{model} sampled before fit"),
            SurrogateError::InvalidTrainingData(msg) => {
                write!(f, "invalid training data: {msg}")
            }
            SurrogateError::Tabular(e) => write!(f, "tabular error: {e}"),
        }
    }
}

impl std::error::Error for SurrogateError {}

impl From<TabularError> for SurrogateError {
    fn from(value: TabularError) -> Self {
        SurrogateError::Tabular(value)
    }
}

/// A generative model over mixed-type tabular data.
///
/// Implementations are deterministic given the seeds in their configuration,
/// so experiments are reproducible end to end.
pub trait TabularGenerator {
    /// Human-readable model name as used in the paper's tables.
    fn name(&self) -> &'static str;

    /// Fit the model to a training table.
    fn fit(&mut self, train: &Table) -> Result<(), SurrogateError>;

    /// Sample `n` synthetic rows with the same schema as the training table.
    fn sample(&self, n: usize, seed: u64) -> Result<Table, SurrogateError>;

    /// Sample `n` rows on the reduced-precision `f32` inference tier.
    ///
    /// Models whose sampling path is dominated by MLP inference override
    /// this to run the network forward passes in `f32` (double the SIMD
    /// lanes of the packed kernels), drawing the *same* RNG stream as
    /// [`TabularGenerator::sample`] so the two paths differ only by
    /// precision. Results are still fully deterministic given the seed, but
    /// are **not** bit-identical to the `f64` path — the end-to-end tests
    /// bound the distributional deltas (Wasserstein/JSD) instead. The
    /// default falls back to the `f64` path, so every generator supports
    /// the call.
    fn sample_f32(&self, n: usize, seed: u64) -> Result<Table, SurrogateError> {
        self.sample(n, seed)
    }
}
