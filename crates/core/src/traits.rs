//! The common interface of all surrogate models.

use std::fmt;

use tabular::{Table, TabularError};

use crate::fault::FitControl;

/// Errors raised while fitting or sampling a surrogate model.
#[derive(Debug, Clone, PartialEq)]
pub enum SurrogateError {
    /// The model was asked to sample before being fitted.
    NotFitted(&'static str),
    /// The training table was unusable (empty, wrong schema, …).
    InvalidTrainingData(String),
    /// An underlying tabular operation failed.
    Tabular(TabularError),
    /// The fit was cancelled by its [`crate::fault::CellBudget`] after
    /// completing this many epochs.
    BudgetExceeded {
        /// Epochs that finished before the budget tripped.
        completed_epochs: usize,
    },
    /// Training diverged: the mean loss of this epoch was NaN or infinite.
    NonFiniteLoss {
        /// 0-based epoch whose mean loss was non-finite.
        epoch: usize,
    },
    /// The fit panicked; the panic was captured and lowered to this error so
    /// one poisoned model never takes down a parallel run.
    Panicked {
        /// The panic payload, rendered as a string.
        message: String,
    },
}

impl fmt::Display for SurrogateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SurrogateError::NotFitted(model) => write!(f, "{model} sampled before fit"),
            SurrogateError::InvalidTrainingData(msg) => {
                write!(f, "invalid training data: {msg}")
            }
            SurrogateError::Tabular(e) => write!(f, "tabular error: {e}"),
            SurrogateError::BudgetExceeded { completed_epochs } => {
                write!(f, "budget exceeded after {completed_epochs} epochs")
            }
            SurrogateError::NonFiniteLoss { epoch } => {
                write!(f, "non-finite training loss at epoch {epoch}")
            }
            SurrogateError::Panicked { message } => {
                write!(f, "fit panicked: {message}")
            }
        }
    }
}

impl std::error::Error for SurrogateError {}

impl From<TabularError> for SurrogateError {
    fn from(value: TabularError) -> Self {
        SurrogateError::Tabular(value)
    }
}

/// A generative model over mixed-type tabular data.
///
/// Implementations are deterministic given the seeds in their configuration,
/// so experiments are reproducible end to end.
pub trait TabularGenerator {
    /// Human-readable model name as used in the paper's tables.
    fn name(&self) -> &'static str;

    /// Fit the model to a training table.
    fn fit(&mut self, train: &Table) -> Result<(), SurrogateError>;

    /// Fit under a cooperative cancellation token.
    ///
    /// Models with epoch loops override this to call
    /// [`FitControl::check_epoch`] once per epoch, so a
    /// [`crate::fault::CellBudget`] can stop a runaway fit with a typed
    /// [`SurrogateError::BudgetExceeded`]. The default ignores the token —
    /// correct for near-instant fits like SMOTE, where a budget is a
    /// documented no-op.
    fn fit_with_control(
        &mut self,
        train: &Table,
        control: &FitControl,
    ) -> Result<(), SurrogateError> {
        let _ = control;
        self.fit(train)
    }

    /// Sample `n` synthetic rows with the same schema as the training table.
    fn sample(&self, n: usize, seed: u64) -> Result<Table, SurrogateError>;

    /// Sample `n` rows on the reduced-precision `f32` inference tier.
    ///
    /// Models whose sampling path is dominated by MLP inference override
    /// this to run the network forward passes in `f32` (double the SIMD
    /// lanes of the packed kernels), drawing the *same* RNG stream as
    /// [`TabularGenerator::sample`] so the two paths differ only by
    /// precision. Results are still fully deterministic given the seed, but
    /// are **not** bit-identical to the `f64` path — the end-to-end tests
    /// bound the distributional deltas (Wasserstein/JSD) instead. The
    /// default falls back to the `f64` path, so every generator supports
    /// the call.
    fn sample_f32(&self, n: usize, seed: u64) -> Result<Table, SurrogateError> {
        self.sample(n, seed)
    }
}
