//! Fault-tolerance primitives for the sweep runtime.
//!
//! Three concerns live here, all deliberately independent of the executor so
//! the model crates can depend on them without pulling in sweep machinery:
//!
//! * **Budgets** — [`CellBudget`] caps a single cell's fit by wall-clock
//!   and/or epoch count. It lowers to a [`FitControl`] cancellation token
//!   that the model epoch loops check once per epoch (zero cost on the hot
//!   path), turning a runaway fit into a typed
//!   [`SurrogateError::BudgetExceeded`] instead of a hung shard.
//! * **Deterministic reseeding** — [`derive_attempt_seed`] folds a retry
//!   attempt index into a cell's seed so bounded retries are reproducible:
//!   attempt 0 uses the cell seed unchanged (retry-free sweeps stay
//!   byte-identical to older artifacts) and attempt `k > 0` derives a fresh,
//!   well-mixed stream.
//! * **Fault injection** — [`FaultPlan`] parses `--inject` specs like
//!   `cell3:panic,cell7:delay:200ms,cell9:nan` into per-cell faults the
//!   executor applies at named cells, so panic capture, retry, and budget
//!   paths are exercised in CI deterministically, without timing races.

use std::any::Any;
use std::fmt;
use std::time::{Duration, Instant};

use crate::traits::SurrogateError;

/// Resource limits for one sweep cell's fit.
///
/// The default is unlimited on both axes, which keeps budget-free sweeps
/// byte-identical to pre-budget artifacts.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CellBudget {
    /// Maximum wall-clock time for the fit, measured from cell start.
    pub wall_clock: Option<Duration>,
    /// Maximum number of training epochs across the fit.
    pub max_epochs: Option<usize>,
}

impl CellBudget {
    /// A budget with no limits.
    pub fn unlimited() -> Self {
        Self::default()
    }

    /// True when neither axis is limited.
    pub fn is_unlimited(&self) -> bool {
        self.wall_clock.is_none() && self.max_epochs.is_none()
    }

    /// Lower this budget into the cancellation token handed to a fit that
    /// started at `start`.
    pub fn control_from(&self, start: Instant) -> FitControl {
        FitControl {
            deadline: self.wall_clock.map(|limit| start + limit),
            max_epochs: self.max_epochs,
        }
    }
}

/// Cooperative cancellation token threaded into model epoch loops.
///
/// Checked once per epoch via [`FitControl::check_epoch`]; a fit that trips
/// either limit returns [`SurrogateError::BudgetExceeded`] carrying the
/// number of epochs it actually completed.
#[derive(Debug, Clone, Copy)]
pub struct FitControl {
    /// Absolute deadline; `None` means no wall-clock limit.
    pub deadline: Option<Instant>,
    /// Epoch cap; `None` means no epoch limit.
    pub max_epochs: Option<usize>,
}

impl FitControl {
    /// A token that never cancels — the default for standalone fits.
    pub fn unlimited() -> Self {
        Self {
            deadline: None,
            max_epochs: None,
        }
    }

    /// Called at the top of epoch `epoch` (0-based). Returns
    /// `Err(BudgetExceeded { completed_epochs: epoch })` once a limit is
    /// reached; the count is honest because epochs `0..epoch` finished.
    pub fn check_epoch(&self, epoch: usize) -> Result<(), SurrogateError> {
        if let Some(max) = self.max_epochs {
            if epoch >= max {
                return Err(SurrogateError::BudgetExceeded {
                    completed_epochs: epoch,
                });
            }
        }
        if let Some(deadline) = self.deadline {
            if Instant::now() >= deadline {
                return Err(SurrogateError::BudgetExceeded {
                    completed_epochs: epoch,
                });
            }
        }
        Ok(())
    }
}

/// Derive the RNG seed for retry attempt `attempt` of a cell seeded with
/// `seed`. Attempt 0 is the seed unchanged — a retry-free sweep is
/// byte-identical to one run without retry support — and later attempts are
/// splitmix64-style mixes so each retry draws an independent stream.
pub fn derive_attempt_seed(seed: u64, attempt: u32) -> u64 {
    if attempt == 0 {
        return seed;
    }
    let mut z = seed ^ (attempt as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Render a panic payload as a message string.
///
/// `panic!("...")` payloads are `&str` or `String`; anything else gets a
/// stable placeholder so the row is still serializable.
pub fn panic_message(payload: Box<dyn Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// How injected delays burn time: for real, or on a virtual clock.
///
/// Delay faults exist to exercise wall-clock accounting and deadline paths,
/// not to make CI sleep. Under [`FaultClock::Virtual`] a delay charges its
/// duration to the caller's wall-clock accounting and returns immediately,
/// so a fault matrix with seconds of injected delay still finishes in
/// milliseconds — deterministically.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum FaultClock {
    /// Delays really sleep (the default; matches pre-virtual-clock
    /// behaviour).
    #[default]
    Real,
    /// Delays return immediately and report their duration as virtual
    /// elapsed milliseconds for the caller to account.
    Virtual,
}

impl FaultClock {
    /// Burn an injected delay of `ms` milliseconds. Returns the virtual
    /// milliseconds the caller must add to its wall-clock accounting: 0
    /// under [`FaultClock::Real`] (the sleep already happened for real),
    /// `ms` under [`FaultClock::Virtual`] (nothing slept).
    pub fn delay_ms(self, ms: u64) -> f64 {
        match self {
            FaultClock::Real => {
                std::thread::sleep(Duration::from_millis(ms));
                0.0
            }
            FaultClock::Virtual => ms as f64,
        }
    }
}

/// What to inject at a cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Panic inside the fit. `fail_attempts: Some(k)` fails only the first
    /// `k` attempts (so retries can be tested); `None` fails every attempt.
    Panic { fail_attempts: Option<u32> },
    /// Simulate a diverged fit (non-finite loss at epoch 0). Same attempt
    /// semantics as `Panic`.
    Nan { fail_attempts: Option<u32> },
    /// Sleep before the fit — exercises wall-clock accounting.
    Delay { ms: u64 },
    /// Run the fit under an already-expired budget, tripping
    /// `BudgetExceeded` deterministically without any timing dependence.
    Budget,
}

impl FaultKind {
    /// Does this fault fire on retry attempt `attempt` (0-based)?
    pub fn applies(&self, attempt: u32) -> bool {
        match self {
            FaultKind::Panic { fail_attempts } | FaultKind::Nan { fail_attempts } => {
                fail_attempts.is_none_or(|k| attempt < k)
            }
            FaultKind::Delay { .. } | FaultKind::Budget => true,
        }
    }
}

impl fmt::Display for FaultKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultKind::Panic {
                fail_attempts: None,
            } => write!(f, "panic"),
            FaultKind::Panic {
                fail_attempts: Some(k),
            } => write!(f, "panic:{k}"),
            FaultKind::Nan {
                fail_attempts: None,
            } => write!(f, "nan"),
            FaultKind::Nan {
                fail_attempts: Some(k),
            } => write!(f, "nan:{k}"),
            FaultKind::Delay { ms } => write!(f, "delay:{ms}ms"),
            FaultKind::Budget => write!(f, "budget"),
        }
    }
}

/// One injected fault, addressed by flat cell index in axis-major order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Fault {
    /// Flat index of the target cell within the expanded grid.
    pub cell: usize,
    /// What to inject there.
    pub kind: FaultKind,
}

impl fmt::Display for Fault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cell{}:{}", self.cell, self.kind)
    }
}

/// A deterministic set of faults to inject into a sweep, parsed from specs
/// like `cell3:panic,cell7:delay:200ms,cell9:nan,cell2:budget`.
///
/// The empty plan (the default) injects nothing and adds nothing to the
/// fingerprint, so fault-free sweeps are unaffected.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    faults: Vec<Fault>,
}

impl FaultPlan {
    /// The plan that injects nothing.
    pub fn none() -> Self {
        Self::default()
    }

    /// True when no faults are planned.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// The planned faults, in spec order.
    pub fn faults(&self) -> &[Fault] {
        &self.faults
    }

    /// The fault planned for the cell at flat index `index`, if any.
    pub fn for_cell(&self, index: usize) -> Option<&Fault> {
        self.faults.iter().find(|f| f.cell == index)
    }

    /// Parse a comma-separated fault spec. Each entry is
    /// `cell<N>:panic[:K]`, `cell<N>:nan[:K]`, `cell<N>:delay:<MS>ms`, or
    /// `cell<N>:budget`, where `K` bounds the failing attempts. Duplicate
    /// cell indices and empty specs are rejected.
    pub fn parse(spec: &str) -> Result<Self, String> {
        let mut faults: Vec<Fault> = Vec::new();
        for entry in spec.split(',') {
            let entry = entry.trim();
            if entry.is_empty() {
                return Err(format!("empty fault entry in spec '{spec}'"));
            }
            let fault = Self::parse_entry(entry)?;
            if faults.iter().any(|f| f.cell == fault.cell) {
                return Err(format!("duplicate fault for cell{}", fault.cell));
            }
            faults.push(fault);
        }
        if faults.is_empty() {
            return Err("empty fault spec".to_string());
        }
        Ok(Self { faults })
    }

    fn parse_entry(entry: &str) -> Result<Fault, String> {
        let mut parts = entry.split(':');
        let cell_part = parts.next().unwrap_or_default();
        let cell = cell_part
            .strip_prefix("cell")
            .and_then(|n| n.parse::<usize>().ok())
            .ok_or_else(|| format!("fault entry '{entry}' must start with 'cell<INDEX>:'"))?;
        let kind_part = parts
            .next()
            .ok_or_else(|| format!("fault entry '{entry}' is missing a fault kind"))?;
        let arg = parts.next();
        if parts.next().is_some() {
            return Err(format!("fault entry '{entry}' has too many ':' segments"));
        }
        let kind = match (kind_part, arg) {
            ("panic", None) => FaultKind::Panic {
                fail_attempts: None,
            },
            ("panic", Some(k)) => FaultKind::Panic {
                fail_attempts: Some(parse_attempts(entry, k)?),
            },
            ("nan", None) => FaultKind::Nan {
                fail_attempts: None,
            },
            ("nan", Some(k)) => FaultKind::Nan {
                fail_attempts: Some(parse_attempts(entry, k)?),
            },
            ("delay", Some(ms)) => {
                let digits = ms.strip_suffix("ms").ok_or_else(|| {
                    format!("delay in '{entry}' must end in 'ms' (e.g. delay:200ms)")
                })?;
                let ms = digits.parse::<u64>().map_err(|_| {
                    format!("delay in '{entry}' must be a whole number of milliseconds")
                })?;
                FaultKind::Delay { ms }
            }
            ("delay", None) => {
                return Err(format!(
                    "delay in '{entry}' needs a duration (e.g. delay:200ms)"
                ))
            }
            ("budget", None) => FaultKind::Budget,
            ("budget", Some(_)) => {
                return Err(format!("budget fault in '{entry}' takes no argument"))
            }
            (other, _) => {
                return Err(format!(
                    "unknown fault kind '{other}' in '{entry}' \
                     (expected panic, nan, delay or budget)"
                ))
            }
        };
        Ok(Fault { cell, kind })
    }
}

fn parse_attempts(entry: &str, k: &str) -> Result<u32, String> {
    k.parse::<u32>()
        .map_err(|_| format!("attempt count in '{entry}' must be a non-negative integer"))
}

impl fmt::Display for FaultPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, fault) in self.faults.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{fault}")?;
        }
        Ok(())
    }
}

/// What to inject into the serving loop (`bench --bin serve`). Unlike sweep
/// faults these are not addressed by cell — they target serving stages.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServeFaultKind {
    /// Treat the first (alphabetically) loadable checkpoint as corrupt at
    /// startup, forcing the registry into degraded mode deterministically.
    LoadCorrupt,
    /// Charge every request `ms` milliseconds of processing delay before it
    /// is answered — exercises per-request deadlines.
    RequestDelay { ms: u64 },
    /// Panic inside request handling — exercises panic capture and the
    /// typed panic response.
    RequestPanic,
    /// The worker holds its first request until at least one later request
    /// has been shed for overload — makes queue-full shedding testable
    /// without timing races.
    QueueHold,
    /// The worker holds batch assembly until at least `min_requests`
    /// requests have been queued — forces concurrent requests into one
    /// coalesced batch without timing races.
    BatchHold { min_requests: usize },
    /// Force single-request batches: the scheduler coalesces nothing, so
    /// serving behaves exactly like the unbatched loop — the control arm
    /// for batched-vs-unbatched digest comparisons.
    BatchSplit,
}

impl fmt::Display for ServeFaultKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeFaultKind::LoadCorrupt => write!(f, "load:corrupt"),
            ServeFaultKind::RequestDelay { ms } => write!(f, "request:delay:{ms}ms"),
            ServeFaultKind::RequestPanic => write!(f, "request:panic"),
            ServeFaultKind::QueueHold => write!(f, "queue:hold"),
            ServeFaultKind::BatchHold { min_requests } => {
                write!(f, "batch:hold:{min_requests}")
            }
            ServeFaultKind::BatchSplit => write!(f, "batch:split"),
        }
    }
}

/// Faults to inject into the serving loop, parsed from specs like
/// `load:corrupt,request:delay:100ms,request:panic,queue:hold`. Each stage
/// fault may appear at most once; the empty plan injects nothing.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ServeFaultPlan {
    faults: Vec<ServeFaultKind>,
}

impl ServeFaultPlan {
    /// The plan that injects nothing.
    pub fn none() -> Self {
        Self::default()
    }

    /// The planned faults, in spec order.
    pub fn faults(&self) -> &[ServeFaultKind] {
        &self.faults
    }

    /// Whether checkpoint loading should treat one entry as corrupt.
    pub fn load_corrupt(&self) -> bool {
        self.faults.contains(&ServeFaultKind::LoadCorrupt)
    }

    /// The injected per-request delay, if any.
    pub fn request_delay_ms(&self) -> Option<u64> {
        self.faults.iter().find_map(|f| match f {
            ServeFaultKind::RequestDelay { ms } => Some(*ms),
            _ => None,
        })
    }

    /// Whether request handling should panic.
    pub fn request_panic(&self) -> bool {
        self.faults.contains(&ServeFaultKind::RequestPanic)
    }

    /// Whether the worker should hold its first request until a shed.
    pub fn queue_hold(&self) -> bool {
        self.faults.contains(&ServeFaultKind::QueueHold)
    }

    /// The minimum number of requests the scheduler must collect before
    /// assembling its first batch, if `batch:hold:<N>` is planned.
    pub fn batch_hold_min(&self) -> Option<usize> {
        self.faults.iter().find_map(|f| match f {
            ServeFaultKind::BatchHold { min_requests } => Some(*min_requests),
            _ => None,
        })
    }

    /// Whether the scheduler should force single-request batches.
    pub fn batch_split(&self) -> bool {
        self.faults.contains(&ServeFaultKind::BatchSplit)
    }

    /// Parse a comma-separated serve fault spec. Entries are
    /// `load:corrupt`, `request:delay:<MS>ms`, `request:panic`,
    /// `queue:hold`, `batch:hold:<N>`, or `batch:split`; duplicates of one
    /// stage fault and empty specs are rejected.
    pub fn parse(spec: &str) -> Result<Self, String> {
        let mut faults: Vec<ServeFaultKind> = Vec::new();
        for entry in spec.split(',') {
            let entry = entry.trim();
            if entry.is_empty() {
                return Err(format!("empty serve fault entry in spec '{spec}'"));
            }
            let fault = Self::parse_entry(entry)?;
            let same_stage =
                |f: &ServeFaultKind| std::mem::discriminant(f) == std::mem::discriminant(&fault);
            if faults.iter().any(same_stage) {
                return Err(format!("duplicate serve fault '{entry}'"));
            }
            faults.push(fault);
        }
        if faults.is_empty() {
            return Err("empty serve fault spec".to_string());
        }
        Ok(Self { faults })
    }

    fn parse_entry(entry: &str) -> Result<ServeFaultKind, String> {
        match entry.split(':').collect::<Vec<_>>().as_slice() {
            ["load", "corrupt"] => Ok(ServeFaultKind::LoadCorrupt),
            ["request", "panic"] => Ok(ServeFaultKind::RequestPanic),
            ["queue", "hold"] => Ok(ServeFaultKind::QueueHold),
            ["request", "delay", ms] => {
                let digits = ms.strip_suffix("ms").ok_or_else(|| {
                    format!("delay in '{entry}' must end in 'ms' (e.g. request:delay:100ms)")
                })?;
                let ms = digits.parse::<u64>().map_err(|_| {
                    format!("delay in '{entry}' must be a whole number of milliseconds")
                })?;
                Ok(ServeFaultKind::RequestDelay { ms })
            }
            ["request", "delay"] => Err(format!(
                "delay in '{entry}' needs a duration (e.g. request:delay:100ms)"
            )),
            ["batch", "split"] => Ok(ServeFaultKind::BatchSplit),
            ["batch", "hold", n] => {
                let min_requests =
                    n.parse::<usize>().ok().filter(|n| *n >= 1).ok_or_else(|| {
                        format!("batch hold in '{entry}' needs a request count of at least 1")
                    })?;
                Ok(ServeFaultKind::BatchHold { min_requests })
            }
            ["batch", "hold"] => Err(format!(
                "batch hold in '{entry}' needs a request count (e.g. batch:hold:3)"
            )),
            _ => Err(format!(
                "unknown serve fault '{entry}' (expected load:corrupt, \
                 request:delay:<MS>ms, request:panic, queue:hold, \
                 batch:hold:<N> or batch:split)"
            )),
        }
    }
}

impl fmt::Display for ServeFaultPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, fault) in self.faults.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{fault}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_round_trips_through_display() {
        let spec = "cell3:panic,cell7:delay:200ms,cell9:nan,cell2:budget,cell5:panic:2";
        let plan = FaultPlan::parse(spec).unwrap();
        assert_eq!(plan.to_string(), spec);
        assert_eq!(FaultPlan::parse(&plan.to_string()).unwrap(), plan);
        assert_eq!(plan.faults().len(), 5);
        assert_eq!(
            plan.for_cell(7).map(|f| f.kind),
            Some(FaultKind::Delay { ms: 200 })
        );
        assert_eq!(plan.for_cell(4), None);
    }

    #[test]
    fn bad_specs_are_rejected_with_messages() {
        for spec in [
            "",
            "cell3",
            "cell3:",
            "3:panic",
            "cellx:panic",
            "cell3:explode",
            "cell3:delay",
            "cell3:delay:200",
            "cell3:delay:fastms",
            "cell3:budget:1",
            "cell3:panic,cell3:nan",
            "cell3:panic,,cell4:nan",
            "cell3:panic:many",
            "cell1:panic:1:2",
        ] {
            assert!(
                FaultPlan::parse(spec).is_err(),
                "accepted bad spec {spec:?}"
            );
        }
    }

    #[test]
    fn attempt_bounded_faults_stop_applying() {
        let plan =
            FaultPlan::parse("cell0:panic:1,cell1:nan:2,cell2:panic,cell3:delay:5ms").unwrap();
        let kind = |i: usize| plan.for_cell(i).unwrap().kind;
        assert!(kind(0).applies(0) && !kind(0).applies(1));
        assert!(kind(1).applies(1) && !kind(1).applies(2));
        assert!(kind(2).applies(0) && kind(2).applies(7));
        assert!(kind(3).applies(3), "delay applies on every attempt");
    }

    #[test]
    fn attempt_zero_seed_is_unchanged_and_later_attempts_differ() {
        for seed in [0u64, 1, 2024, u64::MAX] {
            assert_eq!(derive_attempt_seed(seed, 0), seed);
            let a1 = derive_attempt_seed(seed, 1);
            let a2 = derive_attempt_seed(seed, 2);
            assert_ne!(a1, seed);
            assert_ne!(a1, a2);
            // Deterministic: same inputs, same derived seed.
            assert_eq!(a1, derive_attempt_seed(seed, 1));
        }
    }

    #[test]
    fn fit_control_trips_on_epoch_and_deadline() {
        let unlimited = FitControl::unlimited();
        assert!(unlimited.check_epoch(1_000_000).is_ok());

        let capped = CellBudget {
            max_epochs: Some(3),
            wall_clock: None,
        }
        .control_from(Instant::now());
        assert!(capped.check_epoch(2).is_ok());
        assert_eq!(
            capped.check_epoch(3),
            Err(SurrogateError::BudgetExceeded {
                completed_epochs: 3
            })
        );

        let expired = CellBudget {
            wall_clock: Some(Duration::ZERO),
            max_epochs: None,
        }
        .control_from(Instant::now());
        assert_eq!(
            expired.check_epoch(0),
            Err(SurrogateError::BudgetExceeded {
                completed_epochs: 0
            })
        );
    }

    #[test]
    fn serve_plan_round_trips_through_display() {
        let spec = "load:corrupt,request:delay:100ms,request:panic,queue:hold,\
                    batch:hold:3,batch:split";
        let plan = ServeFaultPlan::parse(spec).unwrap();
        assert_eq!(plan.to_string(), spec);
        assert_eq!(ServeFaultPlan::parse(&plan.to_string()).unwrap(), plan);
        assert!(plan.load_corrupt());
        assert_eq!(plan.request_delay_ms(), Some(100));
        assert!(plan.request_panic());
        assert!(plan.queue_hold());
        assert_eq!(plan.batch_hold_min(), Some(3));
        assert!(plan.batch_split());

        let partial = ServeFaultPlan::parse("request:panic").unwrap();
        assert!(!partial.load_corrupt());
        assert_eq!(partial.request_delay_ms(), None);
        assert!(!partial.queue_hold());
        assert_eq!(partial.batch_hold_min(), None);
        assert!(!partial.batch_split());
        assert!(!ServeFaultPlan::none().request_panic());
    }

    #[test]
    fn bad_serve_specs_are_rejected_with_messages() {
        for spec in [
            "",
            "load",
            "load:torn",
            "corrupt",
            "request:delay",
            "request:delay:100",
            "request:delay:fastms",
            "request:explode",
            "queue:hold:1",
            "request:panic,request:panic",
            "request:delay:1ms,request:delay:2ms",
            "load:corrupt,,queue:hold",
            "batch:hold",
            "batch:hold:0",
            "batch:hold:many",
            "batch:split:2",
            "batch:hold:2,batch:hold:3",
            "batch:split,batch:split",
        ] {
            assert!(
                ServeFaultPlan::parse(spec).is_err(),
                "accepted bad serve spec {spec:?}"
            );
        }
    }

    #[test]
    fn virtual_clock_charges_delay_without_sleeping() {
        let start = Instant::now();
        assert_eq!(FaultClock::Virtual.delay_ms(10_000), 10_000.0);
        assert!(
            start.elapsed() < Duration::from_secs(1),
            "virtual delay must not sleep"
        );
        // The real clock actually sleeps and charges nothing extra.
        let start = Instant::now();
        assert_eq!(FaultClock::Real.delay_ms(10), 0.0);
        assert!(start.elapsed() >= Duration::from_millis(10));
        assert_eq!(FaultClock::default(), FaultClock::Real);
    }

    #[test]
    fn budget_unlimited_reports_itself() {
        assert!(CellBudget::unlimited().is_unlimited());
        assert!(!CellBudget {
            max_epochs: Some(1),
            ..CellBudget::default()
        }
        .is_unlimited());
    }
}
