//! Generative surrogate models for distributed-computing workloads.
//!
//! This is the paper's core contribution: four tabular generative models that
//! learn the joint distribution of PanDA job records and synthesise new,
//! realistic rows —
//!
//! * [`SmoteSampler`](smote::SmoteSampler) — nearest-neighbour interpolation
//!   (non-learning baseline),
//! * [`Tvae`](tvae::Tvae) — a variational autoencoder for mixed-type rows,
//! * [`CtabGan`](ctabgan::CtabGan) — a CTABGAN+-style conditional GAN,
//! * [`TabDdpm`](tabddpm::TabDdpm) — a denoising-diffusion model with an MLP
//!   backbone (the paper's recommended model).
//!
//! All models implement the [`TabularGenerator`](traits::TabularGenerator)
//! trait (fit on a [`tabular::Table`], sample any number of synthetic rows)
//! and share the [`TableCodec`](codec::TableCodec): numerical columns are
//! Gaussian-quantile-transformed, categorical columns are one-hot encoded —
//! exactly the preprocessing described in §V-A of the paper.
//!
//! [`pipeline`] ties everything together: construct any model by name, fit,
//! sample and hand the result to the `metrics` crate.
//!
//! [`experiment`] is the shared experiment runtime on top of the pipeline:
//! dataset preparation ([`experiment::prepare_data`]) and the parallel,
//! failure-isolating fit of all four models ([`experiment::fit_all`]) that
//! the `bench` binaries, examples and integration tests all drive.
//!
//! [`sweep`] scales that runtime to scenario grids: a declarative
//! seeds × budgets × generator-variants × models grid expands into cells
//! whose fit→sample→evaluate pipelines are batched over one flat parallel
//! work queue, with per-cell determinism and failure isolation, aggregated
//! into a serializable [`sweep::SweepReport`].

pub mod artifact_io;
pub mod checkpoint;
pub mod codec;
pub mod ctabgan;
pub mod experiment;
pub mod fault;
pub mod mixed;
pub mod pipeline;
pub mod smote;
pub mod sweep;
pub mod tabddpm;
pub mod traits;
pub mod tvae;

pub use artifact_io::{atomic_write, fnv1a_hex, parse_log_rows, Fnv1a, TailPolicy};
pub use checkpoint::{
    Checkpoint, CheckpointError, CheckpointHeader, CheckpointPayload, CheckpointRegistry,
    QuarantinedCheckpoint, CHECKPOINT_VERSION,
};
pub use codec::{ColumnSpan, TableCodec};
pub use ctabgan::{CtabGan, CtabGanConfig};
pub use experiment::{
    fit_all, fit_all_with_mode, fit_models_with, prepare_data, prepare_data_from_config,
    sample_all_models, ExecutionMode, ExperimentError, ExperimentOptions, FitReport, ModelRun,
    PreparedData,
};
pub use fault::{
    derive_attempt_seed, panic_message, CellBudget, Fault, FaultClock, FaultKind, FaultPlan,
    FitControl, ServeFaultKind, ServeFaultPlan,
};
pub use pipeline::{
    build_model, build_payload, fit_and_sample, fit_and_sample_batch, fit_and_sample_controlled,
    ModelKind, TrainingBudget,
};
pub use smote::{SmoteConfig, SmoteSampler};
pub use sweep::{
    grid_fingerprint, run_cell, run_sweep, run_sweep_resumable, run_sweep_resumable_durable,
    run_sweep_resumable_journaled, run_sweep_resumable_observed, run_sweep_resumable_with,
    run_sweep_with, CellError, CellRun, CellSuccess, FitContext, JournalHeader, JournalWriter,
    NamedGeneratorConfig, ShardSpec, SweepArtifactError, SweepCell, SweepCellRow, SweepGrid,
    SweepOptions, SweepOutcome, SweepReport, SweepRunSummary, JOURNAL_VERSION,
};
pub use tabddpm::{TabDdpm, TabDdpmConfig};
pub use traits::{SampleSpec, SurrogateError, TabularGenerator};
pub use tvae::{Tvae, TvaeConfig};
