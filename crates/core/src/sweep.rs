//! Scenario-sweep runtime: many seeds × budgets × generator variants ×
//! models, batched over one work queue.
//!
//! The paper evaluates its four surrogates at a single seed and budget, but
//! the point of a surrogate is cheap *exploration* of many simulator
//! configurations. This module scales the experiment runtime in that
//! direction: a declarative [`SweepGrid`] expands into [`SweepCell`]s (one
//! per axis combination), and [`run_sweep`] executes every cell's
//! fit→sample→evaluate pipeline batched over the existing rayon pool.
//!
//! Three properties are load-bearing, mirroring `experiment`:
//!
//! * **Flat work queue** — (scenario × model) work items are flattened into
//!   one parallel queue rather than nesting parallel loops, so the pool
//!   load-balances across the whole grid instead of fork-joining per
//!   scenario. Datasets shared by several cells (same seed + generator
//!   variant) are prepared once, up front.
//! * **Per-cell determinism** — every cell derives its RNGs from its own
//!   seed axis value alone, so any cell run standalone ([`run_cell`]) is
//!   byte-identical to the same cell inside a sweep, and parallel and
//!   sequential sweeps agree byte-for-byte; `tests/sweep.rs` asserts both.
//! * **Per-cell failure isolation** — a diverging fit surfaces as that
//!   cell's `Err` (reusing the `FitReport` semantics of per-run `Result`s);
//!   every other cell's output is untouched.
//!
//! Results aggregate into a serializable [`SweepReport`] (one metrics row
//! per cell: WD / JSD / diff-CORR / DCR / diff-MLEF deltas from `metrics`,
//! wall-clock, pass/fail) that the `bench --bin sweep` binary writes as a
//! JSON artifact and reads back **typed** through the `serde_json` shim's
//! `Deserialize` path (`from_str::<SweepReport>`).
//!
//! On top of the single-shot runtime, sweeps are **durable**: grid campaigns
//! only scale when partial results survive (Schmid et al., arXiv:2502.12741),
//! so [`run_sweep_resumable`] can
//!
//! * **resume** — cells already present in a prior artifact (matched by cell
//!   id under an equal [`grid_fingerprint`]) are loaded instead of re-run,
//!   and the merged report is byte-identical to a from-scratch run modulo
//!   wall-clock fields;
//! * **shard** — a [`ShardSpec`] (`i/n`) deterministically partitions the
//!   axis-major cell order round-robin so independent containers split one
//!   grid, and [`SweepReport::merge`] recombines disjoint shard artifacts
//!   (validating fingerprints and disjointness) into the single report an
//!   unsharded run would have produced.
//!
//! Durable sweeps are also **fault-tolerant** (see [`crate::fault`]): every
//! cell attempt runs under `catch_unwind` so a panicking fit is lowered to a
//! typed [`CellError::Panicked`] row instead of taking down the work queue;
//! a [`CellBudget`] in the options cancels runaway fits cooperatively (once
//! per epoch) into [`CellError::BudgetExceeded`] rows with honest partial
//! wall-clock; failures retry up to [`SweepOptions::retries`] times with
//! deterministic per-attempt reseeds; a [`JournalWriter`] appends each
//! completed row fsync'd so a SIGKILL'd sweep resumes from its last
//! completed *cell* via [`SweepReport::recover_journal`]; and a
//! [`FaultPlan`] injects panics/NaN losses/delays/expired budgets at named
//! cells so all of the above is CI-testable without timing races.

use std::collections::HashMap;
use std::fs::File;
use std::io::Write;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::Path;
use std::sync::{Arc, Mutex};
use std::time::Instant;

use rayon::prelude::*;
use serde::{Deserialize, Serialize};

use metrics::{evaluate_surrogate, EvaluationConfig, MetricError, SurrogateReport};
use pandasim::GeneratorConfig;
use tabular::Table;

use crate::artifact_io::{parse_log_rows, Fnv1a, RowError, TailPolicy};
use crate::checkpoint::Checkpoint;
use crate::experiment::{prepare_data_from_config, ExecutionMode, PreparedData};
use crate::fault::{
    derive_attempt_seed, panic_message, CellBudget, FaultClock, FaultKind, FaultPlan, FitControl,
};
use crate::pipeline::{build_payload, fit_and_sample_controlled, ModelKind, TrainingBudget};
use crate::traits::SurrogateError;

/// A named generator configuration — one value on the sweep's
/// generator-variant axis. The name is carried into cell ids and report
/// rows; the config's `seed` field is overridden per cell by the seed axis.
#[derive(Debug, Clone)]
pub struct NamedGeneratorConfig {
    /// Short name used in cell ids (e.g. `"tier2_heavy"`).
    pub name: String,
    /// The generator configuration this name stands for.
    pub config: GeneratorConfig,
}

impl NamedGeneratorConfig {
    /// Resolve one of the `pandasim` presets (see
    /// [`GeneratorConfig::PRESET_NAMES`]).
    pub fn preset(name: &str) -> Option<Self> {
        GeneratorConfig::preset(name).map(|config| Self {
            name: name.to_string(),
            config,
        })
    }
}

/// The declarative sweep grid: the cross product of four axes. Expansion
/// order is fixed — seeds, then budgets, then generator variants, then
/// models — so cell indices and report rows are stable for a given grid.
///
/// Axis values are taken as given: a repeated value (the same seed twice,
/// two variants with one name) expands into cells with duplicate ids that
/// are fitted twice and double-weighted by downstream means. Callers that
/// accept user input should de-duplicate first, as the `sweep` binary does.
#[derive(Debug, Clone)]
pub struct SweepGrid {
    /// Seed axis. Each seed drives both data generation and model training.
    pub seeds: Vec<u64>,
    /// Training-budget axis.
    pub budgets: Vec<TrainingBudget>,
    /// Generator-variant axis.
    pub generators: Vec<NamedGeneratorConfig>,
    /// Model-subset axis.
    pub models: Vec<ModelKind>,
}

impl Default for SweepGrid {
    fn default() -> Self {
        Self {
            seeds: vec![2024],
            budgets: vec![TrainingBudget::Standard],
            generators: vec![NamedGeneratorConfig::preset("default").expect("known preset")],
            models: ModelKind::ALL.to_vec(),
        }
    }
}

impl SweepGrid {
    /// Number of cells the grid expands to (product of the axis lengths).
    pub fn len(&self) -> usize {
        self.seeds.len() * self.budgets.len() * self.generators.len() * self.models.len()
    }

    /// Whether any axis is empty (the grid expands to no cells).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Expand the grid into its cells, in the fixed axis order.
    pub fn expand(&self) -> Vec<SweepCell> {
        let mut cells = Vec::with_capacity(self.len());
        for &seed in &self.seeds {
            for &budget in &self.budgets {
                for generator in &self.generators {
                    for &model in &self.models {
                        // The cell's dataset is a pure function of
                        // (generator variant, seed): pin the seed here so
                        // standalone and in-sweep runs prepare identical data.
                        let mut generator = generator.clone();
                        generator.config.seed = seed;
                        cells.push(SweepCell {
                            index: cells.len(),
                            seed,
                            budget,
                            generator,
                            model,
                        });
                    }
                }
            }
        }
        cells
    }
}

/// One (scenario × model) work item of a sweep.
#[derive(Debug, Clone)]
pub struct SweepCell {
    /// Position in the expanded grid (stable for a given grid).
    pub index: usize,
    /// Seed axis value (already applied to `generator.config.seed`).
    pub seed: u64,
    /// Training-budget axis value.
    pub budget: TrainingBudget,
    /// Generator-variant axis value, seed already pinned.
    pub generator: NamedGeneratorConfig,
    /// Model axis value.
    pub model: ModelKind,
}

impl SweepCell {
    /// Human-readable unique id, e.g. `s2024-smoke-default-tabddpm`.
    pub fn id(&self) -> String {
        let model: String = self
            .model
            .name()
            .chars()
            .filter(|c| c.is_ascii_alphanumeric())
            .collect::<String>()
            .to_ascii_lowercase();
        format!(
            "s{}-{}-{}-{}",
            self.seed,
            self.budget.name(),
            self.generator.name,
            model
        )
    }

    /// Key identifying the prepared dataset this cell runs on. Cells share
    /// one prepared dataset inside a sweep only when both this key (seed +
    /// variant name) and the full generator config agree, so a misnamed
    /// variant can never silently run on another variant's data.
    pub fn dataset_key(&self) -> (u64, String) {
        (self.seed, self.generator.name.clone())
    }
}

/// One shard of a sweep: this container runs every cell whose axis-major
/// index is congruent to `index` modulo `count` (round-robin, so each shard
/// sees a balanced mix of seeds and models rather than a contiguous slab of
/// the heaviest axis).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ShardSpec {
    /// Zero-based shard index, `< count`.
    pub index: usize,
    /// Total number of shards splitting the grid, `>= 1`.
    pub count: usize,
}

impl ShardSpec {
    /// Parse an `i/n` spec (as passed to `sweep --shard`), rejecting
    /// malformed text, `n == 0` and `i >= n` with a usable message.
    pub fn parse(text: &str) -> Result<Self, String> {
        let (index, count) = text
            .split_once('/')
            .ok_or_else(|| format!("bad shard spec '{text}' (want I/N, e.g. 0/2)"))?;
        let spec = Self {
            index: index
                .trim()
                .parse()
                .map_err(|_| format!("bad shard index '{index}' in '{text}'"))?,
            count: count
                .trim()
                .parse()
                .map_err(|_| format!("bad shard count '{count}' in '{text}'"))?,
        };
        spec.validate()?;
        Ok(spec)
    }

    /// Check the invariants (`count >= 1`, `index < count`).
    pub fn validate(&self) -> Result<(), String> {
        if self.count == 0 {
            return Err("shard count must be >= 1".to_string());
        }
        if self.index >= self.count {
            return Err(format!(
                "shard index {} out of range for {} shard(s)",
                self.index, self.count
            ));
        }
        Ok(())
    }

    /// Whether the cell at `cell_index` in the axis-major order belongs to
    /// this shard.
    pub fn contains(&self, cell_index: usize) -> bool {
        cell_index % self.count == self.index
    }
}

impl std::fmt::Display for ShardSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}/{}", self.index, self.count)
    }
}

/// 64-bit FNV-1a over a canonical encoding of everything that determines a
/// sweep's results: the four grid axes (with each generator's full config,
/// not just its name), the per-cell sample count and the evaluation
/// configuration. Resume and merge refuse artifacts whose fingerprint
/// differs — a stale artifact from an edited grid can never be silently
/// mixed into a fresh run. Rendered as 16 lowercase hex digits.
pub fn grid_fingerprint(grid: &SweepGrid, options: &SweepOptions) -> String {
    // Length-prefixed token feed (Fnv1a::feed_token) so concatenations
    // cannot collide. Execution-only knobs (mode, keep_tables, clock,
    // checkpoint directory) stay out: they cannot change results, so
    // artifacts remain resumable across them.
    let mut hash = Fnv1a::new();
    for seed in &grid.seeds {
        hash.feed_token(&format!("seed:{seed}"));
    }
    for budget in &grid.budgets {
        hash.feed_token(&format!("budget:{}", budget.name()));
    }
    for generator in &grid.generators {
        let config = serde_json::to_string(&generator.config).expect("render generator config");
        hash.feed_token(&format!("generator:{}:{config}", generator.name));
    }
    for model in &grid.models {
        hash.feed_token(&format!("model:{}", model.name()));
    }
    hash.feed_token(&format!("sample_rows:{:?}", options.sample_rows));
    let evaluation = serde_json::to_string(&options.evaluation).expect("render evaluation config");
    hash.feed_token(&format!("evaluation:{evaluation}"));
    hash.feed_token(&format!(
        "cell_budget:wall_ms={:?}:max_epochs={:?}",
        options.budget.wall_clock.map(|d| d.as_millis()),
        options.budget.max_epochs
    ));
    hash.feed_token(&format!("retries:{}", options.retries));
    hash.feed_token(&format!("faults:{}", options.faults));
    hash.finish_hex()
}

/// Options shared by every cell of a sweep.
#[derive(Debug, Clone)]
pub struct SweepOptions {
    /// Parallel (default) or sequential execution; byte-identical outputs.
    pub mode: ExecutionMode,
    /// Metric configuration for the per-cell evaluation.
    pub evaluation: EvaluationConfig,
    /// Retain each cell's synthetic table in its [`CellRun`]. Off by
    /// default: a large sweep would otherwise hold every synthetic table in
    /// memory at once. Determinism tests switch this on to compare tables
    /// byte-for-byte.
    pub keep_tables: bool,
    /// Rows to sample per cell; `None` samples as many as the training
    /// split holds.
    pub sample_rows: Option<usize>,
    /// Per-cell resource budget. The wall clock spans the whole cell
    /// (across retries); the epoch cap applies to each fit. Unlimited by
    /// default, which keeps budget-free sweeps byte-identical.
    pub budget: CellBudget,
    /// How many times a failed cell is retried (0 = no retries). Each
    /// attempt reseeds deterministically via
    /// [`crate::fault::derive_attempt_seed`]; attempt 0 uses the cell seed
    /// unchanged. Budget-exceeded cells are not retried — their budget is
    /// already spent.
    pub retries: u32,
    /// Deterministic fault injection, keyed by flat cell index. Empty by
    /// default.
    pub faults: FaultPlan,
    /// How injected delay faults burn time. [`FaultClock::Virtual`] charges
    /// the delay to the cell's `wall_ms` without sleeping, so fault
    /// matrices stop wasting real CI minutes. Execution-only (like `mode`):
    /// not part of the grid fingerprint.
    pub clock: FaultClock,
}

impl Default for SweepOptions {
    fn default() -> Self {
        Self {
            mode: ExecutionMode::Parallel,
            evaluation: EvaluationConfig::fast(),
            keep_tables: false,
            sample_rows: None,
            budget: CellBudget::unlimited(),
            retries: 0,
            faults: FaultPlan::none(),
            clock: FaultClock::default(),
        }
    }
}

/// Why a sweep cell failed. This is the typed, per-cell lowering of every
/// failure mode the executor can observe: ordinary fit errors, captured
/// panics, tripped budgets, training divergence, and degenerate synthetic
/// tables rejected by the metric kernels. `kind()` names the mode in
/// artifact rows so downstream tooling can filter without string matching.
#[derive(Debug, Clone, PartialEq)]
pub enum CellError {
    /// The fit or sampling failed with an ordinary model error.
    Fit(SurrogateError),
    /// The fit panicked; captured via `catch_unwind`, never propagated.
    Panicked {
        /// The panic payload, rendered as a string.
        message: String,
    },
    /// The cell's [`CellBudget`] cancelled the fit.
    BudgetExceeded {
        /// Epochs that finished before the budget tripped.
        completed_epochs: usize,
    },
    /// Training diverged into a NaN/infinite epoch loss.
    NonFiniteLoss {
        /// 0-based epoch whose mean loss was non-finite.
        epoch: usize,
    },
    /// The synthetic table could not be evaluated (empty, or sharing no
    /// columns with the reference).
    Metric(MetricError),
}

impl CellError {
    /// Every value [`CellError::kind`] can return, for artifact validation.
    pub const KINDS: [&'static str; 5] = ["fit", "panic", "budget", "non_finite_loss", "metric"];

    /// Stable machine-readable name of this failure mode, written into
    /// [`SweepCellRow::error_kind`].
    pub fn kind(&self) -> &'static str {
        match self {
            CellError::Fit(_) => "fit",
            CellError::Panicked { .. } => "panic",
            CellError::BudgetExceeded { .. } => "budget",
            CellError::NonFiniteLoss { .. } => "non_finite_loss",
            CellError::Metric(_) => "metric",
        }
    }
}

impl From<SurrogateError> for CellError {
    /// Promote the fault-shaped `SurrogateError` variants to their own
    /// [`CellError`] modes, so a budget tripped deep inside a model fit and
    /// one tripped by the executor report identically.
    fn from(error: SurrogateError) -> Self {
        match error {
            SurrogateError::BudgetExceeded { completed_epochs } => {
                CellError::BudgetExceeded { completed_epochs }
            }
            SurrogateError::NonFiniteLoss { epoch } => CellError::NonFiniteLoss { epoch },
            SurrogateError::Panicked { message } => CellError::Panicked { message },
            other => CellError::Fit(other),
        }
    }
}

impl From<MetricError> for CellError {
    fn from(error: MetricError) -> Self {
        CellError::Metric(error)
    }
}

impl std::fmt::Display for CellError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CellError::Fit(e) => write!(f, "{e}"),
            CellError::Panicked { message } => write!(f, "fit panicked: {message}"),
            CellError::BudgetExceeded { completed_epochs } => {
                write!(f, "budget exceeded after {completed_epochs} epochs")
            }
            CellError::NonFiniteLoss { epoch } => {
                write!(f, "non-finite training loss at epoch {epoch}")
            }
            CellError::Metric(e) => write!(f, "metric error: {e}"),
        }
    }
}

impl std::error::Error for CellError {}

/// What a successfully executed cell produced.
#[derive(Debug)]
pub struct CellSuccess {
    /// The Table-I-style metrics row for this cell.
    pub report: SurrogateReport,
    /// Rows in the training split the model was fitted on.
    pub train_rows: usize,
    /// Rows sampled from the fitted model.
    pub synthetic_rows: usize,
    /// The synthetic table, kept only under
    /// [`SweepOptions::keep_tables`].
    pub synthetic: Option<Table>,
}

/// The outcome of one cell: its metrics row, or why the fit failed —
/// failure stays confined to the cell, like a failed
/// [`crate::experiment::ModelRun`] inside a `FitReport`.
#[derive(Debug)]
pub struct CellRun {
    /// The cell this run executed.
    pub cell: SweepCell,
    /// Metrics row or per-cell error.
    pub outcome: Result<CellSuccess, CellError>,
    /// Wall-clock of the fit→sample→evaluate pipeline for this cell,
    /// spanning every retry attempt.
    pub wall_ms: f64,
    /// How many attempts ran (1 + retries actually taken).
    pub attempts: u32,
}

/// Every cell's run from one sweep, in grid-expansion order.
#[derive(Debug)]
pub struct SweepOutcome {
    /// One entry per cell, order preserved.
    pub runs: Vec<CellRun>,
    /// Wall-clock of the whole sweep (dataset preparation + all cells).
    pub wall_ms: f64,
    /// [`grid_fingerprint`] of the grid + options that ran.
    pub grid_fingerprint: String,
    /// Cell count of the full grid.
    pub grid_cells: usize,
}

impl SweepOutcome {
    /// The cells that failed, with their errors.
    pub fn failures(&self) -> impl Iterator<Item = (&SweepCell, &CellError)> {
        self.runs
            .iter()
            .filter_map(|run| run.outcome.as_ref().err().map(|e| (&run.cell, e)))
    }

    /// Print every failed cell to stderr and return how many failed.
    pub fn report_failures(&self) -> usize {
        let mut failed = 0;
        for (cell, error) in self.failures() {
            eprintln!("warning: cell {} failed: {error}", cell.id());
            failed += 1;
        }
        failed
    }

    /// Lower the outcome into the serializable artifact.
    pub fn report(&self) -> SweepReport {
        let cells: Vec<SweepCellRow> = self.runs.iter().map(SweepCellRow::from_run).collect();
        SweepReport {
            schema_version: SCHEMA_VERSION,
            generated_by: GENERATED_BY.to_string(),
            grid_fingerprint: self.grid_fingerprint.clone(),
            grid_cells: self.grid_cells,
            shard: None,
            total_cells: cells.len(),
            failed_cells: cells.iter().filter(|c| !c.ok).count(),
            wall_ms: self.wall_ms,
            cells,
        }
    }
}

/// One serialized row of the sweep artifact.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SweepCellRow {
    /// Position in the full expanded grid — the merge key across shards.
    pub index: usize,
    /// Unique cell id (see [`SweepCell::id`]).
    pub id: String,
    /// Seed axis value.
    pub seed: u64,
    /// Budget axis value (name).
    pub budget: String,
    /// Generator-variant axis value (name).
    pub generator: String,
    /// Model axis value (Table-I name).
    pub model: String,
    /// Whether the cell produced a metrics row.
    pub ok: bool,
    /// The cell's error, when `ok` is false.
    pub error: Option<String>,
    /// Machine-readable failure mode (one of [`CellError::KINDS`]), when
    /// `ok` is false.
    pub error_kind: Option<String>,
    /// Attempts the cell ran (1 + retries actually taken); at least 1.
    pub attempts: usize,
    /// Training rows the model saw (absent on failure).
    pub train_rows: Option<usize>,
    /// Synthetic rows sampled (absent on failure).
    pub synthetic_rows: Option<usize>,
    /// Cell wall-clock in milliseconds.
    pub wall_ms: f64,
    /// Mean normalised Wasserstein distance (↓, absent on failure).
    pub wd: Option<f64>,
    /// Mean Jensen–Shannon divergence (↓, absent on failure).
    pub jsd: Option<f64>,
    /// Association-matrix delta (↓, absent on failure).
    pub diff_corr: Option<f64>,
    /// Distance to closest record (↑, absent on failure).
    pub dcr: Option<f64>,
    /// MLEF gap (↓, absent when failed or probe skipped).
    pub diff_mlef: Option<f64>,
}

impl SweepCellRow {
    fn from_run(run: &CellRun) -> Self {
        let cell = &run.cell;
        let base = Self {
            index: cell.index,
            id: cell.id(),
            seed: cell.seed,
            budget: cell.budget.name().to_string(),
            generator: cell.generator.name.clone(),
            model: cell.model.name().to_string(),
            ok: false,
            error: None,
            error_kind: None,
            attempts: run.attempts as usize,
            train_rows: None,
            synthetic_rows: None,
            wall_ms: run.wall_ms,
            wd: None,
            jsd: None,
            diff_corr: None,
            dcr: None,
            diff_mlef: None,
        };
        match &run.outcome {
            Ok(success) => Self {
                ok: true,
                train_rows: Some(success.train_rows),
                synthetic_rows: Some(success.synthetic_rows),
                wd: Some(success.report.wd),
                jsd: Some(success.report.jsd),
                diff_corr: Some(success.report.diff_corr),
                dcr: Some(success.report.dcr),
                diff_mlef: success.report.diff_mlef,
                ..base
            },
            Err(error) => Self {
                error: Some(error.to_string()),
                error_kind: Some(error.kind().to_string()),
                ..base
            },
        }
    }
}

/// Current sweep-artifact schema version. Version 2 added the typed
/// durability header (`grid_fingerprint`, `grid_cells`, `shard`) and the
/// per-row `index`; version 3 added the fault-tolerance row fields
/// (`error_kind`, `attempts`). Older artifacts are rejected by the typed
/// read-back (they lack mandatory fields) rather than mis-merged.
pub const SCHEMA_VERSION: u32 = 3;

/// Producer tag written into every artifact.
pub const GENERATED_BY: &str = "surrogate::sweep";

/// The serializable sweep artifact: header plus one row per cell. A full
/// run carries every cell; a shard or interrupted run carries a subset
/// (`total_cells < grid_cells`), recombined by [`SweepReport::merge`] or
/// completed by [`run_sweep_resumable`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SweepReport {
    /// Artifact schema version (this layout: [`SCHEMA_VERSION`]).
    pub schema_version: u32,
    /// Producer tag.
    pub generated_by: String,
    /// [`grid_fingerprint`] of the grid + options that produced this
    /// artifact; resume and merge refuse artifacts from a different grid.
    pub grid_fingerprint: String,
    /// Cell count of the **full** grid (not just the rows present here).
    pub grid_cells: usize,
    /// The shard this artifact covers, `None` for an unsharded or merged
    /// run.
    pub shard: Option<ShardSpec>,
    /// Number of cell rows present in this artifact.
    pub total_cells: usize,
    /// How many of them failed.
    pub failed_cells: usize,
    /// Whole-sweep wall-clock in milliseconds.
    pub wall_ms: f64,
    /// Per-cell rows, ascending by `index`.
    pub cells: Vec<SweepCellRow>,
}

/// Why a prior artifact cannot be resumed from or merged.
#[derive(Debug, Clone, PartialEq)]
pub enum SweepArtifactError {
    /// Merge was given no artifacts.
    NoParts,
    /// The artifact was written under a different schema.
    SchemaVersion {
        /// Version found in the artifact.
        found: u32,
    },
    /// The artifact's grid fingerprint does not match — it is stale
    /// (different axes, sample count or evaluation config).
    FingerprintMismatch {
        /// Fingerprint the current grid + options hash to.
        expected: String,
        /// Fingerprint carried by the artifact.
        found: String,
    },
    /// The artifact disagrees about the full grid's cell count.
    GridSize {
        /// Cell count of the current grid.
        expected: usize,
        /// Cell count claimed by the artifact.
        found: usize,
    },
    /// A row's id does not exist in the current grid.
    UnknownCell {
        /// The offending row id.
        id: String,
    },
    /// A row's recorded index disagrees with the grid's expansion order.
    IndexMismatch {
        /// The offending row id.
        id: String,
        /// Index the current grid assigns this cell.
        expected: usize,
        /// Index recorded in the artifact.
        found: usize,
    },
    /// The same cell appears more than once (overlapping shards, or a
    /// duplicated row in one artifact).
    OverlappingCell {
        /// The duplicated cell id.
        id: String,
    },
    /// The shard spec violates its invariants (`count == 0` or
    /// `index >= count`).
    InvalidShard {
        /// What [`ShardSpec::validate`] rejected.
        reason: String,
    },
}

impl std::fmt::Display for SweepArtifactError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::NoParts => write!(f, "no artifacts to merge"),
            Self::SchemaVersion { found } => write!(
                f,
                "artifact schema_version {found} is not the supported {SCHEMA_VERSION}"
            ),
            Self::FingerprintMismatch { expected, found } => write!(
                f,
                "stale artifact: grid fingerprint {found} does not match {expected} \
                 (the grid axes, sample count or evaluation config differ)"
            ),
            Self::GridSize { expected, found } => write!(
                f,
                "artifact claims a {found}-cell grid but the current grid has {expected} cells"
            ),
            Self::UnknownCell { id } => {
                write!(f, "artifact row '{id}' does not exist in the current grid")
            }
            Self::IndexMismatch {
                id,
                expected,
                found,
            } => write!(
                f,
                "artifact row '{id}' is recorded at index {found} but the grid expands it at {expected}"
            ),
            Self::OverlappingCell { id } => write!(f, "cell '{id}' appears more than once"),
            Self::InvalidShard { reason } => write!(f, "invalid shard spec: {reason}"),
        }
    }
}

impl std::error::Error for SweepArtifactError {}

impl SweepReport {
    /// Whether this artifact carries every cell of its grid.
    pub fn is_complete(&self) -> bool {
        self.total_cells == self.grid_cells
    }

    /// Copy with every wall-clock field zeroed — the canonical form two
    /// artifacts are compared in, since wall-clock is the one field an
    /// otherwise deterministic sweep cannot reproduce. CI diffs canonical
    /// forms to enforce shard-merge ≡ unsharded and resumed ≡ from-scratch.
    pub fn canonical(&self) -> SweepReport {
        let mut canonical = self.clone();
        canonical.wall_ms = 0.0;
        for row in &mut canonical.cells {
            row.wall_ms = 0.0;
        }
        canonical
    }

    /// Recombine disjoint shard artifacts of one grid into the single
    /// report an unsharded run would have produced (modulo wall-clock,
    /// which sums over the parts). Rejects mismatched fingerprints /
    /// schemas and overlapping cells; completeness is the caller's policy
    /// (see [`SweepReport::is_complete`]).
    pub fn merge(parts: &[SweepReport]) -> Result<SweepReport, SweepArtifactError> {
        let first = parts.first().ok_or(SweepArtifactError::NoParts)?;
        for part in parts {
            if part.schema_version != SCHEMA_VERSION {
                return Err(SweepArtifactError::SchemaVersion {
                    found: part.schema_version,
                });
            }
            if part.grid_fingerprint != first.grid_fingerprint {
                return Err(SweepArtifactError::FingerprintMismatch {
                    expected: first.grid_fingerprint.clone(),
                    found: part.grid_fingerprint.clone(),
                });
            }
            if part.grid_cells != first.grid_cells {
                return Err(SweepArtifactError::GridSize {
                    expected: first.grid_cells,
                    found: part.grid_cells,
                });
            }
        }
        let mut cells: Vec<SweepCellRow> = parts
            .iter()
            .flat_map(|part| part.cells.iter().cloned())
            .collect();
        cells.sort_by_key(|row| row.index);
        for pair in cells.windows(2) {
            if pair[0].index == pair[1].index {
                return Err(SweepArtifactError::OverlappingCell {
                    id: pair[1].id.clone(),
                });
            }
        }
        if let Some(row) = cells.iter().find(|row| row.index >= first.grid_cells) {
            return Err(SweepArtifactError::UnknownCell { id: row.id.clone() });
        }
        Ok(SweepReport {
            schema_version: SCHEMA_VERSION,
            generated_by: first.generated_by.clone(),
            grid_fingerprint: first.grid_fingerprint.clone(),
            grid_cells: first.grid_cells,
            shard: None,
            total_cells: cells.len(),
            failed_cells: cells.iter().filter(|row| !row.ok).count(),
            wall_ms: parts.iter().map(|part| part.wall_ms).sum(),
            cells,
        })
    }

    /// Structural invariants of an artifact, checked after the typed parse:
    /// supported schema, header counts consistent with the rows, rows
    /// strictly ascending by index and inside the grid (and inside the
    /// declared shard), passing rows carrying finite metrics, failing rows
    /// carrying their error.
    pub fn validate(&self) -> Result<(), String> {
        if self.schema_version != SCHEMA_VERSION {
            return Err(format!(
                "unsupported schema_version {} (expected {SCHEMA_VERSION})",
                self.schema_version
            ));
        }
        if self.total_cells != self.cells.len() {
            return Err(format!(
                "cell count mismatch: total_cells {} vs {} rows",
                self.total_cells,
                self.cells.len()
            ));
        }
        if self.total_cells > self.grid_cells {
            return Err(format!(
                "artifact carries {} rows for a {}-cell grid",
                self.total_cells, self.grid_cells
            ));
        }
        let failed = self.cells.iter().filter(|row| !row.ok).count();
        if self.failed_cells != failed {
            return Err(format!(
                "failed_cells {} disagrees with {} failing rows",
                self.failed_cells, failed
            ));
        }
        if self.grid_fingerprint.len() != 16
            || !self
                .grid_fingerprint
                .bytes()
                .all(|b| b.is_ascii_hexdigit() && !b.is_ascii_uppercase())
        {
            return Err(format!(
                "grid_fingerprint '{}' is not 16 lowercase hex digits",
                self.grid_fingerprint
            ));
        }
        if let Some(shard) = &self.shard {
            shard.validate()?;
        }
        let mut previous: Option<usize> = None;
        for row in &self.cells {
            if row.id.is_empty() {
                return Err(format!("cell row {} has an empty id", row.index));
            }
            if previous.is_some_and(|p| p >= row.index) {
                return Err(format!(
                    "cell rows are not strictly ascending by index at '{}'",
                    row.id
                ));
            }
            previous = Some(row.index);
            if row.index >= self.grid_cells {
                return Err(format!(
                    "cell '{}' index {} is outside the {}-cell grid",
                    row.id, row.index, self.grid_cells
                ));
            }
            if let Some(shard) = &self.shard {
                if !shard.contains(row.index) {
                    return Err(format!(
                        "cell '{}' (index {}) does not belong to shard {shard}",
                        row.id, row.index
                    ));
                }
            }
            if row.attempts == 0 {
                return Err(format!("cell '{}' claims 0 attempts", row.id));
            }
            if row.ok {
                for (field, value) in [
                    ("wd", row.wd),
                    ("jsd", row.jsd),
                    ("diff_corr", row.diff_corr),
                    ("dcr", row.dcr),
                ] {
                    match value {
                        Some(v) if v.is_finite() => {}
                        Some(_) => return Err(format!("cell field '{field}' is not finite")),
                        None => {
                            return Err(format!("passing cell missing numeric '{field}'"));
                        }
                    }
                }
                if row.error.is_some() || row.error_kind.is_some() {
                    return Err(format!("passing cell '{}' carries an error", row.id));
                }
            } else {
                if row.error.is_none() {
                    return Err(format!("failing cell '{}' missing 'error'", row.id));
                }
                match row.error_kind.as_deref() {
                    Some(kind) if CellError::KINDS.contains(&kind) => {}
                    Some(kind) => {
                        return Err(format!(
                            "failing cell '{}' has unknown error_kind '{kind}'",
                            row.id
                        ));
                    }
                    None => {
                        return Err(format!("failing cell '{}' missing 'error_kind'", row.id));
                    }
                }
            }
        }
        Ok(())
    }

    /// Parse a written artifact back into the typed struct and check its
    /// invariants, returning the cell count. This is the read-back half the
    /// `sweep` binary and `tests/sweep.rs` use to prove the JSON
    /// round-trips — it goes through the shim `Deserialize` derive, not
    /// `Value` accessors.
    pub fn validate_artifact(text: &str) -> Result<usize, String> {
        let report: SweepReport = serde_json::from_str(text).map_err(|e| e.to_string())?;
        report.validate()?;
        Ok(report.total_cells)
    }

    /// Fold a (possibly torn) journal back into a validated report that
    /// `--resume` accepts as a prior.
    ///
    /// The journal is line-delimited: a [`JournalHeader`] line, then one
    /// [`SweepCellRow`] per line in completion order. A process killed
    /// mid-append leaves at most one torn trailing line — any strict prefix
    /// of a JSON object line fails to parse — so recovery reads rows under
    /// [`TailPolicy::DropTorn`] (shared with the checkpoint loader via
    /// [`crate::artifact_io::parse_log_rows`]): an unparseable *last* line
    /// is dropped silently. Corruption anywhere else (an interior line that
    /// fails to parse, a bad header) is an error: fsync'd interior rows
    /// can't legitimately be damaged by a crash.
    pub fn recover_journal(text: &str) -> Result<SweepReport, String> {
        let mut lines = text.split('\n');
        let header_line = lines.next().unwrap_or_default();
        let header: JournalHeader =
            serde_json::from_str(header_line).map_err(|e| format!("journal header: {e}"))?;
        if header.journal_version != JOURNAL_VERSION {
            return Err(format!(
                "unsupported journal_version {} (expected {JOURNAL_VERSION})",
                header.journal_version
            ));
        }
        let rest: Vec<&str> = lines.collect();
        let parsed = parse_log_rows(&rest, 2, TailPolicy::DropTorn, |line| {
            serde_json::from_str::<SweepCellRow>(line)
        })
        .map_err(|e| match e {
            RowError::Empty { line } => format!("journal line {line} is empty"),
            RowError::Parse { line, error } => format!("journal line {line}: {error}"),
        })?;
        let mut rows = parsed.rows;
        // Rows land in completion order (parallel cells finish when they
        // finish); the artifact invariant is grid order.
        rows.sort_by_key(|row| row.index);
        let report = SweepReport {
            schema_version: SCHEMA_VERSION,
            generated_by: GENERATED_BY.to_string(),
            grid_fingerprint: header.grid_fingerprint,
            grid_cells: header.grid_cells,
            shard: header.shard,
            total_cells: rows.len(),
            failed_cells: rows.iter().filter(|row| !row.ok).count(),
            wall_ms: rows.iter().map(|row| row.wall_ms).sum(),
            cells: rows,
        };
        report.validate()?;
        Ok(report)
    }
}

/// Per-attempt context handed to a cell fitter: which retry attempt this
/// is, the seed derived for it ([`derive_attempt_seed`] — attempt 0 is the
/// cell seed itself), and the cooperative cancellation token carrying the
/// cell budget's deadline.
#[derive(Debug, Clone, Copy)]
pub struct FitContext {
    /// 0-based attempt number (0 = first try, 1 = first retry, …).
    pub attempt: u32,
    /// The deterministic seed for this attempt.
    pub seed: u64,
    /// Cancellation token epoch loops must poll.
    pub control: FitControl,
}

/// The default cell fitter: fit the cell's model on the training split and
/// sample synthetic rows, with the RNG chain derived from the attempt seed
/// exactly as [`crate::experiment::fit_all`] derives it from the
/// experiment seed.
fn default_fitter(
    cell: &SweepCell,
    train: &Table,
    sample_rows: Option<usize>,
    ctx: &FitContext,
) -> Result<Table, SurrogateError> {
    let rows = sample_rows.unwrap_or_else(|| train.n_rows());
    fit_and_sample_controlled(cell.model, train, rows, cell.budget, ctx.seed, &ctx.control)
}

/// One attempt of a cell's fit→sample→evaluate pipeline, with injected
/// faults applied and panics captured. The `start` instant anchors the
/// budget deadline to the *cell*, not the attempt: retries never extend a
/// wall-clock budget. The second element of the return value is the
/// virtual milliseconds this attempt charged (injected delays under
/// [`FaultClock::Virtual`]); the caller folds them into `wall_ms`.
fn run_cell_attempt<F>(
    data: &PreparedData,
    cell: &SweepCell,
    options: &SweepOptions,
    fitter: &F,
    attempt: u32,
    start: Instant,
) -> (Result<CellSuccess, CellError>, f64)
where
    F: Fn(&SweepCell, &Table, &FitContext) -> Result<Table, SurrogateError> + Sync,
{
    let fault = options
        .faults
        .for_cell(cell.index)
        .map(|f| f.kind)
        .filter(|kind| kind.applies(attempt));
    // An injected `budget` fault trips on the first epoch check regardless
    // of the configured budget — a timing-free way to exercise the
    // BudgetExceeded path in CI.
    let control = match fault {
        Some(FaultKind::Budget) => CellBudget {
            wall_clock: None,
            max_epochs: Some(0),
        }
        .control_from(start),
        _ => options.budget.control_from(start),
    };
    let ctx = FitContext {
        attempt,
        seed: derive_attempt_seed(cell.seed, attempt),
        control,
    };
    // Delays burn on the configured clock *outside* the unwind boundary:
    // under a virtual clock nothing sleeps and the duration is charged to
    // the cell's wall accounting instead.
    let virtual_ms = match fault {
        Some(FaultKind::Delay { ms }) => options.clock.delay_ms(ms),
        _ => 0.0,
    };
    let result = catch_unwind(AssertUnwindSafe(|| {
        match fault {
            Some(FaultKind::Panic { .. }) => {
                panic!("injected fault: panic at cell{}", cell.index);
            }
            Some(FaultKind::Nan { .. }) => {
                return Err(CellError::NonFiniteLoss { epoch: 0 });
            }
            _ => {}
        }
        fitter(cell, &data.train, &ctx)
            .map_err(CellError::from)
            .and_then(|synthetic| {
                // A degenerate synthetic table (empty, wrong columns) is
                // this cell's typed Metric failure, never a sweep-wide
                // abort.
                evaluate_surrogate(
                    cell.model.name(),
                    &data.train,
                    &data.test,
                    &synthetic,
                    &options.evaluation,
                )
                .map_err(CellError::Metric)
                .map(|report| CellSuccess {
                    report,
                    train_rows: data.train.n_rows(),
                    synthetic_rows: synthetic.n_rows(),
                    synthetic: options.keep_tables.then_some(synthetic),
                })
            })
    }))
    .unwrap_or_else(|payload| {
        Err(CellError::Panicked {
            message: panic_message(payload),
        })
    });
    (result, virtual_ms)
}

/// Fit→sample→evaluate one cell against an already prepared dataset, with
/// up to [`SweepOptions::retries`] deterministic-reseed retries. Budget
/// trips are terminal (the budget spans the whole cell, so a retry would
/// just trip again); `wall_ms` spans every attempt.
fn run_cell_prepared<F>(
    data: &PreparedData,
    cell: &SweepCell,
    options: &SweepOptions,
    fitter: &F,
) -> CellRun
where
    F: Fn(&SweepCell, &Table, &FitContext) -> Result<Table, SurrogateError> + Sync,
{
    let start = Instant::now();
    let mut attempt = 0u32;
    let mut virtual_ms = 0.0;
    let outcome = loop {
        let (result, attempt_virtual_ms) =
            run_cell_attempt(data, cell, options, fitter, attempt, start);
        virtual_ms += attempt_virtual_ms;
        match &result {
            Err(error)
                if attempt < options.retries
                    && !matches!(error, CellError::BudgetExceeded { .. }) =>
            {
                attempt += 1;
            }
            _ => break result,
        }
    };
    CellRun {
        cell: cell.clone(),
        outcome,
        attempts: attempt + 1,
        // Virtual delay charges count as wall time: a virtual-clock run
        // reports the delays it *would* have burned, without sleeping.
        wall_ms: start.elapsed().as_secs_f64() * 1e3 + virtual_ms,
    }
}

/// Run one cell standalone: prepare its dataset and execute its pipeline.
/// Byte-identical to the same cell inside [`run_sweep`] — both prepare the
/// dataset as a pure function of the cell's generator config, and both
/// derive the model RNGs from the cell seed alone.
pub fn run_cell(cell: &SweepCell, options: &SweepOptions) -> CellRun {
    let data = prepare_data_from_config(&cell.generator.config);
    run_cell_prepared(&data, cell, options, &|cell, train, ctx: &FitContext| {
        default_fitter(cell, train, options.sample_rows, ctx)
    })
}

/// Execute every cell of the grid with the default fitter.
pub fn run_sweep(grid: &SweepGrid, options: &SweepOptions) -> SweepOutcome {
    run_sweep_with(grid, options, |cell, train, ctx: &FitContext| {
        default_fitter(cell, train, options.sample_rows, ctx)
    })
}

/// [`run_sweep`] with an injected cell fitter. This is the orchestration
/// core; tests inject failing fitters to exercise per-cell failure
/// isolation without waiting for a real model to diverge.
pub fn run_sweep_with<F>(grid: &SweepGrid, options: &SweepOptions, fitter: F) -> SweepOutcome
where
    F: Fn(&SweepCell, &Table, &FitContext) -> Result<Table, SurrogateError> + Sync,
{
    let start = Instant::now();
    let cells = grid.expand();
    let grid_cells = cells.len();
    let runs = execute_cells(cells, options, &fitter, &|_| {});
    SweepOutcome {
        runs,
        wall_ms: start.elapsed().as_secs_f64() * 1e3,
        grid_fingerprint: grid_fingerprint(grid, options),
        grid_cells,
    }
}

/// Execute a batch of cells (a full grid, one shard, or a resume
/// remainder) over the shared pool, returning the runs in input order.
/// `on_row` observes each cell's row the moment that cell completes —
/// completion order, not grid order — which is what the journal hooks into.
fn execute_cells<F>(
    cells: Vec<SweepCell>,
    options: &SweepOptions,
    fitter: &F,
    on_row: &(dyn Fn(&SweepCellRow) + Sync),
) -> Vec<CellRun>
where
    F: Fn(&SweepCell, &Table, &FitContext) -> Result<Table, SurrogateError> + Sync,
{
    // Prepare each distinct (seed, generator variant) dataset once, in
    // parallel. Cells hold an index into this list. The full config is part
    // of the identity: two variants that share a name but differ in config
    // get separate datasets, preserving standalone/in-sweep byte-identity.
    let mut keys: Vec<((u64, String), GeneratorConfig)> = Vec::new();
    let dataset_of: Vec<usize> = cells
        .iter()
        .map(|cell| {
            let key = cell.dataset_key();
            keys.iter()
                .position(|(k, config)| *k == key && *config == cell.generator.config)
                .unwrap_or_else(|| {
                    keys.push((key, cell.generator.config.clone()));
                    keys.len() - 1
                })
        })
        .collect();
    let configs: Vec<GeneratorConfig> = keys.into_iter().map(|(_, config)| config).collect();
    let datasets: Vec<Arc<PreparedData>> = match options.mode {
        ExecutionMode::Parallel => configs
            .par_iter()
            .map(|config| Arc::new(prepare_data_from_config(config)))
            .collect(),
        ExecutionMode::Sequential => configs
            .iter()
            .map(|config| Arc::new(prepare_data_from_config(config)))
            .collect(),
    };

    // One flat (scenario × model) work queue over the shared pool: no
    // nested parallel loops, so the pool balances across the whole grid.
    let work: Vec<(SweepCell, Arc<PreparedData>)> = cells
        .into_iter()
        .zip(&dataset_of)
        .map(|(cell, &dataset)| (cell, Arc::clone(&datasets[dataset])))
        .collect();
    // The work items now hold the only long-lived Arcs: dropping this Vec
    // lets each dataset be freed as soon as its last cell completes,
    // bounding peak memory to in-flight cells instead of the whole grid.
    drop(datasets);
    let run_one = |cell: SweepCell, data: Arc<PreparedData>| {
        let run = run_cell_prepared(&data, &cell, options, fitter);
        on_row(&SweepCellRow::from_run(&run));
        run
    };
    match options.mode {
        ExecutionMode::Parallel => work
            .into_par_iter()
            .map(|(cell, data)| run_one(cell, data))
            .collect(),
        ExecutionMode::Sequential => work
            .into_iter()
            .map(|(cell, data)| run_one(cell, data))
            .collect(),
    }
}

/// Version of the journal line format. Bumped when the header or row
/// framing changes incompatibly.
pub const JOURNAL_VERSION: u32 = 1;

/// First line of a sweep journal: identifies the grid the rows belong to.
///
/// `journal_version` is serialized first, so every journal begins with the
/// literal bytes `{"journal_version"` — the sniff the `sweep` binary uses
/// to tell a journal from a full artifact when both feed `--resume`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JournalHeader {
    /// Journal format version ([`JOURNAL_VERSION`]).
    pub journal_version: u32,
    /// Fingerprint of the grid + options the rows were produced under.
    pub grid_fingerprint: String,
    /// Total cells in the full (unsharded) grid.
    pub grid_cells: usize,
    /// The shard this journal's run covered, if sharded.
    pub shard: Option<ShardSpec>,
}

/// Crash-safe, append-only journal of completed sweep cells.
///
/// Line-delimited: one compact-JSON [`JournalHeader`] line, then one
/// compact-JSON [`SweepCellRow`] line per completed cell, each flushed with
/// `sync_data` before `append` returns. Rows are written in *completion*
/// order (parallel cells finish when they finish); recovery re-sorts by
/// cell index. A process killed mid-write leaves at most one torn trailing
/// line, which [`SweepReport::recover_journal`] drops.
#[derive(Debug)]
pub struct JournalWriter {
    file: Mutex<File>,
}

impl JournalWriter {
    /// Create (truncating) the journal at `path` and write its header line.
    pub fn create(path: &Path, header: &JournalHeader) -> std::io::Result<Self> {
        let mut file = File::create(path)?;
        let mut line = serde_json::to_string(header).expect("journal header serializes");
        line.push('\n');
        file.write_all(line.as_bytes())?;
        file.sync_data()?;
        Ok(Self {
            file: Mutex::new(file),
        })
    }

    /// Append one completed cell row, durably. The full line is written in
    /// a single `write_all` under the lock, so concurrent completions never
    /// interleave bytes.
    pub fn append(&self, row: &SweepCellRow) -> std::io::Result<()> {
        let mut line = serde_json::to_string(row).expect("journal row serializes");
        line.push('\n');
        let mut file = self.file.lock().unwrap();
        file.write_all(line.as_bytes())?;
        file.sync_data()
    }
}

/// What a resumable/sharded sweep produced: the artifact plus the split
/// between freshly executed cells and rows reloaded from the prior
/// artifact.
#[derive(Debug)]
pub struct SweepRunSummary {
    /// The artifact for this run's cells (one shard's worth when sharded).
    pub report: SweepReport,
    /// The cells actually executed this run, in grid order.
    pub runs: Vec<CellRun>,
    /// How many rows were reloaded from the prior artifact instead of run.
    pub resumed: usize,
}

/// Run a sweep with durability: an optional [`ShardSpec`] restricts
/// execution to one deterministic round-robin slice of the axis-major cell
/// order, and an optional prior artifact resumes — cells whose rows are
/// already present (matched by cell id under an equal grid fingerprint) are
/// loaded, only the remainder runs, and the combined rows are byte-identical
/// to a from-scratch run modulo wall-clock. A stale prior (edited grid,
/// different evaluation options) is rejected, never silently mixed in.
pub fn run_sweep_resumable(
    grid: &SweepGrid,
    options: &SweepOptions,
    shard: Option<ShardSpec>,
    prior: Option<&SweepReport>,
) -> Result<SweepRunSummary, SweepArtifactError> {
    run_sweep_resumable_journaled(grid, options, shard, prior, None)
}

/// [`run_sweep_resumable`] with an optional crash-safe journal: every
/// completed cell row is appended (and fsync'd) the moment it finishes, so
/// a run killed mid-sweep leaves a journal that
/// [`SweepReport::recover_journal`] folds back into a resumable prior. A
/// failed append is reported on stderr but never aborts the sweep — the
/// journal is a durability aid, not a correctness dependency.
pub fn run_sweep_resumable_journaled(
    grid: &SweepGrid,
    options: &SweepOptions,
    shard: Option<ShardSpec>,
    prior: Option<&SweepReport>,
    journal: Option<&JournalWriter>,
) -> Result<SweepRunSummary, SweepArtifactError> {
    run_sweep_resumable_observed(
        grid,
        options,
        shard,
        prior,
        |cell, train, ctx: &FitContext| default_fitter(cell, train, options.sample_rows, ctx),
        &|row| {
            if let Some(journal) = journal {
                if let Err(e) = journal.append(row) {
                    eprintln!("warning: journal append failed: {e}");
                }
            }
        },
    )
}

/// [`run_sweep_resumable_journaled`] with an optional checkpoint
/// directory: every cell whose fit succeeds is persisted as a
/// crash-safe [`Checkpoint`] artifact (`<cell-id>.ckpt`, written
/// atomically) before it is sampled, so a finished sweep leaves a
/// directory the `serve` binary can load. The checkpointing fit is
/// compute-identical to the default fitter — same model construction,
/// same control token, same sampling seed — so checkpointed sweeps
/// remain byte-identical to plain ones. A failed save is reported on
/// stderr but never fails the cell: like the journal, checkpoints are a
/// durability aid, not a correctness dependency.
pub fn run_sweep_resumable_durable(
    grid: &SweepGrid,
    options: &SweepOptions,
    shard: Option<ShardSpec>,
    prior: Option<&SweepReport>,
    journal: Option<&JournalWriter>,
    checkpoint_dir: Option<&Path>,
) -> Result<SweepRunSummary, SweepArtifactError> {
    let Some(dir) = checkpoint_dir else {
        return run_sweep_resumable_journaled(grid, options, shard, prior, journal);
    };
    run_sweep_resumable_observed(
        grid,
        options,
        shard,
        prior,
        |cell: &SweepCell, train: &Table, ctx: &FitContext| {
            let rows = options.sample_rows.unwrap_or_else(|| train.n_rows());
            let mut payload = build_payload(cell.model, cell.budget, ctx.seed);
            payload
                .generator_mut()
                .fit_with_control(train, &ctx.control)?;
            // Checkpoint under the cell's identity (its id-forming seed),
            // even when a retry fitted with a derived attempt seed — the
            // payload itself records what it actually trained with.
            let checkpoint = Checkpoint::new(&cell.generator.name, cell.seed, cell.budget, payload);
            if let Err(e) = checkpoint.save_to_dir(dir) {
                eprintln!("warning: checkpoint save failed for {}: {e}", cell.id());
            }
            checkpoint.sample(rows, ctx.seed.wrapping_add(1))
        },
        &|row| {
            if let Some(journal) = journal {
                if let Err(e) = journal.append(row) {
                    eprintln!("warning: journal append failed: {e}");
                }
            }
        },
    )
}

/// [`run_sweep_resumable`] with an injected cell fitter (the test seam:
/// resume tests inject a panicking fitter to prove completed cells are
/// never re-run).
pub fn run_sweep_resumable_with<F>(
    grid: &SweepGrid,
    options: &SweepOptions,
    shard: Option<ShardSpec>,
    prior: Option<&SweepReport>,
    fitter: F,
) -> Result<SweepRunSummary, SweepArtifactError>
where
    F: Fn(&SweepCell, &Table, &FitContext) -> Result<Table, SurrogateError> + Sync,
{
    run_sweep_resumable_observed(grid, options, shard, prior, fitter, &|_| {})
}

/// The fully general resumable runner: injected fitter plus a per-row
/// completion observer (see [`execute_cells`]).
pub fn run_sweep_resumable_observed<F>(
    grid: &SweepGrid,
    options: &SweepOptions,
    shard: Option<ShardSpec>,
    prior: Option<&SweepReport>,
    fitter: F,
    on_row: &(dyn Fn(&SweepCellRow) + Sync),
) -> Result<SweepRunSummary, SweepArtifactError>
where
    F: Fn(&SweepCell, &Table, &FitContext) -> Result<Table, SurrogateError> + Sync,
{
    let start = Instant::now();
    if let Some(shard) = &shard {
        shard
            .validate()
            .map_err(|reason| SweepArtifactError::InvalidShard { reason })?;
    }
    let fingerprint = grid_fingerprint(grid, options);
    let all = grid.expand();
    // Each cell's id, computed once: the prior validation, the todo filter
    // and the stitch below all key on it.
    let ids: Vec<String> = all.iter().map(SweepCell::id).collect();

    // Validate the prior artifact against the current grid before trusting
    // any of its rows.
    let mut prior_rows: HashMap<&str, &SweepCellRow> = HashMap::new();
    if let Some(prior) = prior {
        if prior.schema_version != SCHEMA_VERSION {
            return Err(SweepArtifactError::SchemaVersion {
                found: prior.schema_version,
            });
        }
        if prior.grid_fingerprint != fingerprint {
            return Err(SweepArtifactError::FingerprintMismatch {
                expected: fingerprint,
                found: prior.grid_fingerprint.clone(),
            });
        }
        if prior.grid_cells != all.len() {
            return Err(SweepArtifactError::GridSize {
                expected: all.len(),
                found: prior.grid_cells,
            });
        }
        let index_of: HashMap<&str, usize> = ids
            .iter()
            .enumerate()
            .map(|(index, id)| (id.as_str(), index))
            .collect();
        for row in &prior.cells {
            match index_of.get(row.id.as_str()) {
                None => {
                    return Err(SweepArtifactError::UnknownCell { id: row.id.clone() });
                }
                Some(&expected) if expected != row.index => {
                    return Err(SweepArtifactError::IndexMismatch {
                        id: row.id.clone(),
                        expected,
                        found: row.index,
                    });
                }
                Some(_) => {
                    if prior_rows.insert(row.id.as_str(), row).is_some() {
                        return Err(SweepArtifactError::OverlappingCell { id: row.id.clone() });
                    }
                }
            }
        }
    }

    // This run's cells: the shard's slice of the axis-major order, minus
    // whatever the prior artifact already covers. Only the cells that
    // actually execute are cloned.
    let shard_members: Vec<usize> = (0..all.len())
        .filter(|&index| shard.is_none_or(|s| s.contains(index)))
        .collect();
    let todo: Vec<SweepCell> = shard_members
        .iter()
        .filter(|&&index| !prior_rows.contains_key(ids[index].as_str()))
        .map(|&index| all[index].clone())
        .collect();
    let runs = execute_cells(todo, options, &fitter, on_row);

    // Stitch prior and fresh rows back into grid order. `runs` is a
    // subsequence of the shard's cells, so one forward pass pairs them up.
    let mut fresh = runs.iter().map(SweepCellRow::from_run);
    let cells: Vec<SweepCellRow> = shard_members
        .iter()
        .map(|&index| match prior_rows.get(ids[index].as_str()) {
            Some(&row) => row.clone(),
            None => fresh.next().expect("one fresh row per remaining cell"),
        })
        .collect();
    let resumed = cells.len() - runs.len();
    Ok(SweepRunSummary {
        report: SweepReport {
            schema_version: SCHEMA_VERSION,
            generated_by: GENERATED_BY.to_string(),
            grid_fingerprint: fingerprint,
            grid_cells: all.len(),
            shard,
            total_cells: cells.len(),
            failed_cells: cells.iter().filter(|row| !row.ok).count(),
            wall_ms: start.elapsed().as_secs_f64() * 1e3,
            cells,
        },
        runs,
        resumed,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// A grid with axis lengths drawn from `rng` (each at least 1).
    fn random_grid(rng: &mut StdRng) -> SweepGrid {
        let n_seeds = rng.gen_range(1..5);
        let n_budgets = rng.gen_range(1..4);
        let n_generators = rng.gen_range(1..GeneratorConfig::PRESET_NAMES.len() + 1);
        let n_models = rng.gen_range(1..ModelKind::ALL.len() + 1);
        SweepGrid {
            seeds: (0..n_seeds).map(|i| 1000 + i as u64 * 7).collect(),
            budgets: TrainingBudget::ALL[..n_budgets].to_vec(),
            generators: GeneratorConfig::PRESET_NAMES[..n_generators]
                .iter()
                .map(|name| NamedGeneratorConfig::preset(name).unwrap())
                .collect(),
            models: ModelKind::ALL[..n_models].to_vec(),
        }
    }

    #[test]
    fn expansion_count_is_the_product_of_axis_lengths() {
        let mut rng = StdRng::seed_from_u64(11);
        for _ in 0..50 {
            let grid = random_grid(&mut rng);
            let cells = grid.expand();
            assert_eq!(
                cells.len(),
                grid.seeds.len() * grid.budgets.len() * grid.generators.len() * grid.models.len()
            );
            assert_eq!(cells.len(), grid.len());
            assert!(!grid.is_empty());
        }
    }

    #[test]
    fn expansion_has_no_duplicate_cell_ids() {
        let mut rng = StdRng::seed_from_u64(12);
        for _ in 0..50 {
            let grid = random_grid(&mut rng);
            let mut ids: Vec<String> = grid.expand().iter().map(SweepCell::id).collect();
            let before = ids.len();
            ids.sort();
            ids.dedup();
            assert_eq!(ids.len(), before, "duplicate cell id in {grid:?}");
        }
    }

    #[test]
    fn expansion_ordering_is_stable_and_axis_major() {
        let mut rng = StdRng::seed_from_u64(13);
        for _ in 0..20 {
            let grid = random_grid(&mut rng);
            let a = grid.expand();
            let b = grid.expand();
            assert_eq!(a.len(), b.len());
            for (x, y) in a.iter().zip(&b) {
                assert_eq!(x.id(), y.id());
                assert_eq!(x.index, y.index);
            }
            // Axis-major order: the expansion enumerates models fastest,
            // then generators, then budgets, then seeds.
            for (i, cell) in a.iter().enumerate() {
                let n_models = grid.models.len();
                let n_generators = grid.generators.len();
                let n_budgets = grid.budgets.len();
                assert_eq!(cell.index, i);
                assert_eq!(cell.model, grid.models[i % n_models]);
                let gi = (i / n_models) % n_generators;
                assert_eq!(cell.generator.name, grid.generators[gi].name);
                let bi = (i / (n_models * n_generators)) % n_budgets;
                assert_eq!(cell.budget, grid.budgets[bi]);
                let si = i / (n_models * n_generators * n_budgets);
                assert_eq!(cell.seed, grid.seeds[si]);
            }
        }
    }

    #[test]
    fn expanded_cells_pin_the_seed_into_the_generator_config() {
        let grid = SweepGrid {
            seeds: vec![1, 2],
            ..SweepGrid::default()
        };
        for cell in grid.expand() {
            assert_eq!(cell.generator.config.seed, cell.seed);
        }
    }

    #[test]
    fn empty_axis_expands_to_no_cells() {
        let grid = SweepGrid {
            models: Vec::new(),
            ..SweepGrid::default()
        };
        assert!(grid.is_empty());
        assert_eq!(grid.expand().len(), 0);
    }

    #[test]
    fn same_named_variants_with_different_configs_get_separate_datasets() {
        // Two variants that (wrongly) share a name but differ in config
        // must not share a prepared dataset — the cell's own config wins,
        // so standalone/in-sweep byte-identity survives the name clash.
        let mut small = NamedGeneratorConfig::preset("small").unwrap();
        small.config.gross_records = 800;
        let mut bigger = small.clone();
        bigger.config.gross_records = 1_600;
        let grid = SweepGrid {
            seeds: vec![5],
            budgets: vec![TrainingBudget::Smoke],
            generators: vec![small, bigger],
            models: vec![ModelKind::Smote],
        };
        // Echo the training split back so train_rows exposes which dataset
        // each cell actually ran on.
        let outcome = run_sweep_with(
            &grid,
            &SweepOptions::default(),
            |_, train, _: &FitContext| Ok(train.clone()),
        );
        let rows: Vec<usize> = outcome
            .runs
            .iter()
            .map(|run| run.outcome.as_ref().unwrap().train_rows)
            .collect();
        assert_eq!(rows.len(), 2);
        assert!(
            rows[1] > rows[0],
            "second variant ran on the first variant's dataset: {rows:?}"
        );
    }

    #[test]
    fn empty_synthetic_table_fails_only_its_own_cell() {
        // The metric kernels reject empty samples with a typed error; the
        // runtime must surface it as that cell's Metric failure.
        let mut small = NamedGeneratorConfig::preset("small").unwrap();
        small.config.gross_records = 800;
        let grid = SweepGrid {
            seeds: vec![5],
            budgets: vec![TrainingBudget::Smoke],
            generators: vec![small],
            models: vec![ModelKind::Smote, ModelKind::TabDdpm],
        };
        let outcome = run_sweep_with(
            &grid,
            &SweepOptions::default(),
            |cell, train, _: &FitContext| {
                if cell.model == ModelKind::Smote {
                    Ok(Table::new())
                } else {
                    Ok(train.clone())
                }
            },
        );
        assert_eq!(outcome.runs.len(), 2);
        let error = outcome.runs[0].outcome.as_ref().unwrap_err();
        assert!(matches!(error, CellError::Metric(_)), "{error:?}");
        assert_eq!(error.kind(), "metric");
        assert!(error.to_string().contains("no numerical columns"));
        assert!(outcome.runs[1].outcome.is_ok());
    }

    #[test]
    fn report_rows_mirror_outcomes() {
        let mut cells = SweepGrid::default().expand();
        let err_cell = cells.remove(1);
        let ok_cell = cells.remove(0);
        let ok_run = CellRun {
            cell: ok_cell.clone(),
            outcome: Ok(CellSuccess {
                report: SurrogateReport {
                    model: ok_cell.model.name().to_string(),
                    wd: 0.1,
                    jsd: 0.2,
                    diff_corr: 0.3,
                    dcr: 0.4,
                    diff_mlef: None,
                },
                train_rows: 100,
                synthetic_rows: 100,
                synthetic: None,
            }),
            wall_ms: 5.0,
            attempts: 1,
        };
        let err_run = CellRun {
            cell: err_cell,
            outcome: Err(CellError::Fit(SurrogateError::InvalidTrainingData(
                "boom".to_string(),
            ))),
            wall_ms: 1.0,
            attempts: 2,
        };
        let outcome = SweepOutcome {
            runs: vec![ok_run, err_run],
            wall_ms: 6.0,
            grid_fingerprint: "0123456789abcdef".to_string(),
            grid_cells: 2,
        };
        let report = outcome.report();
        assert_eq!(report.total_cells, 2);
        assert_eq!(report.failed_cells, 1);
        assert!(report.cells[0].ok);
        assert_eq!(report.cells[0].wd, Some(0.1));
        assert!(!report.cells[1].ok);
        assert!(report.cells[1].error.as_deref().unwrap().contains("boom"));
        assert_eq!(report.cells[1].error_kind.as_deref(), Some("fit"));
        assert_eq!(report.cells[1].attempts, 2);
        assert_eq!(report.cells[0].error_kind, None);
        assert_eq!(report.cells[0].attempts, 1);
        assert_eq!(report.cells[1].wd, None);

        // The serialized artifact round-trips through the shim parser.
        let json = serde_json::to_string_pretty(&report).unwrap();
        assert_eq!(SweepReport::validate_artifact(&json).unwrap(), 2);
    }

    /// A structurally valid hand-built report: `cells` passing rows at the
    /// given indices of a `grid_cells`-cell grid.
    fn toy_report(grid_cells: usize, indices: &[usize]) -> SweepReport {
        let cells: Vec<SweepCellRow> = indices
            .iter()
            .map(|&index| SweepCellRow {
                index,
                id: format!("cell-{index}"),
                seed: index as u64,
                budget: "smoke".to_string(),
                generator: "small".to_string(),
                model: "SMOTE".to_string(),
                ok: true,
                error: None,
                error_kind: None,
                attempts: 1,
                train_rows: Some(10),
                synthetic_rows: Some(10),
                wall_ms: 1.0 + index as f64,
                wd: Some(0.1),
                jsd: Some(0.2),
                diff_corr: Some(0.3),
                dcr: Some(0.4),
                diff_mlef: None,
            })
            .collect();
        SweepReport {
            schema_version: SCHEMA_VERSION,
            generated_by: GENERATED_BY.to_string(),
            grid_fingerprint: "0123456789abcdef".to_string(),
            grid_cells,
            shard: None,
            total_cells: cells.len(),
            failed_cells: 0,
            wall_ms: 5.0,
            cells,
        }
    }

    #[test]
    fn validate_artifact_rejects_malformed_documents() {
        assert!(SweepReport::validate_artifact("not json").is_err());
        // Typed read-back: a document missing mandatory fields (e.g. a
        // pre-durability v1 artifact) is rejected at the parse, not
        // spelunked around.
        assert!(SweepReport::validate_artifact("{}").is_err());
        assert!(
            SweepReport::validate_artifact(r#"{"total_cells": 2, "cells": []}"#).is_err(),
            "v1-shaped artifact must fail the typed parse"
        );

        let good = toy_report(4, &[0, 2]);
        let json = serde_json::to_string_pretty(&good).unwrap();
        assert_eq!(SweepReport::validate_artifact(&json).unwrap(), 2);

        // Header counts disagreeing with the rows.
        let mut bad = good.clone();
        bad.total_cells = 3;
        assert!(bad.validate().unwrap_err().contains("count mismatch"));
        let mut bad = good.clone();
        bad.failed_cells = 1;
        assert!(bad.validate().unwrap_err().contains("failed_cells"));
        // More rows than the grid has cells.
        let mut bad = good.clone();
        bad.grid_cells = 1;
        assert!(bad.validate().is_err());
        // A passing row stripped of its metrics.
        let mut bad = good.clone();
        bad.cells[0].wd = None;
        assert!(bad.validate().unwrap_err().contains("wd"));
        // A passing row with a non-finite metric (serialized as null, so
        // the typed parse itself rejects it too).
        let mut bad = good.clone();
        bad.cells[0].jsd = Some(f64::NAN);
        assert!(bad.validate().unwrap_err().contains("not finite"));
        assert!(SweepReport::validate_artifact(&serde_json::to_string(&bad).unwrap()).is_err());
        // A failing row without its error.
        let mut bad = good.clone();
        bad.cells[0].ok = false;
        bad.failed_cells = 1;
        assert!(bad.validate().unwrap_err().contains("error"));
        // A failing row with an error string but no error_kind.
        let mut bad = good.clone();
        bad.cells[0].ok = false;
        bad.cells[0].error = Some("boom".to_string());
        bad.cells[0].wd = None;
        bad.cells[0].jsd = None;
        bad.cells[0].diff_corr = None;
        bad.cells[0].dcr = None;
        bad.failed_cells = 1;
        assert!(bad.validate().unwrap_err().contains("error_kind"));
        // ... and with an error_kind outside the known set.
        bad.cells[0].error_kind = Some("gremlins".to_string());
        assert!(bad.validate().unwrap_err().contains("gremlins"));
        // A passing row carrying a leftover error_kind.
        let mut bad = good.clone();
        bad.cells[0].error_kind = Some("fit".to_string());
        assert!(bad.validate().unwrap_err().contains("carries an error"));
        // A row claiming zero attempts.
        let mut bad = good.clone();
        bad.cells[0].attempts = 0;
        assert!(bad.validate().unwrap_err().contains("0 attempts"));
        // Rows out of order / duplicated.
        let mut bad = good.clone();
        bad.cells.swap(0, 1);
        assert!(bad.validate().unwrap_err().contains("ascending"));
        // A fingerprint that is not 16 lowercase hex digits.
        let mut bad = good.clone();
        bad.grid_fingerprint = "XYZ".to_string();
        assert!(bad.validate().unwrap_err().contains("fingerprint"));
        // A shard the rows do not belong to.
        let mut bad = good.clone();
        bad.shard = Some(ShardSpec { index: 1, count: 2 });
        assert!(bad.validate().unwrap_err().contains("shard"));
        // An unsupported schema version.
        let mut bad = good;
        bad.schema_version = 1;
        assert!(bad.validate().unwrap_err().contains("schema_version"));
    }

    #[test]
    fn report_round_trips_through_the_typed_parser() {
        let mut report = toy_report(4, &[0, 1, 3]);
        report.cells[1].ok = false;
        report.cells[1].error = Some("diverged".to_string());
        report.cells[1].error_kind = Some("non_finite_loss".to_string());
        report.cells[1].attempts = 3;
        report.cells[1].wd = None;
        report.cells[1].jsd = None;
        report.cells[1].diff_corr = None;
        report.cells[1].dcr = None;
        report.cells[1].train_rows = None;
        report.cells[1].synthetic_rows = None;
        report.failed_cells = 1;
        report.shard = Some(ShardSpec { index: 0, count: 1 });
        let json = serde_json::to_string_pretty(&report).unwrap();
        let parsed: SweepReport = serde_json::from_str(&json).unwrap();
        assert_eq!(parsed, report, "typed round-trip must be lossless");
    }

    #[test]
    fn shard_spec_parses_well_formed_specs_and_rejects_the_rest() {
        assert_eq!(
            ShardSpec::parse("0/2").unwrap(),
            ShardSpec { index: 0, count: 2 }
        );
        assert_eq!(
            ShardSpec::parse(" 3 / 5 ").unwrap(),
            ShardSpec { index: 3, count: 5 }
        );
        for bad in ["", "1", "a/2", "1/b", "2/2", "3/2", "1/0", "-1/2", "1/2/3"] {
            assert!(ShardSpec::parse(bad).is_err(), "'{bad}' must be rejected");
        }
    }

    #[test]
    fn resumable_rejects_invalid_shard_specs_instead_of_panicking() {
        // A spec that never went through ShardSpec::parse (built
        // programmatically or deserialized) must surface as an error, not
        // a modulo-by-zero panic in the shard filter.
        let grid = SweepGrid::default();
        let options = SweepOptions::default();
        for spec in [
            ShardSpec { index: 0, count: 0 },
            ShardSpec { index: 2, count: 2 },
        ] {
            let err = run_sweep_resumable_with(
                &grid,
                &options,
                Some(spec),
                None,
                |_, train, _: &FitContext| Ok(train.clone()),
            )
            .unwrap_err();
            assert!(
                matches!(err, SweepArtifactError::InvalidShard { .. }),
                "{spec:?} gave {err}"
            );
        }
    }

    #[test]
    fn shards_partition_the_grid_exactly() {
        // Property: for any shard count 1..=5, the shards are pairwise
        // disjoint and their union is the full axis-major cell order.
        let mut rng = StdRng::seed_from_u64(14);
        for _ in 0..20 {
            let grid = random_grid(&mut rng);
            let all = grid.expand();
            for count in 1..=5usize {
                let mut seen = vec![false; all.len()];
                for index in 0..count {
                    let shard = ShardSpec { index, count };
                    for cell in all.iter().filter(|c| shard.contains(c.index)) {
                        assert!(!seen[cell.index], "cell {} in two shards", cell.id());
                        seen[cell.index] = true;
                    }
                }
                assert!(
                    seen.iter().all(|&s| s),
                    "a cell of {grid:?} is in no shard of {count}"
                );
            }
        }
    }

    #[test]
    fn fingerprint_is_stable_and_sensitive_to_every_axis() {
        let grid = SweepGrid::default();
        let options = SweepOptions::default();
        let base = grid_fingerprint(&grid, &options);
        assert_eq!(base, grid_fingerprint(&grid, &options));
        assert_eq!(base.len(), 16);

        let mut other = grid.clone();
        other.seeds.push(9);
        assert_ne!(base, grid_fingerprint(&other, &options));
        let mut other = grid.clone();
        other.budgets = vec![TrainingBudget::Smoke];
        assert_ne!(base, grid_fingerprint(&other, &options));
        let mut other = grid.clone();
        other.generators[0].config.gross_records += 1;
        assert_ne!(base, grid_fingerprint(&other, &options));
        let mut other = grid.clone();
        other.models.pop();
        assert_ne!(base, grid_fingerprint(&other, &options));
        let sampled = SweepOptions {
            sample_rows: Some(128),
            ..SweepOptions::default()
        };
        assert_ne!(base, grid_fingerprint(&grid, &sampled));
        let no_mlef = SweepOptions {
            evaluation: metrics::EvaluationConfig {
                mlef: None,
                ..metrics::EvaluationConfig::fast()
            },
            ..SweepOptions::default()
        };
        assert_ne!(base, grid_fingerprint(&grid, &no_mlef));
        // The fault-tolerance options are part of the identity too: a
        // budgeted, retried or fault-injected run must not resume into a
        // clean prior.
        let budgeted = SweepOptions {
            budget: CellBudget {
                max_epochs: Some(3),
                wall_clock: None,
            },
            ..SweepOptions::default()
        };
        assert_ne!(base, grid_fingerprint(&grid, &budgeted));
        let retried = SweepOptions {
            retries: 1,
            ..SweepOptions::default()
        };
        assert_ne!(base, grid_fingerprint(&grid, &retried));
        let faulted = SweepOptions {
            faults: FaultPlan::parse("cell0:panic").unwrap(),
            ..SweepOptions::default()
        };
        assert_ne!(base, grid_fingerprint(&grid, &faulted));
    }

    #[test]
    fn merge_recombines_disjoint_shards_and_rejects_overlap() {
        let even = SweepReport {
            shard: Some(ShardSpec { index: 0, count: 2 }),
            ..toy_report(4, &[0, 2])
        };
        let odd = SweepReport {
            shard: Some(ShardSpec { index: 1, count: 2 }),
            ..toy_report(4, &[1, 3])
        };
        let merged = SweepReport::merge(&[odd.clone(), even.clone()]).unwrap();
        assert!(merged.is_complete());
        assert_eq!(merged.shard, None);
        assert_eq!(
            merged.cells.iter().map(|r| r.index).collect::<Vec<_>>(),
            vec![0, 1, 2, 3],
            "rows sort back into axis-major order regardless of part order"
        );
        assert_eq!(merged.canonical(), toy_report(4, &[0, 1, 2, 3]).canonical());
        merged.validate().unwrap();

        // Overlapping parts are rejected, naming the duplicated cell.
        let err = SweepReport::merge(&[even.clone(), even.clone()]).unwrap_err();
        assert!(matches!(err, SweepArtifactError::OverlappingCell { .. }));
        // Mismatched fingerprints are rejected.
        let mut stale = odd.clone();
        stale.grid_fingerprint = "ffffffffffffffff".to_string();
        assert!(matches!(
            SweepReport::merge(&[even.clone(), stale]).unwrap_err(),
            SweepArtifactError::FingerprintMismatch { .. }
        ));
        // Mismatched grid sizes and schema versions are rejected.
        let mut wrong = odd.clone();
        wrong.grid_cells = 8;
        assert!(matches!(
            SweepReport::merge(&[even.clone(), wrong]).unwrap_err(),
            SweepArtifactError::GridSize { .. }
        ));
        let mut old = odd.clone();
        old.schema_version = 1;
        assert!(matches!(
            SweepReport::merge(&[even.clone(), old]).unwrap_err(),
            SweepArtifactError::SchemaVersion { .. }
        ));
        // A row outside the declared grid is rejected.
        let mut outside = odd;
        outside.cells[1].index = 9;
        assert!(matches!(
            SweepReport::merge(&[even, outside]).unwrap_err(),
            SweepArtifactError::UnknownCell { .. }
        ));
        assert_eq!(
            SweepReport::merge(&[]).unwrap_err(),
            SweepArtifactError::NoParts
        );
        // An incomplete but valid merge is allowed; completeness is policy.
        let partial = SweepReport::merge(&[toy_report(4, &[1])]).unwrap();
        assert!(!partial.is_complete());
    }

    #[test]
    fn canonical_zeroes_every_wall_clock_field() {
        let report = toy_report(2, &[0, 1]);
        let canonical = report.canonical();
        assert_eq!(canonical.wall_ms, 0.0);
        assert!(canonical.cells.iter().all(|row| row.wall_ms == 0.0));
        // Everything else is untouched.
        assert_eq!(canonical.grid_fingerprint, report.grid_fingerprint);
        assert_eq!(canonical.total_cells, report.total_cells);
        // Two runs differing only in timing agree canonically.
        let mut slower = report.clone();
        slower.wall_ms += 100.0;
        slower.cells[0].wall_ms += 3.0;
        assert_ne!(slower, report);
        assert_eq!(slower.canonical(), report.canonical());
    }

    /// A 4-cell grid cheap enough for fault-injection tests: the fitter is
    /// injected, so the models never actually train.
    fn tiny_grid() -> SweepGrid {
        let mut small = NamedGeneratorConfig::preset("small").unwrap();
        small.config.gross_records = 800;
        SweepGrid {
            seeds: vec![5, 6],
            budgets: vec![TrainingBudget::Smoke],
            generators: vec![small],
            models: vec![ModelKind::Smote, ModelKind::TabDdpm],
        }
    }

    #[test]
    fn injected_faults_produce_typed_rows_and_isolate_neighbours() {
        let options = SweepOptions {
            faults: FaultPlan::parse("cell0:panic,cell1:nan,cell2:budget,cell3:delay:30ms")
                .unwrap(),
            ..SweepOptions::default()
        };
        // A cooperative fitter: polls the control like a real epoch loop,
        // then echoes the training split.
        let outcome = run_sweep_with(&tiny_grid(), &options, |_, train, ctx: &FitContext| {
            ctx.control.check_epoch(0)?;
            Ok(train.clone())
        });
        assert_eq!(outcome.runs.len(), 4);
        let panic_error = outcome.runs[0].outcome.as_ref().unwrap_err();
        assert!(
            matches!(panic_error, CellError::Panicked { message } if message.contains("injected fault: panic at cell0")),
            "{panic_error:?}"
        );
        assert_eq!(
            outcome.runs[1].outcome.as_ref().unwrap_err(),
            &CellError::NonFiniteLoss { epoch: 0 }
        );
        assert_eq!(
            outcome.runs[2].outcome.as_ref().unwrap_err(),
            &CellError::BudgetExceeded {
                completed_epochs: 0
            }
        );
        assert!(outcome.runs[3].outcome.is_ok(), "delay must not fail");
        assert!(
            outcome.runs[3].wall_ms >= 30.0,
            "delay fault must show up in wall-clock ({} ms)",
            outcome.runs[3].wall_ms
        );
        assert!(outcome.runs.iter().all(|run| run.attempts == 1));

        let report = outcome.report();
        let kinds: Vec<Option<&str>> = report
            .cells
            .iter()
            .map(|row| row.error_kind.as_deref())
            .collect();
        assert_eq!(
            kinds,
            vec![Some("panic"), Some("non_finite_loss"), Some("budget"), None]
        );
        report.validate().unwrap();
    }

    #[test]
    fn retries_reseed_deterministically_and_budget_trips_are_terminal() {
        let mut grid = tiny_grid();
        grid.seeds = vec![5];
        grid.models = vec![ModelKind::Smote];

        // The first attempt panics (attempt-bounded fault); the retry runs
        // clean under the derived seed.
        let options = SweepOptions {
            retries: 1,
            faults: FaultPlan::parse("cell0:panic:1").unwrap(),
            ..SweepOptions::default()
        };
        let seeds_seen = Mutex::new(Vec::new());
        let outcome = run_sweep_with(&grid, &options, |_, train, ctx: &FitContext| {
            seeds_seen.lock().unwrap().push(ctx.seed);
            Ok(train.clone())
        });
        assert!(outcome.runs[0].outcome.is_ok());
        assert_eq!(outcome.runs[0].attempts, 2);
        // The fault panics before the fitter runs, so only the retry's
        // derived seed is observed.
        assert_eq!(*seeds_seen.lock().unwrap(), vec![derive_attempt_seed(5, 1)]);

        // Same options, same grid: the artifact is canonically identical.
        let again = run_sweep_with(
            &grid,
            &options,
            |_, train, _: &FitContext| Ok(train.clone()),
        );
        assert_eq!(
            outcome.report().canonical(),
            again.report().canonical(),
            "retried runs must stay deterministic"
        );

        // An exhausted retry budget still reports the terminal error.
        let always = SweepOptions {
            retries: 2,
            faults: FaultPlan::parse("cell0:nan").unwrap(),
            ..SweepOptions::default()
        };
        let outcome = run_sweep_with(&grid, &always, |_, train, _: &FitContext| Ok(train.clone()));
        assert_eq!(outcome.runs[0].attempts, 3);
        assert!(matches!(
            outcome.runs[0].outcome.as_ref().unwrap_err(),
            CellError::NonFiniteLoss { .. }
        ));

        // Budget trips never retry: the budget spans the whole cell, so a
        // retry would trip again immediately.
        let budgeted = SweepOptions {
            retries: 3,
            faults: FaultPlan::parse("cell0:budget").unwrap(),
            ..SweepOptions::default()
        };
        let outcome = run_sweep_with(&grid, &budgeted, |_, train, ctx: &FitContext| {
            ctx.control.check_epoch(0)?;
            Ok(train.clone())
        });
        assert_eq!(outcome.runs[0].attempts, 1);
        assert!(matches!(
            outcome.runs[0].outcome.as_ref().unwrap_err(),
            CellError::BudgetExceeded { .. }
        ));
    }

    /// A journal text for `toy_report(4, &[0, 2])`'s rows written in
    /// completion order 2-then-0 (parallel cells finish out of grid order).
    fn toy_journal() -> (String, SweepReport) {
        let report = toy_report(4, &[0, 2]);
        let header = JournalHeader {
            journal_version: JOURNAL_VERSION,
            grid_fingerprint: report.grid_fingerprint.clone(),
            grid_cells: report.grid_cells,
            shard: None,
        };
        let mut text = serde_json::to_string(&header).unwrap();
        text.push('\n');
        for row in [&report.cells[1], &report.cells[0]] {
            text.push_str(&serde_json::to_string(row).unwrap());
            text.push('\n');
        }
        (text, report)
    }

    #[test]
    fn journal_recovery_sorts_rows_and_matches_the_artifact() {
        let (text, report) = toy_journal();
        let recovered = SweepReport::recover_journal(&text).unwrap();
        assert_eq!(
            recovered.cells.iter().map(|r| r.index).collect::<Vec<_>>(),
            vec![0, 2],
            "completion-order rows must sort back into grid order"
        );
        assert_eq!(recovered.canonical().cells, report.canonical().cells);
        assert_eq!(recovered.grid_fingerprint, report.grid_fingerprint);
        assert_eq!(recovered.total_cells, 2);
        recovered.validate().unwrap();
    }

    #[test]
    fn journal_truncated_at_any_byte_boundary_recovers_cleanly() {
        let (text, _) = toy_journal();
        // The prefix that still contains the complete first row (everything
        // up to and including its newline).
        let row_starts: Vec<usize> = text
            .char_indices()
            .filter(|&(_, c)| c == '\n')
            .map(|(i, _)| i + 1)
            .collect();
        let last_row_start = row_starts[row_starts.len() - 2];
        // Truncate the final row at every byte boundary: recovery must
        // either keep it (only when complete) or drop it — never error.
        for cut in 0..=(text.len() - last_row_start) {
            let truncated = &text[..last_row_start + cut];
            let recovered = SweepReport::recover_journal(truncated)
                .unwrap_or_else(|e| panic!("cut at +{cut} failed: {e}"));
            let expected = if truncated.len() >= text.len() - 1 {
                2
            } else {
                1
            };
            assert_eq!(recovered.total_cells, expected, "cut at +{cut}");
        }
    }

    #[test]
    fn journal_rejects_interior_corruption_and_bad_headers() {
        let (text, _) = toy_journal();
        // Interior corruption (a damaged, fsync'd row) is never silently
        // dropped.
        let corrupted = text.replacen("\"ok\":", "\"notok\":", 1);
        assert!(SweepReport::recover_journal(&corrupted)
            .unwrap_err()
            .contains("journal line 2"));
        // A bad or missing header fails immediately.
        assert!(SweepReport::recover_journal("").is_err());
        assert!(SweepReport::recover_journal("not json\n").is_err());
        let wrong_version = text.replacen("\"journal_version\":1", "\"journal_version\":99", 1);
        assert!(SweepReport::recover_journal(&wrong_version)
            .unwrap_err()
            .contains("journal_version"));
    }

    #[test]
    fn journal_writer_round_trips_through_recovery() {
        let path = std::env::temp_dir().join(format!(
            "surrogate_journal_test_{}.jsonl",
            std::process::id()
        ));
        let (_, report) = toy_journal();
        let header = JournalHeader {
            journal_version: JOURNAL_VERSION,
            grid_fingerprint: report.grid_fingerprint.clone(),
            grid_cells: report.grid_cells,
            shard: None,
        };
        let writer = JournalWriter::create(&path, &header).unwrap();
        for row in &report.cells {
            writer.append(row).unwrap();
        }
        let text = std::fs::read_to_string(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert!(
            text.starts_with("{\"journal_version\""),
            "the header must be sniffable from the first bytes: {text:?}"
        );
        let recovered = SweepReport::recover_journal(&text).unwrap();
        assert_eq!(recovered.canonical().cells, report.canonical().cells);
    }
}
