//! Scenario-sweep runtime: many seeds × budgets × generator variants ×
//! models, batched over one work queue.
//!
//! The paper evaluates its four surrogates at a single seed and budget, but
//! the point of a surrogate is cheap *exploration* of many simulator
//! configurations. This module scales the experiment runtime in that
//! direction: a declarative [`SweepGrid`] expands into [`SweepCell`]s (one
//! per axis combination), and [`run_sweep`] executes every cell's
//! fit→sample→evaluate pipeline batched over the existing rayon pool.
//!
//! Three properties are load-bearing, mirroring `experiment`:
//!
//! * **Flat work queue** — (scenario × model) work items are flattened into
//!   one parallel queue rather than nesting parallel loops, so the pool
//!   load-balances across the whole grid instead of fork-joining per
//!   scenario. Datasets shared by several cells (same seed + generator
//!   variant) are prepared once, up front.
//! * **Per-cell determinism** — every cell derives its RNGs from its own
//!   seed axis value alone, so any cell run standalone ([`run_cell`]) is
//!   byte-identical to the same cell inside a sweep, and parallel and
//!   sequential sweeps agree byte-for-byte; `tests/sweep.rs` asserts both.
//! * **Per-cell failure isolation** — a diverging fit surfaces as that
//!   cell's `Err` (reusing the `FitReport` semantics of per-run `Result`s);
//!   every other cell's output is untouched.
//!
//! Results aggregate into a serializable [`SweepReport`] (one metrics row
//! per cell: WD / JSD / diff-CORR / DCR / diff-MLEF deltas from `metrics`,
//! wall-clock, pass/fail) that the `bench --bin sweep` binary writes as a
//! JSON artifact and re-parses through the `serde_json` shim.

use std::sync::Arc;
use std::time::Instant;

use rayon::prelude::*;
use serde::Serialize;

use metrics::{evaluate_surrogate, EvaluationConfig, SurrogateReport};
use pandasim::GeneratorConfig;
use tabular::Table;

use crate::experiment::{prepare_data_from_config, ExecutionMode, PreparedData};
use crate::pipeline::{fit_and_sample, ModelKind, TrainingBudget};
use crate::traits::SurrogateError;

/// A named generator configuration — one value on the sweep's
/// generator-variant axis. The name is carried into cell ids and report
/// rows; the config's `seed` field is overridden per cell by the seed axis.
#[derive(Debug, Clone)]
pub struct NamedGeneratorConfig {
    /// Short name used in cell ids (e.g. `"tier2_heavy"`).
    pub name: String,
    /// The generator configuration this name stands for.
    pub config: GeneratorConfig,
}

impl NamedGeneratorConfig {
    /// Resolve one of the `pandasim` presets (see
    /// [`GeneratorConfig::PRESET_NAMES`]).
    pub fn preset(name: &str) -> Option<Self> {
        GeneratorConfig::preset(name).map(|config| Self {
            name: name.to_string(),
            config,
        })
    }
}

/// The declarative sweep grid: the cross product of four axes. Expansion
/// order is fixed — seeds, then budgets, then generator variants, then
/// models — so cell indices and report rows are stable for a given grid.
///
/// Axis values are taken as given: a repeated value (the same seed twice,
/// two variants with one name) expands into cells with duplicate ids that
/// are fitted twice and double-weighted by downstream means. Callers that
/// accept user input should de-duplicate first, as the `sweep` binary does.
#[derive(Debug, Clone)]
pub struct SweepGrid {
    /// Seed axis. Each seed drives both data generation and model training.
    pub seeds: Vec<u64>,
    /// Training-budget axis.
    pub budgets: Vec<TrainingBudget>,
    /// Generator-variant axis.
    pub generators: Vec<NamedGeneratorConfig>,
    /// Model-subset axis.
    pub models: Vec<ModelKind>,
}

impl Default for SweepGrid {
    fn default() -> Self {
        Self {
            seeds: vec![2024],
            budgets: vec![TrainingBudget::Standard],
            generators: vec![NamedGeneratorConfig::preset("default").expect("known preset")],
            models: ModelKind::ALL.to_vec(),
        }
    }
}

impl SweepGrid {
    /// Number of cells the grid expands to (product of the axis lengths).
    pub fn len(&self) -> usize {
        self.seeds.len() * self.budgets.len() * self.generators.len() * self.models.len()
    }

    /// Whether any axis is empty (the grid expands to no cells).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Expand the grid into its cells, in the fixed axis order.
    pub fn expand(&self) -> Vec<SweepCell> {
        let mut cells = Vec::with_capacity(self.len());
        for &seed in &self.seeds {
            for &budget in &self.budgets {
                for generator in &self.generators {
                    for &model in &self.models {
                        // The cell's dataset is a pure function of
                        // (generator variant, seed): pin the seed here so
                        // standalone and in-sweep runs prepare identical data.
                        let mut generator = generator.clone();
                        generator.config.seed = seed;
                        cells.push(SweepCell {
                            index: cells.len(),
                            seed,
                            budget,
                            generator,
                            model,
                        });
                    }
                }
            }
        }
        cells
    }
}

/// One (scenario × model) work item of a sweep.
#[derive(Debug, Clone)]
pub struct SweepCell {
    /// Position in the expanded grid (stable for a given grid).
    pub index: usize,
    /// Seed axis value (already applied to `generator.config.seed`).
    pub seed: u64,
    /// Training-budget axis value.
    pub budget: TrainingBudget,
    /// Generator-variant axis value, seed already pinned.
    pub generator: NamedGeneratorConfig,
    /// Model axis value.
    pub model: ModelKind,
}

impl SweepCell {
    /// Human-readable unique id, e.g. `s2024-smoke-default-tabddpm`.
    pub fn id(&self) -> String {
        let model: String = self
            .model
            .name()
            .chars()
            .filter(|c| c.is_ascii_alphanumeric())
            .collect::<String>()
            .to_ascii_lowercase();
        format!(
            "s{}-{}-{}-{}",
            self.seed,
            self.budget.name(),
            self.generator.name,
            model
        )
    }

    /// Key identifying the prepared dataset this cell runs on. Cells share
    /// one prepared dataset inside a sweep only when both this key (seed +
    /// variant name) and the full generator config agree, so a misnamed
    /// variant can never silently run on another variant's data.
    pub fn dataset_key(&self) -> (u64, String) {
        (self.seed, self.generator.name.clone())
    }
}

/// Options shared by every cell of a sweep.
#[derive(Debug, Clone)]
pub struct SweepOptions {
    /// Parallel (default) or sequential execution; byte-identical outputs.
    pub mode: ExecutionMode,
    /// Metric configuration for the per-cell evaluation.
    pub evaluation: EvaluationConfig,
    /// Retain each cell's synthetic table in its [`CellRun`]. Off by
    /// default: a large sweep would otherwise hold every synthetic table in
    /// memory at once. Determinism tests switch this on to compare tables
    /// byte-for-byte.
    pub keep_tables: bool,
    /// Rows to sample per cell; `None` samples as many as the training
    /// split holds.
    pub sample_rows: Option<usize>,
}

impl Default for SweepOptions {
    fn default() -> Self {
        Self {
            mode: ExecutionMode::Parallel,
            evaluation: EvaluationConfig::fast(),
            keep_tables: false,
            sample_rows: None,
        }
    }
}

/// What a successfully executed cell produced.
#[derive(Debug)]
pub struct CellSuccess {
    /// The Table-I-style metrics row for this cell.
    pub report: SurrogateReport,
    /// Rows in the training split the model was fitted on.
    pub train_rows: usize,
    /// Rows sampled from the fitted model.
    pub synthetic_rows: usize,
    /// The synthetic table, kept only under
    /// [`SweepOptions::keep_tables`].
    pub synthetic: Option<Table>,
}

/// The outcome of one cell: its metrics row, or why the fit failed —
/// failure stays confined to the cell, like a failed
/// [`crate::experiment::ModelRun`] inside a `FitReport`.
#[derive(Debug)]
pub struct CellRun {
    /// The cell this run executed.
    pub cell: SweepCell,
    /// Metrics row or per-cell error.
    pub outcome: Result<CellSuccess, SurrogateError>,
    /// Wall-clock of the fit→sample→evaluate pipeline for this cell.
    pub wall_ms: f64,
}

/// Every cell's run from one sweep, in grid-expansion order.
#[derive(Debug)]
pub struct SweepOutcome {
    /// One entry per cell, order preserved.
    pub runs: Vec<CellRun>,
    /// Wall-clock of the whole sweep (dataset preparation + all cells).
    pub wall_ms: f64,
}

impl SweepOutcome {
    /// The cells that failed, with their errors.
    pub fn failures(&self) -> impl Iterator<Item = (&SweepCell, &SurrogateError)> {
        self.runs
            .iter()
            .filter_map(|run| run.outcome.as_ref().err().map(|e| (&run.cell, e)))
    }

    /// Print every failed cell to stderr and return how many failed.
    pub fn report_failures(&self) -> usize {
        let mut failed = 0;
        for (cell, error) in self.failures() {
            eprintln!("warning: cell {} failed: {error}", cell.id());
            failed += 1;
        }
        failed
    }

    /// Lower the outcome into the serializable artifact.
    pub fn report(&self) -> SweepReport {
        let cells: Vec<SweepCellRow> = self.runs.iter().map(SweepCellRow::from_run).collect();
        SweepReport {
            schema_version: 1,
            generated_by: "surrogate::sweep".to_string(),
            total_cells: cells.len(),
            failed_cells: cells.iter().filter(|c| !c.ok).count(),
            wall_ms: self.wall_ms,
            cells,
        }
    }
}

/// One serialized row of the sweep artifact.
#[derive(Debug, Clone, Serialize)]
pub struct SweepCellRow {
    /// Unique cell id (see [`SweepCell::id`]).
    pub id: String,
    /// Seed axis value.
    pub seed: u64,
    /// Budget axis value (name).
    pub budget: String,
    /// Generator-variant axis value (name).
    pub generator: String,
    /// Model axis value (Table-I name).
    pub model: String,
    /// Whether the cell produced a metrics row.
    pub ok: bool,
    /// The cell's error, when `ok` is false.
    pub error: Option<String>,
    /// Training rows the model saw (absent on failure).
    pub train_rows: Option<usize>,
    /// Synthetic rows sampled (absent on failure).
    pub synthetic_rows: Option<usize>,
    /// Cell wall-clock in milliseconds.
    pub wall_ms: f64,
    /// Mean normalised Wasserstein distance (↓, absent on failure).
    pub wd: Option<f64>,
    /// Mean Jensen–Shannon divergence (↓, absent on failure).
    pub jsd: Option<f64>,
    /// Association-matrix delta (↓, absent on failure).
    pub diff_corr: Option<f64>,
    /// Distance to closest record (↑, absent on failure).
    pub dcr: Option<f64>,
    /// MLEF gap (↓, absent when failed or probe skipped).
    pub diff_mlef: Option<f64>,
}

impl SweepCellRow {
    fn from_run(run: &CellRun) -> Self {
        let cell = &run.cell;
        let base = Self {
            id: cell.id(),
            seed: cell.seed,
            budget: cell.budget.name().to_string(),
            generator: cell.generator.name.clone(),
            model: cell.model.name().to_string(),
            ok: false,
            error: None,
            train_rows: None,
            synthetic_rows: None,
            wall_ms: run.wall_ms,
            wd: None,
            jsd: None,
            diff_corr: None,
            dcr: None,
            diff_mlef: None,
        };
        match &run.outcome {
            Ok(success) => Self {
                ok: true,
                train_rows: Some(success.train_rows),
                synthetic_rows: Some(success.synthetic_rows),
                wd: Some(success.report.wd),
                jsd: Some(success.report.jsd),
                diff_corr: Some(success.report.diff_corr),
                dcr: Some(success.report.dcr),
                diff_mlef: success.report.diff_mlef,
                ..base
            },
            Err(error) => Self {
                error: Some(error.to_string()),
                ..base
            },
        }
    }
}

/// The serializable sweep artifact: header plus one row per cell.
#[derive(Debug, Clone, Serialize)]
pub struct SweepReport {
    /// Artifact schema version (this layout: 1).
    pub schema_version: u32,
    /// Producer tag.
    pub generated_by: String,
    /// Number of cells in the sweep.
    pub total_cells: usize,
    /// How many of them failed.
    pub failed_cells: usize,
    /// Whole-sweep wall-clock in milliseconds.
    pub wall_ms: f64,
    /// Per-cell rows, in grid-expansion order.
    pub cells: Vec<SweepCellRow>,
}

impl SweepReport {
    /// Parse a written artifact back and check its shape, returning the
    /// cell count. This is the read-back half the `sweep` binary and
    /// `tests/sweep.rs` use to prove the JSON round-trips.
    pub fn validate_artifact(text: &str) -> Result<usize, String> {
        use serde_json::ValueExt;
        let doc = serde_json::from_str(text).map_err(|e| e.to_string())?;
        let total = doc
            .get("total_cells")
            .and_then(|v| v.as_f64())
            .ok_or("missing numeric 'total_cells'")? as usize;
        let cells = doc
            .get("cells")
            .and_then(|v| v.as_array())
            .ok_or("missing 'cells' array")?;
        if cells.len() != total {
            return Err(format!(
                "cell count mismatch: total_cells {total} vs {} rows",
                cells.len()
            ));
        }
        for row in cells {
            row.get("id")
                .and_then(|v| v.as_str())
                .ok_or("cell row missing 'id'")?;
            let ok = match row.get("ok") {
                Some(serde_json::Value::Bool(b)) => *b,
                _ => return Err("cell row missing boolean 'ok'".to_string()),
            };
            if ok {
                for field in ["wd", "jsd", "diff_corr", "dcr"] {
                    let v = row
                        .get(field)
                        .and_then(|v| v.as_f64())
                        .ok_or_else(|| format!("passing cell missing numeric '{field}'"))?;
                    if !v.is_finite() {
                        return Err(format!("cell field '{field}' is not finite"));
                    }
                }
            } else {
                row.get("error")
                    .and_then(|v| v.as_str())
                    .ok_or("failing cell missing 'error'")?;
            }
        }
        Ok(total)
    }
}

/// The default cell fitter: fit the cell's model on the training split and
/// sample synthetic rows, with the RNG chain derived from the cell seed
/// exactly as [`crate::experiment::fit_all`] derives it from the
/// experiment seed.
fn default_fitter(
    cell: &SweepCell,
    train: &Table,
    sample_rows: Option<usize>,
) -> Result<Table, SurrogateError> {
    let rows = sample_rows.unwrap_or_else(|| train.n_rows());
    fit_and_sample(cell.model, train, rows, cell.budget, cell.seed)
}

/// Fit→sample→evaluate one cell against an already prepared dataset.
fn run_cell_prepared<F>(
    data: &PreparedData,
    cell: &SweepCell,
    options: &SweepOptions,
    fitter: &F,
) -> CellRun
where
    F: Fn(&SweepCell, &Table) -> Result<Table, SurrogateError> + Sync,
{
    let start = Instant::now();
    let outcome = fitter(cell, &data.train).and_then(|synthetic| {
        // An empty synthetic table would panic inside the metric kernels;
        // surface it as this cell's failure, not a sweep-wide abort.
        if synthetic.n_rows() == 0 {
            return Err(SurrogateError::InvalidTrainingData(
                "model produced an empty synthetic table".to_string(),
            ));
        }
        let report = evaluate_surrogate(
            cell.model.name(),
            &data.train,
            &data.test,
            &synthetic,
            &options.evaluation,
        );
        Ok(CellSuccess {
            report,
            train_rows: data.train.n_rows(),
            synthetic_rows: synthetic.n_rows(),
            synthetic: options.keep_tables.then_some(synthetic),
        })
    });
    CellRun {
        cell: cell.clone(),
        outcome,
        wall_ms: start.elapsed().as_secs_f64() * 1e3,
    }
}

/// Run one cell standalone: prepare its dataset and execute its pipeline.
/// Byte-identical to the same cell inside [`run_sweep`] — both prepare the
/// dataset as a pure function of the cell's generator config, and both
/// derive the model RNGs from the cell seed alone.
pub fn run_cell(cell: &SweepCell, options: &SweepOptions) -> CellRun {
    let data = prepare_data_from_config(&cell.generator.config);
    run_cell_prepared(&data, cell, options, &|cell, train| {
        default_fitter(cell, train, options.sample_rows)
    })
}

/// Execute every cell of the grid with the default fitter.
pub fn run_sweep(grid: &SweepGrid, options: &SweepOptions) -> SweepOutcome {
    run_sweep_with(grid, options, |cell, train| {
        default_fitter(cell, train, options.sample_rows)
    })
}

/// [`run_sweep`] with an injected cell fitter. This is the orchestration
/// core; tests inject failing fitters to exercise per-cell failure
/// isolation without waiting for a real model to diverge.
pub fn run_sweep_with<F>(grid: &SweepGrid, options: &SweepOptions, fitter: F) -> SweepOutcome
where
    F: Fn(&SweepCell, &Table) -> Result<Table, SurrogateError> + Sync,
{
    let start = Instant::now();
    let cells = grid.expand();

    // Prepare each distinct (seed, generator variant) dataset once, in
    // parallel. Cells hold an index into this list. The full config is part
    // of the identity: two variants that share a name but differ in config
    // get separate datasets, preserving standalone/in-sweep byte-identity.
    let mut keys: Vec<((u64, String), GeneratorConfig)> = Vec::new();
    let dataset_of: Vec<usize> = cells
        .iter()
        .map(|cell| {
            let key = cell.dataset_key();
            keys.iter()
                .position(|(k, config)| *k == key && *config == cell.generator.config)
                .unwrap_or_else(|| {
                    keys.push((key, cell.generator.config.clone()));
                    keys.len() - 1
                })
        })
        .collect();
    let configs: Vec<GeneratorConfig> = keys.into_iter().map(|(_, config)| config).collect();
    let datasets: Vec<Arc<PreparedData>> = match options.mode {
        ExecutionMode::Parallel => configs
            .par_iter()
            .map(|config| Arc::new(prepare_data_from_config(config)))
            .collect(),
        ExecutionMode::Sequential => configs
            .iter()
            .map(|config| Arc::new(prepare_data_from_config(config)))
            .collect(),
    };

    // One flat (scenario × model) work queue over the shared pool: no
    // nested parallel loops, so the pool balances across the whole grid.
    let work: Vec<(SweepCell, Arc<PreparedData>)> = cells
        .into_iter()
        .zip(&dataset_of)
        .map(|(cell, &dataset)| (cell, Arc::clone(&datasets[dataset])))
        .collect();
    // The work items now hold the only long-lived Arcs: dropping this Vec
    // lets each dataset be freed as soon as its last cell completes,
    // bounding peak memory to in-flight cells instead of the whole grid.
    drop(datasets);
    let runs: Vec<CellRun> = match options.mode {
        ExecutionMode::Parallel => work
            .into_par_iter()
            .map(|(cell, data)| run_cell_prepared(&data, &cell, options, &fitter))
            .collect(),
        ExecutionMode::Sequential => work
            .into_iter()
            .map(|(cell, data)| run_cell_prepared(&data, &cell, options, &fitter))
            .collect(),
    };

    SweepOutcome {
        runs,
        wall_ms: start.elapsed().as_secs_f64() * 1e3,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// A grid with axis lengths drawn from `rng` (each at least 1).
    fn random_grid(rng: &mut StdRng) -> SweepGrid {
        let n_seeds = rng.gen_range(1..5);
        let n_budgets = rng.gen_range(1..4);
        let n_generators = rng.gen_range(1..GeneratorConfig::PRESET_NAMES.len() + 1);
        let n_models = rng.gen_range(1..ModelKind::ALL.len() + 1);
        SweepGrid {
            seeds: (0..n_seeds).map(|i| 1000 + i as u64 * 7).collect(),
            budgets: TrainingBudget::ALL[..n_budgets].to_vec(),
            generators: GeneratorConfig::PRESET_NAMES[..n_generators]
                .iter()
                .map(|name| NamedGeneratorConfig::preset(name).unwrap())
                .collect(),
            models: ModelKind::ALL[..n_models].to_vec(),
        }
    }

    #[test]
    fn expansion_count_is_the_product_of_axis_lengths() {
        let mut rng = StdRng::seed_from_u64(11);
        for _ in 0..50 {
            let grid = random_grid(&mut rng);
            let cells = grid.expand();
            assert_eq!(
                cells.len(),
                grid.seeds.len() * grid.budgets.len() * grid.generators.len() * grid.models.len()
            );
            assert_eq!(cells.len(), grid.len());
            assert!(!grid.is_empty());
        }
    }

    #[test]
    fn expansion_has_no_duplicate_cell_ids() {
        let mut rng = StdRng::seed_from_u64(12);
        for _ in 0..50 {
            let grid = random_grid(&mut rng);
            let mut ids: Vec<String> = grid.expand().iter().map(SweepCell::id).collect();
            let before = ids.len();
            ids.sort();
            ids.dedup();
            assert_eq!(ids.len(), before, "duplicate cell id in {grid:?}");
        }
    }

    #[test]
    fn expansion_ordering_is_stable_and_axis_major() {
        let mut rng = StdRng::seed_from_u64(13);
        for _ in 0..20 {
            let grid = random_grid(&mut rng);
            let a = grid.expand();
            let b = grid.expand();
            assert_eq!(a.len(), b.len());
            for (x, y) in a.iter().zip(&b) {
                assert_eq!(x.id(), y.id());
                assert_eq!(x.index, y.index);
            }
            // Axis-major order: the expansion enumerates models fastest,
            // then generators, then budgets, then seeds.
            for (i, cell) in a.iter().enumerate() {
                let n_models = grid.models.len();
                let n_generators = grid.generators.len();
                let n_budgets = grid.budgets.len();
                assert_eq!(cell.index, i);
                assert_eq!(cell.model, grid.models[i % n_models]);
                let gi = (i / n_models) % n_generators;
                assert_eq!(cell.generator.name, grid.generators[gi].name);
                let bi = (i / (n_models * n_generators)) % n_budgets;
                assert_eq!(cell.budget, grid.budgets[bi]);
                let si = i / (n_models * n_generators * n_budgets);
                assert_eq!(cell.seed, grid.seeds[si]);
            }
        }
    }

    #[test]
    fn expanded_cells_pin_the_seed_into_the_generator_config() {
        let grid = SweepGrid {
            seeds: vec![1, 2],
            ..SweepGrid::default()
        };
        for cell in grid.expand() {
            assert_eq!(cell.generator.config.seed, cell.seed);
        }
    }

    #[test]
    fn empty_axis_expands_to_no_cells() {
        let grid = SweepGrid {
            models: Vec::new(),
            ..SweepGrid::default()
        };
        assert!(grid.is_empty());
        assert_eq!(grid.expand().len(), 0);
    }

    #[test]
    fn same_named_variants_with_different_configs_get_separate_datasets() {
        // Two variants that (wrongly) share a name but differ in config
        // must not share a prepared dataset — the cell's own config wins,
        // so standalone/in-sweep byte-identity survives the name clash.
        let mut small = NamedGeneratorConfig::preset("small").unwrap();
        small.config.gross_records = 800;
        let mut bigger = small.clone();
        bigger.config.gross_records = 1_600;
        let grid = SweepGrid {
            seeds: vec![5],
            budgets: vec![TrainingBudget::Smoke],
            generators: vec![small, bigger],
            models: vec![ModelKind::Smote],
        };
        // Echo the training split back so train_rows exposes which dataset
        // each cell actually ran on.
        let outcome = run_sweep_with(
            &grid,
            &SweepOptions::default(),
            |_, train| Ok(train.clone()),
        );
        let rows: Vec<usize> = outcome
            .runs
            .iter()
            .map(|run| run.outcome.as_ref().unwrap().train_rows)
            .collect();
        assert_eq!(rows.len(), 2);
        assert!(
            rows[1] > rows[0],
            "second variant ran on the first variant's dataset: {rows:?}"
        );
    }

    #[test]
    fn empty_synthetic_table_fails_only_its_own_cell() {
        // The metric kernels panic on empty samples; the runtime must turn
        // an empty synthetic table into that cell's Err instead.
        let mut small = NamedGeneratorConfig::preset("small").unwrap();
        small.config.gross_records = 800;
        let grid = SweepGrid {
            seeds: vec![5],
            budgets: vec![TrainingBudget::Smoke],
            generators: vec![small],
            models: vec![ModelKind::Smote, ModelKind::TabDdpm],
        };
        let outcome = run_sweep_with(&grid, &SweepOptions::default(), |cell, train| {
            if cell.model == ModelKind::Smote {
                Ok(Table::new())
            } else {
                Ok(train.clone())
            }
        });
        assert_eq!(outcome.runs.len(), 2);
        let error = outcome.runs[0].outcome.as_ref().unwrap_err();
        assert!(error.to_string().contains("empty synthetic table"));
        assert!(outcome.runs[1].outcome.is_ok());
    }

    #[test]
    fn report_rows_mirror_outcomes() {
        let cell = SweepGrid::default().expand().remove(0);
        let ok_run = CellRun {
            cell: cell.clone(),
            outcome: Ok(CellSuccess {
                report: SurrogateReport {
                    model: cell.model.name().to_string(),
                    wd: 0.1,
                    jsd: 0.2,
                    diff_corr: 0.3,
                    dcr: 0.4,
                    diff_mlef: None,
                },
                train_rows: 100,
                synthetic_rows: 100,
                synthetic: None,
            }),
            wall_ms: 5.0,
        };
        let err_run = CellRun {
            cell,
            outcome: Err(SurrogateError::InvalidTrainingData("boom".to_string())),
            wall_ms: 1.0,
        };
        let outcome = SweepOutcome {
            runs: vec![ok_run, err_run],
            wall_ms: 6.0,
        };
        let report = outcome.report();
        assert_eq!(report.total_cells, 2);
        assert_eq!(report.failed_cells, 1);
        assert!(report.cells[0].ok);
        assert_eq!(report.cells[0].wd, Some(0.1));
        assert!(!report.cells[1].ok);
        assert!(report.cells[1].error.as_deref().unwrap().contains("boom"));
        assert_eq!(report.cells[1].wd, None);

        // The serialized artifact round-trips through the shim parser.
        let json = serde_json::to_string_pretty(&report).unwrap();
        assert_eq!(SweepReport::validate_artifact(&json).unwrap(), 2);
    }

    #[test]
    fn validate_artifact_rejects_malformed_documents() {
        assert!(SweepReport::validate_artifact("not json").is_err());
        assert!(SweepReport::validate_artifact("{}").is_err());
        // Count mismatch between the header and the rows.
        assert!(SweepReport::validate_artifact(r#"{"total_cells": 2, "cells": []}"#).is_err());
        // A passing row missing its metrics.
        let bad = r#"{"total_cells": 1, "cells": [{"id": "x", "ok": true}]}"#;
        assert!(SweepReport::validate_artifact(bad).is_err());
        // A failing row carrying its error is fine.
        let ok = r#"{"total_cells": 1, "cells": [{"id": "x", "ok": false, "error": "e"}]}"#;
        assert_eq!(SweepReport::validate_artifact(ok).unwrap(), 1);
    }
}
