//! TVAE: a variational autoencoder for mixed-type tabular data.
//!
//! The encoder maps an encoded row to the mean and log-variance of a Gaussian
//! latent code; the decoder maps a reparameterised latent sample back to the
//! encoded space. Training minimises the mixed reconstruction loss plus the
//! KL divergence to the standard normal prior (§IV-A of the paper). Sampling
//! draws latents from the prior and decodes them.

use nn::{
    gaussian_kl, standard_normal_into, standard_normal_matrix, Adam, AdamConfig, CosineDecay,
    LrSchedule, Matrix, Mlp, MlpConfig,
};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use tabular::Table;

use crate::codec::TableCodec;
use crate::fault::FitControl;
use crate::mixed::mixed_reconstruction_loss;
use crate::traits::{SampleSpec, SurrogateError, TabularGenerator};

/// TVAE hyper-parameters.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TvaeConfig {
    /// Latent dimensionality.
    pub latent_dim: usize,
    /// Hidden widths of encoder and decoder.
    pub hidden: Vec<usize>,
    /// Number of passes over the training data.
    pub epochs: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Peak learning rate (cosine-decayed, as in the paper).
    pub learning_rate: f64,
    /// Weight of the KL term.
    pub kl_weight: f64,
    /// RNG seed for initialisation and batching.
    pub seed: u64,
}

impl Default for TvaeConfig {
    fn default() -> Self {
        Self {
            latent_dim: 16,
            hidden: vec![128, 128],
            epochs: 60,
            batch_size: 256,
            learning_rate: 2e-4,
            kl_weight: 1.0,
            seed: 11,
        }
    }
}

impl TvaeConfig {
    /// Small configuration for unit tests.
    pub fn fast() -> Self {
        Self {
            latent_dim: 4,
            hidden: vec![32],
            epochs: 30,
            batch_size: 64,
            learning_rate: 5e-3,
            ..Default::default()
        }
    }
}

/// The TVAE surrogate model.
///
/// Serializable in full (config, fitted codec/encoder/decoder state, loss
/// history) so a fitted model checkpoints and reloads with byte-identical
/// sampling.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Tvae {
    config: TvaeConfig,
    codec: Option<TableCodec>,
    encoder: Option<Mlp>,
    decoder: Option<Mlp>,
    /// Mean training loss per epoch, for diagnostics.
    pub loss_history: Vec<f64>,
}

impl Tvae {
    /// New, unfitted model.
    pub fn new(config: TvaeConfig) -> Self {
        Self {
            config,
            codec: None,
            encoder: None,
            decoder: None,
            loss_history: Vec::new(),
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &TvaeConfig {
        &self.config
    }
}

impl TabularGenerator for Tvae {
    fn name(&self) -> &'static str {
        "TVAE"
    }

    fn fit(&mut self, train: &Table) -> Result<(), SurrogateError> {
        self.fit_with_control(train, &FitControl::unlimited())
    }

    fn fit_with_control(
        &mut self,
        train: &Table,
        control: &FitControl,
    ) -> Result<(), SurrogateError> {
        let codec = TableCodec::fit(train)?;
        let data = codec.encode(train)?;
        let width = codec.encoded_width();
        let cfg = &self.config;
        let mut rng = StdRng::seed_from_u64(cfg.seed);

        let mut encoder = Mlp::new(
            &MlpConfig::relu(width, cfg.hidden.clone(), 2 * cfg.latent_dim),
            &mut rng,
        );
        let mut decoder = Mlp::new(
            &MlpConfig::relu(cfg.latent_dim, cfg.hidden.clone(), width),
            &mut rng,
        );
        let mut adam = Adam::new(AdamConfig::default());

        let n = data.rows();
        let batch = cfg.batch_size.min(n).max(1);
        let steps_per_epoch = n.div_ceil(batch);
        let schedule = CosineDecay {
            base_lr: cfg.learning_rate,
            min_lr: cfg.learning_rate * 0.01,
            total_steps: cfg.epochs * steps_per_epoch,
            warmup_steps: 0,
        };

        let mut indices: Vec<usize> = (0..n).collect();
        let mut step = 0usize;
        self.loss_history.clear();

        // Batch and noise buffers reused across steps (the final chunk of an
        // epoch may be short; the `_into` variants reshape without
        // reallocating).
        let mut x = Matrix::zeros(batch, width);
        let mut eps = Matrix::zeros(batch, cfg.latent_dim);

        for epoch in 0..cfg.epochs {
            control.check_epoch(epoch)?;
            indices.shuffle(&mut rng);
            let mut epoch_loss = 0.0;
            for chunk in indices.chunks(batch) {
                data.take_rows_into(chunk, &mut x);
                let lr = schedule.lr_at(step);
                step += 1;

                // Encode to (mu, logvar).
                let enc_out = encoder.forward(&x);
                let mu = enc_out.slice_cols(0, cfg.latent_dim);
                let logvar = enc_out
                    .slice_cols(cfg.latent_dim, 2 * cfg.latent_dim)
                    .map(|v| v.clamp(-8.0, 8.0));

                // Reparameterise (noise buffer reused across steps).
                standard_normal_into(x.rows(), cfg.latent_dim, &mut rng, &mut eps);
                let std = logvar.map(|v| (0.5 * v).exp());
                let z = mu.add(&eps.mul(&std));

                // Decode and compute losses.
                let recon = decoder.forward(&z);
                let (recon_loss, grad_recon) = mixed_reconstruction_loss(codec.spans(), &recon, &x);
                let (kl_loss, grad_kl_mu, grad_kl_logvar) = gaussian_kl(&mu, &logvar);
                epoch_loss += recon_loss + cfg.kl_weight * kl_loss;

                // Backprop through the decoder to the latent.
                let grad_z = decoder.backward(&grad_recon);

                // Gradients w.r.t. mu and logvar.
                let grad_mu = grad_z.add(&grad_kl_mu.scale(cfg.kl_weight));
                let grad_logvar_from_z = grad_z.mul(&eps).mul(&std).scale(0.5);
                let grad_logvar = grad_logvar_from_z.add(&grad_kl_logvar.scale(cfg.kl_weight));

                // Backprop through the encoder.
                let grad_enc_out = grad_mu.hconcat(&grad_logvar);
                encoder.backward(&grad_enc_out);

                encoder.clip_gradients(5.0);
                decoder.clip_gradients(5.0);
                encoder.apply_gradients(&mut adam, 0, lr);
                decoder.apply_gradients(&mut adam, 1, lr);
            }
            let mean_loss = epoch_loss / steps_per_epoch as f64;
            if !mean_loss.is_finite() {
                return Err(SurrogateError::NonFiniteLoss { epoch });
            }
            self.loss_history.push(mean_loss);
        }

        self.codec = Some(codec);
        self.encoder = Some(encoder);
        self.decoder = Some(decoder);
        Ok(())
    }

    fn sample(&self, n: usize, seed: u64) -> Result<Table, SurrogateError> {
        let codec = self
            .codec
            .as_ref()
            .ok_or(SurrogateError::NotFitted("TVAE"))?;
        let decoder = self.decoder.as_ref().expect("decoder set when codec is");
        let mut rng = StdRng::seed_from_u64(seed);
        let z = standard_normal_matrix(n, self.config.latent_dim, &mut rng);
        let raw = decoder.infer(&z);
        codec.decode(&raw)
    }

    fn sample_f32(&self, n: usize, seed: u64) -> Result<Table, SurrogateError> {
        let codec = self
            .codec
            .as_ref()
            .ok_or(SurrogateError::NotFitted("TVAE"))?;
        let decoder = self.decoder.as_ref().expect("decoder set when codec is");
        let mut rng = StdRng::seed_from_u64(seed);
        // Same latent draws as the f64 path, rounded once; the decoder
        // forward pass — the whole cost of TVAE sampling — runs in f32.
        let z =
            nn::Matrix32::from_f64(&standard_normal_matrix(n, self.config.latent_dim, &mut rng));
        let raw = decoder.to_f32().infer(&z);
        codec.decode(&raw.to_f64())
    }

    fn sample_batch(&self, specs: &[SampleSpec]) -> Result<Vec<Table>, SurrogateError> {
        let codec = self
            .codec
            .as_ref()
            .ok_or(SurrogateError::NotFitted("TVAE"))?;
        let decoder = self.decoder.as_ref().expect("decoder set when codec is");
        if specs.is_empty() {
            return Ok(Vec::new());
        }
        // Each spec's latents come from its own RNG stream — exactly the
        // draws a standalone `sample(rows, seed)` makes — stacked into one
        // 2ᵏ-row-padded block so the decoder runs a single packed forward
        // pass for the whole batch. Row-independent kernels make the
        // stacking (and the zero padding rows) invisible to every spec.
        let mut z = Matrix::zeros(SampleSpec::padded_rows(specs), self.config.latent_dim);
        let mut offset = 0;
        for spec in specs {
            let mut rng = StdRng::seed_from_u64(spec.seed);
            z.paste(
                offset,
                0,
                &standard_normal_matrix(spec.rows, self.config.latent_dim, &mut rng),
            );
            offset += spec.rows;
        }
        let mut raw = Matrix::default();
        let mut scratch = Matrix::default();
        decoder.infer_into(&z, &mut raw, &mut scratch);
        let mut tables = Vec::with_capacity(specs.len());
        let mut offset = 0;
        for spec in specs {
            tables.push(codec.decode(&raw.slice_rows(offset, offset + spec.rows))?);
            offset += spec.rows;
        }
        Ok(tables)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;
    use tabular::Column;

    fn toy(n: usize, seed: u64) -> Table {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut values = Vec::with_capacity(n);
        let mut labels = Vec::with_capacity(n);
        for _ in 0..n {
            // Two clusters: (small workload, "BNL") and (large workload, "CERN").
            if rng.gen_bool(0.6) {
                values.push(rng.gen_range(1.0..10.0));
                labels.push("BNL");
            } else {
                values.push(rng.gen_range(100.0..200.0));
                labels.push("CERN");
            }
        }
        let mut t = Table::new();
        t.push_column("workload", Column::Numerical(values))
            .unwrap();
        t.push_column("site", Column::from_labels(&labels)).unwrap();
        t
    }

    #[test]
    fn training_loss_decreases() {
        let train = toy(300, 1);
        let mut model = Tvae::new(TvaeConfig::fast());
        model.fit(&train).unwrap();
        let first = model.loss_history.first().copied().unwrap();
        let last = model.loss_history.last().copied().unwrap();
        assert!(last < first, "loss did not decrease: {first} -> {last}");
    }

    #[test]
    fn samples_have_training_schema_and_vocabulary() {
        let train = toy(200, 2);
        let mut model = Tvae::new(TvaeConfig::fast());
        model.fit(&train).unwrap();
        let synthetic = model.sample(50, 0).unwrap();
        assert_eq!(synthetic.n_rows(), 50);
        assert_eq!(synthetic.names(), train.names());
        for r in 0..synthetic.n_rows() {
            assert!(["BNL", "CERN"].contains(&synthetic.label("site", r).unwrap()));
        }
    }

    #[test]
    fn sampling_is_seed_deterministic() {
        let train = toy(150, 3);
        let mut model = Tvae::new(TvaeConfig::fast());
        model.fit(&train).unwrap();
        assert_eq!(model.sample(20, 5).unwrap(), model.sample(20, 5).unwrap());
    }

    #[test]
    fn sample_before_fit_errors() {
        let model = Tvae::new(TvaeConfig::fast());
        assert!(matches!(
            model.sample(5, 0),
            Err(SurrogateError::NotFitted(_))
        ));
        assert!(matches!(
            model.sample_batch(&[SampleSpec::new(5, 0)]),
            Err(SurrogateError::NotFitted(_))
        ));
    }

    #[test]
    fn batched_sampling_is_byte_identical_to_unbatched() {
        let train = toy(150, 8);
        let mut model = Tvae::new(TvaeConfig::fast());
        model.fit(&train).unwrap();
        // Mixed row counts and seeds, including a duplicate seed and a
        // total (7+9+7 = 23) that forces padding up to 32 rows.
        let specs = [
            SampleSpec::new(7, 11),
            SampleSpec::new(9, 5),
            SampleSpec::new(7, 11),
        ];
        let batched = model.sample_batch(&specs).unwrap();
        for (spec, table) in specs.iter().zip(&batched) {
            assert_eq!(table, &model.sample(spec.rows, spec.seed).unwrap());
        }
        assert!(model.sample_batch(&[]).unwrap().is_empty());
    }

    #[test]
    fn samples_stay_in_plausible_numeric_range() {
        let train = toy(300, 4);
        let mut model = Tvae::new(TvaeConfig::fast());
        model.fit(&train).unwrap();
        let synthetic = model.sample(100, 1).unwrap();
        // The quantile decoder interpolates the training order statistics, so
        // values cannot escape the training range.
        let train_vals = train.numerical("workload").unwrap();
        let min = train_vals.iter().copied().fold(f64::INFINITY, f64::min);
        let max = train_vals.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        for &v in synthetic.numerical("workload").unwrap() {
            assert!(v >= min - 1e-9 && v <= max + 1e-9);
        }
    }

    #[test]
    fn budget_cancels_fit_with_typed_error() {
        use crate::fault::CellBudget;
        use std::time::{Duration, Instant};

        let train = toy(200, 5);

        // Epoch cap: fit stops at the cap and reports honest progress.
        let mut model = Tvae::new(TvaeConfig::fast());
        let control = CellBudget {
            max_epochs: Some(2),
            wall_clock: None,
        }
        .control_from(Instant::now());
        assert_eq!(
            model.fit_with_control(&train, &control),
            Err(SurrogateError::BudgetExceeded {
                completed_epochs: 2
            })
        );
        assert_eq!(model.loss_history.len(), 2);

        // Already-expired wall clock: cancelled before the first epoch.
        let mut model = Tvae::new(TvaeConfig::fast());
        let expired = CellBudget {
            wall_clock: Some(Duration::ZERO),
            max_epochs: None,
        }
        .control_from(Instant::now());
        assert_eq!(
            model.fit_with_control(&train, &expired),
            Err(SurrogateError::BudgetExceeded {
                completed_epochs: 0
            })
        );
    }

    #[test]
    fn non_finite_loss_is_detected() {
        let train = toy(300, 6);
        let mut model = Tvae::new(TvaeConfig {
            learning_rate: f64::NAN,
            ..TvaeConfig::fast()
        });
        assert_eq!(
            model.fit(&train),
            Err(SurrogateError::NonFiniteLoss { epoch: 0 })
        );
    }
}
