//! The shared table ↔ dense-matrix codec.
//!
//! Following §V-A of the paper, numerical columns are normalised with a
//! Gaussian quantile transformation and categorical columns are expanded into
//! one-hot blocks. The encoded representation is a dense `f64` matrix in
//! which every model operates; decoding inverts the quantile transform and
//! takes the arg-max of each one-hot block.

use nn::Matrix;
use serde::{Deserialize, Serialize};
use tabular::{Column, FeatureKind, NumericTransform, OneHotEncoder, QuantileTransformer, Table};

use crate::traits::SurrogateError;

/// Where one original column lives inside the encoded matrix.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ColumnSpan {
    /// Original column name.
    pub name: String,
    /// Column kind.
    pub kind: FeatureKind,
    /// First encoded column of the block.
    pub start: usize,
    /// Width of the block (1 for numerical, cardinality for categorical).
    pub width: usize,
}

/// Fitted encoder/decoder between a [`Table`] and a dense matrix.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TableCodec {
    spans: Vec<ColumnSpan>,
    quantile: Vec<QuantileTransformer>,
    one_hot: Vec<OneHotEncoder>,
    vocabs: Vec<Vec<String>>,
    encoded_width: usize,
}

impl TableCodec {
    /// Fit the codec on a training table.
    pub fn fit(train: &Table) -> Result<Self, SurrogateError> {
        if train.n_rows() == 0 || train.n_cols() == 0 {
            return Err(SurrogateError::InvalidTrainingData(
                "empty training table".to_string(),
            ));
        }
        let mut spans = Vec::new();
        let mut quantile = Vec::new();
        let mut one_hot = Vec::new();
        let mut vocabs = Vec::new();
        let mut cursor = 0usize;

        for (name, column) in train.names().iter().zip(train.columns()) {
            match column {
                Column::Numerical(values) => {
                    let mut qt = QuantileTransformer::new();
                    qt.fit(values)?;
                    spans.push(ColumnSpan {
                        name: name.clone(),
                        kind: FeatureKind::Numerical,
                        start: cursor,
                        width: 1,
                    });
                    quantile.push(qt);
                    cursor += 1;
                }
                Column::Categorical { codes, vocab } => {
                    let encoder = OneHotEncoder::new(vocab.len());
                    // Validate codes are in range.
                    if codes.iter().any(|&c| c as usize >= vocab.len()) {
                        return Err(SurrogateError::InvalidTrainingData(format!(
                            "column `{name}` has codes outside its vocabulary"
                        )));
                    }
                    spans.push(ColumnSpan {
                        name: name.clone(),
                        kind: FeatureKind::Categorical,
                        start: cursor,
                        width: vocab.len(),
                    });
                    cursor += vocab.len();
                    one_hot.push(encoder);
                    vocabs.push(vocab.clone());
                }
            }
        }

        Ok(Self {
            spans,
            quantile,
            one_hot,
            vocabs,
            encoded_width: cursor,
        })
    }

    /// Width of the encoded representation.
    pub fn encoded_width(&self) -> usize {
        self.encoded_width
    }

    /// Column layout of the encoded matrix.
    pub fn spans(&self) -> &[ColumnSpan] {
        &self.spans
    }

    /// Number of numerical columns.
    pub fn n_numerical(&self) -> usize {
        self.quantile.len()
    }

    /// Number of categorical columns.
    pub fn n_categorical(&self) -> usize {
        self.one_hot.len()
    }

    /// Encode a table into a dense matrix (rows × encoded_width).
    pub fn encode(&self, table: &Table) -> Result<Matrix, SurrogateError> {
        let n = table.n_rows();
        let mut out = Matrix::zeros(n, self.encoded_width);
        let mut num_idx = 0usize;
        let mut cat_idx = 0usize;
        for span in &self.spans {
            match span.kind {
                FeatureKind::Numerical => {
                    let values = table.numerical(&span.name)?;
                    let transformed = self.quantile[num_idx].transform(values)?;
                    for (r, v) in transformed.iter().enumerate() {
                        out.set(r, span.start, *v);
                    }
                    num_idx += 1;
                }
                FeatureKind::Categorical => {
                    // Remap labels onto the training vocabulary so tables with
                    // differently ordered vocabularies encode consistently.
                    let vocab = &self.vocabs[cat_idx];
                    for r in 0..n {
                        let label = table.label(&span.name, r)?;
                        if let Some(code) = vocab.iter().position(|v| v == label) {
                            out.set(r, span.start + code, 1.0);
                        }
                    }
                    cat_idx += 1;
                }
            }
        }
        Ok(out)
    }

    /// Decode a dense matrix back into a table with the training schema.
    /// Numerical blocks go through the inverse quantile transform; categorical
    /// blocks are decoded by arg-max.
    pub fn decode(&self, encoded: &Matrix) -> Result<Table, SurrogateError> {
        if encoded.cols() != self.encoded_width {
            return Err(SurrogateError::InvalidTrainingData(format!(
                "encoded width {} does not match codec width {}",
                encoded.cols(),
                self.encoded_width
            )));
        }
        let n = encoded.rows();
        let mut table = Table::new();
        let mut num_idx = 0usize;
        let mut cat_idx = 0usize;
        for span in &self.spans {
            match span.kind {
                FeatureKind::Numerical => {
                    let raw: Vec<f64> = (0..n).map(|r| encoded.get(r, span.start)).collect();
                    let values = self.quantile[num_idx].inverse_transform(&raw)?;
                    table.push_column(&span.name, Column::Numerical(values))?;
                    num_idx += 1;
                }
                FeatureKind::Categorical => {
                    let vocab = &self.vocabs[cat_idx];
                    let mut codes = Vec::with_capacity(n);
                    for r in 0..n {
                        let block = &encoded.row(r)[span.start..span.start + span.width];
                        let mut best = 0usize;
                        let mut best_v = f64::NEG_INFINITY;
                        for (i, &v) in block.iter().enumerate() {
                            if v > best_v {
                                best_v = v;
                                best = i;
                            }
                        }
                        codes.push(best as u32);
                    }
                    table.push_column(
                        &span.name,
                        Column::Categorical {
                            codes,
                            vocab: vocab.clone(),
                        },
                    )?;
                    cat_idx += 1;
                }
            }
        }
        Ok(table)
    }

    /// Pairwise squared Euclidean distance between two encoded rows.
    pub fn encoded_distance(row_a: &[f64], row_b: &[f64]) -> f64 {
        row_a
            .iter()
            .zip(row_b)
            .map(|(a, b)| (a - b) * (a - b))
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy_table() -> Table {
        let mut t = Table::new();
        t.push_column(
            "workload",
            Column::Numerical(vec![1.0, 5.0, 20.0, 100.0, 400.0, 1000.0]),
        )
        .unwrap();
        t.push_column(
            "site",
            Column::from_labels(&["BNL", "CERN", "BNL", "SLAC", "BNL", "CERN"]),
        )
        .unwrap();
        t.push_column(
            "nfiles",
            Column::Numerical(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]),
        )
        .unwrap();
        t
    }

    #[test]
    fn encoded_width_counts_one_hot_blocks() {
        let codec = TableCodec::fit(&toy_table()).unwrap();
        // 2 numerical + 3 categories = 5 encoded columns.
        assert_eq!(codec.encoded_width(), 5);
        assert_eq!(codec.n_numerical(), 2);
        assert_eq!(codec.n_categorical(), 1);
        assert_eq!(codec.spans().len(), 3);
    }

    #[test]
    fn roundtrip_recovers_categories_exactly_and_numerics_approximately() {
        let table = toy_table();
        let codec = TableCodec::fit(&table).unwrap();
        let encoded = codec.encode(&table).unwrap();
        assert_eq!(encoded.rows(), 6);
        let decoded = codec.decode(&encoded).unwrap();
        // Categorical round-trip is exact.
        for r in 0..6 {
            assert_eq!(
                decoded.label("site", r).unwrap(),
                table.label("site", r).unwrap()
            );
        }
        // Numerical round-trip is approximate (quantile interpolation).
        let orig = table.numerical("workload").unwrap();
        let back = decoded.numerical("workload").unwrap();
        for (a, b) in orig.iter().zip(back) {
            assert!((a - b).abs() < a.abs() * 0.1 + 1.0, "{a} vs {b}");
        }
    }

    #[test]
    fn encoded_numerics_are_roughly_standard_normal() {
        let mut values = Vec::new();
        for i in 0..500 {
            values.push((i as f64).powf(1.7) + 3.0);
        }
        let mut t = Table::new();
        t.push_column("x", Column::Numerical(values)).unwrap();
        let codec = TableCodec::fit(&t).unwrap();
        let encoded = codec.encode(&t).unwrap();
        let mean = encoded.mean();
        let var = encoded
            .data()
            .iter()
            .map(|v| (v - mean).powi(2))
            .sum::<f64>()
            / encoded.len() as f64;
        assert!(mean.abs() < 0.05);
        assert!((var - 1.0).abs() < 0.15);
    }

    #[test]
    fn one_hot_blocks_are_valid() {
        let table = toy_table();
        let codec = TableCodec::fit(&table).unwrap();
        let encoded = codec.encode(&table).unwrap();
        let span = &codec.spans()[1];
        assert_eq!(span.kind, FeatureKind::Categorical);
        for r in 0..encoded.rows() {
            let block = &encoded.row(r)[span.start..span.start + span.width];
            let sum: f64 = block.iter().sum();
            assert!((sum - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn decode_soft_categorical_takes_argmax() {
        let table = toy_table();
        let codec = TableCodec::fit(&table).unwrap();
        let mut soft = Matrix::zeros(1, codec.encoded_width());
        // workload slot, then site block (BNL, CERN, SLAC), then nfiles slot.
        soft.set(0, 0, 0.0);
        soft.set(0, 1, 0.2);
        soft.set(0, 2, 0.7);
        soft.set(0, 3, 0.1);
        soft.set(0, 4, 0.0);
        let decoded = codec.decode(&soft).unwrap();
        assert_eq!(decoded.label("site", 0).unwrap(), "CERN");
    }

    #[test]
    fn empty_table_rejected() {
        assert!(TableCodec::fit(&Table::new()).is_err());
    }

    #[test]
    fn wrong_width_decode_rejected() {
        let codec = TableCodec::fit(&toy_table()).unwrap();
        assert!(codec.decode(&Matrix::zeros(2, 3)).is_err());
    }

    #[test]
    fn encoded_distance_is_squared_euclidean() {
        let a = [0.0, 1.0, 2.0];
        let b = [1.0, 1.0, 0.0];
        assert!((TableCodec::encoded_distance(&a, &b) - 5.0).abs() < 1e-12);
    }
}
