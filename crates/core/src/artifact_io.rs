//! Shared durability primitives for on-disk artifacts.
//!
//! Two artifact families need the same crash-safety discipline: the sweep
//! journal (`sweep::JournalWriter` / `SweepReport::recover_journal`) and
//! model checkpoints (`checkpoint`). This module factors the pieces they
//! must agree on, so the two paths cannot drift:
//!
//! * [`Fnv1a`] — the 64-bit FNV-1a hasher behind every content fingerprint
//!   in the workspace (`sweep::grid_fingerprint`, checkpoint payload
//!   fingerprints), with the length-prefixed token feed that makes
//!   concatenations collision-free.
//! * [`atomic_write`] — temp file + fsync + rename, so a reader never
//!   observes a half-written artifact: either the old file, the new file,
//!   or a stray `*.tmp` sibling that loaders ignore.
//! * [`parse_log_rows`] — validated reading of line-delimited artifacts
//!   under an explicit [`TailPolicy`]: append-only journals tolerate (and
//!   drop) one torn trailing line, the mark of a mid-append crash, while
//!   atomically written artifacts treat any unparseable line as corruption.

use std::fs::File;
use std::io::Write;
use std::path::{Path, PathBuf};

/// Suffix of the sibling temp file [`atomic_write`] stages into. Directory
/// scanners (checkpoint registry loading) skip files with this suffix: a
/// stray temp file is the only trace a `kill -9` mid-write can leave.
pub const TEMP_SUFFIX: &str = ".tmp";

/// 64-bit FNV-1a, the workspace's content-fingerprint hash.
#[derive(Debug, Clone, Copy)]
pub struct Fnv1a(u64);

impl Default for Fnv1a {
    fn default() -> Self {
        Self::new()
    }
}

impl Fnv1a {
    /// A hasher at the FNV-1a offset basis.
    pub fn new() -> Self {
        Self(0xcbf2_9ce4_8422_2325)
    }

    /// Fold raw bytes into the hash.
    pub fn update(&mut self, bytes: &[u8]) {
        for &byte in bytes {
            self.0 ^= u64::from(byte);
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }

    /// Fold one token, length-prefixed so token concatenations cannot
    /// collide (`"ab" + "c"` hashes differently from `"a" + "bc"`).
    pub fn feed_token(&mut self, token: &str) {
        self.update(&token.len().to_le_bytes());
        self.update(token.as_bytes());
    }

    /// The fingerprint as 16 lowercase hex digits.
    pub fn finish_hex(self) -> String {
        format!("{:016x}", self.0)
    }
}

/// FNV-1a fingerprint of a byte string, as 16 lowercase hex digits.
pub fn fnv1a_hex(bytes: &[u8]) -> String {
    let mut hash = Fnv1a::new();
    hash.update(bytes);
    hash.finish_hex()
}

/// The sibling temp path [`atomic_write`] stages through: the target file
/// name with [`TEMP_SUFFIX`] appended, in the same directory (renames are
/// only atomic within one filesystem).
pub fn temp_path(path: &Path) -> PathBuf {
    let mut name = path.file_name().unwrap_or_default().to_os_string();
    name.push(TEMP_SUFFIX);
    path.with_file_name(name)
}

/// Write `bytes` to `path` atomically: stage into the [`temp_path`]
/// sibling, fsync, then rename over the target. A crash at any point
/// leaves either the previous file intact or a stray temp file — never a
/// torn target — which is the same discipline the sweep journal uses for
/// its fsync'd appends.
pub fn atomic_write(path: &Path, bytes: &[u8]) -> std::io::Result<()> {
    let staging = temp_path(path);
    let mut file = File::create(&staging)?;
    file.write_all(bytes)?;
    file.sync_all()?;
    drop(file);
    std::fs::rename(&staging, path).inspect_err(|_| {
        // Best-effort cleanup; the stray temp file is harmless (loaders
        // skip it) but tidy directories beat mysterious leftovers.
        let _ = std::fs::remove_file(&staging);
    })
}

/// How the last line of a line-delimited artifact may fail.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TailPolicy {
    /// Drop an unparseable *last* line silently: an append-only, fsync'd
    /// journal killed mid-write leaves at most one torn trailing line, and
    /// every interior row is known durable.
    DropTorn,
    /// Any unparseable line is corruption. Atomically written artifacts
    /// can never legitimately tear, so nothing is forgiven.
    Strict,
}

/// Why [`parse_log_rows`] rejected a row line. `line` is the 1-based line
/// number within the artifact (headers included via `first_line`).
#[derive(Debug, Clone, PartialEq)]
pub enum RowError<E> {
    /// An interior line was empty (only a trailing newline at EOF is legal).
    Empty {
        /// 1-based line number of the empty line.
        line: usize,
    },
    /// A line failed to parse (and the tail policy did not forgive it).
    Parse {
        /// 1-based line number of the bad line.
        line: usize,
        /// The parse error, typed by the caller.
        error: E,
    },
}

/// What [`parse_log_rows`] recovered.
#[derive(Debug, Clone, PartialEq)]
pub struct ParsedRows<R> {
    /// The parsed rows, in line order.
    pub rows: Vec<R>,
    /// Whether a torn trailing line was dropped (only under
    /// [`TailPolicy::DropTorn`]).
    pub dropped_torn: bool,
}

/// Validated read of the row lines of a line-delimited artifact.
///
/// `lines` are the lines after any header, `first_line` the 1-based
/// artifact line number of `lines[0]` (2 for a one-line header). A trailing
/// empty line (the newline at EOF) is accepted; an empty interior line,
/// or a line `parse` rejects, is a [`RowError`] — except the *last* line
/// under [`TailPolicy::DropTorn`], which is dropped as a torn tail.
pub fn parse_log_rows<R, E>(
    lines: &[&str],
    first_line: usize,
    tail: TailPolicy,
    parse: impl Fn(&str) -> Result<R, E>,
) -> Result<ParsedRows<R>, RowError<E>> {
    let mut rows = Vec::with_capacity(lines.len());
    let mut dropped_torn = false;
    for (i, line) in lines.iter().enumerate() {
        let is_last = i + 1 == lines.len();
        if line.is_empty() {
            if is_last {
                break; // trailing newline at EOF
            }
            return Err(RowError::Empty {
                line: first_line + i,
            });
        }
        match parse(line) {
            Ok(row) => rows.push(row),
            Err(_) if is_last && tail == TailPolicy::DropTorn => {
                dropped_torn = true;
                break;
            }
            Err(error) => {
                return Err(RowError::Parse {
                    line: first_line + i,
                    error,
                })
            }
        }
    }
    Ok(ParsedRows { rows, dropped_torn })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse_usize(line: &str) -> Result<usize, String> {
        line.parse::<usize>().map_err(|e| e.to_string())
    }

    #[test]
    fn fnv1a_matches_the_reference_vectors() {
        // Published FNV-1a/64 test vectors.
        assert_eq!(fnv1a_hex(b""), "cbf29ce484222325");
        assert_eq!(fnv1a_hex(b"a"), "af63dc4c8601ec8c");
        assert_eq!(fnv1a_hex(b"foobar"), "85944171f73967e8");
    }

    #[test]
    fn token_feed_is_length_prefixed() {
        let mut ab_c = Fnv1a::new();
        ab_c.feed_token("ab");
        ab_c.feed_token("c");
        let mut a_bc = Fnv1a::new();
        a_bc.feed_token("a");
        a_bc.feed_token("bc");
        assert_ne!(ab_c.finish_hex(), a_bc.finish_hex());
    }

    #[test]
    fn atomic_write_replaces_the_target_and_leaves_no_temp_file() {
        let path = std::env::temp_dir().join(format!(
            "panda_surrogate_atomic_write_test_{}.txt",
            std::process::id()
        ));
        atomic_write(&path, b"first\n").unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"first\n");
        atomic_write(&path, b"second\n").unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"second\n");
        assert!(!temp_path(&path).exists(), "staging file must be renamed");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn intact_rows_parse_under_both_policies() {
        for tail in [TailPolicy::DropTorn, TailPolicy::Strict] {
            let parsed = parse_log_rows(&["1", "2", "3", ""], 2, tail, parse_usize).unwrap();
            assert_eq!(parsed.rows, vec![1, 2, 3]);
            assert!(!parsed.dropped_torn);
        }
    }

    #[test]
    fn torn_tail_is_dropped_only_under_drop_torn() {
        let lines = ["1", "2", "{\"torn"];
        let parsed = parse_log_rows(&lines, 2, TailPolicy::DropTorn, parse_usize).unwrap();
        assert_eq!(parsed.rows, vec![1, 2]);
        assert!(parsed.dropped_torn);
        assert_eq!(
            parse_log_rows(&lines, 2, TailPolicy::Strict, parse_usize),
            Err(RowError::Parse {
                line: 4,
                error: parse_usize("{\"torn").unwrap_err(),
            })
        );
    }

    #[test]
    fn interior_corruption_is_rejected_with_its_line_number() {
        let lines = ["1", "bad", "3", ""];
        for tail in [TailPolicy::DropTorn, TailPolicy::Strict] {
            let err = parse_log_rows(&lines, 2, tail, parse_usize).unwrap_err();
            assert!(matches!(err, RowError::Parse { line: 3, .. }), "{err:?}");
        }
    }

    #[test]
    fn interior_empty_lines_are_rejected() {
        let lines = ["1", "", "3"];
        for tail in [TailPolicy::DropTorn, TailPolicy::Strict] {
            assert_eq!(
                parse_log_rows(&lines, 2, tail, parse_usize),
                Err(RowError::Empty { line: 3 })
            );
        }
    }
}
