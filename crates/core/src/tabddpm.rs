//! TabDDPM: a denoising-diffusion probabilistic model for tabular data.
//!
//! The paper's recommended surrogate. Rows are mapped into the encoded space
//! (quantile-Gaussian numerics + one-hot categoricals); a forward process adds
//! Gaussian noise over `T` steps following a cosine β-schedule; an MLP
//! denoiser conditioned on the (normalised) timestep is trained to predict
//! the injected noise; sampling runs the ancestral reverse process from pure
//! noise and decodes the result.
//!
//! Substitution note (recorded in DESIGN.md): the original TabDDPM uses a
//! multinomial diffusion for the categorical blocks; here both numerical and
//! one-hot blocks share the Gaussian diffusion and categories are recovered
//! by arg-max at decode time. At the scale of this reproduction the Gaussian
//! treatment preserves the model's qualitative behaviour (high fidelity,
//! non-trivial distance from training records).

use nn::{
    mse_loss, standard_normal_into, standard_normal_matrix, Adam, AdamConfig, CosineDecay,
    LrSchedule, Matrix, Mlp, MlpConfig,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use tabular::Table;

use tabular::FeatureKind;

use crate::codec::{ColumnSpan, TableCodec};
use crate::fault::FitControl;
use crate::traits::{SampleSpec, SurrogateError, TabularGenerator};

/// TabDDPM hyper-parameters.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TabDdpmConfig {
    /// Number of diffusion timesteps `T`.
    pub timesteps: usize,
    /// Hidden widths of the denoiser MLP.
    pub hidden: Vec<usize>,
    /// Number of passes over the training data.
    pub epochs: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Peak learning rate (cosine-decayed).
    pub learning_rate: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for TabDdpmConfig {
    fn default() -> Self {
        Self {
            timesteps: 100,
            hidden: vec![256, 256],
            epochs: 80,
            batch_size: 256,
            learning_rate: 2e-4,
            seed: 17,
        }
    }
}

impl TabDdpmConfig {
    /// Small configuration for unit tests.
    pub fn fast() -> Self {
        Self {
            timesteps: 20,
            hidden: vec![64],
            epochs: 60,
            batch_size: 64,
            learning_rate: 2e-3,
            ..Default::default()
        }
    }
}

/// Rescale one-hot blocks from `{0, 1}` to `{-1, +1}` so the categorical
/// signal has the same scale as the quantile-normalised numerics and is not
/// drowned out by the Gaussian noise. Arg-max decoding is invariant to this
/// affine map, so no inverse is needed before decoding.
fn center_categorical_blocks(data: &mut Matrix, spans: &[ColumnSpan]) {
    for span in spans {
        if span.kind != FeatureKind::Categorical {
            continue;
        }
        for r in 0..data.rows() {
            for c in span.start..span.start + span.width {
                let v = data.get(r, c);
                data.set(r, c, 2.0 * v - 1.0);
            }
        }
    }
}

/// Cosine β-schedule (Nichol & Dhariwal) producing per-step ᾱ values.
fn cosine_alpha_bar(timesteps: usize) -> Vec<f64> {
    let s = 0.008;
    let f = |t: f64| {
        ((t / timesteps as f64 + s) / (1.0 + s) * std::f64::consts::FRAC_PI_2)
            .cos()
            .powi(2)
    };
    let f0 = f(0.0);
    (1..=timesteps)
        .map(|t| (f(t as f64) / f0).clamp(1e-5, 0.9999))
        .collect()
}

/// The TabDDPM surrogate model.
///
/// Serializable in full — config, fitted codec/denoiser state, the noise
/// schedule and the loss history all round-trip — so a fitted model can be
/// persisted as a [`crate::checkpoint::Checkpoint`] and sampled later with
/// byte-identical output.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TabDdpm {
    config: TabDdpmConfig,
    codec: Option<TableCodec>,
    denoiser: Option<Mlp>,
    alpha_bar: Vec<f64>,
    /// Mean training loss per epoch, for diagnostics.
    pub loss_history: Vec<f64>,
}

impl TabDdpm {
    /// New, unfitted model.
    pub fn new(config: TabDdpmConfig) -> Self {
        let alpha_bar = cosine_alpha_bar(config.timesteps);
        Self {
            config,
            codec: None,
            denoiser: None,
            alpha_bar,
            loss_history: Vec::new(),
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &TabDdpmConfig {
        &self.config
    }

    /// The ᾱ schedule (monotone decreasing in `t`).
    pub fn alpha_bar(&self) -> &[f64] {
        &self.alpha_bar
    }

    /// Write the two timestep-embedding features (normalised t and a
    /// sinusoidal phase) into `dst`. The single definition shared by the
    /// fused training loop and [`TabDdpm::denoiser_input`], so training and
    /// sampling can never feed the denoiser different embeddings.
    #[inline]
    fn write_time_embedding(t_frac: f64, dst: &mut [f64]) {
        dst[0] = t_frac;
        dst[1] = (t_frac * std::f64::consts::PI).sin();
    }

    /// Build the denoiser input: the noisy row concatenated with two timestep
    /// embedding features.
    fn denoiser_input(x_noisy: &Matrix, t_frac: &[f64]) -> Matrix {
        let rows = x_noisy.rows();
        let mut t_cols = Matrix::zeros(rows, 2);
        for (r, &t) in t_frac.iter().enumerate().take(rows) {
            Self::write_time_embedding(t, t_cols.row_mut(r));
        }
        x_noisy.hconcat(&t_cols)
    }
}

impl TabularGenerator for TabDdpm {
    fn name(&self) -> &'static str {
        "TabDDPM"
    }

    fn fit(&mut self, train: &Table) -> Result<(), SurrogateError> {
        self.fit_with_control(train, &FitControl::unlimited())
    }

    fn fit_with_control(
        &mut self,
        train: &Table,
        control: &FitControl,
    ) -> Result<(), SurrogateError> {
        let codec = TableCodec::fit(train)?;
        let mut data = codec.encode(train)?;
        center_categorical_blocks(&mut data, codec.spans());
        let width = codec.encoded_width();
        let cfg = self.config.clone();
        let timesteps = cfg.timesteps;
        let mut rng = StdRng::seed_from_u64(cfg.seed);

        let mut denoiser = Mlp::new(
            &MlpConfig::relu(width + 2, cfg.hidden.clone(), width),
            &mut rng,
        );
        let mut adam = Adam::new(AdamConfig::default());

        let n = data.rows();
        let batch = cfg.batch_size.min(n).max(1);
        let steps_per_epoch = n.div_ceil(batch);
        let schedule = CosineDecay {
            base_lr: cfg.learning_rate,
            min_lr: cfg.learning_rate * 0.01,
            total_steps: cfg.epochs * steps_per_epoch,
            warmup_steps: 0,
        };

        let mut step = 0usize;
        self.loss_history.clear();

        // Per-batch scratch reused across every step of every epoch, so the
        // hot loop performs no batch-assembly allocations: indices, clean
        // rows, noise, and the denoiser input (noisy rows + the two timestep
        // embedding columns, assembled in one fused pass).
        let mut idx = Vec::with_capacity(batch);
        let mut ts = Vec::with_capacity(batch);
        let mut x0 = Matrix::zeros(batch, width);
        let mut noise = Matrix::zeros(batch, width);
        let mut input = Matrix::zeros(batch, width + 2);

        for epoch in 0..cfg.epochs {
            control.check_epoch(epoch)?;
            let mut epoch_loss = 0.0;
            for _ in 0..steps_per_epoch {
                let lr = schedule.lr_at(step);
                step += 1;

                idx.clear();
                idx.extend((0..batch).map(|_| rng.gen_range(0..n)));
                data.take_rows_into(&idx, &mut x0);

                // Per-row timestep and noise.
                ts.clear();
                ts.extend((0..batch).map(|_| rng.gen_range(0..timesteps)));
                standard_normal_into(batch, width, &mut rng, &mut noise);

                // x_t = sqrt(ᾱ_t) x0 + sqrt(1 - ᾱ_t) ε, written straight
                // into the denoiser input next to the timestep embedding.
                for (r, &t) in ts.iter().enumerate() {
                    let ab = self.alpha_bar[t];
                    let (sa, sb) = (ab.sqrt(), (1.0 - ab).sqrt());
                    let t_frac = (t + 1) as f64 / timesteps as f64;
                    let in_row = input.row_mut(r);
                    for ((o, &x), &z) in in_row[..width].iter_mut().zip(x0.row(r)).zip(noise.row(r))
                    {
                        *o = sa * x + sb * z;
                    }
                    Self::write_time_embedding(t_frac, &mut in_row[width..]);
                }

                let predicted = denoiser.forward(&input);
                let (loss, grad) = mse_loss(&predicted, &noise);
                epoch_loss += loss;
                denoiser.backward(&grad);
                denoiser.clip_gradients(5.0);
                denoiser.apply_gradients(&mut adam, 0, lr);
            }
            let mean_loss = epoch_loss / steps_per_epoch as f64;
            if !mean_loss.is_finite() {
                return Err(SurrogateError::NonFiniteLoss { epoch });
            }
            self.loss_history.push(mean_loss);
        }

        self.codec = Some(codec);
        self.denoiser = Some(denoiser);
        Ok(())
    }

    fn sample(&self, n: usize, seed: u64) -> Result<Table, SurrogateError> {
        let codec = self
            .codec
            .as_ref()
            .ok_or(SurrogateError::NotFitted("TabDDPM"))?;
        let denoiser = self.denoiser.as_ref().expect("denoiser set when codec is");
        let width = codec.encoded_width();
        let timesteps = self.config.timesteps;
        let mut rng = StdRng::seed_from_u64(seed);

        // Reconstruct the per-step α from ᾱ.
        let mut alphas = Vec::with_capacity(timesteps);
        for t in 0..timesteps {
            let prev = if t == 0 { 1.0 } else { self.alpha_bar[t - 1] };
            alphas.push((self.alpha_bar[t] / prev).clamp(1e-5, 0.9999));
        }

        let mut x = standard_normal_matrix(n, width, &mut rng);
        for t in (0..timesteps).rev() {
            let t_frac = vec![(t + 1) as f64 / timesteps as f64; n];
            let input = Self::denoiser_input(&x, &t_frac);
            let eps_hat = denoiser.infer(&input);

            let alpha = alphas[t];
            let alpha_bar = self.alpha_bar[t];
            let coef = (1.0 - alpha) / (1.0 - alpha_bar).sqrt();
            // Posterior mean.
            let mut mean = Matrix::zeros(n, width);
            for r in 0..n {
                for c in 0..width {
                    mean.set(
                        r,
                        c,
                        (x.get(r, c) - coef * eps_hat.get(r, c)) / alpha.sqrt(),
                    );
                }
            }
            if t > 0 {
                let sigma = ((1.0 - alphas[t]) * (1.0 - self.alpha_bar[t - 1]) / (1.0 - alpha_bar))
                    .max(0.0)
                    .sqrt();
                let z = standard_normal_matrix(n, width, &mut rng);
                x = mean.add(&z.scale(sigma));
            } else {
                x = mean;
            }
        }
        codec.decode(&x)
    }

    fn sample_f32(&self, n: usize, seed: u64) -> Result<Table, SurrogateError> {
        let codec = self
            .codec
            .as_ref()
            .ok_or(SurrogateError::NotFitted("TabDDPM"))?;
        // Down-convert the fitted denoiser once; every reverse step then
        // runs its forward pass on the f32 packed kernels (double lanes).
        let denoiser = self
            .denoiser
            .as_ref()
            .expect("denoiser set when codec is")
            .to_f32();
        let width = codec.encoded_width();
        let timesteps = self.config.timesteps;
        let mut rng = StdRng::seed_from_u64(seed);

        let mut alphas = Vec::with_capacity(timesteps);
        for t in 0..timesteps {
            let prev = if t == 0 { 1.0 } else { self.alpha_bar[t - 1] };
            alphas.push((self.alpha_bar[t] / prev).clamp(1e-5, 0.9999));
        }

        // Same RNG stream as the f64 path — every draw happens in f64 and is
        // rounded once — so the two tiers differ only by arithmetic
        // precision, never by consuming different variates.
        let mut x = nn::Matrix32::from_f64(&standard_normal_matrix(n, width, &mut rng));
        let mut input = nn::Matrix32::zeros(n, width + 2);
        let mut eps_hat = nn::Matrix32::zeros(0, 0);
        let mut scratch = nn::Matrix32::zeros(0, 0);
        for t in (0..timesteps).rev() {
            let mut emb = [0.0f64; 2];
            Self::write_time_embedding((t + 1) as f64 / timesteps as f64, &mut emb);
            for r in 0..n {
                let row = input.row_mut(r);
                row[..width].copy_from_slice(x.row(r));
                row[width] = emb[0] as f32;
                row[width + 1] = emb[1] as f32;
            }
            denoiser.infer_into(&input, &mut eps_hat, &mut scratch);

            let alpha = alphas[t];
            let alpha_bar = self.alpha_bar[t];
            // Scalar coefficients in f64 (exactly the f64 path's values),
            // rounded once; the per-element update runs in f32.
            let coef = ((1.0 - alpha) / (1.0 - alpha_bar).sqrt()) as f32;
            let inv_sqrt_alpha = (1.0 / alpha.sqrt()) as f32;
            for (xv, &e) in x.data_mut().iter_mut().zip(eps_hat.data()) {
                *xv = (*xv - coef * e) * inv_sqrt_alpha;
            }
            if t > 0 {
                let sigma = ((1.0 - alphas[t]) * (1.0 - self.alpha_bar[t - 1]) / (1.0 - alpha_bar))
                    .max(0.0)
                    .sqrt() as f32;
                let z = standard_normal_matrix(n, width, &mut rng);
                for (xv, &zv) in x.data_mut().iter_mut().zip(z.data()) {
                    *xv += sigma * zv as f32;
                }
            }
        }
        codec.decode(&x.to_f64())
    }

    fn sample_batch(&self, specs: &[SampleSpec]) -> Result<Vec<Table>, SurrogateError> {
        let codec = self
            .codec
            .as_ref()
            .ok_or(SurrogateError::NotFitted("TabDDPM"))?;
        let denoiser = self.denoiser.as_ref().expect("denoiser set when codec is");
        if specs.is_empty() {
            return Ok(Vec::new());
        }
        let width = codec.encoded_width();
        let timesteps = self.config.timesteps;

        let mut alphas = Vec::with_capacity(timesteps);
        for t in 0..timesteps {
            let prev = if t == 0 { 1.0 } else { self.alpha_bar[t - 1] };
            alphas.push((self.alpha_bar[t] / prev).clamp(1e-5, 0.9999));
        }

        // One RNG stream per spec, drawn in a standalone `sample`'s order:
        // the initial latents up front, then that spec's ancestral noise
        // block at every reverse step. All specs share one 2ᵏ-row-padded
        // state matrix, so each of the `T` denoiser forward passes is a
        // single packed-kernel call for the whole batch, ping-ponging one
        // pair of reused buffers instead of allocating per step. The
        // posterior-mean update is per-element with the same
        // subtract/multiply/divide chain as the unbatched path, so every
        // spec's rows stay bit-identical to sampling it alone; the padding
        // rows (zero noise, never reseeded) are dead weight the final split
        // discards.
        let mut rngs: Vec<StdRng> = specs
            .iter()
            .map(|s| StdRng::seed_from_u64(s.seed))
            .collect();
        let mut x = Matrix::zeros(SampleSpec::padded_rows(specs), width);
        let mut offset = 0;
        for (spec, rng) in specs.iter().zip(&mut rngs) {
            x.paste(offset, 0, &standard_normal_matrix(spec.rows, width, rng));
            offset += spec.rows;
        }

        let padded = x.rows();
        let mut input = Matrix::zeros(padded, width + 2);
        let mut eps_hat = Matrix::default();
        let mut scratch = Matrix::default();
        for t in (0..timesteps).rev() {
            let mut emb = [0.0f64; 2];
            Self::write_time_embedding((t + 1) as f64 / timesteps as f64, &mut emb);
            for r in 0..padded {
                let row = input.row_mut(r);
                row[..width].copy_from_slice(x.row(r));
                row[width..].copy_from_slice(&emb);
            }
            denoiser.infer_into(&input, &mut eps_hat, &mut scratch);

            let alpha = alphas[t];
            let alpha_bar = self.alpha_bar[t];
            let coef = (1.0 - alpha) / (1.0 - alpha_bar).sqrt();
            let sqrt_alpha = alpha.sqrt();
            for (xv, &e) in x.data_mut().iter_mut().zip(eps_hat.data()) {
                *xv = (*xv - coef * e) / sqrt_alpha;
            }
            if t > 0 {
                let sigma = ((1.0 - alphas[t]) * (1.0 - self.alpha_bar[t - 1]) / (1.0 - alpha_bar))
                    .max(0.0)
                    .sqrt();
                let mut offset = 0;
                for (spec, rng) in specs.iter().zip(&mut rngs) {
                    let z = standard_normal_matrix(spec.rows, width, rng);
                    for r in 0..spec.rows {
                        for (xv, &zv) in x.row_mut(offset + r).iter_mut().zip(z.row(r)) {
                            *xv += zv * sigma;
                        }
                    }
                    offset += spec.rows;
                }
            }
        }

        let mut tables = Vec::with_capacity(specs.len());
        let mut offset = 0;
        for spec in specs {
            tables.push(codec.decode(&x.slice_rows(offset, offset + spec.rows))?);
            offset += spec.rows;
        }
        Ok(tables)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tabular::Column;

    fn toy(n: usize, seed: u64) -> Table {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut values = Vec::with_capacity(n);
        let mut labels = Vec::with_capacity(n);
        for _ in 0..n {
            if rng.gen_bool(0.65) {
                values.push(rng.gen_range(1.0..10.0));
                labels.push("BNL");
            } else {
                values.push(rng.gen_range(80.0..120.0));
                labels.push("CERN");
            }
        }
        let mut t = Table::new();
        t.push_column("workload", Column::Numerical(values))
            .unwrap();
        t.push_column("site", Column::from_labels(&labels)).unwrap();
        t
    }

    #[test]
    fn alpha_bar_schedule_is_monotone_decreasing() {
        let ab = cosine_alpha_bar(50);
        assert_eq!(ab.len(), 50);
        for w in ab.windows(2) {
            assert!(w[1] <= w[0] + 1e-12);
        }
        assert!(ab[0] > 0.9);
        assert!(*ab.last().unwrap() < 0.05);
    }

    #[test]
    fn training_loss_decreases() {
        let train = toy(300, 1);
        let mut model = TabDdpm::new(TabDdpmConfig::fast());
        model.fit(&train).unwrap();
        let first = model.loss_history.first().copied().unwrap();
        let last = model.loss_history.last().copied().unwrap();
        assert!(last < first, "loss did not decrease: {first} -> {last}");
        // Predicting unit-variance noise from scratch has loss ≈ 1; a trained
        // model must do clearly better.
        assert!(last < 0.95, "final loss {last}");
    }

    #[test]
    fn samples_have_training_schema() {
        let train = toy(250, 2);
        let mut model = TabDdpm::new(TabDdpmConfig::fast());
        model.fit(&train).unwrap();
        let synthetic = model.sample(60, 0).unwrap();
        assert_eq!(synthetic.n_rows(), 60);
        assert_eq!(synthetic.names(), train.names());
        let mut bnl = 0;
        for r in 0..synthetic.n_rows() {
            let label = synthetic.label("site", r).unwrap();
            assert!(["BNL", "CERN"].contains(&label));
            if label == "BNL" {
                bnl += 1;
            }
        }
        // The dominant category should stay dominant in the synthetic data.
        assert!(bnl > 20, "bnl share collapsed: {bnl}/60");
    }

    #[test]
    fn sampling_is_seed_deterministic() {
        let train = toy(150, 3);
        let mut model = TabDdpm::new(TabDdpmConfig::fast());
        model.fit(&train).unwrap();
        assert_eq!(model.sample(10, 4).unwrap(), model.sample(10, 4).unwrap());
        assert_ne!(model.sample(10, 4).unwrap(), model.sample(10, 5).unwrap());
    }

    #[test]
    fn sample_before_fit_errors() {
        let model = TabDdpm::new(TabDdpmConfig::fast());
        assert!(matches!(
            model.sample(5, 0),
            Err(SurrogateError::NotFitted(_))
        ));
        assert!(matches!(
            model.sample_batch(&[SampleSpec::new(5, 0)]),
            Err(SurrogateError::NotFitted(_))
        ));
    }

    #[test]
    fn batched_sampling_is_byte_identical_to_unbatched() {
        // The hardest case for the identity contract: every one of the T
        // reverse steps interleaves a shared batched forward pass with
        // per-spec ancestral noise draws.
        let train = toy(150, 11);
        let mut model = TabDdpm::new(TabDdpmConfig::fast());
        model.fit(&train).unwrap();
        let specs = [
            SampleSpec::new(5, 21),
            SampleSpec::new(12, 4),
            SampleSpec::new(5, 21),
        ];
        let batched = model.sample_batch(&specs).unwrap();
        assert_eq!(batched.len(), specs.len());
        for (spec, table) in specs.iter().zip(&batched) {
            assert_eq!(table, &model.sample(spec.rows, spec.seed).unwrap());
        }
    }

    #[test]
    fn budget_cancels_fit_and_nan_lr_is_detected() {
        use crate::fault::CellBudget;
        use std::time::Instant;

        let train = toy(200, 7);
        let mut model = TabDdpm::new(TabDdpmConfig::fast());
        let control = CellBudget {
            max_epochs: Some(1),
            wall_clock: None,
        }
        .control_from(Instant::now());
        assert_eq!(
            model.fit_with_control(&train, &control),
            Err(SurrogateError::BudgetExceeded {
                completed_epochs: 1
            })
        );
        assert_eq!(model.loss_history.len(), 1);

        let mut diverging = TabDdpm::new(TabDdpmConfig {
            learning_rate: f64::NAN,
            ..TabDdpmConfig::fast()
        });
        assert_eq!(
            diverging.fit(&train),
            Err(SurrogateError::NonFiniteLoss { epoch: 0 })
        );
    }
}
