//! Helpers for working with the mixed (numerical + one-hot) encoded layout.
//!
//! Shared by the neural surrogate models: per-block softmax activation for
//! generator outputs, its backward pass, and the mixed reconstruction loss
//! (MSE on numerical slots, softmax cross-entropy on categorical blocks).

use nn::{softmax_rows, softmax_slice, Matrix};
use tabular::FeatureKind;

use crate::codec::ColumnSpan;

/// Apply the mixed output activation: identity on numerical slots, softmax on
/// every categorical block.
pub fn mixed_activation(spans: &[ColumnSpan], raw: &Matrix) -> Matrix {
    let mut out = Matrix::default();
    mixed_activation_into(spans, raw, &mut out);
    out
}

/// [`mixed_activation`] into a caller-owned buffer: the raw output is copied
/// once and every categorical block is softmaxed in place (via the shared
/// [`softmax_slice`] kernel, on the row slice itself), so a training step
/// that reuses the buffer performs no allocations here.
pub fn mixed_activation_into(spans: &[ColumnSpan], raw: &Matrix, out: &mut Matrix) {
    out.copy_from(raw);
    for span in spans {
        if span.kind != FeatureKind::Categorical {
            continue;
        }
        for r in 0..out.rows() {
            softmax_slice(&mut out.row_mut(r)[span.start..span.start + span.width]);
        }
    }
}

/// Backward pass of [`mixed_activation`]: given the gradient with respect to
/// the activated output, return the gradient with respect to the raw input.
/// Numerical slots pass through; categorical blocks use the softmax Jacobian
/// `dL/dz_i = p_i (g_i - Σ_j g_j p_j)`.
pub fn mixed_activation_backward(
    spans: &[ColumnSpan],
    activated: &Matrix,
    grad_activated: &Matrix,
) -> Matrix {
    let mut grad = grad_activated.clone();
    for span in spans {
        if span.kind != FeatureKind::Categorical {
            continue;
        }
        for r in 0..activated.rows() {
            let p = &activated.row(r)[span.start..span.start + span.width];
            let g = &grad_activated.row(r)[span.start..span.start + span.width];
            let dot: f64 = p.iter().zip(g).map(|(pi, gi)| pi * gi).sum();
            let out_row = grad.row_mut(r);
            for i in 0..span.width {
                out_row[span.start + i] = p[i] * (g[i] - dot);
            }
        }
    }
    grad
}

/// Mixed reconstruction loss between raw network output and an encoded
/// target: mean squared error on numerical slots plus softmax cross-entropy
/// on categorical blocks (both averaged per row), and the gradient with
/// respect to the raw output.
pub fn mixed_reconstruction_loss(
    spans: &[ColumnSpan],
    raw_output: &Matrix,
    target: &Matrix,
) -> (f64, Matrix) {
    assert_eq!(raw_output.rows(), target.rows(), "row count mismatch");
    assert_eq!(raw_output.cols(), target.cols(), "width mismatch");
    let n = raw_output.rows() as f64;
    let mut loss = 0.0;
    let mut grad = Matrix::zeros(raw_output.rows(), raw_output.cols());

    for span in spans {
        match span.kind {
            FeatureKind::Numerical => {
                for r in 0..raw_output.rows() {
                    let p = raw_output.get(r, span.start);
                    let t = target.get(r, span.start);
                    loss += (p - t) * (p - t) / n;
                    grad.set(r, span.start, 2.0 * (p - t) / n);
                }
            }
            FeatureKind::Categorical => {
                let logits = raw_block(raw_output, span);
                let probs = softmax_rows(&logits);
                for r in 0..raw_output.rows() {
                    let t_row = &target.row(r)[span.start..span.start + span.width];
                    let p_row = probs.row(r);
                    for i in 0..span.width {
                        if t_row[i] > 0.0 {
                            loss -= t_row[i] * p_row[i].max(1e-12).ln() / n;
                        }
                        grad.set(r, span.start + i, (p_row[i] - t_row[i]) / n);
                    }
                }
            }
        }
    }
    (loss, grad)
}

fn raw_block(m: &Matrix, span: &ColumnSpan) -> Matrix {
    m.slice_cols(span.start, span.start + span.width)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spans() -> Vec<ColumnSpan> {
        vec![
            ColumnSpan {
                name: "x".to_string(),
                kind: FeatureKind::Numerical,
                start: 0,
                width: 1,
            },
            ColumnSpan {
                name: "c".to_string(),
                kind: FeatureKind::Categorical,
                start: 1,
                width: 3,
            },
        ]
    }

    #[test]
    fn activation_normalises_categorical_blocks_only() {
        let raw = Matrix::from_rows(&[vec![2.5, 1.0, 2.0, 3.0]]);
        let act = mixed_activation(&spans(), &raw);
        assert_eq!(act.get(0, 0), 2.5);
        let sum: f64 = act.row(0)[1..4].iter().sum();
        assert!((sum - 1.0).abs() < 1e-9);
        assert!(act.get(0, 3) > act.get(0, 1));
    }

    #[test]
    fn activation_backward_matches_finite_differences() {
        let raw = Matrix::from_rows(&[vec![0.3, 0.5, -0.2, 1.1]]);
        let spans = spans();
        // Scalar objective: weighted sum of activated outputs.
        let weights = [0.7, -0.3, 0.9, 0.4];
        let objective = |raw: &Matrix| -> f64 {
            let act = mixed_activation(&spans, raw);
            act.row(0).iter().zip(&weights).map(|(a, w)| a * w).sum()
        };
        let act = mixed_activation(&spans, &raw);
        let grad_act = Matrix::from_rows(&[weights.to_vec()]);
        let grad_raw = mixed_activation_backward(&spans, &act, &grad_act);
        let eps = 1e-6;
        for i in 0..4 {
            let mut plus = raw.clone();
            plus.set(0, i, raw.get(0, i) + eps);
            let mut minus = raw.clone();
            minus.set(0, i, raw.get(0, i) - eps);
            let numeric = (objective(&plus) - objective(&minus)) / (2.0 * eps);
            assert!(
                (numeric - grad_raw.get(0, i)).abs() < 1e-5,
                "slot {i}: {numeric} vs {}",
                grad_raw.get(0, i)
            );
        }
    }

    #[test]
    fn reconstruction_loss_zero_at_perfect_prediction() {
        let spans = spans();
        // Perfect numeric + near-one-hot logits.
        let target = Matrix::from_rows(&[vec![1.5, 0.0, 1.0, 0.0]]);
        let raw = Matrix::from_rows(&[vec![1.5, -30.0, 30.0, -30.0]]);
        let (loss, _) = mixed_reconstruction_loss(&spans, &raw, &target);
        assert!(loss < 1e-6, "loss = {loss}");
    }

    #[test]
    fn reconstruction_gradient_matches_finite_differences() {
        let spans = spans();
        let target = Matrix::from_rows(&[vec![0.8, 1.0, 0.0, 0.0], vec![-0.5, 0.0, 0.0, 1.0]]);
        let raw = Matrix::from_rows(&[vec![0.1, 0.4, -0.3, 0.2], vec![0.0, 0.1, 0.9, -1.0]]);
        let (_, grad) = mixed_reconstruction_loss(&spans, &raw, &target);
        let eps = 1e-6;
        for r in 0..2 {
            for c in 0..4 {
                let mut plus = raw.clone();
                plus.set(r, c, raw.get(r, c) + eps);
                let mut minus = raw.clone();
                minus.set(r, c, raw.get(r, c) - eps);
                let (lp, _) = mixed_reconstruction_loss(&spans, &plus, &target);
                let (lm, _) = mixed_reconstruction_loss(&spans, &minus, &target);
                let numeric = (lp - lm) / (2.0 * eps);
                assert!(
                    (numeric - grad.get(r, c)).abs() < 1e-5,
                    "({r},{c}): {numeric} vs {}",
                    grad.get(r, c)
                );
            }
        }
    }
}
