//! SMOTE-style nearest-neighbour interpolation sampler.
//!
//! The paper's only non-learning baseline: a synthetic row is formed by
//! picking a random training row, finding its `k` nearest neighbours in the
//! encoded space, and interpolating towards one of them with a uniform random
//! mixing factor. Numerical coordinates interpolate linearly; one-hot blocks
//! interpolate too and are resolved back to a single category by arg-max at
//! decode time (which amounts to "keep the base row's category unless the
//! interpolation passes the midpoint").
//!
//! Because every synthetic row lies on a segment between two real rows,
//! SMOTE achieves excellent distributional fidelity but almost no privacy —
//! the behaviour the paper's DCR column exposes.

use nn::Matrix;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rayon::prelude::*;
use serde::{Deserialize, Serialize};
use tabular::Table;

use crate::codec::TableCodec;
use crate::traits::{SurrogateError, TabularGenerator};

/// SMOTE hyper-parameters.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct SmoteConfig {
    /// Number of nearest neighbours considered for interpolation (paper: 5).
    pub k_neighbors: usize,
    /// Cap on the number of training rows kept as interpolation anchors;
    /// larger tables are evenly subsampled. Bounds the O(n²) neighbour search.
    pub max_anchor_rows: usize,
}

impl Default for SmoteConfig {
    fn default() -> Self {
        Self {
            k_neighbors: 5,
            max_anchor_rows: 20_000,
        }
    }
}

/// The fitted SMOTE sampler.
///
/// Serializable in full (config, fitted codec, anchor matrix and
/// neighbour lists) so a fitted sampler checkpoints and reloads with
/// byte-identical sampling.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SmoteSampler {
    config: SmoteConfig,
    codec: Option<TableCodec>,
    anchors: Option<Matrix>,
    /// Pre-computed k-nearest-neighbour indices per anchor row.
    neighbors: Vec<Vec<usize>>,
}

impl SmoteSampler {
    /// New, unfitted sampler.
    pub fn new(config: SmoteConfig) -> Self {
        Self {
            config,
            codec: None,
            anchors: None,
            neighbors: Vec::new(),
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> SmoteConfig {
        self.config
    }

    fn subsample_rows(n: usize, cap: usize) -> Vec<usize> {
        if n <= cap {
            (0..n).collect()
        } else {
            (0..cap).map(|i| i * n / cap).collect()
        }
    }
}

impl TabularGenerator for SmoteSampler {
    fn name(&self) -> &'static str {
        "SMOTE"
    }

    fn fit(&mut self, train: &Table) -> Result<(), SurrogateError> {
        if train.n_rows() < 2 {
            return Err(SurrogateError::InvalidTrainingData(
                "SMOTE needs at least two training rows".to_string(),
            ));
        }
        let codec = TableCodec::fit(train)?;
        let encoded = codec.encode(train)?;
        let keep = Self::subsample_rows(encoded.rows(), self.config.max_anchor_rows);
        let anchors = encoded.take_rows(&keep);

        let k = self.config.k_neighbors.min(anchors.rows() - 1).max(1);
        // Brute-force kNN, parallel over anchor rows.
        let neighbors: Vec<Vec<usize>> = (0..anchors.rows())
            .into_par_iter()
            .map(|i| {
                let row_i = anchors.row(i);
                let mut distances: Vec<(usize, f64)> = (0..anchors.rows())
                    .filter(|&j| j != i)
                    .map(|j| (j, TableCodec::encoded_distance(row_i, anchors.row(j))))
                    .collect();
                distances.sort_by(|a, b| a.1.partial_cmp(&b.1).expect("finite distances"));
                distances.truncate(k);
                distances.into_iter().map(|(j, _)| j).collect()
            })
            .collect();

        self.codec = Some(codec);
        self.anchors = Some(anchors);
        self.neighbors = neighbors;
        Ok(())
    }

    fn sample(&self, n: usize, seed: u64) -> Result<Table, SurrogateError> {
        let codec = self
            .codec
            .as_ref()
            .ok_or(SurrogateError::NotFitted("SMOTE"))?;
        let anchors = self.anchors.as_ref().expect("anchors set when codec is");
        let mut rng = StdRng::seed_from_u64(seed);
        let width = codec.encoded_width();
        let mut out = Matrix::zeros(n, width);
        for r in 0..n {
            let base = rng.gen_range(0..anchors.rows());
            let neighbor_list = &self.neighbors[base];
            let neighbor = neighbor_list[rng.gen_range(0..neighbor_list.len())];
            let lambda: f64 = rng.gen_range(0.0..1.0);
            let base_row = anchors.row(base);
            let nb_row = anchors.row(neighbor);
            for c in 0..width {
                out.set(r, c, base_row[c] + lambda * (nb_row[c] - base_row[c]));
            }
        }
        codec.decode(&out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tabular::Column;

    fn toy(n: usize) -> Table {
        let mut t = Table::new();
        let values: Vec<f64> = (0..n)
            .map(|i| (i as f64 * 1.37).sin() * 10.0 + i as f64)
            .collect();
        let labels: Vec<&str> = (0..n)
            .map(|i| match i % 3 {
                0 => "BNL",
                1 => "CERN",
                _ => "SLAC",
            })
            .collect();
        t.push_column("workload", Column::Numerical(values))
            .unwrap();
        t.push_column("site", Column::from_labels(&labels)).unwrap();
        t
    }

    #[test]
    fn fit_and_sample_shape() {
        let train = toy(60);
        let mut smote = SmoteSampler::new(SmoteConfig::default());
        smote.fit(&train).unwrap();
        let synthetic = smote.sample(25, 7).unwrap();
        assert_eq!(synthetic.n_rows(), 25);
        assert_eq!(synthetic.names(), train.names());
        // All synthetic categories come from the training vocabulary.
        for r in 0..25 {
            let label = synthetic.label("site", r).unwrap();
            assert!(["BNL", "CERN", "SLAC"].contains(&label));
        }
    }

    #[test]
    fn samples_stay_within_training_range() {
        let train = toy(80);
        let mut smote = SmoteSampler::new(SmoteConfig::default());
        smote.fit(&train).unwrap();
        let synthetic = smote.sample(200, 3).unwrap();
        let train_vals = train.numerical("workload").unwrap();
        let min = train_vals.iter().copied().fold(f64::INFINITY, f64::min);
        let max = train_vals.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        for &v in synthetic.numerical("workload").unwrap() {
            assert!(
                v >= min - 1.0 && v <= max + 1.0,
                "{v} outside [{min}, {max}]"
            );
        }
    }

    #[test]
    fn sampling_is_deterministic_per_seed() {
        let train = toy(40);
        let mut smote = SmoteSampler::new(SmoteConfig::default());
        smote.fit(&train).unwrap();
        assert_eq!(smote.sample(10, 1).unwrap(), smote.sample(10, 1).unwrap());
        assert_ne!(smote.sample(10, 1).unwrap(), smote.sample(10, 2).unwrap());
    }

    #[test]
    fn sample_before_fit_errors() {
        let smote = SmoteSampler::new(SmoteConfig::default());
        assert!(matches!(
            smote.sample(5, 0),
            Err(SurrogateError::NotFitted(_))
        ));
    }

    #[test]
    fn tiny_training_set_rejected() {
        let mut t = Table::new();
        t.push_column("x", Column::Numerical(vec![1.0])).unwrap();
        let mut smote = SmoteSampler::new(SmoteConfig::default());
        assert!(smote.fit(&t).is_err());
    }

    #[test]
    fn anchor_subsampling_bounds_memory() {
        let train = toy(300);
        let mut smote = SmoteSampler::new(SmoteConfig {
            k_neighbors: 3,
            max_anchor_rows: 50,
        });
        smote.fit(&train).unwrap();
        assert_eq!(smote.anchors.as_ref().unwrap().rows(), 50);
        assert!(smote.sample(20, 0).is_ok());
    }
}
