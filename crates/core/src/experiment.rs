//! The single fit→sample→evaluate experiment runtime shared by every
//! experiment binary, example and integration test.
//!
//! This module owns the orchestration that used to live in the `bench`
//! crate: preparing the synthetic PanDA dataset ([`prepare_data`]) and
//! fitting/sampling the paper's four surrogate models. Two properties are
//! load-bearing:
//!
//! * **Parallelism** — [`fit_all`] fans the four [`ModelKind`] fits out
//!   across threads with rayon. Each model owns its own seeded RNG (derived
//!   only from the experiment seed), so parallel and sequential execution
//!   produce byte-identical synthetic tables; `tests/experiment.rs` asserts
//!   this.
//! * **Failure isolation** — a diverging model surfaces as a per-model
//!   `Err` in its [`ModelRun`] instead of panicking, so one bad fit no
//!   longer kills a whole Table-I run. [`FitReport::into_tables`] aggregates
//!   any failures into an [`ExperimentError`] for callers that need
//!   all-or-nothing semantics.

use std::panic::{catch_unwind, AssertUnwindSafe};

use rayon::prelude::*;

use pandasim::{records_to_table, FilterFunnel, GeneratorConfig, WorkloadGenerator};
use tabular::{train_test_split, SplitOptions, Table};

use crate::fault::panic_message;
use crate::pipeline::{fit_and_sample, ModelKind, TrainingBudget};
use crate::traits::SurrogateError;

/// Command-line options shared by the experiment binaries.
#[derive(Debug, Clone)]
pub struct ExperimentOptions {
    /// Number of gross PanDA records to simulate before filtering.
    pub gross_records: usize,
    /// Length of the simulated collection window in days.
    pub days: f64,
    /// Training budget for the neural surrogates.
    pub budget: TrainingBudget,
    /// Base RNG seed.
    pub seed: u64,
    /// Optional path to write a JSON artifact with the experiment's series.
    pub output_json: Option<String>,
}

impl Default for ExperimentOptions {
    fn default() -> Self {
        Self {
            gross_records: 30_000,
            days: 150.0,
            budget: TrainingBudget::Standard,
            seed: 2024,
            output_json: None,
        }
    }
}

impl ExperimentOptions {
    /// Parse options from `--key value` style command-line arguments.
    /// Unknown keys are ignored so binaries can add their own flags.
    pub fn from_args<I: IntoIterator<Item = String>>(args: I) -> Self {
        let mut options = Self::default();
        let args: Vec<String> = args.into_iter().collect();
        let mut i = 0;
        while i < args.len() {
            let key = args[i].as_str();
            let value = args.get(i + 1).cloned();
            match (key, value) {
                ("--rows", Some(v)) => {
                    if let Ok(n) = v.parse() {
                        options.gross_records = n;
                    }
                    i += 2;
                }
                ("--days", Some(v)) => {
                    if let Ok(d) = v.parse() {
                        options.days = d;
                    }
                    i += 2;
                }
                ("--budget", Some(v)) => {
                    options.budget = TrainingBudget::parse(&v).unwrap_or(TrainingBudget::Standard);
                    i += 2;
                }
                ("--seed", Some(v)) => {
                    if let Ok(s) = v.parse() {
                        options.seed = s;
                    }
                    i += 2;
                }
                ("--json", Some(v)) => {
                    options.output_json = Some(v);
                    i += 2;
                }
                _ => i += 1,
            }
        }
        options
    }
}

/// The prepared dataset every experiment starts from: the gross stream, the
/// filtering funnel, and the 80/20 train/test split of the modelling table.
pub struct PreparedData {
    /// The workload generator (kept for its site catalogue).
    pub generator: WorkloadGenerator,
    /// The filtering funnel including the surviving records.
    pub funnel: FilterFunnel,
    /// The full (unsplit) nine-feature modelling table, in funnel order.
    pub table: Table,
    /// Training split of the nine-feature modelling table.
    pub train: Table,
    /// Test split of the nine-feature modelling table.
    pub test: Table,
}

/// Generate, filter and split the synthetic PanDA dataset.
pub fn prepare_data(options: &ExperimentOptions) -> PreparedData {
    prepare_data_from_config(&GeneratorConfig {
        gross_records: options.gross_records,
        days: options.days,
        seed: options.seed,
        ..GeneratorConfig::default()
    })
}

/// [`prepare_data`] for an arbitrary generator configuration (scenario
/// sweeps drive this directly with preset variants). The train/test split
/// derives its seed from the generator seed, so the whole prepared dataset
/// is a pure function of `config`.
pub fn prepare_data_from_config(config: &GeneratorConfig) -> PreparedData {
    let generator = WorkloadGenerator::new(config.clone());
    let gross = generator.generate();
    let funnel = FilterFunnel::apply(&gross);
    let table = records_to_table(&funnel.records);
    let (train, test) = train_test_split(
        &table,
        SplitOptions {
            train_fraction: 0.8,
            shuffle: true,
            seed: config.seed,
        },
    )
    .expect("non-empty modelling table");
    PreparedData {
        generator,
        funnel,
        table,
        train,
        test,
    }
}

/// Whether [`fit_models_with`] fans the model fits out across threads or
/// runs them one after another. The two modes are byte-identical in output;
/// `Sequential` exists for determinism tests and for debugging with clean
/// stack traces.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecutionMode {
    /// One rayon task per model (the default).
    Parallel,
    /// One model after another on the calling thread.
    Sequential,
}

/// The outcome of fitting and sampling one surrogate model.
#[derive(Debug)]
pub struct ModelRun {
    /// Which model this run fitted.
    pub kind: ModelKind,
    /// The synthetic table, or why the model could not produce one.
    pub outcome: Result<Table, SurrogateError>,
}

/// Per-model failures aggregated over one experiment run.
#[derive(Debug)]
pub struct ExperimentError {
    /// `(model, error)` for every model that failed.
    pub failures: Vec<(ModelKind, SurrogateError)>,
}

impl std::fmt::Display for ExperimentError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} surrogate model(s) failed:", self.failures.len())?;
        for (kind, error) in &self.failures {
            write!(f, " [{}: {error}]", kind.name())?;
        }
        Ok(())
    }
}

impl std::error::Error for ExperimentError {}

/// Every model's run from one experiment, in the paper's Table-I order.
#[derive(Debug)]
pub struct FitReport {
    /// One entry per requested model, order preserved.
    pub runs: Vec<ModelRun>,
}

impl FitReport {
    /// The models that produced a synthetic table, as `(name, table)`.
    pub fn successes(&self) -> impl Iterator<Item = (&'static str, &Table)> {
        self.runs.iter().filter_map(|run| {
            run.outcome
                .as_ref()
                .ok()
                .map(|table| (run.kind.name(), table))
        })
    }

    /// The models that failed, with their errors.
    pub fn failures(&self) -> impl Iterator<Item = (ModelKind, &SurrogateError)> {
        self.runs
            .iter()
            .filter_map(|run| run.outcome.as_ref().err().map(|e| (run.kind, e)))
    }

    /// Print every failed model run to stderr and return how many failed.
    ///
    /// Callers keep going with the surviving models — the point of the
    /// `Result`-based runtime is that one diverging GAN no longer kills a
    /// whole Table-I run — but can compare the count against
    /// `runs.len()` to bail out when nothing succeeded.
    pub fn report_failures(&self) -> usize {
        let mut failed = 0;
        for (kind, error) in self.failures() {
            eprintln!("warning: {} failed to fit/sample: {error}", kind.name());
            failed += 1;
        }
        failed
    }

    /// All-or-nothing view: every synthetic table, or an
    /// [`ExperimentError`] aggregating the failures.
    pub fn into_tables(self) -> Result<Vec<(&'static str, Table)>, ExperimentError> {
        let mut tables = Vec::new();
        let mut failures = Vec::new();
        for run in self.runs {
            match run.outcome {
                Ok(table) => tables.push((run.kind.name(), table)),
                Err(error) => failures.push((run.kind, error)),
            }
        }
        if failures.is_empty() {
            Ok(tables)
        } else {
            Err(ExperimentError { failures })
        }
    }
}

/// Fit the requested models through an arbitrary fitter. This is the
/// orchestration core that [`fit_all`] wraps: tests inject failing fitters
/// here to exercise the error-aggregation path.
///
/// Each fit runs under [`catch_unwind`], so a panicking model is lowered to
/// a per-model [`SurrogateError::Panicked`] outcome instead of poisoning the
/// work queue (under rayon a propagated panic would abort every sibling
/// fit).
pub fn fit_models_with<F>(kinds: &[ModelKind], mode: ExecutionMode, fitter: F) -> FitReport
where
    F: Fn(ModelKind) -> Result<Table, SurrogateError> + Sync,
{
    let run_one = |kind: ModelKind| ModelRun {
        kind,
        outcome: catch_unwind(AssertUnwindSafe(|| fitter(kind))).unwrap_or_else(|payload| {
            Err(SurrogateError::Panicked {
                message: panic_message(payload),
            })
        }),
    };
    let runs = match mode {
        ExecutionMode::Parallel => kinds.par_iter().map(|&kind| run_one(kind)).collect(),
        ExecutionMode::Sequential => kinds.iter().map(|&kind| run_one(kind)).collect(),
    };
    FitReport { runs }
}

/// Fit every surrogate model on `train` concurrently and sample as many
/// rows as the training set holds. Per-model determinism is seed-derived,
/// so the result is identical to a sequential run.
pub fn fit_all(train: &Table, budget: TrainingBudget, seed: u64) -> FitReport {
    fit_all_with_mode(ExecutionMode::Parallel, train, budget, seed)
}

/// [`fit_all`] with an explicit [`ExecutionMode`].
pub fn fit_all_with_mode(
    mode: ExecutionMode,
    train: &Table,
    budget: TrainingBudget,
    seed: u64,
) -> FitReport {
    fit_models_with(&ModelKind::ALL, mode, |kind| {
        fit_and_sample(kind, train, train.n_rows(), budget, seed)
    })
}

/// Fit every surrogate model and return `(model name, synthetic table)` in
/// the paper's Table-I order, or the aggregated failures.
///
/// This is the strict, all-or-nothing successor of the old panicking
/// `bench::sample_all_models`; binaries that prefer to keep going with the
/// surviving models use [`fit_all`] and [`FitReport::successes`] instead.
pub fn sample_all_models(
    train: &Table,
    budget: TrainingBudget,
    seed: u64,
) -> Result<Vec<(&'static str, Table)>, ExperimentError> {
    fit_all(train, budget, seed).into_tables()
}

/// Write a serde-serialisable artifact to the path given in the options, if
/// one was requested.
pub fn maybe_write_json<T: serde::Serialize>(options: &ExperimentOptions, artifact: &T) {
    if let Some(path) = &options.output_json {
        let json = serde_json::to_string_pretty(artifact).expect("serialisable artifact");
        match std::fs::write(path, json) {
            Ok(()) => println!("wrote artifact to {path}"),
            Err(e) => eprintln!("could not write {path}: {e}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn argument_parsing_handles_all_flags() {
        let options = ExperimentOptions::from_args(
            [
                "--rows",
                "5000",
                "--days",
                "30",
                "--budget",
                "smoke",
                "--seed",
                "7",
                "--json",
                "/tmp/x.json",
                "--unknown",
                "ignored",
            ]
            .iter()
            .map(|s| s.to_string()),
        );
        assert_eq!(options.gross_records, 5000);
        assert_eq!(options.days, 30.0);
        assert_eq!(options.budget, TrainingBudget::Smoke);
        assert_eq!(options.seed, 7);
        assert_eq!(options.output_json.as_deref(), Some("/tmp/x.json"));
    }

    #[test]
    fn argument_parsing_defaults() {
        let options = ExperimentOptions::from_args(Vec::<String>::new());
        assert_eq!(options.gross_records, 30_000);
        assert_eq!(options.budget, TrainingBudget::Standard);
    }

    #[test]
    fn prepare_data_produces_consistent_split() {
        let options = ExperimentOptions {
            gross_records: 3_000,
            ..Default::default()
        };
        let data = prepare_data(&options);
        assert!(data.funnel.surviving() > 500);
        assert_eq!(
            data.train.n_rows() + data.test.n_rows(),
            data.funnel.surviving()
        );
        assert_eq!(data.train.n_cols(), 9);
        // 80/20 within rounding.
        let ratio = data.train.n_rows() as f64 / data.funnel.surviving() as f64;
        assert!((ratio - 0.8).abs() < 0.01);
    }

    #[test]
    fn fit_report_separates_successes_from_failures() {
        let report = fit_models_with(&ModelKind::ALL, ExecutionMode::Sequential, |kind| {
            if kind == ModelKind::CtabGan {
                Err(SurrogateError::InvalidTrainingData("injected".to_string()))
            } else {
                Ok(Table::new())
            }
        });
        assert_eq!(report.runs.len(), 4);
        assert_eq!(report.successes().count(), 3);
        let failures: Vec<ModelKind> = report.failures().map(|(kind, _)| kind).collect();
        assert_eq!(failures, vec![ModelKind::CtabGan]);
        let error = report.into_tables().unwrap_err();
        assert_eq!(error.failures.len(), 1);
        assert!(error.to_string().contains("CTABGAN+"));
    }

    #[test]
    fn panicking_fitter_is_isolated_to_its_own_model() {
        for mode in [ExecutionMode::Sequential, ExecutionMode::Parallel] {
            let report = fit_models_with(&ModelKind::ALL, mode, |kind| {
                if kind == ModelKind::TabDdpm {
                    panic!("injected panic in {}", kind.name());
                }
                Ok(Table::new())
            });
            assert_eq!(report.successes().count(), 3, "{mode:?}");
            let failures: Vec<(ModelKind, &SurrogateError)> = report.failures().collect();
            assert_eq!(failures.len(), 1, "{mode:?}");
            assert_eq!(failures[0].0, ModelKind::TabDdpm);
            assert_eq!(
                failures[0].1,
                &SurrogateError::Panicked {
                    message: "injected panic in TabDDPM".to_string()
                },
                "{mode:?}"
            );
        }
    }
}
