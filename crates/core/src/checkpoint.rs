//! Crash-safe model checkpoints: fitted generators as versioned,
//! fingerprinted, atomically written artifacts.
//!
//! The paper's premise is "train a surrogate once, then replace expensive
//! simulation forever" — which requires a fitted model to outlive its
//! process. A [`Checkpoint`] bundles a fitted [`CheckpointPayload`] (any of
//! the four generators, serialized in full: codec, network weights, noise
//! schedules, neighbour lists) with the identity that produced it (model
//! kind, generator preset, seed, [`TrainingBudget`]) into a two-line
//! artifact:
//!
//! ```text
//! {"checkpoint_version":1,"model":"TabDDPM","preset":"small","seed":2024,"budget":"smoke","fingerprint":"…"}
//! {"TabDdpm":{…fitted state…}}
//! ```
//!
//! Three durability properties hold, mirroring the sweep journal
//! (`crate::artifact_io` is the shared implementation, so they cannot
//! drift):
//!
//! * **Atomic writes** — [`Checkpoint::save`] stages into a `*.tmp` sibling,
//!   fsyncs and renames, so a crash mid-save leaves either the previous
//!   checkpoint or a stray temp file that directory scans skip — never a
//!   torn artifact.
//! * **Typed rejection** — [`Checkpoint::load`] rejects truncation at *any*
//!   byte offset, bit flips (via the FNV-1a content fingerprint over the
//!   header metadata and payload bytes), stale `checkpoint_version`s and
//!   header/payload model mismatches, each as a [`CheckpointError`] naming
//!   the offending section.
//! * **Lossless round-trip** — every float survives render → parse
//!   bit-for-bit (the `serde_json` shim emits shortest-round-trip literals
//!   and preserves `-0.0`), so a reloaded generator's `sample()` is
//!   byte-identical to the fitted in-memory generator's.
//!
//! [`CheckpointRegistry::load_dir`] scans a checkpoint directory the way
//! the `serve` binary does at startup: corrupt entries are quarantined and
//! reported, never fatal, so one damaged file degrades the registry instead
//! of taking it down.

use std::fmt;
use std::path::{Path, PathBuf};

use serde::{Deserialize, Serialize};
use tabular::Table;

use crate::artifact_io::{self, Fnv1a, RowError, TailPolicy, TEMP_SUFFIX};
use crate::ctabgan::CtabGan;
use crate::pipeline::{ModelKind, TrainingBudget};
use crate::smote::SmoteSampler;
use crate::tabddpm::TabDdpm;
use crate::traits::{SampleSpec, SurrogateError, TabularGenerator};
use crate::tvae::Tvae;

/// Version of the checkpoint artifact format. Bumped when the header or
/// payload framing changes incompatibly; loaders reject other versions.
pub const CHECKPOINT_VERSION: u32 = 1;

/// File extension of checkpoint artifacts (`<key>.ckpt`).
pub const CHECKPOINT_EXTENSION: &str = "ckpt";

/// First line of a checkpoint artifact. `checkpoint_version` is serialized
/// first, so every checkpoint begins with the literal bytes
/// `{"checkpoint_version"` — a cheap sniff for tooling.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CheckpointHeader {
    /// Artifact format version ([`CHECKPOINT_VERSION`]).
    pub checkpoint_version: u32,
    /// Model kind name as in the paper's tables (e.g. `"TabDDPM"`).
    pub model: String,
    /// Generator preset the training data came from.
    pub preset: String,
    /// Seed axis value the model was fitted under.
    pub seed: u64,
    /// Training budget name (`smoke` / `standard` / `full`).
    pub budget: String,
    /// FNV-1a content fingerprint over the header metadata tokens and the
    /// raw payload line, so a bit flip anywhere that survives JSON parsing
    /// still fails the load.
    pub fingerprint: String,
}

/// A fitted generator in serializable form: the concrete model behind a
/// checkpoint. An enum (not `Box<dyn TabularGenerator>`) so the payload
/// round-trips typed through the serde shim.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum CheckpointPayload {
    /// A (possibly fitted) TVAE.
    Tvae(Tvae),
    /// A (possibly fitted) CTABGAN+.
    CtabGan(CtabGan),
    /// A (possibly fitted) SMOTE sampler.
    Smote(SmoteSampler),
    /// A (possibly fitted) TabDDPM.
    TabDdpm(TabDdpm),
}

impl CheckpointPayload {
    /// Which model kind this payload holds.
    pub fn kind(&self) -> ModelKind {
        match self {
            CheckpointPayload::Tvae(_) => ModelKind::Tvae,
            CheckpointPayload::CtabGan(_) => ModelKind::CtabGan,
            CheckpointPayload::Smote(_) => ModelKind::Smote,
            CheckpointPayload::TabDdpm(_) => ModelKind::TabDdpm,
        }
    }

    /// The payload as the common generator interface.
    pub fn generator(&self) -> &dyn TabularGenerator {
        match self {
            CheckpointPayload::Tvae(model) => model,
            CheckpointPayload::CtabGan(model) => model,
            CheckpointPayload::Smote(model) => model,
            CheckpointPayload::TabDdpm(model) => model,
        }
    }

    /// Mutable access for fitting.
    pub fn generator_mut(&mut self) -> &mut dyn TabularGenerator {
        match self {
            CheckpointPayload::Tvae(model) => model,
            CheckpointPayload::CtabGan(model) => model,
            CheckpointPayload::Smote(model) => model,
            CheckpointPayload::TabDdpm(model) => model,
        }
    }

    /// Box the payload as a trait object (what
    /// [`crate::pipeline::build_model`] returns).
    pub fn into_generator(self) -> Box<dyn TabularGenerator> {
        match self {
            CheckpointPayload::Tvae(model) => Box::new(model),
            CheckpointPayload::CtabGan(model) => Box::new(model),
            CheckpointPayload::Smote(model) => Box::new(model),
            CheckpointPayload::TabDdpm(model) => Box::new(model),
        }
    }
}

/// Why a checkpoint failed to save or load. Every variant names the
/// offending section via [`CheckpointError::section`], so callers (and CI
/// greps) can tell corruption modes apart without string matching.
#[derive(Debug, Clone, PartialEq)]
pub enum CheckpointError {
    /// Reading or writing the file itself failed.
    Io {
        /// The path involved.
        path: String,
        /// The underlying I/O error, rendered.
        error: String,
    },
    /// A section is missing outright: an empty file, a header with no
    /// payload line, or a file that does not end in a newline — atomic
    /// writes always land one, so its absence marks external truncation.
    Truncated {
        /// `"header"` or `"payload"`.
        section: &'static str,
    },
    /// A section is present but unparseable.
    Malformed {
        /// `"header"` or `"payload"`.
        section: &'static str,
        /// The parse failure, rendered.
        reason: String,
    },
    /// The artifact was written by an incompatible format version.
    SchemaVersion {
        /// The `checkpoint_version` found in the header.
        found: u32,
    },
    /// The header names a model or budget this build does not know.
    UnknownName {
        /// `"model"` or `"budget"`.
        field: &'static str,
        /// The unknown name.
        name: String,
    },
    /// The content fingerprint does not match the header's — a bit flip or
    /// edit somewhere in the metadata or payload.
    FingerprintMismatch {
        /// Fingerprint recorded in the header.
        expected: String,
        /// Fingerprint recomputed from the file's content.
        found: String,
    },
    /// The header's model kind disagrees with the payload's variant.
    KindMismatch {
        /// Model kind named by the header.
        header: String,
        /// Model kind actually held by the payload.
        payload: String,
    },
    /// Two files in one directory resolve to the same registry key.
    DuplicateKey {
        /// The colliding (model, preset, seed, budget) key.
        key: String,
    },
}

impl CheckpointError {
    /// The artifact section this error is about: `"file"`, `"header"`,
    /// `"payload"`, `"fingerprint"` or `"registry"`.
    pub fn section(&self) -> &'static str {
        match self {
            CheckpointError::Io { .. } => "file",
            CheckpointError::Truncated { section } | CheckpointError::Malformed { section, .. } => {
                section
            }
            CheckpointError::SchemaVersion { .. } | CheckpointError::UnknownName { .. } => "header",
            CheckpointError::FingerprintMismatch { .. } => "fingerprint",
            CheckpointError::KindMismatch { .. } => "payload",
            CheckpointError::DuplicateKey { .. } => "registry",
        }
    }
}

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckpointError::Io { path, error } => write!(f, "checkpoint io {path}: {error}"),
            CheckpointError::Truncated { section } => {
                write!(f, "checkpoint truncated: {section} section missing")
            }
            CheckpointError::Malformed { section, reason } => {
                write!(f, "checkpoint {section} section malformed: {reason}")
            }
            CheckpointError::SchemaVersion { found } => write!(
                f,
                "unsupported checkpoint_version {found} (expected {CHECKPOINT_VERSION})"
            ),
            CheckpointError::UnknownName { field, name } => {
                write!(f, "checkpoint header names unknown {field} '{name}'")
            }
            CheckpointError::FingerprintMismatch { expected, found } => write!(
                f,
                "checkpoint fingerprint mismatch: header says {expected}, content hashes to {found}"
            ),
            CheckpointError::KindMismatch { header, payload } => write!(
                f,
                "checkpoint header says model {header} but payload holds {payload}"
            ),
            CheckpointError::DuplicateKey { key } => {
                write!(f, "duplicate checkpoint for key {key}")
            }
        }
    }
}

impl std::error::Error for CheckpointError {}

/// FNV-1a over the identity metadata and the raw payload line,
/// length-prefixed per token like `sweep::grid_fingerprint`. Covering the
/// metadata means a flipped header field (seed, preset, …) fails the load
/// even though the payload bytes are intact.
fn content_fingerprint(
    model: ModelKind,
    preset: &str,
    seed: u64,
    budget: TrainingBudget,
    payload_line: &str,
) -> String {
    let mut hash = Fnv1a::new();
    hash.feed_token(&format!("model:{}", model.name()));
    hash.feed_token(&format!("preset:{preset}"));
    hash.feed_token(&format!("seed:{seed}"));
    hash.feed_token(&format!("budget:{}", budget.name()));
    hash.feed_token(payload_line);
    hash.finish_hex()
}

/// A fitted model plus the identity that produced it — the in-memory form
/// of one checkpoint artifact.
#[derive(Debug, Clone)]
pub struct Checkpoint {
    /// Model kind (always agrees with `payload.kind()`).
    pub model: ModelKind,
    /// Generator preset the training data came from.
    pub preset: String,
    /// Seed axis value the model was fitted under.
    pub seed: u64,
    /// Training budget the fit ran under.
    pub budget: TrainingBudget,
    /// The fitted model itself.
    pub payload: CheckpointPayload,
}

impl Checkpoint {
    /// Bundle a fitted payload with its identity.
    pub fn new(
        preset: &str,
        seed: u64,
        budget: TrainingBudget,
        payload: CheckpointPayload,
    ) -> Self {
        Self {
            model: payload.kind(),
            preset: preset.to_string(),
            seed,
            budget,
            payload,
        }
    }

    /// Registry key, same shape as a sweep cell id:
    /// `s2024-smoke-small-tabddpm`.
    pub fn key(&self) -> String {
        let model: String = self
            .model
            .name()
            .chars()
            .filter(|c| c.is_ascii_alphanumeric())
            .collect::<String>()
            .to_ascii_lowercase();
        format!(
            "s{}-{}-{}-{model}",
            self.seed,
            self.budget.name(),
            self.preset
        )
    }

    /// The file name this checkpoint saves under in a checkpoint directory.
    pub fn file_name(&self) -> String {
        format!("{}.{CHECKPOINT_EXTENSION}", self.key())
    }

    /// Render the two-line artifact (header, payload, trailing newline).
    pub fn render(&self) -> String {
        let payload_line =
            serde_json::to_string(&self.payload).expect("checkpoint payload serializes");
        let header = CheckpointHeader {
            checkpoint_version: CHECKPOINT_VERSION,
            model: self.model.name().to_string(),
            preset: self.preset.clone(),
            seed: self.seed,
            budget: self.budget.name().to_string(),
            fingerprint: content_fingerprint(
                self.model,
                &self.preset,
                self.seed,
                self.budget,
                &payload_line,
            ),
        };
        let header_line = serde_json::to_string(&header).expect("checkpoint header serializes");
        format!("{header_line}\n{payload_line}\n")
    }

    /// Parse and fully validate a rendered artifact. Every corruption mode
    /// is a typed [`CheckpointError`]: truncation at any byte offset
    /// (missing trailing newline, missing payload line, torn JSON), bit
    /// flips (fingerprint), stale versions, unknown or mismatched model
    /// kinds.
    pub fn parse(text: &str) -> Result<Self, CheckpointError> {
        if !text.ends_with('\n') {
            // Atomic writes always land a trailing newline; a file without
            // one was truncated after the fact.
            return Err(CheckpointError::Truncated {
                section: if text.contains('\n') {
                    "payload"
                } else {
                    "header"
                },
            });
        }
        let mut lines = text.split('\n');
        let header_line = lines.next().unwrap_or_default();
        let header: CheckpointHeader =
            serde_json::from_str(header_line).map_err(|e| CheckpointError::Malformed {
                section: "header",
                reason: e.to_string(),
            })?;
        if header.checkpoint_version != CHECKPOINT_VERSION {
            return Err(CheckpointError::SchemaVersion {
                found: header.checkpoint_version,
            });
        }
        let model =
            ModelKind::parse(&header.model).ok_or_else(|| CheckpointError::UnknownName {
                field: "model",
                name: header.model.clone(),
            })?;
        let budget =
            TrainingBudget::parse(&header.budget).ok_or_else(|| CheckpointError::UnknownName {
                field: "budget",
                name: header.budget.clone(),
            })?;
        // Strict tail policy: checkpoints are written atomically, so unlike
        // the append-only journal there is no torn tail to forgive.
        let rest: Vec<&str> = lines.collect();
        let parsed = artifact_io::parse_log_rows(&rest, 2, TailPolicy::Strict, |line| {
            let found = content_fingerprint(model, &header.preset, header.seed, budget, line);
            if found != header.fingerprint {
                return Err(CheckpointError::FingerprintMismatch {
                    expected: header.fingerprint.clone(),
                    found,
                });
            }
            serde_json::from_str::<CheckpointPayload>(line).map_err(|e| {
                CheckpointError::Malformed {
                    section: "payload",
                    reason: e.to_string(),
                }
            })
        })
        .map_err(|e| match e {
            RowError::Empty { .. } => CheckpointError::Truncated { section: "payload" },
            RowError::Parse { error, .. } => error,
        })?;
        let mut rows = parsed.rows;
        let payload = match rows.len() {
            0 => return Err(CheckpointError::Truncated { section: "payload" }),
            1 => rows.remove(0),
            n => {
                return Err(CheckpointError::Malformed {
                    section: "payload",
                    reason: format!("{n} payload lines (expected 1)"),
                })
            }
        };
        if payload.kind() != model {
            return Err(CheckpointError::KindMismatch {
                header: model.name().to_string(),
                payload: payload.kind().name().to_string(),
            });
        }
        Ok(Checkpoint {
            model,
            preset: header.preset,
            seed: header.seed,
            budget,
            payload,
        })
    }

    /// Atomically write the artifact to `path` (temp + fsync + rename).
    pub fn save(&self, path: &Path) -> Result<(), CheckpointError> {
        artifact_io::atomic_write(path, self.render().as_bytes()).map_err(|e| CheckpointError::Io {
            path: path.display().to_string(),
            error: e.to_string(),
        })
    }

    /// Save under the canonical [`Checkpoint::file_name`] inside `dir`.
    pub fn save_to_dir(&self, dir: &Path) -> Result<PathBuf, CheckpointError> {
        let path = dir.join(self.file_name());
        self.save(&path)?;
        Ok(path)
    }

    /// Read and validate the artifact at `path`.
    pub fn load(path: &Path) -> Result<Self, CheckpointError> {
        let text = std::fs::read_to_string(path).map_err(|e| CheckpointError::Io {
            path: path.display().to_string(),
            error: e.to_string(),
        })?;
        Self::parse(&text)
    }

    /// Sample from the checkpointed model (see
    /// [`TabularGenerator::sample`]).
    pub fn sample(&self, n: usize, seed: u64) -> Result<Table, SurrogateError> {
        self.payload.generator().sample(n, seed)
    }

    /// Answer a batch of independent sampling requests against the
    /// checkpointed model in one coalesced forward pass (see
    /// [`TabularGenerator::sample_batch`]); each returned table is
    /// byte-identical to [`Checkpoint::sample`] with the same spec.
    pub fn sample_batch(&self, specs: &[SampleSpec]) -> Result<Vec<Table>, SurrogateError> {
        self.payload.generator().sample_batch(specs)
    }
}

/// One unusable file found while scanning a checkpoint directory.
#[derive(Debug, Clone, PartialEq)]
pub struct QuarantinedCheckpoint {
    /// File name within the scanned directory.
    pub file: String,
    /// Why the file could not be loaded.
    pub error: CheckpointError,
}

/// What a checkpoint-directory scan produced: the loadable models plus
/// every file that had to be quarantined. Corruption is *reported*, never
/// fatal — the registry degrades instead of refusing to start, which is
/// what the `serve` binary builds on.
#[derive(Debug, Default)]
pub struct CheckpointRegistry {
    /// Successfully loaded checkpoints, sorted by [`Checkpoint::key`].
    pub entries: Vec<Checkpoint>,
    /// Files that failed to load, with their typed errors, in name order.
    pub quarantined: Vec<QuarantinedCheckpoint>,
    /// Stray `*.tmp` staging files skipped (the residue of a write killed
    /// between staging and rename — harmless by construction).
    pub ignored_temp: usize,
}

impl CheckpointRegistry {
    /// Scan `dir` for `*.ckpt` artifacts. Only an unreadable directory is
    /// an error; unloadable files are quarantined, `*.tmp` files skipped,
    /// and two files resolving to one key quarantine the later one.
    pub fn load_dir(dir: &Path) -> Result<Self, CheckpointError> {
        let entries = std::fs::read_dir(dir).map_err(|e| CheckpointError::Io {
            path: dir.display().to_string(),
            error: e.to_string(),
        })?;
        let mut names: Vec<String> = entries
            .filter_map(|entry| entry.ok())
            .map(|entry| entry.file_name().to_string_lossy().into_owned())
            .collect();
        names.sort();
        let mut registry = CheckpointRegistry::default();
        for name in names {
            if name.ends_with(TEMP_SUFFIX) {
                registry.ignored_temp += 1;
                continue;
            }
            if !name.ends_with(&format!(".{CHECKPOINT_EXTENSION}")) {
                continue;
            }
            match Checkpoint::load(&dir.join(&name)) {
                Ok(checkpoint) => {
                    let key = checkpoint.key();
                    if registry.entries.iter().any(|c| c.key() == key) {
                        registry.quarantined.push(QuarantinedCheckpoint {
                            file: name,
                            error: CheckpointError::DuplicateKey { key },
                        });
                    } else {
                        registry.entries.push(checkpoint);
                    }
                }
                Err(error) => registry
                    .quarantined
                    .push(QuarantinedCheckpoint { file: name, error }),
            }
        }
        registry.entries.sort_by_key(Checkpoint::key);
        Ok(registry)
    }

    /// True when at least one file had to be quarantined — the registry is
    /// serving a subset of what the directory holds.
    pub fn is_degraded(&self) -> bool {
        !self.quarantined.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::build_payload;

    fn unfitted(kind: ModelKind) -> Checkpoint {
        Checkpoint::new(
            "small",
            2024,
            TrainingBudget::Smoke,
            build_payload(kind, TrainingBudget::Smoke, 2024),
        )
    }

    #[test]
    fn keys_match_sweep_cell_id_shape() {
        assert_eq!(
            unfitted(ModelKind::TabDdpm).key(),
            "s2024-smoke-small-tabddpm"
        );
        assert_eq!(
            unfitted(ModelKind::CtabGan).key(),
            "s2024-smoke-small-ctabgan"
        );
        assert_eq!(
            unfitted(ModelKind::Tvae).file_name(),
            "s2024-smoke-small-tvae.ckpt"
        );
    }

    #[test]
    fn render_parse_round_trips_every_model_kind() {
        for kind in ModelKind::ALL {
            let checkpoint = unfitted(kind);
            let text = checkpoint.render();
            assert!(text.starts_with("{\"checkpoint_version\""), "sniffable");
            assert!(text.ends_with('\n'));
            let loaded = Checkpoint::parse(&text).unwrap_or_else(|e| {
                panic!("{} round trip failed: {e}", kind.name());
            });
            assert_eq!(loaded.model, kind);
            assert_eq!(loaded.preset, "small");
            assert_eq!(loaded.seed, 2024);
            assert_eq!(loaded.budget, TrainingBudget::Smoke);
            assert_eq!(loaded.render(), text, "re-render is byte-identical");
        }
    }

    #[test]
    fn missing_trailing_newline_is_truncation() {
        let text = unfitted(ModelKind::Smote).render();
        let err = Checkpoint::parse(text.trim_end()).unwrap_err();
        assert_eq!(err, CheckpointError::Truncated { section: "payload" });
        // Truncated inside the header line: no newline at all.
        let err = Checkpoint::parse(&text[..10]).unwrap_err();
        assert_eq!(err, CheckpointError::Truncated { section: "header" });
        assert_eq!(err.section(), "header");
        // Header line only (cut exactly after its newline): payload missing.
        let cut = text.find('\n').unwrap() + 1;
        let err = Checkpoint::parse(&text[..cut]).unwrap_err();
        assert_eq!(err, CheckpointError::Truncated { section: "payload" });
    }

    #[test]
    fn stale_schema_version_is_rejected() {
        let text = unfitted(ModelKind::Smote)
            .render()
            .replace("{\"checkpoint_version\":1", "{\"checkpoint_version\":99");
        assert_eq!(
            Checkpoint::parse(&text).unwrap_err(),
            CheckpointError::SchemaVersion { found: 99 }
        );
    }

    #[test]
    fn header_metadata_edits_trip_the_fingerprint() {
        // Flip the seed in the header: the payload bytes are intact but the
        // fingerprint covers the metadata too.
        let text = unfitted(ModelKind::Smote)
            .render()
            .replace("\"seed\":2024", "\"seed\":2025");
        let err = Checkpoint::parse(&text).unwrap_err();
        assert!(
            matches!(err, CheckpointError::FingerprintMismatch { .. }),
            "{err:?}"
        );
        assert_eq!(err.section(), "fingerprint");
    }

    #[test]
    fn unknown_model_and_budget_names_are_typed() {
        let base = unfitted(ModelKind::Smote).render();
        let err = Checkpoint::parse(&base.replace("\"SMOTE\"", "\"MYSTERY\"")).unwrap_err();
        assert_eq!(
            err,
            CheckpointError::UnknownName {
                field: "model",
                name: "MYSTERY".to_string()
            }
        );
        let err = Checkpoint::parse(&base.replace("\"smoke\"", "\"warp\"")).unwrap_err();
        assert_eq!(
            err,
            CheckpointError::UnknownName {
                field: "budget",
                name: "warp".to_string()
            }
        );
    }

    #[test]
    fn header_payload_kind_disagreement_is_rejected() {
        // Forge a checkpoint whose header says TVAE but whose payload is
        // SMOTE. The render is self-consistent (fingerprint included), so
        // only the kind check can catch it.
        let mut forged = unfitted(ModelKind::Smote);
        forged.model = ModelKind::Tvae;
        let err = Checkpoint::parse(&forged.render()).unwrap_err();
        assert_eq!(
            err,
            CheckpointError::KindMismatch {
                header: "TVAE".to_string(),
                payload: "SMOTE".to_string()
            }
        );
        assert_eq!(err.section(), "payload");
    }

    #[test]
    fn extra_payload_lines_are_rejected() {
        let text = unfitted(ModelKind::Smote).render();
        let doubled = {
            let payload = text.lines().nth(1).unwrap();
            format!("{}{payload}\n", text)
        };
        let err = Checkpoint::parse(&doubled).unwrap_err();
        assert_eq!(
            err,
            CheckpointError::Malformed {
                section: "payload",
                reason: "2 payload lines (expected 1)".to_string()
            }
        );
        // A *different* trailing line fails the fingerprint instead.
        let err = Checkpoint::parse(&format!("{text}{{}}\n")).unwrap_err();
        assert!(matches!(err, CheckpointError::FingerprintMismatch { .. }));
    }

    #[test]
    fn load_dir_quarantines_without_failing() {
        let dir = std::env::temp_dir().join(format!(
            "panda_surrogate_ckpt_registry_test_{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();

        let good = unfitted(ModelKind::Smote);
        good.save_to_dir(&dir).unwrap();
        unfitted(ModelKind::Tvae).save_to_dir(&dir).unwrap();
        // A corrupt artifact, a stray temp file (kill -9 residue) and an
        // unrelated file.
        std::fs::write(dir.join("broken.ckpt"), &good.render().as_bytes()[..40]).unwrap();
        std::fs::write(dir.join("partial.ckpt.tmp"), b"{\"checkpoint_ver").unwrap();
        std::fs::write(dir.join("notes.txt"), b"not a checkpoint\n").unwrap();
        // A duplicate key under a different file name.
        good.save(&dir.join("copy-of-smote.ckpt")).unwrap();

        let registry = CheckpointRegistry::load_dir(&dir).unwrap();
        assert_eq!(registry.entries.len(), 2);
        assert_eq!(
            registry
                .entries
                .iter()
                .map(Checkpoint::key)
                .collect::<Vec<_>>(),
            vec!["s2024-smoke-small-smote", "s2024-smoke-small-tvae"]
        );
        assert_eq!(registry.ignored_temp, 1);
        assert!(registry.is_degraded());
        assert_eq!(registry.quarantined.len(), 2);
        assert_eq!(registry.quarantined[0].file, "broken.ckpt");
        assert_eq!(registry.quarantined[0].error.section(), "header");
        assert_eq!(registry.quarantined[1].file, "s2024-smoke-small-smote.ckpt");
        assert_eq!(
            registry.quarantined[1].error,
            CheckpointError::DuplicateKey {
                key: "s2024-smoke-small-smote".to_string()
            }
        );

        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn load_dir_on_a_missing_directory_is_io() {
        let err = CheckpointRegistry::load_dir(Path::new("/nonexistent/ckpts")).unwrap_err();
        assert_eq!(err.section(), "file");
    }
}
