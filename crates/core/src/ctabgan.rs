//! CTABGAN+-style conditional GAN for mixed-type tabular data.
//!
//! A generator MLP maps latent noise (concatenated with a conditional one-hot
//! vector selecting a category of a randomly chosen discrete column, the
//! "training-by-sampling" trick of the CTGAN family) to an encoded row; a
//! discriminator MLP scores rows as real or synthetic. Both are trained with
//! the standard non-saturating GAN objective on binary cross-entropy.
//! Categorical blocks of the generator output go through a per-block softmax
//! so the discriminator always sees valid simplex blocks.
//!
//! The discriminator update is a **fused double-step**: the real batch and
//! the generated batch are stacked into one `2·batch`-row matrix (written
//! into a persistent buffer with `Matrix::paste`) and scored in a single
//! forward/backward pass with a single Adam step on the summed objective,
//! instead of two sequential half-updates. The backward pass uses
//! `Mlp::backward_params_only`, which skips the first layer's
//! input-gradient matmul — the widest product of the pass — because the
//! discriminator update never consumes `dL/d(input)`.

use nn::{
    bce_with_logits, standard_normal_into, standard_normal_matrix, Adam, AdamConfig, CosineDecay,
    LrSchedule, Matrix, Mlp, MlpConfig,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use tabular::{FeatureKind, Table};

use crate::codec::TableCodec;
use crate::fault::FitControl;
use crate::mixed::{mixed_activation, mixed_activation_backward, mixed_activation_into};
use crate::traits::{SampleSpec, SurrogateError, TabularGenerator};

/// CTABGAN+ hyper-parameters.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CtabGanConfig {
    /// Latent noise dimensionality.
    pub latent_dim: usize,
    /// Hidden widths of the generator.
    pub generator_hidden: Vec<usize>,
    /// Hidden widths of the discriminator.
    pub discriminator_hidden: Vec<usize>,
    /// Number of passes over the training data.
    pub epochs: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Peak learning rate (cosine-decayed).
    pub learning_rate: f64,
    /// Number of discriminator updates per generator update.
    pub discriminator_steps: usize,
    /// Use the conditional (training-by-sampling) vector.
    pub conditional: bool,
    /// RNG seed.
    pub seed: u64,
}

impl Default for CtabGanConfig {
    fn default() -> Self {
        Self {
            latent_dim: 32,
            generator_hidden: vec![128, 128],
            discriminator_hidden: vec![128, 64],
            epochs: 60,
            batch_size: 256,
            learning_rate: 2e-4,
            discriminator_steps: 1,
            conditional: true,
            seed: 13,
        }
    }
}

impl CtabGanConfig {
    /// Small configuration for unit tests.
    pub fn fast() -> Self {
        Self {
            latent_dim: 8,
            generator_hidden: vec![32],
            discriminator_hidden: vec![32],
            epochs: 20,
            batch_size: 64,
            learning_rate: 2e-3,
            ..Default::default()
        }
    }
}

/// The CTABGAN+ surrogate model.
///
/// Serializable in full (config, fitted codec/generator state, conditioning
/// marginals, loss history) so a fitted model checkpoints and reloads with
/// byte-identical sampling.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CtabGan {
    config: CtabGanConfig,
    codec: Option<TableCodec>,
    generator: Option<Mlp>,
    /// Index of the categorical span used for conditioning plus the marginal
    /// distribution of its categories in the training data.
    condition: Option<(usize, Vec<f64>)>,
    /// Generator / discriminator loss per epoch, for diagnostics.
    pub loss_history: Vec<(f64, f64)>,
}

impl CtabGan {
    /// New, unfitted model.
    pub fn new(config: CtabGanConfig) -> Self {
        Self {
            config,
            codec: None,
            generator: None,
            condition: None,
            loss_history: Vec::new(),
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &CtabGanConfig {
        &self.config
    }

    /// Width of the conditional vector (0 when conditioning is disabled or no
    /// categorical column exists).
    fn cond_width(&self, codec: &TableCodec) -> usize {
        match &self.condition {
            Some((span_idx, _)) => codec.spans()[*span_idx].width,
            None => 0,
        }
    }

    /// Sample a batch of conditional one-hot vectors from the training
    /// marginal.
    fn sample_condition<R: Rng>(&self, codec: &TableCodec, rows: usize, rng: &mut R) -> Matrix {
        let mut out = Matrix::default();
        self.sample_condition_into(codec, rows, rng, &mut out);
        out
    }

    /// [`CtabGan::sample_condition`] into a caller-owned buffer, so the
    /// training loop draws conditions without allocating.
    fn sample_condition_into<R: Rng>(
        &self,
        codec: &TableCodec,
        rows: usize,
        rng: &mut R,
        out: &mut Matrix,
    ) {
        let Some((span_idx, marginal)) = &self.condition else {
            out.resize_zeroed(rows, 0);
            return;
        };
        let width = codec.spans()[*span_idx].width;
        out.resize_zeroed(rows, width);
        for r in 0..rows {
            let mut u: f64 = rng.gen_range(0.0..1.0);
            let mut chosen = width - 1;
            for (i, &p) in marginal.iter().enumerate() {
                if u < p {
                    chosen = i;
                    break;
                }
                u -= p;
            }
            out.set(r, chosen, 1.0);
        }
    }
}

impl TabularGenerator for CtabGan {
    fn name(&self) -> &'static str {
        "CTABGAN+"
    }

    fn fit(&mut self, train: &Table) -> Result<(), SurrogateError> {
        self.fit_with_control(train, &FitControl::unlimited())
    }

    fn fit_with_control(
        &mut self,
        train: &Table,
        control: &FitControl,
    ) -> Result<(), SurrogateError> {
        let codec = TableCodec::fit(train)?;
        let data = codec.encode(train)?;
        let width = codec.encoded_width();
        let cfg = self.config.clone();
        let mut rng = StdRng::seed_from_u64(cfg.seed);

        // Choose the conditioning column: the categorical span with the
        // largest cardinality (most informative condition).
        self.condition = if cfg.conditional {
            codec
                .spans()
                .iter()
                .enumerate()
                .filter(|(_, s)| s.kind == FeatureKind::Categorical)
                .max_by_key(|(_, s)| s.width)
                .map(|(idx, span)| {
                    let mut marginal = vec![0.0; span.width];
                    for r in 0..data.rows() {
                        let block = &data.row(r)[span.start..span.start + span.width];
                        if let Some(code) = block.iter().position(|&v| v > 0.5) {
                            marginal[code] += 1.0;
                        }
                    }
                    let total: f64 = marginal.iter().sum::<f64>().max(1.0);
                    for m in &mut marginal {
                        *m /= total;
                    }
                    (idx, marginal)
                })
        } else {
            None
        };
        let cond_width = self.cond_width(&codec);

        let mut generator = Mlp::new(
            &MlpConfig::relu(
                cfg.latent_dim + cond_width,
                cfg.generator_hidden.clone(),
                width,
            ),
            &mut rng,
        );
        let mut discriminator = Mlp::new(
            &MlpConfig::relu(width + cond_width, cfg.discriminator_hidden.clone(), 1),
            &mut rng,
        );
        let mut adam = Adam::new(AdamConfig::default());

        let n = data.rows();
        let batch = cfg.batch_size.min(n).max(1);
        let steps_per_epoch = n.div_ceil(batch);
        let schedule = CosineDecay {
            base_lr: cfg.learning_rate,
            min_lr: cfg.learning_rate * 0.01,
            total_steps: cfg.epochs * steps_per_epoch,
            warmup_steps: 0,
        };

        let mut step = 0usize;
        self.loss_history.clear();

        // Per-batch scratch reused across every step, so the hot loop
        // performs no batch-assembly allocations.
        let mut real_idx = Vec::with_capacity(batch);
        let mut real = Matrix::zeros(batch, width);
        let mut z = Matrix::zeros(batch, cfg.latent_dim);
        let mut cond = Matrix::default();
        let mut g_in = Matrix::default();
        let mut fake_raw = Matrix::default();
        let mut gen_scratch = Matrix::default();
        let mut fake = Matrix::default();
        let mut d_in = Matrix::default();
        let mut logits = Matrix::default();
        // Fused discriminator batch buffer, shaped once: every step's four
        // `paste` calls overwrite all of it, so it is never re-zeroed.
        let mut d_in_fused = Matrix::zeros(2 * batch, width + cond_width);
        // Fused discriminator targets: the top `batch` rows of the combined
        // batch are real (label 1), the bottom `batch` rows fake (label 0).
        let mut d_targets = Matrix::zeros(2 * batch, 1);
        for r in 0..batch {
            d_targets.set(r, 0, 1.0);
        }

        for epoch in 0..cfg.epochs {
            control.check_epoch(epoch)?;
            let mut d_loss_sum = 0.0;
            let mut g_loss_sum = 0.0;
            for _ in 0..steps_per_epoch {
                let lr = schedule.lr_at(step);
                step += 1;

                // ---- Discriminator update(s), fused double-step ----
                //
                // Real and fake halves are assembled into one `2·batch`-row
                // matrix so each update runs a single forward/backward and a
                // single Adam step over the concatenated batch, instead of
                // two passes of `batch` rows (one fused gradient step on
                // `loss_real + loss_fake` rather than two sequential ones —
                // the standard formulation of the GAN discriminator
                // objective). The backward pass skips the first layer's
                // input-gradient product entirely, since nothing consumes
                // `dL/d(input)` here.
                for _ in 0..cfg.discriminator_steps {
                    real_idx.clear();
                    real_idx.extend((0..batch).map(|_| rng.gen_range(0..n)));
                    data.take_rows_into(&real_idx, &mut real);
                    self.sample_condition_into(&codec, batch, &mut rng, &mut cond);

                    standard_normal_into(batch, cfg.latent_dim, &mut rng, &mut z);
                    z.hconcat_into(&cond, &mut g_in);
                    generator.infer_into(&g_in, &mut fake_raw, &mut gen_scratch);
                    mixed_activation_into(codec.spans(), &fake_raw, &mut fake);

                    d_in_fused.paste(0, 0, &real);
                    d_in_fused.paste(batch, 0, &fake);
                    d_in_fused.paste(0, width, &cond);
                    d_in_fused.paste(batch, width, &cond);

                    discriminator.forward_into(&d_in_fused, &mut logits);
                    // `bce_with_logits` averages over the `2·batch` combined
                    // rows; doubling both the gradient and the logged loss
                    // restores the summed `loss_real + loss_fake` objective
                    // (each half a mean over `batch` rows), so the gradient
                    // magnitude reaching the 5.0 clip and Adam keeps the
                    // pre-fusion scale.
                    let (d_loss, mut grad) = bce_with_logits(&logits, &d_targets);
                    grad.scale_assign(2.0);
                    discriminator.backward_params_only(&grad);
                    discriminator.clip_gradients(5.0);
                    discriminator.apply_gradients(&mut adam, 10, lr);

                    d_loss_sum += 2.0 * d_loss;
                }

                // ---- Generator update ----
                self.sample_condition_into(&codec, batch, &mut rng, &mut cond);
                standard_normal_into(batch, cfg.latent_dim, &mut rng, &mut z);
                z.hconcat_into(&cond, &mut g_in);
                generator.forward_into(&g_in, &mut fake_raw);
                mixed_activation_into(codec.spans(), &fake_raw, &mut fake);
                fake.hconcat_into(&cond, &mut d_in);

                discriminator.forward_into(&d_in, &mut logits);
                // Non-saturating generator loss: fool the discriminator.
                let (g_loss, grad_logits) =
                    bce_with_logits(&logits, &Matrix::filled(batch, 1, 1.0));
                g_loss_sum += g_loss;

                // Backprop through the discriminator to its input, keep only
                // the data part (drop the conditional columns), then through
                // the mixed activation into the generator.
                let grad_d_in = discriminator.backward(&grad_logits);
                let grad_fake = grad_d_in.slice_cols(0, width);
                let grad_fake_raw = mixed_activation_backward(codec.spans(), &fake, &grad_fake);
                generator.backward(&grad_fake_raw);
                generator.clip_gradients(5.0);
                generator.apply_gradients(&mut adam, 20, lr);
            }
            let g_mean = g_loss_sum / steps_per_epoch as f64;
            let d_mean = d_loss_sum / (steps_per_epoch * cfg.discriminator_steps.max(1)) as f64;
            if !g_mean.is_finite() || !d_mean.is_finite() {
                return Err(SurrogateError::NonFiniteLoss { epoch });
            }
            self.loss_history.push((g_mean, d_mean));
        }

        self.codec = Some(codec);
        self.generator = Some(generator);
        Ok(())
    }

    fn sample(&self, n: usize, seed: u64) -> Result<Table, SurrogateError> {
        let codec = self
            .codec
            .as_ref()
            .ok_or(SurrogateError::NotFitted("CTABGAN+"))?;
        let generator = self
            .generator
            .as_ref()
            .expect("generator set when codec is");
        let mut rng = StdRng::seed_from_u64(seed);
        let z = standard_normal_matrix(n, self.config.latent_dim, &mut rng);
        let cond = self.sample_condition(codec, n, &mut rng);
        let raw = generator.infer(&z.hconcat(&cond));
        let activated = mixed_activation(codec.spans(), &raw);
        codec.decode(&activated)
    }

    fn sample_f32(&self, n: usize, seed: u64) -> Result<Table, SurrogateError> {
        let codec = self
            .codec
            .as_ref()
            .ok_or(SurrogateError::NotFitted("CTABGAN+"))?;
        let generator = self
            .generator
            .as_ref()
            .expect("generator set when codec is");
        let mut rng = StdRng::seed_from_u64(seed);
        // Identical noise/condition draws to the f64 path (assembled in f64,
        // rounded once); the generator forward pass runs in f32. The mixed
        // activation and decode stay in f64 — they are cheap and reuse the
        // span-aware softmax unchanged.
        let z = standard_normal_matrix(n, self.config.latent_dim, &mut rng);
        let cond = self.sample_condition(codec, n, &mut rng);
        let g_in = nn::Matrix32::from_f64(&z.hconcat(&cond));
        let raw = generator.to_f32().infer(&g_in);
        let activated = mixed_activation(codec.spans(), &raw.to_f64());
        codec.decode(&activated)
    }

    fn sample_batch(&self, specs: &[SampleSpec]) -> Result<Vec<Table>, SurrogateError> {
        let codec = self
            .codec
            .as_ref()
            .ok_or(SurrogateError::NotFitted("CTABGAN+"))?;
        let generator = self
            .generator
            .as_ref()
            .expect("generator set when codec is");
        if specs.is_empty() {
            return Ok(Vec::new());
        }
        // Per spec, draw noise then condition from that spec's own RNG — the
        // exact draw order of a standalone `sample` — and paste the
        // `[z | cond]` block into one 2ᵏ-row-padded generator input, so the
        // whole batch is a single packed forward pass. The mixed activation
        // (per-row block softmax) and the decode are row-wise, so splitting
        // after activation reproduces each spec's bytes.
        let latent = self.config.latent_dim;
        let mut g_in = Matrix::zeros(
            SampleSpec::padded_rows(specs),
            latent + self.cond_width(codec),
        );
        let mut offset = 0;
        for spec in specs {
            let mut rng = StdRng::seed_from_u64(spec.seed);
            g_in.paste(
                offset,
                0,
                &standard_normal_matrix(spec.rows, latent, &mut rng),
            );
            g_in.paste(
                offset,
                latent,
                &self.sample_condition(codec, spec.rows, &mut rng),
            );
            offset += spec.rows;
        }
        let mut raw = Matrix::default();
        let mut scratch = Matrix::default();
        generator.infer_into(&g_in, &mut raw, &mut scratch);
        let activated = mixed_activation(codec.spans(), &raw);
        let mut tables = Vec::with_capacity(specs.len());
        let mut offset = 0;
        for spec in specs {
            tables.push(codec.decode(&activated.slice_rows(offset, offset + spec.rows))?);
            offset += spec.rows;
        }
        Ok(tables)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tabular::Column;

    fn toy(n: usize, seed: u64) -> Table {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut values = Vec::with_capacity(n);
        let mut labels = Vec::with_capacity(n);
        for _ in 0..n {
            if rng.gen_bool(0.7) {
                values.push(rng.gen_range(1.0..5.0));
                labels.push("BNL");
            } else {
                values.push(rng.gen_range(50.0..60.0));
                labels.push("CERN");
            }
        }
        let mut t = Table::new();
        t.push_column("workload", Column::Numerical(values))
            .unwrap();
        t.push_column("site", Column::from_labels(&labels)).unwrap();
        t
    }

    #[test]
    fn fit_and_sample_schema() {
        let train = toy(200, 1);
        let mut gan = CtabGan::new(CtabGanConfig::fast());
        gan.fit(&train).unwrap();
        let synthetic = gan.sample(40, 9).unwrap();
        assert_eq!(synthetic.n_rows(), 40);
        assert_eq!(synthetic.names(), train.names());
        for r in 0..synthetic.n_rows() {
            assert!(["BNL", "CERN"].contains(&synthetic.label("site", r).unwrap()));
        }
        assert_eq!(gan.loss_history.len(), CtabGanConfig::fast().epochs);
    }

    #[test]
    fn conditional_vector_follows_training_marginal() {
        let train = toy(300, 2);
        let mut gan = CtabGan::new(CtabGanConfig::fast());
        gan.fit(&train).unwrap();
        let (_, marginal) = gan.condition.as_ref().expect("conditioning enabled");
        let sum: f64 = marginal.iter().sum();
        assert!((sum - 1.0).abs() < 1e-9);
        // BNL dominates the training data, so its marginal mass must be larger.
        let bnl_share = marginal.iter().cloned().fold(0.0, f64::max);
        assert!(bnl_share > 0.55);
    }

    #[test]
    fn unconditional_mode_works() {
        let train = toy(150, 3);
        let mut gan = CtabGan::new(CtabGanConfig {
            conditional: false,
            ..CtabGanConfig::fast()
        });
        gan.fit(&train).unwrap();
        assert!(gan.condition.is_none());
        assert_eq!(gan.sample(10, 0).unwrap().n_rows(), 10);
    }

    #[test]
    fn sampling_is_seed_deterministic() {
        let train = toy(120, 4);
        let mut gan = CtabGan::new(CtabGanConfig::fast());
        gan.fit(&train).unwrap();
        assert_eq!(gan.sample(15, 3).unwrap(), gan.sample(15, 3).unwrap());
        assert_ne!(gan.sample(15, 3).unwrap(), gan.sample(15, 4).unwrap());
    }

    #[test]
    fn sample_before_fit_errors() {
        let gan = CtabGan::new(CtabGanConfig::fast());
        assert!(matches!(
            gan.sample(5, 0),
            Err(SurrogateError::NotFitted(_))
        ));
        assert!(matches!(
            gan.sample_batch(&[SampleSpec::new(5, 0)]),
            Err(SurrogateError::NotFitted(_))
        ));
    }

    #[test]
    fn batched_sampling_is_byte_identical_to_unbatched() {
        // Conditional sampling interleaves two draw kinds (noise, then the
        // conditional one-hots) on one RNG stream per spec — the batched
        // path must reproduce that order exactly.
        let train = toy(150, 9);
        let mut gan = CtabGan::new(CtabGanConfig::fast());
        gan.fit(&train).unwrap();
        let specs = [
            SampleSpec::new(13, 2),
            SampleSpec::new(6, 40),
            SampleSpec::new(13, 2),
        ];
        let batched = gan.sample_batch(&specs).unwrap();
        for (spec, table) in specs.iter().zip(&batched) {
            assert_eq!(table, &gan.sample(spec.rows, spec.seed).unwrap());
        }

        // And with conditioning disabled (zero-width condition block).
        let mut plain = CtabGan::new(CtabGanConfig {
            conditional: false,
            ..CtabGanConfig::fast()
        });
        plain.fit(&train).unwrap();
        let batched = plain.sample_batch(&specs).unwrap();
        for (spec, table) in specs.iter().zip(&batched) {
            assert_eq!(table, &plain.sample(spec.rows, spec.seed).unwrap());
        }
    }

    #[test]
    fn budget_cancels_fit_and_nan_lr_is_detected() {
        use crate::fault::CellBudget;
        use std::time::Instant;

        let train = toy(200, 8);
        let mut gan = CtabGan::new(CtabGanConfig::fast());
        let control = CellBudget {
            max_epochs: Some(2),
            wall_clock: None,
        }
        .control_from(Instant::now());
        assert_eq!(
            gan.fit_with_control(&train, &control),
            Err(SurrogateError::BudgetExceeded {
                completed_epochs: 2
            })
        );
        assert_eq!(gan.loss_history.len(), 2);

        let mut diverging = CtabGan::new(CtabGanConfig {
            learning_rate: f64::NAN,
            ..CtabGanConfig::fast()
        });
        assert_eq!(
            diverging.fit(&train),
            Err(SurrogateError::NonFiniteLoss { epoch: 0 })
        );
    }
}
