//! Model factory and fit/sample orchestration.

use serde::{Deserialize, Serialize};
use tabular::Table;

use crate::checkpoint::CheckpointPayload;
use crate::ctabgan::{CtabGan, CtabGanConfig};
use crate::fault::FitControl;
use crate::smote::{SmoteConfig, SmoteSampler};
use crate::tabddpm::{TabDdpm, TabDdpmConfig};
use crate::traits::{SampleSpec, SurrogateError, TabularGenerator};
use crate::tvae::{Tvae, TvaeConfig};

/// The four surrogate models evaluated in the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ModelKind {
    /// Variational autoencoder.
    Tvae,
    /// Conditional GAN (CTABGAN+ style).
    CtabGan,
    /// Nearest-neighbour interpolation (non-learning baseline).
    Smote,
    /// Denoising diffusion model (the paper's recommendation).
    TabDdpm,
}

impl ModelKind {
    /// All four models, in the order of the paper's Table I.
    pub const ALL: [ModelKind; 4] = [
        ModelKind::Tvae,
        ModelKind::CtabGan,
        ModelKind::Smote,
        ModelKind::TabDdpm,
    ];

    /// Name used in tables and reports.
    pub fn name(self) -> &'static str {
        match self {
            ModelKind::Tvae => "TVAE",
            ModelKind::CtabGan => "CTABGAN+",
            ModelKind::Smote => "SMOTE",
            ModelKind::TabDdpm => "TabDDPM",
        }
    }

    /// Parse a model name (case-insensitive, punctuation-insensitive).
    pub fn parse(name: &str) -> Option<Self> {
        let key: String = name
            .chars()
            .filter(|c| c.is_ascii_alphanumeric())
            .collect::<String>()
            .to_ascii_lowercase();
        match key.as_str() {
            "tvae" => Some(ModelKind::Tvae),
            "ctabgan" | "ctabganplus" | "ctaggan" => Some(ModelKind::CtabGan),
            "smote" => Some(ModelKind::Smote),
            "tabddpm" | "ddpm" => Some(ModelKind::TabDdpm),
            _ => None,
        }
    }
}

/// How much compute to spend on training: scales epochs and network sizes
/// between quick smoke tests and full paper-style runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TrainingBudget {
    /// Tiny models and few epochs — unit tests and CI.
    Smoke,
    /// Reasonable laptop-scale defaults — examples and benches.
    Standard,
    /// Larger networks and more epochs — closest to the paper's setup.
    Full,
}

impl TrainingBudget {
    /// All budgets, cheapest first.
    pub const ALL: [TrainingBudget; 3] = [
        TrainingBudget::Smoke,
        TrainingBudget::Standard,
        TrainingBudget::Full,
    ];

    /// Name used in CLI flags and report rows.
    pub fn name(self) -> &'static str {
        match self {
            TrainingBudget::Smoke => "smoke",
            TrainingBudget::Standard => "standard",
            TrainingBudget::Full => "full",
        }
    }

    /// Parse a budget name (case-insensitive). `fast` is an alias for
    /// `smoke` and `paper` for `full`, matching how the docs describe them.
    pub fn parse(name: &str) -> Option<Self> {
        match name.to_ascii_lowercase().as_str() {
            "smoke" | "fast" => Some(TrainingBudget::Smoke),
            "standard" | "default" => Some(TrainingBudget::Standard),
            "full" | "paper" => Some(TrainingBudget::Full),
            _ => None,
        }
    }

    fn scale_epochs(self, standard: usize) -> usize {
        match self {
            TrainingBudget::Smoke => (standard / 4).max(4),
            TrainingBudget::Standard => standard,
            TrainingBudget::Full => standard * 4,
        }
    }
}

/// Build an unfitted model of the requested kind in checkpointable form.
/// This is the single source of truth for budget- and seed-dependent model
/// configuration: [`build_model`] and the checkpoint save/load path both go
/// through it, so a reloaded checkpoint is configured exactly like a
/// freshly built model.
pub fn build_payload(kind: ModelKind, budget: TrainingBudget, seed: u64) -> CheckpointPayload {
    match kind {
        ModelKind::Smote => CheckpointPayload::Smote(SmoteSampler::new(SmoteConfig::default())),
        ModelKind::Tvae => {
            let base = match budget {
                TrainingBudget::Smoke => TvaeConfig::fast(),
                _ => TvaeConfig::default(),
            };
            CheckpointPayload::Tvae(Tvae::new(TvaeConfig {
                epochs: budget.scale_epochs(base.epochs),
                seed,
                ..base
            }))
        }
        ModelKind::CtabGan => {
            let base = match budget {
                TrainingBudget::Smoke => CtabGanConfig::fast(),
                _ => CtabGanConfig::default(),
            };
            CheckpointPayload::CtabGan(CtabGan::new(CtabGanConfig {
                epochs: budget.scale_epochs(base.epochs),
                seed,
                ..base
            }))
        }
        ModelKind::TabDdpm => {
            let base = match budget {
                TrainingBudget::Smoke => TabDdpmConfig::fast(),
                _ => TabDdpmConfig::default(),
            };
            CheckpointPayload::TabDdpm(TabDdpm::new(TabDdpmConfig {
                epochs: budget.scale_epochs(base.epochs),
                seed,
                ..base
            }))
        }
    }
}

/// Build a surrogate model of the requested kind with a given budget and
/// base seed.
pub fn build_model(
    kind: ModelKind,
    budget: TrainingBudget,
    seed: u64,
) -> Box<dyn TabularGenerator> {
    build_payload(kind, budget, seed).into_generator()
}

/// Fit a model of the requested kind on `train` and sample `n_samples`
/// synthetic rows.
pub fn fit_and_sample(
    kind: ModelKind,
    train: &Table,
    n_samples: usize,
    budget: TrainingBudget,
    seed: u64,
) -> Result<Table, SurrogateError> {
    fit_and_sample_controlled(
        kind,
        train,
        n_samples,
        budget,
        seed,
        &FitControl::unlimited(),
    )
}

/// [`fit_and_sample`] under a cooperative cancellation token, so callers
/// like the sweep runtime can impose per-cell budgets. With an unlimited
/// token this is byte-identical to [`fit_and_sample`].
pub fn fit_and_sample_controlled(
    kind: ModelKind,
    train: &Table,
    n_samples: usize,
    budget: TrainingBudget,
    seed: u64,
    control: &FitControl,
) -> Result<Table, SurrogateError> {
    let mut model = build_model(kind, budget, seed);
    model.fit_with_control(train, control)?;
    model.sample(n_samples, seed.wrapping_add(1))
}

/// Fit a model of the requested kind on `train` and answer a batch of
/// independent sampling requests in one coalesced pass — the core of the
/// serving loop's micro-batching, exposed as a pipeline entry point so
/// benches and tests can compare batched against per-call sampling without
/// standing up the serve process. Each returned table is byte-identical to
/// `model.sample(spec.rows, spec.seed)` on the same fitted model.
pub fn fit_and_sample_batch(
    kind: ModelKind,
    train: &Table,
    specs: &[SampleSpec],
    budget: TrainingBudget,
    seed: u64,
) -> Result<Vec<Table>, SurrogateError> {
    let mut model = build_model(kind, budget, seed);
    model.fit(train)?;
    model.sample_batch(specs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use tabular::Column;

    fn toy(n: usize) -> Table {
        let mut rng = StdRng::seed_from_u64(0);
        let mut values = Vec::new();
        let mut labels = Vec::new();
        for _ in 0..n {
            values.push(rng.gen_range(1.0..100.0));
            labels.push(if rng.gen_bool(0.7) { "BNL" } else { "CERN" });
        }
        let mut t = Table::new();
        t.push_column("workload", Column::Numerical(values))
            .unwrap();
        t.push_column("site", Column::from_labels(&labels)).unwrap();
        t
    }

    #[test]
    fn model_kind_parsing() {
        assert_eq!(ModelKind::parse("TabDDPM"), Some(ModelKind::TabDdpm));
        assert_eq!(ModelKind::parse("ctab-gan+"), Some(ModelKind::CtabGan));
        assert_eq!(ModelKind::parse("smote"), Some(ModelKind::Smote));
        assert_eq!(ModelKind::parse("TVAE"), Some(ModelKind::Tvae));
        assert_eq!(ModelKind::parse("mystery"), None);
        assert_eq!(ModelKind::ALL.len(), 4);
    }

    #[test]
    fn names_match_paper_table() {
        assert_eq!(ModelKind::Tvae.name(), "TVAE");
        assert_eq!(ModelKind::CtabGan.name(), "CTABGAN+");
        assert_eq!(ModelKind::Smote.name(), "SMOTE");
        assert_eq!(ModelKind::TabDdpm.name(), "TabDDPM");
    }

    #[test]
    fn budget_scales_epochs() {
        assert!(TrainingBudget::Smoke.scale_epochs(60) < 60);
        assert_eq!(TrainingBudget::Standard.scale_epochs(60), 60);
        assert_eq!(TrainingBudget::Full.scale_epochs(60), 240);
    }

    #[test]
    fn budget_names_round_trip_through_parse() {
        for budget in TrainingBudget::ALL {
            assert_eq!(TrainingBudget::parse(budget.name()), Some(budget));
        }
        assert_eq!(TrainingBudget::parse("fast"), Some(TrainingBudget::Smoke));
        assert_eq!(TrainingBudget::parse("PAPER"), Some(TrainingBudget::Full));
        assert_eq!(TrainingBudget::parse("mystery"), None);
    }

    #[test]
    fn batched_sampling_matches_per_call_sampling_for_every_kind() {
        // The serving loop's correctness contract, pinned at the pipeline
        // level: for every model kind, a coalesced batch of requests
        // produces byte-identical tables to sampling each request alone on
        // the same fitted model — including a duplicate (rows, seed) pair,
        // which must yield two identical tables.
        let train = toy(120);
        let specs = [
            SampleSpec::new(9, 100),
            SampleSpec::new(17, 3),
            SampleSpec::new(9, 100),
        ];
        for kind in ModelKind::ALL {
            let mut model = build_model(kind, TrainingBudget::Smoke, 7);
            model.fit(&train).unwrap();
            let batched = model.sample_batch(&specs).unwrap_or_else(|e| {
                panic!("{} batched sampling failed: {e}", kind.name());
            });
            assert_eq!(batched.len(), specs.len(), "{}", kind.name());
            for (spec, table) in specs.iter().zip(&batched) {
                assert_eq!(
                    table,
                    &model.sample(spec.rows, spec.seed).unwrap(),
                    "{} diverged for {spec:?}",
                    kind.name()
                );
            }
            assert_eq!(batched[0], batched[2], "{}", kind.name());
        }
    }

    #[test]
    fn fit_and_sample_batch_answers_every_spec() {
        let train = toy(120);
        let specs = [SampleSpec::new(5, 1), SampleSpec::new(8, 2)];
        let tables =
            fit_and_sample_batch(ModelKind::Smote, &train, &specs, TrainingBudget::Smoke, 7)
                .unwrap();
        assert_eq!(tables.len(), 2);
        assert_eq!(tables[0].n_rows(), 5);
        assert_eq!(tables[1].n_rows(), 8);
        assert_eq!(tables[0].names(), train.names());
    }

    #[test]
    fn every_model_kind_fits_and_samples() {
        let train = toy(120);
        for kind in ModelKind::ALL {
            let synthetic = fit_and_sample(kind, &train, 30, TrainingBudget::Smoke, 7)
                .unwrap_or_else(|e| {
                    panic!("{} failed: {e}", kind.name());
                });
            assert_eq!(synthetic.n_rows(), 30, "{}", kind.name());
            assert_eq!(synthetic.names(), train.names(), "{}", kind.name());
        }
    }
}
