//! Jensen–Shannon divergence between categorical distributions.

use std::collections::BTreeMap;

use tabular::{Column, Table};

use crate::error::MetricError;

/// Jensen–Shannon divergence (natural log, so bounded by ln 2) between two
/// discrete distributions given as `(label, probability)` maps. Labels absent
/// from one distribution are treated as probability zero.
pub fn jensen_shannon_divergence(p: &BTreeMap<String, f64>, q: &BTreeMap<String, f64>) -> f64 {
    let mut labels: Vec<&String> = p.keys().chain(q.keys()).collect();
    labels.sort();
    labels.dedup();
    let mut jsd = 0.0;
    for label in labels {
        let pi = p.get(label).copied().unwrap_or(0.0);
        let qi = q.get(label).copied().unwrap_or(0.0);
        let mi = 0.5 * (pi + qi);
        if pi > 0.0 {
            jsd += 0.5 * pi * (pi / mi).ln();
        }
        if qi > 0.0 {
            jsd += 0.5 * qi * (qi / mi).ln();
        }
    }
    jsd.max(0.0)
}

/// Normalised frequency map of a categorical column keyed by label.
fn distribution(column: &Column) -> BTreeMap<String, f64> {
    let codes = column.as_codes().expect("categorical column");
    let vocab = column.vocab().expect("categorical column");
    let mut counts: BTreeMap<String, f64> = BTreeMap::new();
    for &c in codes {
        if let Some(label) = vocab.get(c as usize) {
            *counts.entry(label.clone()).or_insert(0.0) += 1.0;
        }
    }
    let total: f64 = counts.values().sum();
    if total > 0.0 {
        for v in counts.values_mut() {
            *v /= total;
        }
    }
    counts
}

/// JSD between the same-named categorical column of two tables.
pub fn column_jsd(real: &Table, synthetic: &Table, name: &str) -> f64 {
    let a = distribution(real.column(name).expect("column exists in real table"));
    let b = distribution(
        synthetic
            .column(name)
            .expect("column exists in synthetic table"),
    );
    jensen_shannon_divergence(&a, &b)
}

/// Mean JSD across all categorical columns shared by the two tables — the
/// "JSD" column of the paper's Table I. Degenerate table pairs (no
/// categorical columns, or none shared) come back as a typed
/// [`MetricError`] instead of a panic.
pub fn mean_jsd(real: &Table, synthetic: &Table) -> Result<f64, MetricError> {
    let schema = real.schema();
    let cats = schema.categorical_names();
    if cats.is_empty() {
        return Err(MetricError::NoCategoricalColumns);
    }
    let mut total = 0.0;
    let mut count = 0usize;
    for name in cats {
        if synthetic.column(name).is_ok() {
            total += column_jsd(real, synthetic, name);
            count += 1;
        }
    }
    if count == 0 {
        return Err(MetricError::NoSharedCategoricalColumns);
    }
    Ok(total / count as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dist(pairs: &[(&str, f64)]) -> BTreeMap<String, f64> {
        pairs.iter().map(|(k, v)| (k.to_string(), *v)).collect()
    }

    #[test]
    fn identical_distributions_have_zero_jsd() {
        let p = dist(&[("a", 0.5), ("b", 0.5)]);
        assert!(jensen_shannon_divergence(&p, &p) < 1e-12);
    }

    #[test]
    fn disjoint_distributions_reach_ln2() {
        let p = dist(&[("a", 1.0)]);
        let q = dist(&[("b", 1.0)]);
        assert!((jensen_shannon_divergence(&p, &q) - 2f64.ln()).abs() < 1e-12);
    }

    #[test]
    fn jsd_is_symmetric_and_bounded() {
        let p = dist(&[("a", 0.7), ("b", 0.2), ("c", 0.1)]);
        let q = dist(&[("a", 0.1), ("b", 0.3), ("d", 0.6)]);
        let pq = jensen_shannon_divergence(&p, &q);
        let qp = jensen_shannon_divergence(&q, &p);
        assert!((pq - qp).abs() < 1e-12);
        assert!(pq > 0.0 && pq <= 2f64.ln() + 1e-12);
    }

    #[test]
    fn closer_distributions_have_smaller_jsd() {
        let p = dist(&[("a", 0.5), ("b", 0.5)]);
        let close = dist(&[("a", 0.55), ("b", 0.45)]);
        let far = dist(&[("a", 0.95), ("b", 0.05)]);
        assert!(jensen_shannon_divergence(&p, &close) < jensen_shannon_divergence(&p, &far));
    }

    #[test]
    fn table_level_jsd() {
        let mut real = Table::new();
        real.push_column("s", Column::from_labels(&["x", "x", "y", "z"]))
            .unwrap();
        let synthetic_same = real.clone();
        assert!(mean_jsd(&real, &synthetic_same).unwrap() < 1e-12);

        let mut skewed = Table::new();
        skewed
            .push_column("s", Column::from_labels(&["x", "x", "x", "x"]))
            .unwrap();
        assert!(mean_jsd(&real, &skewed).unwrap() > 0.05);
    }

    #[test]
    fn unseen_labels_in_synthetic_are_penalised() {
        let mut real = Table::new();
        real.push_column("s", Column::from_labels(&["a", "a", "b"]))
            .unwrap();
        let mut synthetic = Table::new();
        synthetic
            .push_column("s", Column::from_labels(&["a", "weird", "weird"]))
            .unwrap();
        assert!(mean_jsd(&real, &synthetic).unwrap() > 0.2);
    }

    #[test]
    fn degenerate_tables_yield_typed_errors() {
        let mut numeric_only = Table::new();
        numeric_only
            .push_column("x", Column::Numerical(vec![1.0, 2.0]))
            .unwrap();
        assert_eq!(
            mean_jsd(&numeric_only, &numeric_only),
            Err(MetricError::NoCategoricalColumns)
        );

        let mut real = Table::new();
        real.push_column("s", Column::from_labels(&["a", "b"]))
            .unwrap();
        let mut disjoint = Table::new();
        disjoint
            .push_column("t", Column::from_labels(&["a", "b"]))
            .unwrap();
        assert_eq!(
            mean_jsd(&real, &disjoint),
            Err(MetricError::NoSharedCategoricalColumns)
        );
    }
}
