//! Distance to Closest Record (DCR) — the paper's privacy proxy.
//!
//! For every synthetic row we find the nearest training row under a mixed
//! metric (squared difference of min-max-normalised numerical features plus a
//! 0/1 mismatch indicator per categorical feature) and average those nearest
//! distances. A *small* DCR means synthetic rows sit on top of real rows —
//! good fidelity, bad privacy; the paper reports DCR with ↑ "higher is
//! better" because it reads the column as privacy risk.

use rayon::prelude::*;
use serde::{Deserialize, Serialize};
use tabular::Table;

/// Options for the DCR computation.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct DcrConfig {
    /// Cap on the number of synthetic rows scored (subsampled evenly if the
    /// table is larger); keeps the O(n·m) scan tractable on big tables.
    pub max_synthetic_rows: usize,
    /// Cap on the number of training rows scanned against.
    pub max_train_rows: usize,
}

impl Default for DcrConfig {
    fn default() -> Self {
        Self {
            max_synthetic_rows: 2_000,
            max_train_rows: 20_000,
        }
    }
}

/// Dense mixed-type encoding of a table for distance computations:
/// numerical columns are min-max normalised with the *training* ranges,
/// categorical columns keep their codes.
struct EncodedRows {
    numeric: Vec<Vec<f64>>, // per column
    categorical: Vec<Vec<u32>>,
    n_rows: usize,
}

fn encode(
    table: &Table,
    ranges: &[(f64, f64)],
    numeric_names: &[&str],
    cat_names: &[&str],
) -> EncodedRows {
    let numeric = numeric_names
        .iter()
        .zip(ranges)
        .map(|(name, &(min, max))| {
            let span = if (max - min).abs() < 1e-300 {
                1.0
            } else {
                max - min
            };
            table
                .numerical(name)
                .expect("numeric column present")
                .iter()
                .map(|v| (v - min) / span)
                .collect()
        })
        .collect();
    let categorical = cat_names
        .iter()
        .map(|name| {
            table
                .codes(name)
                .expect("categorical column present")
                .to_vec()
        })
        .collect();
    EncodedRows {
        numeric,
        categorical,
        n_rows: table.n_rows(),
    }
}

fn subsample_indices(n: usize, cap: usize) -> Vec<usize> {
    if n <= cap {
        (0..n).collect()
    } else {
        // Deterministic even subsample.
        (0..cap).map(|i| i * n / cap).collect()
    }
}

/// Mean distance from each synthetic row to its closest training record.
///
/// Categorical vocabularies are compared by *label*: synthetic codes are
/// remapped onto the training vocabulary first so a synthetic "BNL_PROD"
/// matches a training "BNL_PROD" even if their integer codes differ.
pub fn distance_to_closest_record(train: &Table, synthetic: &Table, config: DcrConfig) -> f64 {
    assert!(train.n_rows() > 0, "empty training table");
    assert!(synthetic.n_rows() > 0, "empty synthetic table");
    let schema = train.schema();
    let numeric_names = schema.numerical_names();
    let cat_names = schema.categorical_names();

    // Training-set min/max per numerical column.
    let ranges: Vec<(f64, f64)> = numeric_names
        .iter()
        .map(|name| {
            let v = train.numerical(name).expect("numeric column present");
            let min = v
                .iter()
                .copied()
                .filter(|x| x.is_finite())
                .fold(f64::INFINITY, f64::min);
            let max = v
                .iter()
                .copied()
                .filter(|x| x.is_finite())
                .fold(f64::NEG_INFINITY, f64::max);
            (min, max)
        })
        .collect();

    // Remap synthetic categorical codes onto the training vocabulary.
    let mut synthetic_aligned = synthetic
        .select(&train.names().iter().map(String::as_str).collect::<Vec<_>>())
        .expect("synthetic table must contain the training columns");
    for name in &cat_names {
        let train_vocab = train.vocab(name).expect("categorical column").to_vec();
        let labels: Vec<String> = (0..synthetic_aligned.n_rows())
            .map(|r| {
                synthetic_aligned
                    .label(name, r)
                    .expect("valid code")
                    .to_string()
            })
            .collect();
        let codes: Vec<u32> = labels
            .iter()
            .map(|l| {
                train_vocab
                    .iter()
                    .position(|v| v == l)
                    .map_or(u32::MAX, |i| i as u32)
            })
            .collect();
        *synthetic_aligned.column_mut(name).expect("column exists") =
            tabular::Column::Categorical {
                codes,
                vocab: train_vocab,
            };
    }

    let train_enc = encode(train, &ranges, &numeric_names, &cat_names);
    let syn_enc = encode(&synthetic_aligned, &ranges, &numeric_names, &cat_names);

    let syn_rows = subsample_indices(syn_enc.n_rows, config.max_synthetic_rows);
    let train_rows = subsample_indices(train_enc.n_rows, config.max_train_rows);

    let total: f64 = syn_rows
        .par_iter()
        .map(|&s| {
            let mut best = f64::INFINITY;
            for &t in &train_rows {
                let mut d = 0.0;
                for col in 0..syn_enc.numeric.len() {
                    let diff = syn_enc.numeric[col][s] - train_enc.numeric[col][t];
                    d += diff * diff;
                    if d >= best {
                        break;
                    }
                }
                if d < best {
                    for col in 0..syn_enc.categorical.len() {
                        if syn_enc.categorical[col][s] != train_enc.categorical[col][t] {
                            d += 1.0;
                        }
                        if d >= best {
                            break;
                        }
                    }
                }
                if d < best {
                    best = d;
                }
            }
            best.sqrt()
        })
        .sum();

    total / syn_rows.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use tabular::Column;

    fn table(values: &[f64], labels: &[&str]) -> Table {
        let mut t = Table::new();
        t.push_column("x", Column::Numerical(values.to_vec()))
            .unwrap();
        t.push_column("s", Column::from_labels(labels)).unwrap();
        t
    }

    #[test]
    fn copying_training_data_gives_zero_dcr() {
        let train = table(&[0.0, 1.0, 2.0, 3.0], &["a", "b", "a", "b"]);
        let dcr = distance_to_closest_record(&train, &train, DcrConfig::default());
        assert!(dcr < 1e-12);
    }

    #[test]
    fn far_synthetic_rows_give_large_dcr() {
        let train = table(&[0.0, 1.0, 2.0, 3.0], &["a", "b", "a", "b"]);
        let synthetic = table(&[30.0, 40.0], &["zzz", "zzz"]);
        let dcr = distance_to_closest_record(&train, &synthetic, DcrConfig::default());
        // Numerical distance is normalised by the training range (3), plus a
        // categorical mismatch of 1 per row.
        assert!(dcr > 3.0, "dcr = {dcr}");
    }

    #[test]
    fn interpolated_rows_sit_between() {
        let train = table(&[0.0, 10.0], &["a", "a"]);
        let near = table(&[0.1], &["a"]);
        let mid = table(&[5.0], &["a"]);
        let d_near = distance_to_closest_record(&train, &near, DcrConfig::default());
        let d_mid = distance_to_closest_record(&train, &mid, DcrConfig::default());
        assert!(d_near < d_mid);
        assert!(d_mid <= 0.5 + 1e-9);
    }

    #[test]
    fn label_alignment_is_by_name_not_code() {
        // Same labels but different vocabulary order: codes differ yet the
        // rows are identical, so DCR must be ~0.
        let train = table(&[1.0, 2.0], &["a", "b"]);
        let synthetic = table(&[2.0, 1.0], &["b", "a"]);
        let dcr = distance_to_closest_record(&train, &synthetic, DcrConfig::default());
        assert!(dcr < 1e-12, "dcr = {dcr}");
    }

    #[test]
    fn subsampling_keeps_result_finite() {
        let n = 500;
        let values: Vec<f64> = (0..n).map(|i| i as f64).collect();
        let labels: Vec<&str> = (0..n).map(|i| if i % 2 == 0 { "a" } else { "b" }).collect();
        let train = table(&values, &labels);
        let config = DcrConfig {
            max_synthetic_rows: 50,
            max_train_rows: 100,
        };
        let dcr = distance_to_closest_record(&train, &train, config);
        assert!(dcr.is_finite());
    }
}
