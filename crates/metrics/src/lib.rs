//! Evaluation metrics for tabular generative models (§IV-B of the paper).
//!
//! Five quantities make up the paper's Table I:
//!
//! * **WD** — mean 1-D Wasserstein distance across numerical features
//!   (computed on min-max-normalised values so features are comparable),
//! * **JSD** — mean Jensen–Shannon divergence across categorical features,
//! * **diff-CORR** — mean element-wise L2 difference between the real and
//!   synthetic association matrices (Pearson for numerical–numerical,
//!   correlation ratio for categorical–numerical, Theil's U for
//!   categorical–categorical),
//! * **DCR** — mean distance to the closest training record (privacy proxy;
//!   higher is safer),
//! * **diff-MLEF** — machine-learning efficacy gap: test MSE of a
//!   gradient-boosted regressor trained on synthetic data minus the test MSE
//!   of the same regressor trained on real data.
//!
//! [`report::evaluate_surrogate`] computes all five at once and
//! [`report::SurrogateReport`] renders a Table-I-style row.

pub mod correlation;
pub mod dcr;
pub mod error;
pub mod jsd;
pub mod mlef;
pub mod report;
pub mod wasserstein;

pub use correlation::{
    association_matrix, correlation_ratio, diff_corr, pearson, theils_u, AssociationMatrix,
};
pub use dcr::{distance_to_closest_record, DcrConfig};
pub use error::MetricError;
pub use jsd::column_jsd;
pub use jsd::{jensen_shannon_divergence, mean_jsd};
pub use mlef::{diff_mlef, mlef_mse, MlefConfig};
pub use report::{evaluate_surrogate, mean_report, EvaluationConfig, SurrogateReport};
pub use wasserstein::{mean_wasserstein, wasserstein_1d, wasserstein_1d_normalized};
