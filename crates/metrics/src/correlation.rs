//! Association (correlation) matrices over mixed-type tables.
//!
//! Following the paper (and the `dython` convention it references):
//!
//! * numerical–numerical pairs use the absolute **Pearson correlation**,
//! * categorical–numerical pairs use the **correlation ratio** (η),
//! * categorical–categorical pairs use **Theil's U** (uncertainty
//!   coefficient), which is asymmetric; the matrix stores `U(row | col)`.
//!
//! The "diff-CORR" scalar of Table I is the mean element-wise L2 distance
//! between the real and synthetic association matrices.

use serde::{Deserialize, Serialize};
use tabular::{FeatureKind, Table};

/// Pearson correlation coefficient between two equally long samples.
pub fn pearson(x: &[f64], y: &[f64]) -> f64 {
    assert_eq!(x.len(), y.len(), "length mismatch");
    assert!(x.len() > 1, "need at least two samples");
    let n = x.len() as f64;
    let mx = x.iter().sum::<f64>() / n;
    let my = y.iter().sum::<f64>() / n;
    let mut cov = 0.0;
    let mut vx = 0.0;
    let mut vy = 0.0;
    for (&a, &b) in x.iter().zip(y) {
        cov += (a - mx) * (b - my);
        vx += (a - mx).powi(2);
        vy += (b - my).powi(2);
    }
    if vx <= 0.0 || vy <= 0.0 {
        return 0.0;
    }
    (cov / (vx.sqrt() * vy.sqrt())).clamp(-1.0, 1.0)
}

/// Correlation ratio η between a categorical grouping and a numerical value:
/// the square root of the between-group variance over the total variance.
/// Lies in `[0, 1]`; 0 means the numerical distribution is identical across
/// categories.
pub fn correlation_ratio(codes: &[u32], values: &[f64]) -> f64 {
    assert_eq!(codes.len(), values.len(), "length mismatch");
    assert!(!codes.is_empty(), "empty input");
    let cardinality = codes.iter().copied().max().unwrap_or(0) as usize + 1;
    let mut sums = vec![0.0; cardinality];
    let mut counts = vec![0usize; cardinality];
    for (&c, &v) in codes.iter().zip(values) {
        sums[c as usize] += v;
        counts[c as usize] += 1;
    }
    let total_mean = values.iter().sum::<f64>() / values.len() as f64;
    let mut between = 0.0;
    for (s, &n) in sums.iter().zip(&counts) {
        if n > 0 {
            let group_mean = s / n as f64;
            between += n as f64 * (group_mean - total_mean).powi(2);
        }
    }
    let total: f64 = values.iter().map(|v| (v - total_mean).powi(2)).sum();
    if total <= 0.0 {
        return 0.0;
    }
    (between / total).clamp(0.0, 1.0).sqrt()
}

/// Shannon entropy (natural log) of a code histogram.
fn entropy(counts: &[f64], total: f64) -> f64 {
    counts
        .iter()
        .filter(|&&c| c > 0.0)
        .map(|&c| {
            let p = c / total;
            -p * p.ln()
        })
        .sum()
}

/// Theil's uncertainty coefficient `U(x | y)`: the fraction of the entropy of
/// `x` explained by knowing `y`. Lies in `[0, 1]` and is asymmetric.
pub fn theils_u(x_codes: &[u32], y_codes: &[u32]) -> f64 {
    assert_eq!(x_codes.len(), y_codes.len(), "length mismatch");
    assert!(!x_codes.is_empty(), "empty input");
    let n = x_codes.len() as f64;
    let x_card = x_codes.iter().copied().max().unwrap_or(0) as usize + 1;
    let y_card = y_codes.iter().copied().max().unwrap_or(0) as usize + 1;

    let mut x_counts = vec![0.0; x_card];
    for &c in x_codes {
        x_counts[c as usize] += 1.0;
    }
    let h_x = entropy(&x_counts, n);
    if h_x <= 0.0 {
        return 1.0; // x is constant: trivially fully determined.
    }

    // Conditional entropy H(x | y).
    let mut joint = vec![vec![0.0; x_card]; y_card];
    let mut y_counts = vec![0.0; y_card];
    for (&x, &y) in x_codes.iter().zip(y_codes) {
        joint[y as usize][x as usize] += 1.0;
        y_counts[y as usize] += 1.0;
    }
    let mut h_x_given_y = 0.0;
    for (row, &ny) in joint.iter().zip(&y_counts) {
        if ny > 0.0 {
            h_x_given_y += (ny / n) * entropy(row, ny);
        }
    }
    ((h_x - h_x_given_y) / h_x).clamp(0.0, 1.0)
}

/// A square association matrix over the columns of a table.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AssociationMatrix {
    /// Column names, in table order.
    pub names: Vec<String>,
    /// Row-major association values; `values[i][j]` relates column `i` (rows)
    /// to column `j` (columns).
    pub values: Vec<Vec<f64>>,
}

impl AssociationMatrix {
    /// Value relating two named columns.
    pub fn get(&self, row: &str, col: &str) -> Option<f64> {
        let i = self.names.iter().position(|n| n == row)?;
        let j = self.names.iter().position(|n| n == col)?;
        Some(self.values[i][j])
    }

    /// Mean element-wise L2 distance to another matrix over shared shape.
    pub fn l2_diff(&self, other: &AssociationMatrix) -> f64 {
        assert_eq!(self.names, other.names, "matrices cover different columns");
        let mut sq = 0.0;
        let mut count = 0usize;
        for (ra, rb) in self.values.iter().zip(&other.values) {
            for (&a, &b) in ra.iter().zip(rb) {
                sq += (a - b).powi(2);
                count += 1;
            }
        }
        (sq / count as f64).sqrt()
    }
}

/// Compute the mixed-type association matrix of a table.
pub fn association_matrix(table: &Table) -> AssociationMatrix {
    let schema = table.schema();
    let names: Vec<String> = table.names().to_vec();
    let n = names.len();
    let mut values = vec![vec![0.0; n]; n];

    for i in 0..n {
        for j in 0..n {
            if i == j {
                values[i][j] = 1.0;
                continue;
            }
            let ki = schema.features()[i].kind;
            let kj = schema.features()[j].kind;
            values[i][j] = match (ki, kj) {
                (FeatureKind::Numerical, FeatureKind::Numerical) => {
                    let x = table.numerical(&names[i]).expect("numerical column");
                    let y = table.numerical(&names[j]).expect("numerical column");
                    pearson(x, y).abs()
                }
                (FeatureKind::Categorical, FeatureKind::Numerical) => {
                    let codes = table.codes(&names[i]).expect("categorical column");
                    let vals = table.numerical(&names[j]).expect("numerical column");
                    correlation_ratio(codes, vals)
                }
                (FeatureKind::Numerical, FeatureKind::Categorical) => {
                    let codes = table.codes(&names[j]).expect("categorical column");
                    let vals = table.numerical(&names[i]).expect("numerical column");
                    correlation_ratio(codes, vals)
                }
                (FeatureKind::Categorical, FeatureKind::Categorical) => {
                    let x = table.codes(&names[i]).expect("categorical column");
                    let y = table.codes(&names[j]).expect("categorical column");
                    theils_u(x, y)
                }
            };
        }
    }
    AssociationMatrix { names, values }
}

/// The paper's diff-CORR: mean L2 distance between real and synthetic
/// association matrices.
pub fn diff_corr(real: &Table, synthetic: &Table) -> f64 {
    let a = association_matrix(real);
    let b = association_matrix(
        &synthetic
            .select(&real.names().iter().map(String::as_str).collect::<Vec<_>>())
            .expect("synthetic table must contain the real table's columns"),
    );
    a.l2_diff(&b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tabular::Column;

    #[test]
    fn pearson_known_cases() {
        let x = vec![1.0, 2.0, 3.0, 4.0];
        let y: Vec<f64> = x.iter().map(|v| 2.0 * v + 1.0).collect();
        assert!((pearson(&x, &y) - 1.0).abs() < 1e-12);
        let neg: Vec<f64> = x.iter().map(|v| -v).collect();
        assert!((pearson(&x, &neg) + 1.0).abs() < 1e-12);
        let constant = vec![5.0; 4];
        assert_eq!(pearson(&x, &constant), 0.0);
    }

    #[test]
    fn correlation_ratio_extremes() {
        // Perfectly separated groups -> eta = 1.
        let codes = vec![0, 0, 1, 1];
        let values = vec![1.0, 1.0, 10.0, 10.0];
        assert!((correlation_ratio(&codes, &values) - 1.0).abs() < 1e-12);
        // Identical distribution in both groups -> eta = 0.
        let values_same = vec![1.0, 2.0, 1.0, 2.0];
        assert!(correlation_ratio(&codes, &values_same) < 1e-12);
    }

    #[test]
    fn theils_u_extremes() {
        // y fully determines x.
        let x = vec![0, 0, 1, 1, 2, 2];
        let y = vec![5, 5, 6, 6, 7, 7];
        assert!((theils_u(&x, &y) - 1.0).abs() < 1e-12);
        // Independent: y constant tells nothing about x.
        let y_const = vec![0; 6];
        assert!(theils_u(&x, &y_const) < 1e-12);
        // Constant x is trivially determined.
        assert!((theils_u(&y_const, &x) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn theils_u_is_asymmetric() {
        // x has 2 values, y has 4 values which refine x: knowing y determines
        // x, but knowing x leaves 1 bit of uncertainty about y.
        let x = vec![0, 0, 1, 1];
        let y = vec![0, 1, 2, 3];
        assert!((theils_u(&x, &y) - 1.0).abs() < 1e-12);
        assert!(theils_u(&y, &x) < 0.75);
    }

    fn mixed_table() -> Table {
        let mut t = Table::new();
        t.push_column(
            "site",
            Column::from_labels(&["A", "A", "B", "B", "A", "B", "A", "B"]),
        )
        .unwrap();
        t.push_column(
            "status",
            Column::from_labels(&["ok", "ok", "bad", "bad", "ok", "bad", "ok", "bad"]),
        )
        .unwrap();
        t.push_column(
            "workload",
            Column::Numerical(vec![1.0, 1.2, 8.0, 8.5, 0.9, 9.0, 1.1, 7.5]),
        )
        .unwrap();
        t.push_column(
            "noise",
            Column::Numerical(vec![0.3, -0.2, 0.1, 0.4, -0.5, 0.2, 0.0, -0.1]),
        )
        .unwrap();
        t
    }

    #[test]
    fn association_matrix_structure() {
        let t = mixed_table();
        let m = association_matrix(&t);
        assert_eq!(m.names.len(), 4);
        // Diagonal is 1.
        for i in 0..4 {
            assert_eq!(m.values[i][i], 1.0);
        }
        // site and status are perfectly associated.
        assert!(m.get("site", "status").unwrap() > 0.99);
        // site strongly explains workload.
        assert!(m.get("site", "workload").unwrap() > 0.9);
        // noise is unrelated to site.
        assert!(m.get("site", "noise").unwrap() < 0.6);
        // All entries in [0, 1].
        for row in &m.values {
            for &v in row {
                assert!((0.0..=1.0).contains(&v));
            }
        }
    }

    #[test]
    fn diff_corr_zero_for_identical_tables() {
        let t = mixed_table();
        assert!(diff_corr(&t, &t) < 1e-12);
    }

    #[test]
    fn diff_corr_detects_broken_correlations() {
        let t = mixed_table();
        // Shuffle workload so the site↔workload coupling is destroyed.
        let mut broken = t.clone();
        let workload = broken.column_mut("workload").unwrap();
        if let Column::Numerical(v) = workload {
            v.swap(0, 2);
            v.swap(1, 5);
            v.swap(4, 7);
        }
        assert!(diff_corr(&t, &broken) > 0.1);
    }
}
