//! Aggregated Table-I-style evaluation of a synthetic table.

use serde::{Deserialize, Serialize};
use tabular::Table;

use crate::correlation::diff_corr;
use crate::dcr::{distance_to_closest_record, DcrConfig};
use crate::error::MetricError;
use crate::jsd::mean_jsd;
use crate::mlef::{mlef_mse, MlefConfig};
use crate::wasserstein::mean_wasserstein;

/// Configuration of the full surrogate evaluation.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct EvaluationConfig {
    /// DCR options.
    pub dcr: DcrConfig,
    /// MLEF options. Set to `None` to skip the (slow) MLEF probe.
    pub mlef: Option<MlefConfig>,
}

impl EvaluationConfig {
    /// Full paper configuration (all five metrics, paper probe settings).
    pub fn paper() -> Self {
        Self {
            dcr: DcrConfig::default(),
            mlef: Some(MlefConfig::default()),
        }
    }

    /// Fast configuration for tests and examples.
    pub fn fast() -> Self {
        Self {
            dcr: DcrConfig {
                max_synthetic_rows: 500,
                max_train_rows: 2_000,
            },
            mlef: Some(MlefConfig::fast()),
        }
    }

    /// Distribution-only metrics (WD, JSD, diff-CORR, DCR) without MLEF.
    pub fn without_mlef() -> Self {
        Self {
            dcr: DcrConfig::default(),
            mlef: None,
        }
    }
}

/// One row of the paper's Table I for a single surrogate model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SurrogateReport {
    /// Model name (e.g. "TabDDPM").
    pub model: String,
    /// Mean normalised Wasserstein distance over numerical features (↓).
    pub wd: f64,
    /// Mean Jensen–Shannon divergence over categorical features (↓).
    pub jsd: f64,
    /// Mean L2 difference between association matrices (↓).
    pub diff_corr: f64,
    /// Mean distance to the closest training record (↑ = better privacy).
    pub dcr: f64,
    /// MLEF(synthetic) − MLEF(train); `None` when the probe was skipped (↓).
    pub diff_mlef: Option<f64>,
}

impl SurrogateReport {
    /// Header matching the paper's Table I column order.
    pub fn table_header() -> String {
        format!(
            "{:<12} {:>8} {:>8} {:>10} {:>8} {:>10}",
            "Model", "WD↓", "JSD↓", "diff-CORR↓", "DCR↑", "diff-MLEF↓"
        )
    }

    /// Render this report as one row of Table I.
    pub fn table_row(&self) -> String {
        let mlef = self
            .diff_mlef
            .map_or_else(|| "   n/a".to_string(), |v| format!("{v:10.3}"));
        format!(
            "{:<12} {:>8.3} {:>8.3} {:>10.3} {:>8.3} {}",
            self.model, self.wd, self.jsd, self.diff_corr, self.dcr, mlef
        )
    }

    /// Header matching [`SurrogateReport::csv_row`], for sweep artifacts and
    /// spreadsheet-style exports.
    pub fn csv_header() -> &'static str {
        "model,wd,jsd,diff_corr,dcr,diff_mlef"
    }

    /// Render this report as one comma-separated row (full precision; the
    /// MLEF column is empty when the probe was skipped).
    pub fn csv_row(&self) -> String {
        let mlef = self.diff_mlef.map_or_else(String::new, |v| v.to_string());
        format!(
            "{},{},{},{},{},{}",
            self.model, self.wd, self.jsd, self.diff_corr, self.dcr, mlef
        )
    }
}

/// Element-wise mean of several reports — e.g. one model's rows across the
/// seed axis of a sweep. Returns `None` for an empty slice. The `diff_mlef`
/// mean is taken over the rows that carried one, or `None` if none did.
pub fn mean_report(model: &str, reports: &[SurrogateReport]) -> Option<SurrogateReport> {
    if reports.is_empty() {
        return None;
    }
    let n = reports.len() as f64;
    let mlef: Vec<f64> = reports.iter().filter_map(|r| r.diff_mlef).collect();
    Some(SurrogateReport {
        model: model.to_string(),
        wd: reports.iter().map(|r| r.wd).sum::<f64>() / n,
        jsd: reports.iter().map(|r| r.jsd).sum::<f64>() / n,
        diff_corr: reports.iter().map(|r| r.diff_corr).sum::<f64>() / n,
        dcr: reports.iter().map(|r| r.dcr).sum::<f64>() / n,
        diff_mlef: if mlef.is_empty() {
            None
        } else {
            Some(mlef.iter().sum::<f64>() / mlef.len() as f64)
        },
    })
}

/// Evaluate a synthetic table against the real train/test split, producing
/// one Table-I row. A degenerate synthetic table (empty, or sharing no
/// columns with the reference) comes back as a typed [`MetricError`] instead
/// of a panic, so callers like the sweep runtime can confine the failure to
/// the cell that produced it.
pub fn evaluate_surrogate(
    model_name: &str,
    train: &Table,
    test: &Table,
    synthetic: &Table,
    config: &EvaluationConfig,
) -> Result<SurrogateReport, MetricError> {
    let wd = mean_wasserstein(train, synthetic)?;
    let jsd = mean_jsd(train, synthetic)?;
    let corr = diff_corr(train, synthetic);
    let dcr = distance_to_closest_record(train, synthetic, config.dcr);
    let diff_mlef = config.mlef.as_ref().map(|mlef_config| {
        let base = mlef_mse(train, test, mlef_config);
        let synth = mlef_mse(synthetic, test, mlef_config);
        synth - base
    });
    Ok(SurrogateReport {
        model: model_name.to_string(),
        wd,
        jsd,
        diff_corr: corr,
        dcr,
        diff_mlef,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use tabular::Column;

    fn toy(n: usize, seed: u64) -> Table {
        let mut rng = StdRng::seed_from_u64(seed);
        let sites = ["BNL", "CERN", "SLAC"];
        let mut labels = Vec::new();
        let mut workload = Vec::new();
        let mut nfiles = Vec::new();
        for _ in 0..n {
            let s = rng.gen_range(0..3);
            let f = rng.gen_range(1.0..50.0f64);
            labels.push(sites[s]);
            nfiles.push(f);
            workload.push((s as f64 + 1.0) * 10.0 * f * rng.gen_range(0.8..1.2));
        }
        let mut t = Table::new();
        t.push_column("computingsite", Column::from_labels(&labels))
            .unwrap();
        t.push_column("ninputdatafiles", Column::Numerical(nfiles))
            .unwrap();
        t.push_column("workload", Column::Numerical(workload))
            .unwrap();
        t
    }

    #[test]
    fn perfect_copy_scores_perfectly_except_privacy() {
        let train = toy(400, 1);
        let test = toy(150, 2);
        let report =
            evaluate_surrogate("copy", &train, &test, &train, &EvaluationConfig::fast()).unwrap();
        assert!(report.wd < 1e-9);
        assert!(report.jsd < 1e-9);
        assert!(report.diff_corr < 1e-9);
        assert!(report.dcr < 1e-9, "copying training rows has no privacy");
        assert!(report.diff_mlef.unwrap().abs() < 1e-9);
    }

    #[test]
    fn independent_resample_beats_noise_on_fidelity() {
        let train = toy(400, 3);
        let test = toy(150, 4);
        // A fresh draw from the same process (good surrogate).
        let fresh = toy(400, 5);
        // Pure noise: shuffle workload against the rest (bad surrogate).
        let mut noise = fresh.clone();
        if let Column::Numerical(v) = noise.column_mut("workload").unwrap() {
            v.reverse();
        }
        let cfg = EvaluationConfig::fast();
        let good = evaluate_surrogate("fresh", &train, &test, &fresh, &cfg).unwrap();
        let bad = evaluate_surrogate("noise", &train, &test, &noise, &cfg).unwrap();
        assert!(good.diff_corr < bad.diff_corr);
        assert!(good.diff_mlef.unwrap() < bad.diff_mlef.unwrap());
        // The fresh draw does not copy training rows.
        assert!(good.dcr > 1e-3);
    }

    #[test]
    fn report_rendering_contains_all_columns() {
        let header = SurrogateReport::table_header();
        assert!(header.contains("WD"));
        assert!(header.contains("diff-MLEF"));
        let report = SurrogateReport {
            model: "TVAE".to_string(),
            wd: 0.961,
            jsd: 0.806,
            diff_corr: 0.653,
            dcr: 0.143,
            diff_mlef: Some(5.875),
        };
        let row = report.table_row();
        assert!(row.contains("TVAE"));
        assert!(row.contains("0.961"));
        assert!(row.contains("5.875"));
        let no_mlef = SurrogateReport {
            diff_mlef: None,
            ..report
        };
        assert!(no_mlef.table_row().contains("n/a"));
    }

    #[test]
    fn csv_row_matches_header_shape_and_mean_aggregates() {
        let a = SurrogateReport {
            model: "TabDDPM".to_string(),
            wd: 0.2,
            jsd: 0.1,
            diff_corr: 0.4,
            dcr: 0.6,
            diff_mlef: Some(1.0),
        };
        let b = SurrogateReport {
            wd: 0.4,
            diff_mlef: None,
            ..a.clone()
        };
        let columns = SurrogateReport::csv_header().split(',').count();
        assert_eq!(a.csv_row().split(',').count(), columns);
        // The skipped MLEF probe leaves an empty trailing cell.
        assert!(b.csv_row().ends_with(','));
        assert_eq!(b.csv_row().split(',').count(), columns);

        let mean = mean_report("TabDDPM", &[a.clone(), b]).unwrap();
        assert!((mean.wd - 0.3).abs() < 1e-12);
        assert!((mean.jsd - 0.1).abs() < 1e-12);
        // Only one row carried an MLEF value; the mean is over that one.
        assert_eq!(mean.diff_mlef, Some(1.0));
        assert!(mean_report("empty", &[]).is_none());
    }

    #[test]
    fn without_mlef_skips_probe() {
        let train = toy(200, 6);
        let test = toy(80, 7);
        let report = evaluate_surrogate(
            "copy",
            &train,
            &test,
            &train,
            &EvaluationConfig::without_mlef(),
        )
        .unwrap();
        assert!(report.diff_mlef.is_none());
    }

    #[test]
    fn empty_synthetic_table_yields_typed_error() {
        let train = toy(100, 8);
        let test = toy(40, 9);
        let empty = Table::new();
        assert_eq!(
            evaluate_surrogate(
                "empty",
                &train,
                &test,
                &empty,
                &EvaluationConfig::without_mlef()
            ),
            Err(MetricError::NoSharedNumericalColumns)
        );
    }
}
