//! 1-D Wasserstein (earth mover's) distance between samples.

use tabular::Table;

use crate::error::MetricError;

/// Exact 1-D Wasserstein-1 distance between two empirical distributions.
///
/// Computed as the L1 distance between the two empirical quantile functions,
/// which for sorted samples reduces to an interleaved CDF sweep. Handles
/// samples of different sizes. Degenerate inputs (an empty sample, or one
/// with no finite values) come back as a typed [`MetricError`] instead of a
/// panic, so one bad synthetic table stays confined to its caller.
pub fn wasserstein_1d(a: &[f64], b: &[f64]) -> Result<f64, MetricError> {
    if a.is_empty() || b.is_empty() {
        return Err(MetricError::EmptySample);
    }
    let mut xs: Vec<f64> = a.iter().copied().filter(|v| v.is_finite()).collect();
    let mut ys: Vec<f64> = b.iter().copied().filter(|v| v.is_finite()).collect();
    if xs.is_empty() || ys.is_empty() {
        return Err(MetricError::NoFiniteSamples);
    }
    xs.sort_by(|p, q| p.partial_cmp(q).expect("finite"));
    ys.sort_by(|p, q| p.partial_cmp(q).expect("finite"));

    // Sweep over the merged support, integrating |F_a(t) - F_b(t)| dt.
    let mut distance = 0.0;
    let (mut i, mut j) = (0usize, 0usize);
    let (na, nb) = (xs.len() as f64, ys.len() as f64);
    let mut prev = xs[0].min(ys[0]);
    while i < xs.len() || j < ys.len() {
        let next = match (xs.get(i), ys.get(j)) {
            (Some(&x), Some(&y)) => x.min(y),
            (Some(&x), None) => x,
            (None, Some(&y)) => y,
            (None, None) => break,
        };
        let cdf_a = i as f64 / na;
        let cdf_b = j as f64 / nb;
        distance += (cdf_a - cdf_b).abs() * (next - prev);
        prev = next;
        while i < xs.len() && xs[i] <= next {
            i += 1;
        }
        while j < ys.len() && ys[j] <= next {
            j += 1;
        }
    }
    Ok(distance)
}

/// Wasserstein distance after min-max normalising both samples with the
/// range of the *reference* sample `a`, so distances are comparable across
/// features with wildly different scales (bytes vs. days). This is the value
/// aggregated into the paper's "WD" column.
pub fn wasserstein_1d_normalized(a: &[f64], b: &[f64]) -> Result<f64, MetricError> {
    let min = a
        .iter()
        .copied()
        .filter(|v| v.is_finite())
        .fold(f64::INFINITY, f64::min);
    let max = a
        .iter()
        .copied()
        .filter(|v| v.is_finite())
        .fold(f64::NEG_INFINITY, f64::max);
    let span = if (max - min).abs() < 1e-300 {
        1.0
    } else {
        max - min
    };
    let na: Vec<f64> = a.iter().map(|v| (v - min) / span).collect();
    let nb: Vec<f64> = b.iter().map(|v| (v - min) / span).collect();
    wasserstein_1d(&na, &nb)
}

/// Mean normalised Wasserstein distance across all shared numerical columns
/// of two tables.
pub fn mean_wasserstein(real: &Table, synthetic: &Table) -> Result<f64, MetricError> {
    let schema = real.schema();
    let numeric = schema.numerical_names();
    if numeric.is_empty() {
        return Err(MetricError::NoNumericalColumns);
    }
    let mut total = 0.0;
    let mut count = 0usize;
    for name in numeric {
        let (Ok(a), Ok(b)) = (real.numerical(name), synthetic.numerical(name)) else {
            continue;
        };
        total += wasserstein_1d_normalized(a, b)?;
        count += 1;
    }
    if count == 0 {
        return Err(MetricError::NoSharedNumericalColumns);
    }
    Ok(total / count as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tabular::Column;

    #[test]
    fn identical_samples_have_zero_distance() {
        let a = vec![1.0, 2.0, 3.0, 4.0];
        assert!(wasserstein_1d(&a, &a).unwrap() < 1e-12);
    }

    #[test]
    fn shifted_point_masses_have_distance_equal_to_shift() {
        let a = vec![0.0; 100];
        let b = vec![2.5; 100];
        assert!((wasserstein_1d(&a, &b).unwrap() - 2.5).abs() < 1e-9);
    }

    #[test]
    fn uniform_vs_shifted_uniform() {
        // U[0,1] vs U[1,2] has W1 = 1.
        let a: Vec<f64> = (0..1000).map(|i| i as f64 / 1000.0).collect();
        let b: Vec<f64> = a.iter().map(|v| v + 1.0).collect();
        assert!((wasserstein_1d(&a, &b).unwrap() - 1.0).abs() < 0.01);
    }

    #[test]
    fn distance_is_symmetric() {
        let a = vec![0.0, 1.0, 2.0, 5.0, 9.0];
        let b = vec![0.5, 1.5, 3.0, 3.5];
        let ab = wasserstein_1d(&a, &b).unwrap();
        let ba = wasserstein_1d(&b, &a).unwrap();
        assert!((ab - ba).abs() < 1e-9);
    }

    #[test]
    fn triangle_like_monotonicity() {
        // Moving b further away increases the distance.
        let a = vec![0.0, 1.0, 2.0];
        let near: Vec<f64> = a.iter().map(|v| v + 0.5).collect();
        let far: Vec<f64> = a.iter().map(|v| v + 5.0).collect();
        assert!(wasserstein_1d(&a, &far).unwrap() > wasserstein_1d(&a, &near).unwrap());
    }

    #[test]
    fn normalized_distance_is_scale_invariant() {
        let a = vec![0.0, 10.0, 20.0, 30.0];
        let b = vec![5.0, 15.0, 25.0, 35.0];
        let a_big: Vec<f64> = a.iter().map(|v| v * 1e9).collect();
        let b_big: Vec<f64> = b.iter().map(|v| v * 1e9).collect();
        let d_small = wasserstein_1d_normalized(&a, &b).unwrap();
        let d_big = wasserstein_1d_normalized(&a_big, &b_big).unwrap();
        assert!((d_small - d_big).abs() < 1e-9);
    }

    #[test]
    fn mean_wasserstein_over_table() {
        let mut real = Table::new();
        real.push_column("x", Column::Numerical(vec![0.0, 1.0, 2.0, 3.0]))
            .unwrap();
        real.push_column("y", Column::Numerical(vec![10.0, 11.0, 12.0, 13.0]))
            .unwrap();
        let synthetic = real.clone();
        assert!(mean_wasserstein(&real, &synthetic).unwrap() < 1e-12);

        let mut shifted = Table::new();
        shifted
            .push_column("x", Column::Numerical(vec![3.0, 4.0, 5.0, 6.0]))
            .unwrap();
        shifted
            .push_column("y", Column::Numerical(vec![10.0, 11.0, 12.0, 13.0]))
            .unwrap();
        assert!(mean_wasserstein(&real, &shifted).unwrap() > 0.1);
    }

    #[test]
    fn degenerate_inputs_yield_typed_errors() {
        assert_eq!(wasserstein_1d(&[], &[1.0]), Err(MetricError::EmptySample));
        assert_eq!(wasserstein_1d(&[1.0], &[]), Err(MetricError::EmptySample));
        assert_eq!(
            wasserstein_1d(&[f64::NAN], &[1.0]),
            Err(MetricError::NoFiniteSamples)
        );
    }

    #[test]
    fn disjoint_tables_yield_typed_errors() {
        let mut real = Table::new();
        real.push_column("x", Column::Numerical(vec![0.0, 1.0]))
            .unwrap();
        let mut synthetic = Table::new();
        synthetic
            .push_column("z", Column::Numerical(vec![0.0, 1.0]))
            .unwrap();
        assert_eq!(
            mean_wasserstein(&real, &synthetic),
            Err(MetricError::NoSharedNumericalColumns)
        );

        let mut labels_only = Table::new();
        labels_only
            .push_column("site", Column::from_labels(&["BNL", "CERN"]))
            .unwrap();
        assert_eq!(
            mean_wasserstein(&labels_only, &labels_only),
            Err(MetricError::NoNumericalColumns)
        );
    }
}
