//! Machine-learning efficacy (MLEF).
//!
//! A gradient-boosted regressor (the CatBoost substitute from the `gbdt`
//! crate) is trained to predict the natural log of the `workload` column from
//! all remaining features, once on the real training table and once on each
//! synthetic table, and every model is scored on the same real test table.
//! MLEF is the test MSE; the paper reports `diff-MLEF = MLEF_synthetic −
//! MLEF_train`, which is near zero when the synthetic data carry as much
//! signal about the workload as the real data.

use gbdt::{FeatureMatrix, Gbdt, GbdtConfig, TargetEncoder};
use serde::{Deserialize, Serialize};
use tabular::Table;

/// Configuration of the MLEF probe.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MlefConfig {
    /// Name of the numerical target column (the paper predicts `workload`).
    pub target: String,
    /// Natural-log-transform the target before regression (the paper does, to
    /// avoid scale-dependent instability).
    pub log_target: bool,
    /// Regressor hyper-parameters.
    pub gbdt: GbdtConfig,
    /// Smoothing pseudo-count for the categorical target encoding.
    pub target_encoding_prior_weight: f64,
}

impl Default for MlefConfig {
    fn default() -> Self {
        Self {
            target: "workload".to_string(),
            log_target: true,
            gbdt: GbdtConfig::paper_mlef(),
            target_encoding_prior_weight: 10.0,
        }
    }
}

impl MlefConfig {
    /// A configuration with a small, fast regressor for tests.
    pub fn fast() -> Self {
        Self {
            gbdt: GbdtConfig::fast(),
            ..Default::default()
        }
    }
}

fn transform_target(values: &[f64], log: bool) -> Vec<f64> {
    if log {
        values.iter().map(|v| v.max(1e-9).ln()).collect()
    } else {
        values.to_vec()
    }
}

/// Build the design matrix for a table: numerical columns pass through,
/// categorical columns are target-encoded using statistics fitted on the
/// *fitting* table (so train and test share the same encoding).
struct Design {
    numeric_names: Vec<String>,
    cat_names: Vec<String>,
    encoders: Vec<TargetEncoder>,
}

impl Design {
    fn fit(table: &Table, target: &str, targets: &[f64], prior_weight: f64) -> Self {
        let schema = table.schema();
        let numeric_names: Vec<String> = schema
            .numerical_names()
            .into_iter()
            .filter(|n| *n != target)
            .map(str::to_string)
            .collect();
        let cat_names: Vec<String> = schema
            .categorical_names()
            .into_iter()
            .map(str::to_string)
            .collect();
        let encoders = cat_names
            .iter()
            .map(|name| {
                let codes = table.codes(name).expect("categorical column");
                TargetEncoder::fit(codes, targets, prior_weight)
            })
            .collect();
        Self {
            numeric_names,
            cat_names,
            encoders,
        }
    }

    /// Encode a table (train or test) into a feature matrix. Categorical
    /// labels are matched by name against the fitting table's vocabulary via
    /// the label strings of `table` itself; codes outside the encoder's range
    /// fall back to the prior.
    fn encode(&self, table: &Table, reference: &Table) -> FeatureMatrix {
        let n = table.n_rows();
        let mut columns: Vec<Vec<f64>> = Vec::new();
        for name in &self.numeric_names {
            columns.push(table.numerical(name).expect("numeric column").to_vec());
        }
        for (name, encoder) in self.cat_names.iter().zip(&self.encoders) {
            // Remap this table's codes onto the reference vocabulary so the
            // encoder's statistics line up by label.
            let ref_vocab = reference.vocab(name).expect("categorical column");
            let codes: Vec<u32> = (0..n)
                .map(|r| {
                    let label = table.label(name, r).expect("valid code");
                    ref_vocab
                        .iter()
                        .position(|v| v == label)
                        .map_or(u32::MAX, |i| i as u32)
                })
                .collect();
            columns.push(encoder.encode(&codes));
        }
        let n_features = columns.len();
        let mut values = vec![0.0; n * n_features];
        for (f, col) in columns.iter().enumerate() {
            for (r, &v) in col.iter().enumerate() {
                values[r * n_features + f] = v;
            }
        }
        FeatureMatrix::new(n, n_features, values)
    }
}

/// Train the probe regressor on `fit_table` and return its MSE on
/// `test_table` (both must contain the target column).
pub fn mlef_mse(fit_table: &Table, test_table: &Table, config: &MlefConfig) -> f64 {
    let fit_target_raw = fit_table
        .numerical(&config.target)
        .expect("target column present in fit table");
    let test_target_raw = test_table
        .numerical(&config.target)
        .expect("target column present in test table");
    let fit_targets = transform_target(fit_target_raw, config.log_target);
    let test_targets = transform_target(test_target_raw, config.log_target);

    let design = Design::fit(
        fit_table,
        &config.target,
        &fit_targets,
        config.target_encoding_prior_weight,
    );
    let x_fit = design.encode(fit_table, fit_table);
    let x_test = design.encode(test_table, fit_table);

    let model = Gbdt::fit(&x_fit, &fit_targets, config.gbdt);
    let predictions = model.predict(&x_test);
    gbdt::mse(&predictions, &test_targets)
}

/// `diff-MLEF` of a synthetic table: MLEF(synthetic → test) − MLEF(train → test).
pub fn diff_mlef(train: &Table, test: &Table, synthetic: &Table, config: &MlefConfig) -> f64 {
    let base = mlef_mse(train, test, config);
    let synth = mlef_mse(synthetic, test, config);
    synth - base
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use tabular::Column;

    /// Synthetic mixed table where workload is a deterministic function of
    /// the other columns plus noise.
    fn toy_table(n: usize, seed: u64, shuffle_target: bool) -> Table {
        let mut rng = StdRng::seed_from_u64(seed);
        let sites = ["BNL", "CERN", "SLAC"];
        let mut site_labels = Vec::with_capacity(n);
        let mut nfiles = Vec::with_capacity(n);
        let mut workload = Vec::with_capacity(n);
        for _ in 0..n {
            let site = rng.gen_range(0..3);
            let files = rng.gen_range(1.0..100.0f64);
            let base = match site {
                0 => 50.0,
                1 => 20.0,
                _ => 5.0,
            };
            let w = base * files * rng.gen_range(0.9..1.1);
            site_labels.push(sites[site]);
            nfiles.push(files);
            workload.push(w);
        }
        if shuffle_target {
            // Destroy the relationship between features and target.
            for i in (1..n).rev() {
                let j = rng.gen_range(0..=i);
                workload.swap(i, j);
            }
        }
        let mut t = Table::new();
        t.push_column("computingsite", Column::from_labels(&site_labels))
            .unwrap();
        t.push_column("ninputdatafiles", Column::Numerical(nfiles))
            .unwrap();
        t.push_column("workload", Column::Numerical(workload))
            .unwrap();
        t
    }

    #[test]
    fn informative_features_give_low_mse() {
        let train = toy_table(600, 1, false);
        let test = toy_table(200, 2, false);
        let mse = mlef_mse(&train, &test, &MlefConfig::fast());
        // Target spans ~ln(5..5000); an informative model should be well
        // under the target variance.
        let targets: Vec<f64> = test
            .numerical("workload")
            .unwrap()
            .iter()
            .map(|v| v.ln())
            .collect();
        let mean = targets.iter().sum::<f64>() / targets.len() as f64;
        let var = targets.iter().map(|t| (t - mean).powi(2)).sum::<f64>() / targets.len() as f64;
        assert!(mse < var * 0.3, "mse {mse} vs var {var}");
    }

    #[test]
    fn shuffled_synthetic_data_has_positive_diff_mlef() {
        let train = toy_table(600, 3, false);
        let test = toy_table(200, 4, false);
        let garbage = toy_table(600, 5, true);
        let diff = diff_mlef(&train, &test, &garbage, &MlefConfig::fast());
        assert!(diff > 0.1, "diff = {diff}");
    }

    #[test]
    fn training_data_itself_has_zero_diff_mlef() {
        let train = toy_table(400, 6, false);
        let test = toy_table(150, 7, false);
        let diff = diff_mlef(&train, &test, &train, &MlefConfig::fast());
        assert!(diff.abs() < 1e-12);
    }

    #[test]
    fn log_transform_is_applied() {
        let train = toy_table(300, 8, false);
        let test = toy_table(100, 9, false);
        let with_log = mlef_mse(&train, &test, &MlefConfig::fast());
        let without_log = mlef_mse(
            &train,
            &test,
            &MlefConfig {
                log_target: false,
                ..MlefConfig::fast()
            },
        );
        // Raw workloads are in the hundreds-to-thousands range so the raw-MSE
        // is orders of magnitude larger than the log-MSE.
        assert!(without_log > with_log * 100.0);
    }
}
