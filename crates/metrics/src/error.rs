//! Typed errors for the metric kernels.
//!
//! The kernels used to `assert!` on degenerate inputs (empty samples, a
//! synthetic table sharing no columns with the reference), which turned one
//! bad synthetic table into a process-wide panic. Each degenerate input is
//! now a [`MetricError`] variant, so callers — the sweep runtime above all —
//! can confine the failure to the cell that produced it.

use std::fmt;

/// Why a metric could not be computed from the given inputs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricError {
    /// A sample slice was empty.
    EmptySample,
    /// A sample contained no finite values.
    NoFiniteSamples,
    /// The reference table has no numerical columns to compare.
    NoNumericalColumns,
    /// The synthetic table shares no numerical columns with the reference.
    NoSharedNumericalColumns,
    /// The reference table has no categorical columns to compare.
    NoCategoricalColumns,
    /// The synthetic table shares no categorical columns with the reference.
    NoSharedCategoricalColumns,
}

impl fmt::Display for MetricError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MetricError::EmptySample => write!(f, "empty sample"),
            MetricError::NoFiniteSamples => write!(f, "no finite samples"),
            MetricError::NoNumericalColumns => {
                write!(f, "no numerical columns to compare")
            }
            MetricError::NoSharedNumericalColumns => {
                write!(f, "synthetic table shares no numerical columns")
            }
            MetricError::NoCategoricalColumns => {
                write!(f, "no categorical columns to compare")
            }
            MetricError::NoSharedCategoricalColumns => {
                write!(f, "synthetic table shares no categorical columns")
            }
        }
    }
}

impl std::error::Error for MetricError {}
