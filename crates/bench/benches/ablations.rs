//! Criterion bench: ablations over the design choices called out in
//! DESIGN.md §5 — TabDDPM timestep count and SMOTE neighbourhood size.
//!
//! These measure fit+sample cost; the corresponding quality trade-offs are
//! exercised by the integration test `tests/ablations.rs` at the workspace
//! root.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pandasim::{records_to_table, FilterFunnel, GeneratorConfig, WorkloadGenerator};
use surrogate::{SmoteConfig, SmoteSampler, TabDdpm, TabDdpmConfig, TabularGenerator};
use tabular::Table;

fn training_table(rows: usize) -> Table {
    let gross = WorkloadGenerator::new(GeneratorConfig {
        gross_records: rows * 3,
        ..GeneratorConfig::default()
    })
    .generate();
    let funnel = FilterFunnel::apply(&gross);
    let table = records_to_table(&funnel.records);
    let keep: Vec<usize> = (0..rows.min(table.n_rows())).collect();
    table.take(&keep)
}

fn bench_tabddpm_timesteps(c: &mut Criterion) {
    let train = training_table(1_500);
    let mut group = c.benchmark_group("ablation_tabddpm_timesteps");
    group.sample_size(10);
    for &timesteps in &[10usize, 25, 50] {
        group.bench_with_input(
            BenchmarkId::new("fit_and_sample", timesteps),
            &timesteps,
            |b, &timesteps| {
                b.iter(|| {
                    let mut model = TabDdpm::new(TabDdpmConfig {
                        timesteps,
                        epochs: 5,
                        ..TabDdpmConfig::fast()
                    });
                    model.fit(&train).unwrap();
                    model.sample(500, 1).unwrap()
                })
            },
        );
    }
    group.finish();
}

fn bench_smote_k(c: &mut Criterion) {
    let train = training_table(1_500);
    let mut group = c.benchmark_group("ablation_smote_k");
    group.sample_size(10);
    for &k in &[1usize, 5, 15] {
        group.bench_with_input(BenchmarkId::new("fit_and_sample", k), &k, |b, &k| {
            b.iter(|| {
                let mut model = SmoteSampler::new(SmoteConfig {
                    k_neighbors: k,
                    ..SmoteConfig::default()
                });
                model.fit(&train).unwrap();
                model.sample(500, 1).unwrap()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_tabddpm_timesteps, bench_smote_k);
criterion_main!(benches);
