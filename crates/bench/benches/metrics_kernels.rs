//! Criterion bench: the evaluation-metric kernels used by Table I and
//! Figs. 4–5 (Wasserstein distance, JSD, association matrix, DCR).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use metrics::{
    association_matrix, distance_to_closest_record, mean_jsd, mean_wasserstein, DcrConfig,
};
use pandasim::{records_to_table, FilterFunnel, GeneratorConfig, WorkloadGenerator};
use tabular::Table;

fn tables(rows: usize) -> (Table, Table) {
    let gross = WorkloadGenerator::new(GeneratorConfig {
        gross_records: rows * 3,
        ..GeneratorConfig::default()
    })
    .generate();
    let funnel = FilterFunnel::apply(&gross);
    let table = records_to_table(&funnel.records);
    let n = rows.min(table.n_rows() / 2);
    let real: Vec<usize> = (0..n).collect();
    let synth: Vec<usize> = (n..2 * n).collect();
    (table.take(&real), table.take(&synth))
}

fn bench_distribution_metrics(c: &mut Criterion) {
    let (real, synthetic) = tables(5_000);
    let mut group = c.benchmark_group("metric_kernels_5k_rows");
    group.sample_size(10);
    group.bench_function("mean_wasserstein", |b| {
        b.iter(|| mean_wasserstein(&real, &synthetic).unwrap())
    });
    group.bench_function("mean_jsd", |b| {
        b.iter(|| mean_jsd(&real, &synthetic).unwrap())
    });
    group.bench_function("association_matrix", |b| {
        b.iter(|| association_matrix(&real))
    });
    group.finish();
}

fn bench_dcr_scaling(c: &mut Criterion) {
    let (real, synthetic) = tables(5_000);
    let mut group = c.benchmark_group("dcr_scaling");
    group.sample_size(10);
    for &cap in &[200usize, 500, 1_000] {
        group.bench_with_input(BenchmarkId::new("synthetic_rows", cap), &cap, |b, &cap| {
            let config = DcrConfig {
                max_synthetic_rows: cap,
                max_train_rows: 5_000,
            };
            b.iter(|| distance_to_closest_record(&real, &synthetic, config))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_distribution_metrics, bench_dcr_scaling);
criterion_main!(benches);
