//! Criterion bench: the gradient-boosted-regressor probe used by the
//! machine-learning-efficacy (diff-MLEF) column of Table I.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use metrics::{mlef_mse, MlefConfig};
use pandasim::{records_to_table, FilterFunnel, GeneratorConfig, WorkloadGenerator};
use tabular::{train_test_split, SplitOptions};

fn bench_mlef_probe(c: &mut Criterion) {
    let gross = WorkloadGenerator::new(GeneratorConfig {
        gross_records: 12_000,
        ..GeneratorConfig::default()
    })
    .generate();
    let funnel = FilterFunnel::apply(&gross);
    let table = records_to_table(&funnel.records);
    let (train, test) = train_test_split(&table, SplitOptions::default()).unwrap();

    let mut group = c.benchmark_group("mlef_probe");
    group.sample_size(10);
    for &iterations in &[20usize, 60] {
        group.bench_with_input(
            BenchmarkId::new("gbdt_iterations", iterations),
            &iterations,
            |b, &iterations| {
                let mut config = MlefConfig::fast();
                config.gbdt.n_iterations = iterations;
                b.iter(|| mlef_mse(&train, &test, &config))
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_mlef_probe);
criterion_main!(benches);
