//! Criterion benches for the `nn` training hot path: matmul kernel shapes,
//! the transpose-free backward products, single-layer forward/backward, and
//! per-model epoch times. The `perf_report` binary measures the same
//! kernels against the frozen pre-PR baselines and emits `BENCH_nn.json`;
//! this bench exists for quick interactive `cargo bench` comparisons.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use nn::matrix::reference;
use nn::{Activation, Layer, LinearLayer, Matrix};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use surrogate::{
    CtabGan, CtabGanConfig, TabDdpm, TabDdpmConfig, TabularGenerator, Tvae, TvaeConfig,
};
use tabular::{Column, Table};

fn bench_matmul(c: &mut Criterion) {
    let mut group = c.benchmark_group("matmul");
    group.sample_size(30);
    let mut rng = StdRng::seed_from_u64(1);
    for &(m, k, n) in &[
        (64usize, 64usize, 64usize),
        (128, 128, 128),
        (97, 61, 113),
        (256, 64, 256),
    ] {
        let a = Matrix::randn(m, k, 1.0, &mut rng);
        let b = Matrix::randn(k, n, 1.0, &mut rng);
        group.bench_with_input(
            BenchmarkId::new("blocked", format!("{m}x{k}x{n}")),
            &(&a, &b),
            |bench, (a, b)| bench.iter(|| black_box(a.matmul(b))),
        );
        group.bench_with_input(
            BenchmarkId::new("reference", format!("{m}x{k}x{n}")),
            &(&a, &b),
            |bench, (a, b)| bench.iter(|| black_box(reference::matmul(a, b))),
        );
    }
    group.finish();
}

/// Large shapes where the packed, cache-blocked driver engages (`B` operand
/// overflows the L1-resident tile): a square 512³ and a tall-skinny
/// 4096×64×256, each against the frozen PR 2 register-tiled kernel so the
/// packing/SIMD win stays visible.
fn bench_matmul_large(c: &mut Criterion) {
    let mut group = c.benchmark_group("matmul_large");
    group.sample_size(10);
    let mut rng = StdRng::seed_from_u64(5);
    for &(m, k, n) in &[(512usize, 512usize, 512usize), (4096, 64, 256)] {
        let a = Matrix::randn(m, k, 1.0, &mut rng);
        let b = Matrix::randn(k, n, 1.0, &mut rng);
        group.bench_with_input(
            BenchmarkId::new("packed", format!("{m}x{k}x{n}")),
            &(&a, &b),
            |bench, (a, b)| bench.iter(|| black_box(a.matmul(b))),
        );
        group.bench_with_input(
            BenchmarkId::new("pr2_tiled", format!("{m}x{k}x{n}")),
            &(&a, &b),
            |bench, (a, b)| bench.iter(|| black_box(reference::tiled_matmul(a, b))),
        );
    }
    group.finish();
}

fn bench_backward_products(c: &mut Criterion) {
    let mut group = c.benchmark_group("backward_products");
    group.sample_size(30);
    let mut rng = StdRng::seed_from_u64(2);
    let input = Matrix::randn(256, 128, 1.0, &mut rng);
    let grad = Matrix::randn(256, 64, 1.0, &mut rng);
    let weights = Matrix::randn(128, 64, 1.0, &mut rng);
    group.bench_function("at_b/direct", |b| {
        b.iter(|| black_box(input.matmul_at_b(&grad)))
    });
    group.bench_function("at_b/transpose_then_matmul", |b| {
        b.iter(|| black_box(reference::matmul(&reference::transpose(&input), &grad)))
    });
    group.bench_function("a_bt/direct", |b| {
        b.iter(|| black_box(grad.matmul_a_bt(&weights)))
    });
    group.bench_function("a_bt/transpose_then_matmul", |b| {
        b.iter(|| black_box(reference::matmul(&grad, &reference::transpose(&weights))))
    });
    group.finish();
}

fn bench_layer(c: &mut Criterion) {
    let mut group = c.benchmark_group("linear_layer");
    group.sample_size(50);
    let mut rng = StdRng::seed_from_u64(3);
    let mut layer = LinearLayer::new(128, 64, Activation::Relu, &mut rng);
    let x = Matrix::randn(256, 128, 1.0, &mut rng);
    group.bench_function("forward", |b| b.iter(|| black_box(layer.forward(&x))));
    let out = layer.forward(&x);
    group.bench_function("backward", |b| b.iter(|| black_box(layer.backward(&out))));
    group.bench_function("infer", |b| b.iter(|| black_box(layer.infer(&x))));
    group.finish();
}

/// Mixed-type training table shared by the epoch benches.
fn bench_table(n: usize, seed: u64) -> Table {
    let mut rng = StdRng::seed_from_u64(seed);
    let sites = ["BNL", "CERN", "SLAC", "IN2P3", "KIT", "TRIUMF"];
    let mut cpu = Vec::with_capacity(n);
    let mut ram = Vec::with_capacity(n);
    let mut walltime = Vec::with_capacity(n);
    let mut site = Vec::with_capacity(n);
    for _ in 0..n {
        cpu.push(rng.gen_range(1.0..64.0));
        ram.push(rng.gen_range(0.5..16.0));
        walltime.push(rng.gen_range(60.0..86_400.0));
        site.push(sites[rng.gen_range(0..sites.len())]);
    }
    let mut t = Table::new();
    t.push_column("cpu", Column::Numerical(cpu)).unwrap();
    t.push_column("ram", Column::Numerical(ram)).unwrap();
    t.push_column("walltime", Column::Numerical(walltime))
        .unwrap();
    t.push_column("site", Column::from_labels(&site)).unwrap();
    t
}

fn bench_model_epochs(c: &mut Criterion) {
    let mut group = c.benchmark_group("model_epochs");
    group.sample_size(3);
    let train = bench_table(1024, 7);

    group.bench_function("tabddpm_fast_3ep", |b| {
        b.iter(|| {
            let mut model = TabDdpm::new(TabDdpmConfig {
                epochs: 3,
                ..TabDdpmConfig::fast()
            });
            model.fit(&train).unwrap();
            black_box(model.loss_history.len())
        })
    });
    group.bench_function("ctabgan_fast_3ep", |b| {
        b.iter(|| {
            let mut model = CtabGan::new(CtabGanConfig {
                epochs: 3,
                ..CtabGanConfig::fast()
            });
            model.fit(&train).unwrap();
            black_box(model.loss_history.len())
        })
    });
    group.bench_function("tvae_fast_3ep", |b| {
        b.iter(|| {
            let mut model = Tvae::new(TvaeConfig {
                epochs: 3,
                ..TvaeConfig::fast()
            });
            model.fit(&train).unwrap();
            black_box(model.loss_history.len())
        })
    });
    group.finish();
}

criterion_group!(
    nn_kernels,
    bench_matmul,
    bench_matmul_large,
    bench_backward_products,
    bench_layer,
    bench_model_epochs
);
criterion_main!(nn_kernels);
