//! Criterion bench: event throughput of the downstream HTC-grid simulator
//! (experiment E6) across brokerage policies.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use htcsim::{BrokerPolicy, GridSimulator, SimConfig, SimJob};
use pandasim::{FilterFunnel, GeneratorConfig, WorkloadGenerator};

fn bench_simulation(c: &mut Criterion) {
    let generator = WorkloadGenerator::new(GeneratorConfig {
        gross_records: 20_000,
        ..GeneratorConfig::default()
    });
    let gross = generator.generate();
    let funnel = FilterFunnel::apply(&gross);
    let jobs: Vec<SimJob> = funnel.records.iter().map(SimJob::from_record).collect();

    let mut group = c.benchmark_group("htcsim_run");
    group.sample_size(10);
    for policy in BrokerPolicy::ALL {
        group.bench_with_input(
            BenchmarkId::new("policy", policy.name()),
            &policy,
            |b, &policy| {
                b.iter(|| {
                    let mut simulator = GridSimulator::new(
                        generator.sites(),
                        SimConfig {
                            policy,
                            ..SimConfig::default()
                        },
                    );
                    simulator.run(&jobs)
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_simulation);
criterion_main!(benches);
