//! Criterion bench: surrogate model training steps and sampling throughput
//! (supports experiments E2–E5, which all fit and sample the four models).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pandasim::{records_to_table, FilterFunnel, GeneratorConfig, WorkloadGenerator};
use surrogate::{
    CtabGan, CtabGanConfig, SmoteConfig, SmoteSampler, TabDdpm, TabDdpmConfig, TabularGenerator,
    Tvae, TvaeConfig,
};
use tabular::Table;

fn training_table(rows: usize) -> Table {
    let gross = WorkloadGenerator::new(GeneratorConfig {
        gross_records: rows * 3,
        ..GeneratorConfig::default()
    })
    .generate();
    let funnel = FilterFunnel::apply(&gross);
    let table = records_to_table(&funnel.records);
    let keep: Vec<usize> = (0..rows.min(table.n_rows())).collect();
    table.take(&keep)
}

fn bench_fit(c: &mut Criterion) {
    let train = training_table(2_000);
    let mut group = c.benchmark_group("surrogate_fit_2k_rows");
    group.sample_size(10);
    group.bench_function("smote", |b| {
        b.iter(|| {
            let mut model = SmoteSampler::new(SmoteConfig::default());
            model.fit(&train).unwrap();
        })
    });
    group.bench_function("tvae_fast", |b| {
        b.iter(|| {
            let mut model = Tvae::new(TvaeConfig {
                epochs: 5,
                ..TvaeConfig::fast()
            });
            model.fit(&train).unwrap();
        })
    });
    group.bench_function("ctabgan_fast", |b| {
        b.iter(|| {
            let mut model = CtabGan::new(CtabGanConfig {
                epochs: 5,
                ..CtabGanConfig::fast()
            });
            model.fit(&train).unwrap();
        })
    });
    group.bench_function("tabddpm_fast", |b| {
        b.iter(|| {
            let mut model = TabDdpm::new(TabDdpmConfig {
                epochs: 5,
                ..TabDdpmConfig::fast()
            });
            model.fit(&train).unwrap();
        })
    });
    group.finish();
}

fn bench_sample(c: &mut Criterion) {
    let train = training_table(2_000);
    let mut smote = SmoteSampler::new(SmoteConfig::default());
    smote.fit(&train).unwrap();
    let mut ddpm = TabDdpm::new(TabDdpmConfig {
        epochs: 5,
        ..TabDdpmConfig::fast()
    });
    ddpm.fit(&train).unwrap();
    let mut tvae = Tvae::new(TvaeConfig {
        epochs: 5,
        ..TvaeConfig::fast()
    });
    tvae.fit(&train).unwrap();

    let mut group = c.benchmark_group("surrogate_sample");
    group.sample_size(10);
    for &n in &[500usize, 2_000] {
        group.bench_with_input(BenchmarkId::new("smote", n), &n, |b, &n| {
            b.iter(|| smote.sample(n, 1).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("tvae", n), &n, |b, &n| {
            b.iter(|| tvae.sample(n, 1).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("tabddpm", n), &n, |b, &n| {
            b.iter(|| ddpm.sample(n, 1).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fit, bench_sample);
criterion_main!(benches);
