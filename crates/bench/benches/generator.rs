//! Criterion bench: synthetic PanDA workload generation and filtering
//! throughput (supports experiment E1 and all downstream experiments).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pandasim::{records_to_table, FilterFunnel, GeneratorConfig, WorkloadGenerator};

fn bench_generator(c: &mut Criterion) {
    let mut group = c.benchmark_group("pandasim_generator");
    group.sample_size(10);
    for &rows in &[2_000usize, 10_000, 40_000] {
        group.bench_with_input(BenchmarkId::new("generate", rows), &rows, |b, &rows| {
            let config = GeneratorConfig {
                gross_records: rows,
                ..GeneratorConfig::default()
            };
            b.iter(|| WorkloadGenerator::new(config.clone()).generate());
        });
    }
    group.finish();
}

fn bench_funnel_and_convert(c: &mut Criterion) {
    let gross = WorkloadGenerator::new(GeneratorConfig {
        gross_records: 20_000,
        ..GeneratorConfig::default()
    })
    .generate();
    let mut group = c.benchmark_group("pandasim_pipeline");
    group.sample_size(10);
    group.bench_function("filter_funnel_20k", |b| {
        b.iter(|| FilterFunnel::apply(&gross))
    });
    let funnel = FilterFunnel::apply(&gross);
    group.bench_function("records_to_table", |b| {
        b.iter(|| records_to_table(&funnel.records))
    });
    group.finish();
}

criterion_group!(benches, bench_generator, bench_funnel_and_convert);
criterion_main!(benches);
