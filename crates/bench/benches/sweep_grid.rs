//! Criterion bench: scenario-sweep grid expansion and a miniature
//! end-to-end sweep (2 cells, smoke budget) so the sweep runtime's
//! orchestration overhead is tracked alongside the model benches.

use criterion::{criterion_group, criterion_main, Criterion};
use metrics::{DcrConfig, EvaluationConfig};
use pandasim::GeneratorConfig;
use surrogate::sweep::{run_sweep, NamedGeneratorConfig, SweepGrid, SweepOptions};
use surrogate::{ModelKind, TrainingBudget};

fn bench_grid_expansion(c: &mut Criterion) {
    let mut group = c.benchmark_group("sweep_grid");
    // A deliberately large grid: 64 seeds x 3 budgets x 5 presets x 4
    // models = 3840 cells, so per-cell expansion cost stays visible.
    let grid = SweepGrid {
        seeds: (0..64).collect(),
        budgets: TrainingBudget::ALL.to_vec(),
        generators: GeneratorConfig::PRESET_NAMES
            .iter()
            .map(|name| NamedGeneratorConfig::preset(name).unwrap())
            .collect(),
        models: ModelKind::ALL.to_vec(),
    };
    group.bench_function("expand_3840_cells", |b| b.iter(|| grid.expand()));
    group.finish();
}

fn bench_tiny_sweep(c: &mut Criterion) {
    let mut group = c.benchmark_group("sweep_run");
    group.sample_size(10);
    let grid = SweepGrid {
        seeds: vec![7],
        budgets: vec![TrainingBudget::Smoke],
        generators: vec![{
            let mut g = NamedGeneratorConfig::preset("small").unwrap();
            g.config.gross_records = 1_500;
            g
        }],
        models: vec![ModelKind::Smote, ModelKind::TabDdpm],
    };
    let options = SweepOptions {
        evaluation: EvaluationConfig {
            dcr: DcrConfig {
                max_synthetic_rows: 200,
                max_train_rows: 500,
            },
            mlef: None,
        },
        ..SweepOptions::default()
    };
    group.bench_function("two_cell_smoke_sweep", |b| {
        b.iter(|| run_sweep(&grid, &options))
    });
    group.finish();
}

criterion_group!(benches, bench_grid_expansion, bench_tiny_sweep);
criterion_main!(benches);
