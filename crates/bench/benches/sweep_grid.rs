//! Criterion bench: scenario-sweep grid expansion, the durability layer's
//! fingerprint/artifact costs, and a miniature end-to-end sweep (2 cells,
//! smoke budget) so the sweep runtime's orchestration overhead is tracked
//! alongside the model benches.

use criterion::{criterion_group, criterion_main, Criterion};
use metrics::{DcrConfig, EvaluationConfig};
use pandasim::GeneratorConfig;
use surrogate::sweep::{
    grid_fingerprint, run_sweep, run_sweep_resumable_with, NamedGeneratorConfig, SweepGrid,
    SweepOptions, SweepReport,
};
use surrogate::{ModelKind, TrainingBudget};

fn bench_grid_expansion(c: &mut Criterion) {
    let mut group = c.benchmark_group("sweep_grid");
    // A deliberately large grid: 64 seeds x 3 budgets x 5 presets x 4
    // models = 3840 cells, so per-cell expansion cost stays visible.
    let grid = SweepGrid {
        seeds: (0..64).collect(),
        budgets: TrainingBudget::ALL.to_vec(),
        generators: GeneratorConfig::PRESET_NAMES
            .iter()
            .map(|name| NamedGeneratorConfig::preset(name).unwrap())
            .collect(),
        models: ModelKind::ALL.to_vec(),
    };
    group.bench_function("expand_3840_cells", |b| b.iter(|| grid.expand()));
    // The durability header costs paid once per run / resume validation.
    let options = SweepOptions::default();
    group.bench_function("fingerprint_3840_cell_grid", |b| {
        b.iter(|| grid_fingerprint(&grid, &options))
    });
    group.finish();
}

/// Render + typed parse of a full-grid artifact: the per-resume overhead of
/// reading a prior `SweepReport` back through the shim `Deserialize` path.
fn bench_artifact_round_trip(c: &mut Criterion) {
    let mut group = c.benchmark_group("sweep_artifact");
    // A 512-row artifact (128 seeds x 4 models) built without fitting:
    // every cell resumes from itself, so the fitter never runs.
    let grid = SweepGrid {
        seeds: (0..128).collect(),
        budgets: vec![TrainingBudget::Smoke],
        generators: vec![NamedGeneratorConfig::preset("small").unwrap()],
        models: ModelKind::ALL.to_vec(),
    };
    let options = SweepOptions::default();
    // A synthetic prior covering every cell, so the resume bench below
    // measures pure validation + stitching (the fitter never runs).
    let cells: Vec<surrogate::sweep::SweepCellRow> = grid
        .expand()
        .iter()
        .map(|cell| surrogate::sweep::SweepCellRow {
            index: cell.index,
            id: cell.id(),
            seed: cell.seed,
            budget: cell.budget.name().to_string(),
            generator: cell.generator.name.clone(),
            model: cell.model.name().to_string(),
            ok: true,
            error: None,
            error_kind: None,
            attempts: 1,
            train_rows: Some(1_000),
            synthetic_rows: Some(1_000),
            wall_ms: 1.0,
            wd: Some(0.1),
            jsd: Some(0.2),
            diff_corr: Some(0.3),
            dcr: Some(0.4),
            diff_mlef: None,
        })
        .collect();
    let report = SweepReport {
        schema_version: surrogate::sweep::SCHEMA_VERSION,
        generated_by: surrogate::sweep::GENERATED_BY.to_string(),
        grid_fingerprint: grid_fingerprint(&grid, &options),
        grid_cells: grid.len(),
        shard: None,
        total_cells: cells.len(),
        failed_cells: 0,
        wall_ms: 0.0,
        cells,
    };
    let json = serde_json::to_string_pretty(&report).unwrap();
    group.bench_function("render_512_rows", |b| {
        b.iter(|| serde_json::to_string_pretty(&report).unwrap())
    });
    group.bench_function("typed_parse_512_rows", |b| {
        b.iter(|| serde_json::from_str::<SweepReport>(&json).unwrap())
    });
    group.bench_function("resume_noop_512_cells", |b| {
        b.iter(|| {
            run_sweep_resumable_with(
                &grid,
                &options,
                None,
                Some(&report),
                |_, train, _: &surrogate::FitContext| Ok(train.clone()),
            )
            .unwrap()
        })
    });
    group.finish();
}

fn bench_tiny_sweep(c: &mut Criterion) {
    let mut group = c.benchmark_group("sweep_run");
    group.sample_size(10);
    let grid = SweepGrid {
        seeds: vec![7],
        budgets: vec![TrainingBudget::Smoke],
        generators: vec![{
            let mut g = NamedGeneratorConfig::preset("small").unwrap();
            g.config.gross_records = 1_500;
            g
        }],
        models: vec![ModelKind::Smote, ModelKind::TabDdpm],
    };
    let options = SweepOptions {
        evaluation: EvaluationConfig {
            dcr: DcrConfig {
                max_synthetic_rows: 200,
                max_train_rows: 500,
            },
            mlef: None,
        },
        ..SweepOptions::default()
    };
    group.bench_function("two_cell_smoke_sweep", |b| {
        b.iter(|| run_sweep(&grid, &options))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_grid_expansion,
    bench_artifact_round_trip,
    bench_tiny_sweep
);
criterion_main!(benches);
