//! Criterion bench: the event-queue tentpole in isolation — calendar queue
//! vs the seed binary heap on synthetic event streams, plus full arena
//! simulation runs under both schedulers (the pair the `htcsim_throughput`
//! entries of `BENCH_nn.json` gate in CI).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use htcsim::{
    CalendarQueue, EventKind, EventScheduler, GridSimulator, HeapQueue, JobArena, SimConfig,
};
use pandasim::SiteCatalog;

/// Classic "hold" benchmark for DES priority queues: prime the queue with
/// `n` events, then run pop→push transitions where each push lands at the
/// popped time plus a service increment — a discrete-event steady state, in
/// which (like the simulator) nothing is ever scheduled behind the clock.
/// Increments mix WAN-latency transfer completions, job runtimes and
/// far-future stragglers.
fn hold<Q: EventScheduler>(n: usize, transitions: usize) -> f64 {
    let mut queue = Q::default();
    let mut state = 0x9e3779b97f4a7c15u64;
    let mut next = || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        ((state >> 11) as f64 / (1u64 << 53) as f64, state)
    };
    for i in 0..n {
        let (unit, _) = next();
        queue.push(unit * 168.0, EventKind::JobArrival { job: i as u32 });
    }
    let mut last = 0.0;
    for i in 0..transitions {
        let event = queue.pop().expect("primed queue never drains");
        last = event.time;
        let (unit, s) = next();
        let delta = match s % 8 {
            0 => unit * 0.1,      // transfer completions
            1..=5 => unit * 12.0, // job runtimes
            _ => unit * 400.0,    // stragglers / future arrivals
        };
        queue.push(
            event.time + delta,
            EventKind::JobFinish {
                job: i as u32,
                site: 0,
            },
        );
    }
    last
}

fn bench_queues(c: &mut Criterion) {
    let (n, transitions) = (50_000, 500_000);
    let mut group = c.benchmark_group("htcsim_event_queue");
    group.sample_size(10);
    group.bench_with_input(
        BenchmarkId::new("calendar", transitions),
        &transitions,
        |b, &t| b.iter(|| hold::<CalendarQueue>(n, t)),
    );
    group.bench_with_input(
        BenchmarkId::new("heap", transitions),
        &transitions,
        |b, &t| b.iter(|| hold::<HeapQueue>(n, t)),
    );
    group.finish();
}

/// Synthetic planetary-scale workload pushed straight into the arena (no
/// string tables in the loop).
fn synthetic_arena(n_jobs: usize, n_sites: usize) -> (SiteCatalog, JobArena) {
    let catalog = SiteCatalog::atlas_like(n_sites);
    let site_names: Vec<String> = catalog.sites().iter().map(|s| s.name.clone()).collect();
    let mut arena = JobArena::with_capacity(n_jobs);
    let mut state = 0x2545f4914f6cdd1du64;
    for i in 0..n_jobs {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let unit = (state >> 11) as f64 / (1u64 << 53) as f64;
        let dataset = format!("ds{}", state % 512);
        let origin = &site_names[(state % site_names.len() as u64) as usize];
        arena.push(
            unit * (n_jobs as f64 / 150.0),
            if i % 7 == 0 { 8 } else { 4 },
            0.5 + unit * 6.0,
            &dataset,
            (state % 1_000) as f64 * 1e9,
            Some(origin),
        );
    }
    (catalog, arena)
}

fn bench_sim(c: &mut Criterion) {
    let (catalog, arena) = synthetic_arena(50_000, 40);
    let mut group = c.benchmark_group("htcsim_sim_run");
    group.sample_size(10);
    group.bench_function("calendar", |b| {
        b.iter(|| {
            let mut simulator = GridSimulator::new(&catalog, SimConfig::default());
            simulator.run_arena_with::<CalendarQueue>(&arena)
        })
    });
    group.bench_function("heap", |b| {
        b.iter(|| {
            let mut simulator = GridSimulator::new(&catalog, SimConfig::default());
            simulator.run_arena_with::<HeapQueue>(&arena)
        })
    });
    group.finish();
}

criterion_group!(benches, bench_queues, bench_sim);
criterion_main!(benches);
