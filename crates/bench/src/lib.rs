//! Shared plumbing for the experiment binaries and Criterion benches.
//!
//! Every binary in `src/bin/` regenerates one table or figure of the paper's
//! evaluation section (see DESIGN.md §3 for the index). They all share the
//! same dataset-preparation path so that Table I, Fig. 4 and Fig. 5 are
//! computed over exactly the same train/test split and the same fitted
//! models.

use pandasim::{records_to_table, FilterFunnel, GeneratorConfig, WorkloadGenerator};
use surrogate::{fit_and_sample, ModelKind, TrainingBudget};
use tabular::{train_test_split, SplitOptions, Table};

/// Command-line options shared by the experiment binaries.
#[derive(Debug, Clone)]
pub struct ExperimentOptions {
    /// Number of gross PanDA records to simulate before filtering.
    pub gross_records: usize,
    /// Length of the simulated collection window in days.
    pub days: f64,
    /// Training budget for the neural surrogates.
    pub budget: TrainingBudget,
    /// Base RNG seed.
    pub seed: u64,
    /// Optional path to write a JSON artifact with the experiment's series.
    pub output_json: Option<String>,
}

impl Default for ExperimentOptions {
    fn default() -> Self {
        Self {
            gross_records: 30_000,
            days: 150.0,
            budget: TrainingBudget::Standard,
            seed: 2024,
            output_json: None,
        }
    }
}

impl ExperimentOptions {
    /// Parse options from `--key value` style command-line arguments.
    /// Unknown keys are ignored so binaries can add their own flags.
    pub fn from_args<I: IntoIterator<Item = String>>(args: I) -> Self {
        let mut options = Self::default();
        let args: Vec<String> = args.into_iter().collect();
        let mut i = 0;
        while i < args.len() {
            let key = args[i].as_str();
            let value = args.get(i + 1).cloned();
            match (key, value) {
                ("--rows", Some(v)) => {
                    if let Ok(n) = v.parse() {
                        options.gross_records = n;
                    }
                    i += 2;
                }
                ("--days", Some(v)) => {
                    if let Ok(d) = v.parse() {
                        options.days = d;
                    }
                    i += 2;
                }
                ("--budget", Some(v)) => {
                    options.budget = match v.as_str() {
                        "smoke" => TrainingBudget::Smoke,
                        "full" => TrainingBudget::Full,
                        _ => TrainingBudget::Standard,
                    };
                    i += 2;
                }
                ("--seed", Some(v)) => {
                    if let Ok(s) = v.parse() {
                        options.seed = s;
                    }
                    i += 2;
                }
                ("--json", Some(v)) => {
                    options.output_json = Some(v);
                    i += 2;
                }
                _ => i += 1,
            }
        }
        options
    }
}

/// The prepared dataset every experiment starts from: the gross stream, the
/// filtering funnel, and the 80/20 train/test split of the modelling table.
pub struct PreparedData {
    /// The workload generator (kept for its site catalogue).
    pub generator: WorkloadGenerator,
    /// The filtering funnel including the surviving records.
    pub funnel: FilterFunnel,
    /// Training split of the nine-feature modelling table.
    pub train: Table,
    /// Test split of the nine-feature modelling table.
    pub test: Table,
}

/// Generate, filter and split the synthetic PanDA dataset.
pub fn prepare_data(options: &ExperimentOptions) -> PreparedData {
    let generator = WorkloadGenerator::new(GeneratorConfig {
        gross_records: options.gross_records,
        days: options.days,
        seed: options.seed,
        ..GeneratorConfig::default()
    });
    let gross = generator.generate();
    let funnel = FilterFunnel::apply(&gross);
    let table = records_to_table(&funnel.records);
    let (train, test) = train_test_split(
        &table,
        SplitOptions {
            train_fraction: 0.8,
            shuffle: true,
            seed: options.seed,
        },
    )
    .expect("non-empty modelling table");
    PreparedData {
        generator,
        funnel,
        train,
        test,
    }
}

/// Fit every surrogate model on the training table and sample as many rows
/// as the training set holds, returning `(model name, synthetic table)` in
/// the paper's Table-I order.
pub fn sample_all_models(
    train: &Table,
    budget: TrainingBudget,
    seed: u64,
) -> Vec<(&'static str, Table)> {
    ModelKind::ALL
        .iter()
        .map(|&kind| {
            let synthetic = fit_and_sample(kind, train, train.n_rows(), budget, seed)
                .unwrap_or_else(|e| panic!("{} failed to fit/sample: {e}", kind.name()));
            (kind.name(), synthetic)
        })
        .collect()
}

/// Write a serde-serialisable artifact to the path given in the options, if
/// one was requested.
pub fn maybe_write_json<T: serde::Serialize>(options: &ExperimentOptions, artifact: &T) {
    if let Some(path) = &options.output_json {
        let json = serde_json::to_string_pretty(artifact).expect("serialisable artifact");
        std::fs::write(path, json).unwrap_or_else(|e| eprintln!("could not write {path}: {e}"));
        println!("wrote artifact to {path}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn argument_parsing_handles_all_flags() {
        let options = ExperimentOptions::from_args(
            [
                "--rows", "5000", "--days", "30", "--budget", "smoke", "--seed", "7", "--json",
                "/tmp/x.json", "--unknown", "ignored",
            ]
            .iter()
            .map(|s| s.to_string()),
        );
        assert_eq!(options.gross_records, 5000);
        assert_eq!(options.days, 30.0);
        assert_eq!(options.budget, TrainingBudget::Smoke);
        assert_eq!(options.seed, 7);
        assert_eq!(options.output_json.as_deref(), Some("/tmp/x.json"));
    }

    #[test]
    fn argument_parsing_defaults() {
        let options = ExperimentOptions::from_args(Vec::<String>::new());
        assert_eq!(options.gross_records, 30_000);
        assert_eq!(options.budget, TrainingBudget::Standard);
    }

    #[test]
    fn prepare_data_produces_consistent_split() {
        let options = ExperimentOptions {
            gross_records: 3_000,
            ..Default::default()
        };
        let data = prepare_data(&options);
        assert!(data.funnel.surviving() > 500);
        assert_eq!(
            data.train.n_rows() + data.test.n_rows(),
            data.funnel.surviving()
        );
        assert_eq!(data.train.n_cols(), 9);
        // 80/20 within rounding.
        let ratio = data.train.n_rows() as f64 / data.funnel.surviving() as f64;
        assert!((ratio - 0.8).abs() < 0.01);
    }
}
