//! Shared plumbing for the experiment binaries and Criterion benches.
//!
//! Every binary in `src/bin/` regenerates one table or figure of the paper's
//! evaluation section (see DESIGN.md §3 for the index). They all share the
//! same dataset-preparation path so that Table I, Fig. 4 and Fig. 5 are
//! computed over exactly the same train/test split and the same fitted
//! models.
//!
//! The orchestration itself lives in [`surrogate::experiment`] — the single
//! fit→sample→evaluate runtime for the whole workspace (parallel model fits,
//! per-model error isolation). This crate only re-exports it so the binaries
//! keep their `bench::` imports, and adds [`report_failures`], the shared
//! way binaries surface partially failed runs.

pub use surrogate::experiment::{
    fit_all, fit_all_with_mode, fit_models_with, maybe_write_json, prepare_data, sample_all_models,
    ExecutionMode, ExperimentError, ExperimentOptions, FitReport, ModelRun, PreparedData,
};

/// Print every failed model run to stderr and return how many failed.
///
/// The binaries keep going with the surviving models — the point of the
/// `Result`-based runtime is that one diverging GAN no longer kills a whole
/// Table-I run — but they still exit non-zero when nothing succeeded.
pub fn report_failures(report: &FitReport) -> usize {
    let mut failed = 0;
    for (kind, error) in report.failures() {
        eprintln!("warning: {} failed to fit/sample: {error}", kind.name());
        failed += 1;
    }
    failed
}
