//! Surrogate-in-sim fidelity harness: the paper's headline claim, measured
//! in-repo.
//!
//! Loads a fitted checkpoint (`surrogate::checkpoint`), samples a synthetic
//! workload table from it, reconstructs the exact ground-truth training
//! workload the checkpoint was fitted on (the data pipeline is a pure
//! function of the generator config), and drives the `htcsim` grid
//! simulator with both — under every brokerage policy — recording
//! time-resolved traces. The artifact is a side-by-side comparison of
//! surrogate-driven vs real-trace-driven simulation outcomes: queue depth
//! over time, per-site utilisation, makespan, and transfer hours, plus
//! scalar fidelity deltas per policy.
//!
//! Everything is seeded and wall-clock-free, so two runs with the same
//! flags produce byte-identical artifacts (CI diffs them), and the artifact
//! is read back **typed** after writing as a schema check.
//!
//! ```text
//! sweep --quick --strict --checkpoint-dir ckpts          # produce checkpoints
//! simloop --checkpoint-dir ckpts --model smote --seed 2025 \
//!         --out SIMLOOP.json --max-rel-delta 0.5         # compare + gate
//! ```
//!
//! With `--max-rel-delta X`, every relative fidelity delta (makespan,
//! transfer, WAN, queue-depth shape) and every absolute utilisation delta
//! must stay within X for every policy, or the run exits non-zero — the
//! `sim-fidelity-matrix` CI gate.

use std::path::{Path, PathBuf};

use htcsim::{BrokerPolicy, GridSimulator, JobArena, SimConfig, SimReport, SimTrace};
use serde::{Deserialize, Serialize};
use surrogate::checkpoint::{Checkpoint, CheckpointRegistry};
use surrogate::experiment::prepare_data_from_config;
use surrogate::{ModelKind, TrainingBudget};

const SCHEMA_VERSION: u32 = 1;

const USAGE: &str = "\
simloop: surrogate-in-sim fidelity harness (surrogate vs ground-truth workloads)

  --checkpoint-dir DIR   directory of *.ckpt artifacts (required; see
                         `sweep --checkpoint-dir`)
  --model NAME           checkpoint model: tvae, ctabgan, smote, tabddpm
                         (default smote)
  --seed N               checkpoint seed axis value (default 2025)
  --budget NAME          checkpoint training budget (default smoke)
  --preset NAME          checkpoint generator preset (default small)
  --gross N              gross generator records used to rebuild the
                         ground-truth workload; must match what the sweep
                         fitted on (default 2500 = `sweep --quick`)
  --rows N               synthetic rows to sample (default: ground-truth
                         training-split size)
  --sample-seed N        RNG seed of the surrogate sampling pass (default 7)
  --bins N               queue-depth bins per trace, N >= 1 (default 24)
  --slot-fraction F      simulator slot fraction, F > 0 (default 0.02)
  --max-rel-delta X      gate: exit non-zero unless every relative fidelity
                         delta and absolute utilisation delta is <= X
  --out PATH             JSON artifact path (default SIMLOOP.json)
";

/// Scalar fidelity deltas between the surrogate-driven and ground-truth
/// simulation outcomes of one policy. Relative deltas use the bounded
/// symmetric form `|a-b| / max(|a|, |b|, 1e-9)` (0 = identical, 1 = one
/// side is negligible next to the other).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct FidelityDeltas {
    /// Relative makespan delta.
    makespan_rel: f64,
    /// Absolute mean-wait delta, in hours.
    mean_wait_abs_hours: f64,
    /// Relative mean-transfer-hours delta.
    transfer_rel: f64,
    /// Relative WAN-bytes delta.
    wan_rel: f64,
    /// Absolute mean-utilisation delta (both sides are in [0, 1]).
    utilization_abs: f64,
    /// Mean absolute queue-depth difference across bins, normalised by the
    /// larger of the two peak depths — a [0, 1] shape-fidelity score of
    /// queueing over time.
    queue_depth_l1: f64,
}

fn sym_rel(a: f64, b: f64) -> f64 {
    (a - b).abs() / a.abs().max(b.abs()).max(1e-9)
}

impl FidelityDeltas {
    fn compare(gt: &SimOutcome, surrogate: &SimOutcome) -> Self {
        let g = &gt.report;
        let s = &surrogate.report;
        let peak = gt
            .trace
            .queue_depth
            .iter()
            .chain(&surrogate.trace.queue_depth)
            .cloned()
            .fold(0.0f64, f64::max);
        let bins = gt.trace.queue_depth.len().max(1) as f64;
        let queue_depth_l1 = gt
            .trace
            .queue_depth
            .iter()
            .zip(&surrogate.trace.queue_depth)
            .map(|(a, b)| (a - b).abs())
            .sum::<f64>()
            / bins
            / peak.max(1e-9);
        Self {
            makespan_rel: sym_rel(g.makespan_hours, s.makespan_hours),
            mean_wait_abs_hours: (g.mean_wait_hours - s.mean_wait_hours).abs(),
            transfer_rel: sym_rel(g.mean_transfer_hours, s.mean_transfer_hours),
            wan_rel: sym_rel(g.wan_bytes, s.wan_bytes),
            utilization_abs: (g.mean_utilization - s.mean_utilization).abs(),
            queue_depth_l1,
        }
    }

    /// The deltas the `--max-rel-delta` gate checks, with labels.
    fn gated(&self) -> [(&'static str, f64); 5] {
        [
            ("makespan_rel", self.makespan_rel),
            ("transfer_rel", self.transfer_rel),
            ("wan_rel", self.wan_rel),
            ("utilization_abs", self.utilization_abs),
            ("queue_depth_l1", self.queue_depth_l1),
        ]
    }
}

/// One side of a comparison: the aggregate report plus its trace.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct SimOutcome {
    report: SimReport,
    trace: SimTrace,
}

/// Side-by-side outcome of one brokerage policy.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct PolicyComparison {
    policy: String,
    gt: SimOutcome,
    surrogate: SimOutcome,
    fidelity: FidelityDeltas,
    /// Present when `--max-rel-delta` was given: whether every gated delta
    /// of this policy stayed within the bound.
    within_bounds: Option<bool>,
}

/// The surrogate-vs-trace fidelity artifact.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct SimloopArtifact {
    schema_version: u32,
    checkpoint_key: String,
    model: String,
    preset: String,
    seed: u64,
    budget: String,
    gross_records: usize,
    gt_rows: usize,
    surrogate_rows: usize,
    sample_seed: u64,
    bins: usize,
    slot_fraction: f64,
    max_rel_delta: Option<f64>,
    policies: Vec<PolicyComparison>,
    /// True when every policy stayed within bounds (vacuously true without
    /// a gate).
    ok: bool,
}

fn usage_error(message: &str) -> ! {
    eprintln!("simloop: {message}");
    eprintln!("simloop: run with --help for usage");
    std::process::exit(2);
}

fn runtime_error(message: &str) -> ! {
    eprintln!("simloop: {message}");
    std::process::exit(1);
}

fn value(args: &[String], name: &str) -> Option<String> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

fn parse_value<T: std::str::FromStr>(args: &[String], name: &str, default: T) -> T {
    match value(args, name) {
        None => default,
        Some(text) => text
            .trim()
            .parse()
            .unwrap_or_else(|_| usage_error(&format!("bad {name} '{text}'"))),
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        print!("{USAGE}");
        return;
    }
    const VALUE_FLAGS: &[&str] = &[
        "--checkpoint-dir",
        "--model",
        "--seed",
        "--budget",
        "--preset",
        "--gross",
        "--rows",
        "--sample-seed",
        "--bins",
        "--slot-fraction",
        "--max-rel-delta",
        "--out",
    ];
    let mut expect_value = false;
    for arg in &args {
        if expect_value {
            expect_value = false;
            continue;
        }
        if VALUE_FLAGS.contains(&arg.as_str()) {
            expect_value = true;
        } else {
            usage_error(&format!("unknown argument '{arg}'"));
        }
    }
    if expect_value {
        usage_error("flag at end of line is missing its value");
    }

    let checkpoint_dir = value(&args, "--checkpoint-dir")
        .unwrap_or_else(|| usage_error("--checkpoint-dir is required"));
    let model_text = value(&args, "--model").unwrap_or_else(|| "smote".to_string());
    let model = ModelKind::parse(&model_text)
        .unwrap_or_else(|| usage_error(&format!("unknown --model '{model_text}'")));
    let seed: u64 = parse_value(&args, "--seed", 2025);
    let budget_text = value(&args, "--budget").unwrap_or_else(|| "smoke".to_string());
    let budget = TrainingBudget::parse(&budget_text)
        .unwrap_or_else(|| usage_error(&format!("unknown --budget '{budget_text}'")));
    let preset = value(&args, "--preset").unwrap_or_else(|| "small".to_string());
    let gross: usize = parse_value(&args, "--gross", 2_500);
    let sample_seed: u64 = parse_value(&args, "--sample-seed", 7);
    let bins: usize = parse_value(&args, "--bins", 24);
    if bins == 0 {
        usage_error("--bins must be at least 1");
    }
    let slot_fraction: f64 = parse_value(&args, "--slot-fraction", 0.02);
    if !slot_fraction.is_finite() || slot_fraction <= 0.0 {
        usage_error("--slot-fraction must be positive");
    }
    let max_rel_delta: Option<f64> = value(&args, "--max-rel-delta").map(|text| {
        let x: f64 = text
            .trim()
            .parse()
            .unwrap_or_else(|_| usage_error(&format!("bad --max-rel-delta '{text}'")));
        if !x.is_finite() || x <= 0.0 {
            usage_error("--max-rel-delta must be positive");
        }
        x
    });
    let out = PathBuf::from(value(&args, "--out").unwrap_or_else(|| "SIMLOOP.json".to_string()));

    // 1. Load the checkpoint.
    let registry = CheckpointRegistry::load_dir(Path::new(&checkpoint_dir))
        .unwrap_or_else(|e| runtime_error(&format!("cannot scan '{checkpoint_dir}': {e}")));
    for q in &registry.quarantined {
        eprintln!(
            "simloop: warning: quarantined checkpoint '{}': {}",
            q.file, q.error
        );
    }
    let checkpoint: &Checkpoint = registry
        .entries
        .iter()
        .find(|c| c.model == model && c.seed == seed && c.budget == budget && c.preset == preset)
        .unwrap_or_else(|| {
            runtime_error(&format!(
                "no checkpoint for model={} seed={seed} budget={} preset={preset} in \
                 '{checkpoint_dir}' ({} loadable entries)",
                model.name(),
                budget.name(),
                registry.entries.len()
            ))
        });
    println!("simloop: loaded checkpoint {}", checkpoint.key());

    // 2. Rebuild the exact ground-truth workload the checkpoint was fitted
    //    on: the data pipeline is a pure function of the generator config.
    let mut config = pandasim::GeneratorConfig::preset(&preset)
        .unwrap_or_else(|| usage_error(&format!("unknown --preset '{preset}'")));
    config.seed = seed;
    config.gross_records = gross;
    let data = prepare_data_from_config(&config);
    let gt_rows = data.train.n_rows();
    if gt_rows == 0 {
        runtime_error("ground-truth training split is empty — raise --gross");
    }

    // 3. Sample the surrogate workload from the checkpoint.
    let rows: usize = parse_value(&args, "--rows", gt_rows);
    if rows == 0 {
        usage_error("--rows must be at least 1");
    }
    let synthetic = checkpoint
        .sample(rows, sample_seed)
        .unwrap_or_else(|e| runtime_error(&format!("checkpoint sampling failed: {e}")));
    println!(
        "simloop: ground truth {gt_rows} jobs vs surrogate {} jobs (sample seed {sample_seed})",
        synthetic.n_rows()
    );

    // 4. Both workloads into arenas (typed errors name the broken column).
    let gt_arena = JobArena::from_table(&data.train)
        .unwrap_or_else(|e| runtime_error(&format!("ground-truth workload: {e}")));
    let surrogate_arena = JobArena::from_table(&synthetic)
        .unwrap_or_else(|e| runtime_error(&format!("surrogate workload: {e}")));

    // 5. Side-by-side traced runs under every brokerage policy.
    let sites = data.generator.sites();
    let mut policies = Vec::new();
    let mut all_ok = true;
    for policy in BrokerPolicy::ALL {
        let sim_config = SimConfig {
            policy,
            slot_fraction,
            ..SimConfig::default()
        };
        let run = |arena: &JobArena| -> SimOutcome {
            let mut simulator = GridSimulator::new(sites, sim_config.clone());
            let (report, trace) = simulator.run_arena_traced(arena, bins);
            SimOutcome { report, trace }
        };
        let gt = run(&gt_arena);
        let surrogate = run(&surrogate_arena);
        let fidelity = FidelityDeltas::compare(&gt, &surrogate);
        let within_bounds =
            max_rel_delta.map(|bound| fidelity.gated().iter().all(|(_, delta)| *delta <= bound));
        let verdict = match within_bounds {
            Some(true) => " => OK",
            Some(false) => " => FAIL",
            None => "",
        };
        println!(
            "simloop: policy={} makespan_rel={:.4} wait_abs={:.4}h transfer_rel={:.4} \
             wan_rel={:.4} util_abs={:.4} queue_l1={:.4}{verdict}",
            policy.name(),
            fidelity.makespan_rel,
            fidelity.mean_wait_abs_hours,
            fidelity.transfer_rel,
            fidelity.wan_rel,
            fidelity.utilization_abs,
            fidelity.queue_depth_l1,
        );
        if let (Some(false), Some(bound)) = (within_bounds, max_rel_delta) {
            for (label, delta) in fidelity.gated() {
                if delta > bound {
                    eprintln!(
                        "simloop: policy={} delta {label}={delta:.4} exceeds bound {bound}",
                        policy.name()
                    );
                }
            }
            all_ok = false;
        }
        policies.push(PolicyComparison {
            policy: policy.name().to_string(),
            gt,
            surrogate,
            fidelity,
            within_bounds,
        });
    }

    // 6. Write the artifact, then read it back typed as a schema check.
    let artifact = SimloopArtifact {
        schema_version: SCHEMA_VERSION,
        checkpoint_key: checkpoint.key(),
        model: model.name().to_string(),
        preset: preset.clone(),
        seed,
        budget: budget.name().to_string(),
        gross_records: gross,
        gt_rows,
        surrogate_rows: synthetic.n_rows(),
        sample_seed,
        bins,
        slot_fraction,
        max_rel_delta,
        policies,
        ok: all_ok,
    };
    let rendered = serde_json::to_string_pretty(&artifact).expect("artifact serializes") + "\n";
    std::fs::write(&out, &rendered)
        .unwrap_or_else(|e| runtime_error(&format!("cannot write '{}': {e}", out.display())));
    let read_back = std::fs::read_to_string(&out)
        .unwrap_or_else(|e| runtime_error(&format!("cannot re-read '{}': {e}", out.display())));
    let parsed: SimloopArtifact = serde_json::from_str(&read_back)
        .unwrap_or_else(|e| runtime_error(&format!("artifact failed typed validation: {e}")));
    if parsed != artifact {
        runtime_error("artifact round-trip produced a different value");
    }
    println!(
        "simloop: wrote {} ({} policies, ok={})",
        out.display(),
        artifact.policies.len(),
        artifact.ok
    );
    if !all_ok {
        runtime_error("fidelity deltas exceed --max-rel-delta bound");
    }
}
