//! Supervised serving loop over a checkpoint directory: the "replace the
//! simulator" half of the paper, run as a long-lived process.
//!
//! `serve` loads every crash-safe checkpoint artifact a `sweep
//! --checkpoint-dir` run persisted into a model registry keyed by
//! (model, preset, seed, budget), then answers JSON-line requests on
//! stdin with JSON-line responses on stdout. The loop is *supervised*:
//! every failure mode is a typed response, never a dead process —
//!
//! * **Degraded startup** — corrupt or stale checkpoints are quarantined
//!   (reported on stderr with their typed `CheckpointError`) and the
//!   registry serves the rest; stray `*.tmp` files from a write killed
//!   mid-save are skipped by construction.
//! * **Load shedding** — requests queue into a bounded channel
//!   (`--queue-depth`); when it is full the request is shed immediately
//!   with a typed `overload` response instead of growing an unbounded
//!   backlog.
//! * **Deadlines** — `--deadline-ms` bounds each request's time from
//!   arrival, checked both before *and after* handling; an overrun answers
//!   `deadline` instead of blocking the queue.
//! * **Panic capture** — a panicking handler answers `panic`; the worker
//!   and the process survive.
//! * **Row caps** — `--max-rows` bounds how many rows one `sample` request
//!   may ask for; larger requests answer a typed `bad_request` naming the
//!   limit instead of pinning the worker on an unbounded forward pass.
//!
//! The worker is a *micro-batching scheduler*: each time it wakes it
//! drains the queue (optionally waiting `--batch-window-ms` for
//! stragglers), groups the drained `sample` requests by registry key, and
//! answers each group with one coalesced generator forward pass through
//! `Checkpoint::sample_batch` — per-request rows stacked into a single
//! power-of-two-padded matrix walk through the packed kernels, then split
//! back into per-request responses. Batching is a pure throughput
//! optimisation: every response (rows, digest, per-request `sample_seed`
//! determinism) is byte-identical to serving the same requests one at a
//! time, and `--max-batch-rows` bounds how many rows one coalesced pass
//! may carry.
//!
//! `--inject` drives all of the above deterministically in CI (see
//! `surrogate::fault::ServeFaultPlan`): `load:corrupt` quarantines the
//! first checkpoint, `request:delay:100ms` charges every request a
//! processing delay (combined with `--virtual-clock` it burns no real
//! time), `request:panic` panics in the handler, `queue:hold` makes the
//! worker hold its first request until a later one has been shed,
//! `batch:hold:<N>` holds batch assembly until N requests are queued (so
//! concurrent requests land in one coalesced batch without timing races),
//! and `batch:split` forces single-request batches — the control arm for
//! batched-vs-unbatched digest comparisons.
//!
//! Protocol (one JSON object per line; unknown fields rejected):
//!   {"id":1,"op":"health"}
//!   {"id":2,"op":"list"}
//!   {"id":3,"op":"sample","model":"tabddpm","preset":"small","seed":2024,
//!    "budget":"smoke","rows":64,"sample_seed":7}
//! Sample responses carry the row count and an FNV-1a digest of the
//! canonical table rendering, so two loads of one checkpoint — or a
//! batched and an unbatched serve — can be checked for byte-identical
//! sampling without shipping the table.

use std::collections::BTreeMap;
use std::io::BufRead;
use std::path::Path;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc::{sync_channel, RecvTimeoutError, TrySendError};
use std::sync::Arc;
use std::time::{Duration, Instant};

use serde::{Deserialize, Serialize};
use surrogate::artifact_io::fnv1a_hex;
use surrogate::checkpoint::{
    Checkpoint, CheckpointError, CheckpointRegistry, QuarantinedCheckpoint,
};
use surrogate::fault::panic_message;
use surrogate::{FaultClock, ModelKind, SampleSpec, ServeFaultPlan, TrainingBudget};
use tabular::Table;

const USAGE: &str = "\
serve: supervised serving loop over crash-safe model checkpoints

  --checkpoints DIR      checkpoint directory to load (required); corrupt
                         entries are quarantined, not fatal, and stray *.tmp
                         staging files are ignored
  --queue-depth N        bounded request queue depth, N >= 1 (default 64);
                         a full queue sheds requests with a typed 'overload'
                         response
  --deadline-ms N        per-request deadline from arrival, N >= 1, checked
                         before and after handling; overruns answer
                         'deadline' (default: none)
  --batch-window-ms N    after the first request of a batch, wait up to N ms
                         for more before sampling (default 0: no wait; the
                         scheduler still coalesces whatever is queued)
  --max-batch-rows N     cap the total rows one coalesced sampling pass may
                         carry, N >= 1 (default 4096); larger batches are
                         chunked, never refused
  --max-rows N           cap the rows one sample request may ask for,
                         N >= 1 (default 65536); larger requests answer a
                         typed 'bad_request' naming the limit
  --inject SPEC          deterministic fault injection, e.g.
                         load:corrupt,request:delay:100ms,request:panic,
                         queue:hold,batch:hold:3,batch:split
  --virtual-clock        injected request delays charge the deadline clock
                         without sleeping

Requests are JSON lines on stdin, responses JSON lines on stdout:
  {\"id\":1,\"op\":\"health\"}
  {\"id\":2,\"op\":\"list\"}
  {\"id\":3,\"op\":\"sample\",\"model\":\"tabddpm\",\"preset\":\"small\",
   \"seed\":2024,\"budget\":\"smoke\",\"rows\":64,\"sample_seed\":7}
";

/// Default `--max-rows`: generous for benchmarking, small enough that one
/// request cannot pin the worker on a multi-gigabyte forward pass.
const DEFAULT_MAX_ROWS: usize = 65_536;

/// Default `--max-batch-rows`: one coalesced pass stays cache-friendly.
const DEFAULT_MAX_BATCH_ROWS: usize = 4_096;

/// Exit for malformed command lines.
fn usage_error(message: &str) -> ! {
    eprintln!("serve: {message}");
    eprintln!("serve: run with --help for usage");
    std::process::exit(2);
}

/// Exit for runtime failures (unreadable checkpoint directory).
fn runtime_error(message: &str) -> ! {
    eprintln!("serve: {message}");
    std::process::exit(1);
}

fn flag(args: &[String], name: &str) -> bool {
    args.iter().any(|a| a == name)
}

/// Flags that consume the following argument.
const VALUE_FLAGS: &[&str] = &[
    "--checkpoints",
    "--queue-depth",
    "--deadline-ms",
    "--batch-window-ms",
    "--max-batch-rows",
    "--max-rows",
    "--inject",
];

/// Extract the value of `name`, refusing to consume another flag as the
/// value — `--checkpoints --queue-depth 1` is a usage error naming
/// `--checkpoints`, not a directory called "--queue-depth".
fn value(args: &[String], name: &str) -> Result<Option<String>, String> {
    let Some(i) = args.iter().position(|a| a == name) else {
        return Ok(None);
    };
    match args.get(i + 1) {
        Some(v) if v.starts_with("--") || VALUE_FLAGS.contains(&v.as_str()) => {
            Err(format!("{name} needs a value, but found the flag '{v}'"))
        }
        Some(v) => Ok(Some(v.clone())),
        None => Err(format!("{name} needs a value")),
    }
}

/// Parse `--queue-depth N` (at least 1 — a zero-depth queue would shed
/// every request).
fn parse_queue_depth(text: &str) -> Result<usize, String> {
    match text.trim().parse::<usize>() {
        Ok(0) => Err(format!("bad --queue-depth '{text}' (want >= 1)")),
        Ok(n) => Ok(n),
        Err(_) => Err(format!("bad --queue-depth '{text}' (want an integer >= 1)")),
    }
}

/// Parse `--deadline-ms N` (at least 1 — a zero deadline would fail every
/// request before any work happens).
fn parse_deadline_ms(text: &str) -> Result<u64, String> {
    match text.trim().parse::<u64>() {
        Ok(0) => Err(format!("bad --deadline-ms '{text}' (want >= 1)")),
        Ok(n) => Ok(n),
        Err(_) => Err(format!("bad --deadline-ms '{text}' (want an integer >= 1)")),
    }
}

/// Parse `--batch-window-ms N` (0 disables the wait; the scheduler still
/// coalesces whatever is already queued).
fn parse_batch_window_ms(text: &str) -> Result<u64, String> {
    text.trim()
        .parse::<u64>()
        .map_err(|_| format!("bad --batch-window-ms '{text}' (want an integer >= 0)"))
}

/// Parse `--max-batch-rows N` (at least 1 — a zero budget could never
/// carry a request).
fn parse_max_batch_rows(text: &str) -> Result<usize, String> {
    match text.trim().parse::<usize>() {
        Ok(0) => Err(format!("bad --max-batch-rows '{text}' (want >= 1)")),
        Ok(n) => Ok(n),
        Err(_) => Err(format!(
            "bad --max-batch-rows '{text}' (want an integer >= 1)"
        )),
    }
}

/// Parse `--max-rows N` (at least 1 — a zero cap would refuse every
/// sample).
fn parse_max_rows(text: &str) -> Result<usize, String> {
    match text.trim().parse::<usize>() {
        Ok(0) => Err(format!("bad --max-rows '{text}' (want >= 1)")),
        Ok(n) => Ok(n),
        Err(_) => Err(format!("bad --max-rows '{text}' (want an integer >= 1)")),
    }
}

/// One request line. Every selector field is optional: `sample` matches
/// registry entries against the fields that are present and requires the
/// match to be unique.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct Request {
    /// Caller-chosen correlation id, echoed in the response.
    id: Option<u64>,
    /// `health`, `list`, or `sample`.
    op: String,
    /// Model-kind selector (e.g. `tabddpm`; parsed case-insensitively).
    model: Option<String>,
    /// Generator-preset selector.
    preset: Option<String>,
    /// Seed-axis selector.
    seed: Option<u64>,
    /// Training-budget selector.
    budget: Option<String>,
    /// Synthetic rows to sample (default 32).
    rows: Option<usize>,
    /// Sampling seed (default: the checkpoint seed + 1, matching how the
    /// sweep samples after fitting).
    sample_seed: Option<u64>,
}

/// One response line. `status` is the typed outcome CI greps for: `ok`,
/// `bad_request`, `not_found`, `ambiguous`, `overload`, `deadline`,
/// `panic`, or `error`.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct Response {
    /// The request's correlation id (absent for unparseable requests).
    id: Option<u64>,
    /// Whether the request was served.
    ok: bool,
    /// Typed outcome, stable for tooling.
    status: String,
    /// Human-readable explanation for non-`ok` outcomes.
    detail: Option<String>,
    /// The registry key that served a `sample` request.
    key: Option<String>,
    /// Rows sampled.
    rows: Option<usize>,
    /// FNV-1a digest of the canonical rendering of the sampled table.
    digest: Option<String>,
    /// `list`/`health`: the loadable registry keys / their count.
    models: Option<Vec<String>>,
    /// `health`: quarantined artifact count.
    quarantined: Option<usize>,
}

impl Response {
    fn failure(id: Option<u64>, status: &str, detail: String) -> Self {
        Response {
            id,
            ok: false,
            status: status.to_string(),
            detail: Some(detail),
            key: None,
            rows: None,
            digest: None,
            models: None,
            quarantined: None,
        }
    }

    fn emit(&self) {
        // One println! per response: the line (payload + newline) is
        // written under a single stdout lock, so worker and shedding
        // responses never interleave mid-line.
        println!(
            "{}",
            serde_json::to_string(self).expect("response serializes")
        );
    }
}

/// The successful `sample` response for one served table.
fn sample_success(id: Option<u64>, key: String, table: &Table) -> Response {
    let rendered = serde_json::to_string(table).expect("table serializes");
    Response {
        id,
        ok: true,
        status: "ok".to_string(),
        detail: None,
        key: Some(key),
        rows: Some(table.n_rows()),
        digest: Some(fnv1a_hex(rendered.as_bytes())),
        models: None,
        quarantined: None,
    }
}

/// Match `sample` selectors against the registry. Every present field must
/// match; the result must be a single entry, returned by index so the
/// batch scheduler can group requests by checkpoint.
fn select(entries: &[Checkpoint], request: &Request) -> Result<usize, (String, String)> {
    let model = match request.model.as_deref() {
        Some(name) => Some(
            ModelKind::parse(name)
                .ok_or_else(|| ("bad_request".to_string(), format!("unknown model '{name}'")))?,
        ),
        None => None,
    };
    let budget = match request.budget.as_deref() {
        Some(name) => Some(TrainingBudget::parse(name).ok_or_else(|| {
            (
                "bad_request".to_string(),
                format!("unknown budget '{name}'"),
            )
        })?),
        None => None,
    };
    let matches: Vec<usize> = entries
        .iter()
        .enumerate()
        .filter(|(_, c)| model.is_none_or(|m| c.model == m))
        .filter(|(_, c)| budget.is_none_or(|b| c.budget == b))
        .filter(|(_, c)| request.preset.as_deref().is_none_or(|p| c.preset == p))
        .filter(|(_, c)| request.seed.is_none_or(|s| c.seed == s))
        .map(|(i, _)| i)
        .collect();
    match matches.as_slice() {
        [] => Err((
            "not_found".to_string(),
            "no checkpoint matches the request selectors".to_string(),
        )),
        [one] => Ok(*one),
        many => Err((
            "ambiguous".to_string(),
            format!(
                "{} checkpoints match; add selectors (e.g. {})",
                many.len(),
                entries[many[0]].key()
            ),
        )),
    }
}

/// Handle one request against the registry (deadline/panic/shed handling
/// live in the caller). Only this part runs under `catch_unwind`. The
/// `sample` arm goes through `sample_batch` with a batch of one, so the
/// batched scheduler and this direct path share a single sampling code
/// path.
fn handle(registry: &CheckpointRegistry, request: &Request) -> Response {
    match request.op.as_str() {
        "health" => Response {
            id: request.id,
            ok: true,
            status: if registry.is_degraded() {
                "degraded".to_string()
            } else {
                "ok".to_string()
            },
            detail: None,
            key: None,
            rows: None,
            digest: None,
            models: Some(registry.entries.iter().map(Checkpoint::key).collect()),
            quarantined: Some(registry.quarantined.len()),
        },
        "list" => Response {
            id: request.id,
            ok: true,
            status: "ok".to_string(),
            detail: None,
            key: None,
            rows: None,
            digest: None,
            models: Some(registry.entries.iter().map(Checkpoint::key).collect()),
            quarantined: None,
        },
        "sample" => match select(&registry.entries, request) {
            Err((status, detail)) => Response::failure(request.id, &status, detail),
            Ok(entry) => {
                let checkpoint = &registry.entries[entry];
                let rows = request.rows.unwrap_or(32);
                let seed = request
                    .sample_seed
                    .unwrap_or_else(|| checkpoint.seed.wrapping_add(1));
                match checkpoint.sample_batch(&[SampleSpec::new(rows, seed)]) {
                    Err(e) => Response::failure(request.id, "error", e.to_string()),
                    Ok(tables) => sample_success(request.id, checkpoint.key(), &tables[0]),
                }
            }
        },
        other => Response::failure(
            request.id,
            "bad_request",
            format!("unknown op '{other}' (expected health, list or sample)"),
        ),
    }
}

/// A request's place in batch processing: already answered, or waiting on
/// its group's coalesced sampling pass.
enum Slot {
    Done(Response),
    Sample { entry: usize, spec: SampleSpec },
}

/// Split one checkpoint's `(batch index, spec)` items into chunks whose
/// total rows stay within `max_batch_rows`. A single oversized spec still
/// gets a chunk of its own (the per-request `--max-rows` cap is enforced
/// upstream); under `batch:split` every item is its own chunk, which
/// degrades the scheduler to exactly the unbatched loop.
fn chunk_specs(
    items: &[(usize, SampleSpec)],
    max_batch_rows: usize,
    split: bool,
) -> Vec<Vec<(usize, SampleSpec)>> {
    let mut chunks = Vec::new();
    let mut current: Vec<(usize, SampleSpec)> = Vec::new();
    let mut current_rows = 0usize;
    for &(index, spec) in items {
        if !current.is_empty() && (split || current_rows + spec.rows > max_batch_rows) {
            chunks.push(std::mem::take(&mut current));
            current_rows = 0;
        }
        current.push((index, spec));
        current_rows += spec.rows;
    }
    if !current.is_empty() {
        chunks.push(current);
    }
    chunks
}

/// Everything the batch scheduler needs besides the registry and the
/// requests themselves.
struct BatchPolicy {
    deadline_ms: Option<u64>,
    max_rows: usize,
    max_batch_rows: usize,
    faults: ServeFaultPlan,
    clock: FaultClock,
}

/// Answer one drained batch, in arrival order.
///
/// Three passes: (1) per request — charge any injected delay, check the
/// deadline, and either answer non-`sample` ops directly or resolve the
/// request to a (checkpoint, spec) pair; (2) group the resolved specs by
/// checkpoint, chunk each group by `max_batch_rows`, and answer every
/// chunk with one coalesced `sample_batch` pass; (3) re-check each
/// served request's deadline *after* handling — a response that took too
/// long to produce answers `deadline`, it does not pretend the deadline
/// was met just because the request was dequeued in time.
fn process_batch(
    registry: &CheckpointRegistry,
    batch: &[(Request, Instant)],
    policy: &BatchPolicy,
) -> Vec<Response> {
    let over_deadline = |arrival: &Instant, virtual_ms: f64| -> Option<(u64, f64)> {
        policy.deadline_ms.and_then(|limit| {
            let elapsed_ms = arrival.elapsed().as_secs_f64() * 1e3 + virtual_ms;
            (elapsed_ms >= limit as f64).then_some((limit, elapsed_ms))
        })
    };

    let mut virtual_ms = vec![0.0f64; batch.len()];
    let mut slots: Vec<Slot> = Vec::with_capacity(batch.len());
    for (i, (request, arrival)) in batch.iter().enumerate() {
        // Injected processing delay burns on the configured clock; under
        // --virtual-clock it only charges the deadline accounting.
        virtual_ms[i] = match policy.faults.request_delay_ms() {
            Some(ms) => policy.clock.delay_ms(ms),
            None => 0.0,
        };
        if let Some((limit, elapsed_ms)) = over_deadline(arrival, virtual_ms[i]) {
            slots.push(Slot::Done(Response::failure(
                request.id,
                "deadline",
                format!("request exceeded its {limit}ms deadline ({elapsed_ms:.0}ms)"),
            )));
            continue;
        }
        if policy.faults.request_panic() {
            let payload = std::panic::catch_unwind(|| {
                panic!("injected fault: panic in request handler");
            })
            .expect_err("injected panic unwinds");
            slots.push(Slot::Done(Response::failure(
                request.id,
                "panic",
                panic_message(payload),
            )));
            continue;
        }
        if request.op != "sample" {
            let response = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                handle(registry, request)
            }))
            .unwrap_or_else(|payload| {
                Response::failure(request.id, "panic", panic_message(payload))
            });
            slots.push(Slot::Done(response));
            continue;
        }
        let rows = request.rows.unwrap_or(32);
        if rows > policy.max_rows {
            slots.push(Slot::Done(Response::failure(
                request.id,
                "bad_request",
                format!(
                    "rows {rows} exceeds the --max-rows limit of {}",
                    policy.max_rows
                ),
            )));
            continue;
        }
        match select(&registry.entries, request) {
            Err((status, detail)) => {
                slots.push(Slot::Done(Response::failure(request.id, &status, detail)));
            }
            Ok(entry) => {
                let seed = request
                    .sample_seed
                    .unwrap_or_else(|| registry.entries[entry].seed.wrapping_add(1));
                slots.push(Slot::Sample {
                    entry,
                    spec: SampleSpec::new(rows, seed),
                });
            }
        }
    }

    let mut groups: BTreeMap<usize, Vec<(usize, SampleSpec)>> = BTreeMap::new();
    for (i, slot) in slots.iter().enumerate() {
        if let Slot::Sample { entry, spec } = slot {
            groups.entry(*entry).or_default().push((i, *spec));
        }
    }
    for (entry, items) in groups {
        let checkpoint = &registry.entries[entry];
        for chunk in chunk_specs(&items, policy.max_batch_rows, policy.faults.batch_split()) {
            let specs: Vec<SampleSpec> = chunk.iter().map(|&(_, spec)| spec).collect();
            let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                checkpoint.sample_batch(&specs)
            }));
            match outcome {
                Err(payload) => {
                    let message = panic_message(payload);
                    for &(i, _) in &chunk {
                        slots[i] =
                            Slot::Done(Response::failure(batch[i].0.id, "panic", message.clone()));
                    }
                }
                Ok(Err(e)) => {
                    let message = e.to_string();
                    for &(i, _) in &chunk {
                        slots[i] =
                            Slot::Done(Response::failure(batch[i].0.id, "error", message.clone()));
                    }
                }
                Ok(Ok(tables)) => {
                    for (&(i, _), table) in chunk.iter().zip(&tables) {
                        slots[i] =
                            Slot::Done(sample_success(batch[i].0.id, checkpoint.key(), table));
                    }
                }
            }
        }
    }

    slots
        .into_iter()
        .enumerate()
        .map(|(i, slot)| {
            let response = match slot {
                Slot::Done(response) => response,
                Slot::Sample { .. } => unreachable!("sample slot left unanswered"),
            };
            if !response.ok {
                return response;
            }
            match over_deadline(&batch[i].1, virtual_ms[i]) {
                Some((limit, elapsed_ms)) => Response::failure(
                    batch[i].0.id,
                    "deadline",
                    format!(
                        "request exceeded its {limit}ms deadline after handling \
                         ({elapsed_ms:.0}ms)"
                    ),
                ),
                None => response,
            }
        })
        .collect()
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        print!("{USAGE}");
        return;
    }
    let value = |name: &str| value(&args, name).unwrap_or_else(|e| usage_error(&e));
    let dir =
        value("--checkpoints").unwrap_or_else(|| usage_error("--checkpoints DIR is required"));
    let queue_depth = value("--queue-depth")
        .map(|v| parse_queue_depth(&v).unwrap_or_else(|e| usage_error(&e)))
        .unwrap_or(64);
    let deadline_ms =
        value("--deadline-ms").map(|v| parse_deadline_ms(&v).unwrap_or_else(|e| usage_error(&e)));
    let batch_window_ms = value("--batch-window-ms")
        .map(|v| parse_batch_window_ms(&v).unwrap_or_else(|e| usage_error(&e)))
        .unwrap_or(0);
    let max_batch_rows = value("--max-batch-rows")
        .map(|v| parse_max_batch_rows(&v).unwrap_or_else(|e| usage_error(&e)))
        .unwrap_or(DEFAULT_MAX_BATCH_ROWS);
    let max_rows = value("--max-rows")
        .map(|v| parse_max_rows(&v).unwrap_or_else(|e| usage_error(&e)))
        .unwrap_or(DEFAULT_MAX_ROWS);
    let faults = value("--inject")
        .map(|v| {
            ServeFaultPlan::parse(&v).unwrap_or_else(|e| usage_error(&format!("bad --inject: {e}")))
        })
        .unwrap_or_else(ServeFaultPlan::none);
    let clock = if flag(&args, "--virtual-clock") {
        FaultClock::Virtual
    } else {
        FaultClock::Real
    };

    let mut registry = CheckpointRegistry::load_dir(Path::new(&dir))
        .unwrap_or_else(|e| runtime_error(&format!("cannot load checkpoints: {e}")));
    if faults.load_corrupt() && !registry.entries.is_empty() {
        // Deterministic startup-corruption drill: treat the first
        // (alphabetically) loadable checkpoint as corrupt.
        let first = registry.entries.remove(0);
        registry.quarantined.push(QuarantinedCheckpoint {
            file: first.file_name(),
            error: CheckpointError::Malformed {
                section: "payload",
                reason: "injected corruption (load:corrupt)".to_string(),
            },
        });
    }
    eprintln!(
        "serve: loaded {} checkpoint(s) from {dir} ({} quarantined, {} temp file(s) ignored)",
        registry.entries.len(),
        registry.quarantined.len(),
        registry.ignored_temp
    );
    for q in &registry.quarantined {
        eprintln!("serve: quarantined {}: {}", q.file, q.error);
    }
    if registry.is_degraded() {
        eprintln!(
            "serve: DEGRADED: serving {} of {} model(s)",
            registry.entries.len(),
            registry.entries.len() + registry.quarantined.len()
        );
    }
    if registry.entries.is_empty() && registry.quarantined.is_empty() {
        runtime_error(&format!("no checkpoints in {dir}"));
    }
    eprintln!(
        "serve: ready (queue depth {queue_depth}, deadline {}, batch window {batch_window_ms}ms, \
         max batch rows {max_batch_rows}, max rows {max_rows})",
        deadline_ms.map_or_else(|| "none".to_string(), |ms| format!("{ms}ms"))
    );

    let shed = Arc::new(AtomicUsize::new(0));
    let (tx, rx) = sync_channel::<(Request, Instant)>(queue_depth);
    let worker = {
        let shed = Arc::clone(&shed);
        let policy = BatchPolicy {
            deadline_ms,
            max_rows,
            max_batch_rows,
            faults: faults.clone(),
            clock,
        };
        std::thread::spawn(move || {
            let mut held = !policy.faults.queue_hold();
            let mut batch_hold = policy.faults.batch_hold_min();
            while let Ok(first) = rx.recv() {
                if !held {
                    // queue:hold — park on the first request until at least
                    // one later request has been shed (bounded by a real
                    // timeout so a mis-written test cannot hang the loop).
                    let give_up = Instant::now() + Duration::from_secs(10);
                    while shed.load(Ordering::SeqCst) == 0 && Instant::now() < give_up {
                        std::thread::sleep(Duration::from_millis(5));
                    }
                    held = true;
                }
                let mut batch = vec![first];
                if let Some(min_requests) = batch_hold.take() {
                    // batch:hold:<N> — park batch assembly until N requests
                    // are collected, so concurrent senders land in one
                    // coalesced batch (same real-time give-up as above).
                    let give_up = Instant::now() + Duration::from_secs(10);
                    while batch.len() < min_requests && Instant::now() < give_up {
                        match rx.recv_timeout(Duration::from_millis(5)) {
                            Ok(item) => batch.push(item),
                            Err(RecvTimeoutError::Timeout) => {}
                            Err(RecvTimeoutError::Disconnected) => break,
                        }
                    }
                }
                if batch_window_ms > 0 {
                    let window_end = Instant::now() + Duration::from_millis(batch_window_ms);
                    while let Some(remaining) = window_end.checked_duration_since(Instant::now()) {
                        if remaining.is_zero() {
                            break;
                        }
                        match rx.recv_timeout(remaining) {
                            Ok(item) => batch.push(item),
                            Err(_) => break,
                        }
                    }
                }
                while let Ok(item) = rx.try_recv() {
                    batch.push(item);
                }
                for response in process_batch(&registry, &batch, &policy) {
                    response.emit();
                }
            }
        })
    };

    let stdin = std::io::stdin();
    let mut received = 0usize;
    for line in stdin.lock().lines() {
        let line = match line {
            Ok(line) => line,
            Err(e) => runtime_error(&format!("cannot read stdin: {e}")),
        };
        if line.trim().is_empty() {
            continue;
        }
        received += 1;
        let request: Request = match serde_json::from_str(&line) {
            Ok(request) => request,
            Err(e) => {
                Response::failure(None, "bad_request", format!("unparseable request: {e}")).emit();
                continue;
            }
        };
        let id = request.id;
        if let Err(e) = tx.try_send((request, Instant::now())) {
            match e {
                TrySendError::Full(_) => {
                    shed.fetch_add(1, Ordering::SeqCst);
                    Response::failure(
                        id,
                        "overload",
                        format!("queue full (depth {queue_depth}), request shed"),
                    )
                    .emit();
                }
                TrySendError::Disconnected(_) => {
                    runtime_error("worker thread died");
                }
            }
        }
    }
    drop(tx);
    worker
        .join()
        .unwrap_or_else(|_| runtime_error("worker thread panicked outside the capture boundary"));
    eprintln!(
        "serve: shutdown after {received} request(s), {} shed",
        shed.load(Ordering::SeqCst)
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use surrogate::checkpoint::CheckpointPayload;
    use surrogate::{build_payload, SmoteConfig, SmoteSampler, TabularGenerator};
    use tabular::Column;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| s.to_string()).collect()
    }

    /// A registry holding one fitted SMOTE checkpoint, so batch-processing
    /// tests can serve real samples without training a network.
    fn fitted_registry() -> CheckpointRegistry {
        let mut table = Table::new();
        let values: Vec<f64> = (0..40)
            .map(|i| (i as f64 * 0.37).sin() * 50.0 + 50.0)
            .collect();
        let labels: Vec<&str> = (0..40)
            .map(|i| if i % 3 == 0 { "BNL" } else { "CERN" })
            .collect();
        table
            .push_column("workload", Column::Numerical(values))
            .unwrap();
        table
            .push_column("site", Column::from_labels(&labels))
            .unwrap();
        let mut sampler = SmoteSampler::new(SmoteConfig::default());
        sampler.fit(&table).unwrap();
        CheckpointRegistry {
            entries: vec![Checkpoint::new(
                "small",
                2024,
                TrainingBudget::Smoke,
                CheckpointPayload::Smote(sampler),
            )],
            quarantined: Vec::new(),
            ignored_temp: 0,
        }
    }

    fn sample_request(id: u64, rows: usize, sample_seed: u64) -> Request {
        Request {
            id: Some(id),
            op: "sample".to_string(),
            model: None,
            preset: None,
            seed: None,
            budget: None,
            rows: Some(rows),
            sample_seed: Some(sample_seed),
        }
    }

    fn op_request(id: u64, op: &str) -> Request {
        Request {
            id: Some(id),
            op: op.to_string(),
            model: None,
            preset: None,
            seed: None,
            budget: None,
            rows: None,
            sample_seed: None,
        }
    }

    fn policy(deadline_ms: Option<u64>, faults: ServeFaultPlan) -> BatchPolicy {
        BatchPolicy {
            deadline_ms,
            max_rows: 1024,
            max_batch_rows: 8,
            faults,
            clock: FaultClock::Real,
        }
    }

    #[test]
    fn queue_depth_parser_requires_a_positive_depth() {
        assert_eq!(parse_queue_depth("64").unwrap(), 64);
        assert_eq!(parse_queue_depth(" 1 ").unwrap(), 1);
        for bad in ["0", "", "-3", "deep", "1.5"] {
            assert!(
                parse_queue_depth(bad)
                    .unwrap_err()
                    .contains("--queue-depth"),
                "{bad:?} must be rejected with the flag name"
            );
        }
    }

    #[test]
    fn deadline_parser_requires_a_positive_deadline() {
        assert_eq!(parse_deadline_ms("50").unwrap(), 50);
        for bad in ["0", "", "-1", "soon"] {
            assert!(
                parse_deadline_ms(bad)
                    .unwrap_err()
                    .contains("--deadline-ms"),
                "{bad:?} must be rejected with the flag name"
            );
        }
    }

    #[test]
    fn batching_parsers_name_their_flags() {
        assert_eq!(parse_batch_window_ms("0").unwrap(), 0);
        assert_eq!(parse_batch_window_ms("25").unwrap(), 25);
        for bad in ["", "-1", "soon"] {
            assert!(
                parse_batch_window_ms(bad)
                    .unwrap_err()
                    .contains("--batch-window-ms"),
                "{bad:?} must be rejected with the flag name"
            );
        }
        assert_eq!(parse_max_batch_rows("512").unwrap(), 512);
        for bad in ["0", "", "-1", "wide"] {
            assert!(
                parse_max_batch_rows(bad)
                    .unwrap_err()
                    .contains("--max-batch-rows"),
                "{bad:?} must be rejected with the flag name"
            );
        }
        assert_eq!(parse_max_rows("65536").unwrap(), 65536);
        for bad in ["0", "", "-1", "lots"] {
            assert!(
                parse_max_rows(bad).unwrap_err().contains("--max-rows"),
                "{bad:?} must be rejected with the flag name"
            );
        }
    }

    #[test]
    fn value_extraction_refuses_flag_shaped_values() {
        // The old extractor silently consumed the next flag as a value, so
        // `--checkpoints --queue-depth 1` became a directory named
        // "--queue-depth". Now it is a usage error naming both flags.
        let err = value(
            &args(&["--checkpoints", "--queue-depth", "1"]),
            "--checkpoints",
        )
        .unwrap_err();
        assert!(err.contains("--checkpoints"), "{err}");
        assert!(err.contains("--queue-depth"), "{err}");

        let err = value(&args(&["--inject"]), "--inject").unwrap_err();
        assert!(err.contains("--inject needs a value"), "{err}");

        let err = value(
            &args(&["--deadline-ms", "--virtual-clock"]),
            "--deadline-ms",
        )
        .unwrap_err();
        assert!(err.contains("--virtual-clock"), "{err}");

        assert_eq!(
            value(&args(&["--queue-depth", "9"]), "--queue-depth").unwrap(),
            Some("9".to_string())
        );
        // Absent flag, and a negative-number value, both stay fine: the
        // typed parsers reject "-3" with a better message.
        assert_eq!(
            value(&args(&["--queue-depth", "9"]), "--max-rows").unwrap(),
            None
        );
        assert_eq!(
            value(&args(&["--deadline-ms", "-3"]), "--deadline-ms").unwrap(),
            Some("-3".to_string())
        );
    }

    #[test]
    fn requests_parse_with_optional_selectors() {
        let full: Request = serde_json::from_str(
            r#"{"id":3,"op":"sample","model":"tabddpm","preset":"small","seed":2024,
                "budget":"smoke","rows":64,"sample_seed":7}"#,
        )
        .unwrap();
        assert_eq!(full.id, Some(3));
        assert_eq!(full.op, "sample");
        assert_eq!(full.rows, Some(64));

        let bare: Request = serde_json::from_str(r#"{"op":"health"}"#).unwrap();
        assert_eq!(bare.id, None);
        assert_eq!(bare.model, None);

        assert!(serde_json::from_str::<Request>(r#"{"id":1}"#).is_err());
        assert!(serde_json::from_str::<Request>("not json").is_err());
    }

    #[test]
    fn selection_requires_a_unique_match() {
        let entries: Vec<Checkpoint> = [
            (ModelKind::Smote, 2024),
            (ModelKind::Smote, 2025),
            (ModelKind::TabDdpm, 2024),
        ]
        .iter()
        .map(|&(kind, seed)| {
            Checkpoint::new(
                "small",
                seed,
                TrainingBudget::Smoke,
                build_payload(kind, TrainingBudget::Smoke, seed),
            )
        })
        .collect();
        let request = |model: Option<&str>, seed: Option<u64>| Request {
            id: None,
            op: "sample".to_string(),
            model: model.map(str::to_string),
            preset: None,
            seed,
            budget: None,
            rows: None,
            sample_seed: None,
        };

        let unique = select(&entries, &request(Some("tabddpm"), None)).unwrap();
        assert_eq!(entries[unique].key(), "s2024-smoke-small-tabddpm");
        let unique = select(&entries, &request(Some("smote"), Some(2025))).unwrap();
        assert_eq!(entries[unique].seed, 2025);

        let (status, _) = select(&entries, &request(Some("smote"), None)).unwrap_err();
        assert_eq!(status, "ambiguous");
        let (status, _) = select(&entries, &request(Some("tvae"), None)).unwrap_err();
        assert_eq!(status, "not_found");
        let (status, _) = select(&entries, &request(Some("mystery"), None)).unwrap_err();
        assert_eq!(status, "bad_request");
    }

    #[test]
    fn unknown_ops_and_unfitted_models_answer_typed_failures() {
        let registry = CheckpointRegistry {
            entries: vec![Checkpoint::new(
                "small",
                2024,
                TrainingBudget::Smoke,
                build_payload(ModelKind::Smote, TrainingBudget::Smoke, 2024),
            )],
            quarantined: Vec::new(),
            ignored_temp: 0,
        };
        let request = |op: &str| Request {
            id: Some(9),
            op: op.to_string(),
            model: None,
            preset: None,
            seed: None,
            budget: None,
            rows: None,
            sample_seed: None,
        };

        let response = handle(&registry, &request("explode"));
        assert!(!response.ok);
        assert_eq!(response.status, "bad_request");
        assert_eq!(response.id, Some(9));

        // The registry's only checkpoint is unfitted, so sampling fails as
        // a typed 'error' response, not a crash.
        let response = handle(&registry, &request("sample"));
        assert!(!response.ok);
        assert_eq!(response.status, "error");

        let response = handle(&registry, &request("health"));
        assert!(response.ok);
        assert_eq!(response.status, "ok");
        assert_eq!(response.models.as_deref().map(<[String]>::len), Some(1));
        assert_eq!(response.quarantined, Some(0));
    }

    #[test]
    fn chunking_respects_the_row_budget_and_split_injection() {
        let spec = |rows: usize| SampleSpec::new(rows, 1);
        let items = vec![(0, spec(4)), (1, spec(3)), (2, spec(6)), (3, spec(2))];

        // 4+3 fits in 8, adding 6 would not; 6+2 fits exactly.
        let chunks = chunk_specs(&items, 8, false);
        let shape: Vec<Vec<usize>> = chunks
            .iter()
            .map(|c| c.iter().map(|&(i, _)| i).collect())
            .collect();
        assert_eq!(shape, vec![vec![0, 1], vec![2, 3]]);

        // batch:split degrades to one chunk per request.
        assert_eq!(chunk_specs(&items, 8, true).len(), 4);

        // An oversized spec still gets its own chunk rather than vanishing.
        assert_eq!(chunk_specs(&[(0, spec(100))], 8, false).len(), 1);
        assert!(chunk_specs(&[], 8, false).is_empty());
    }

    #[test]
    fn batches_answer_in_arrival_order_and_match_the_unbatched_path() {
        let registry = fitted_registry();
        let now = Instant::now();
        let batch = vec![
            (op_request(0, "health"), now),
            (sample_request(1, 6, 9), now),
            (sample_request(2, 6, 9), now),
            (sample_request(3, 5000, 9), now),
            (op_request(4, "explode"), now),
        ];
        // max_batch_rows 8 forces the two 6-row requests into separate
        // coalesced passes — chunking must not change the bytes.
        let responses = process_batch(&registry, &batch, &policy(None, ServeFaultPlan::none()));

        assert_eq!(responses.len(), 5);
        let ids: Vec<Option<u64>> = responses.iter().map(|r| r.id).collect();
        assert_eq!(ids, (0..5).map(Some).collect::<Vec<_>>());

        assert_eq!(responses[0].status, "ok");
        assert_eq!(responses[1].status, "ok");
        assert_eq!(responses[2].status, "ok");
        assert_eq!(responses[1].rows, Some(6));
        assert!(responses[1].digest.is_some());
        // Identical (rows, sample_seed) requests are byte-identical, and
        // both match the direct single-request path.
        assert_eq!(responses[1].digest, responses[2].digest);
        let direct = handle(&registry, &sample_request(1, 6, 9));
        assert_eq!(direct.digest, responses[1].digest);

        // The row cap answers a typed bad_request naming the limit.
        assert_eq!(responses[3].status, "bad_request");
        let detail = responses[3].detail.as_deref().unwrap();
        assert!(detail.contains("--max-rows"), "{detail}");
        assert!(detail.contains("1024"), "{detail}");

        assert_eq!(responses[4].status, "bad_request");

        // batch:split answers the same bytes through single-request
        // batches — the control arm CI compares against.
        let split = process_batch(
            &registry,
            &batch,
            &policy(None, ServeFaultPlan::parse("batch:split").unwrap()),
        );
        assert_eq!(split[1].digest, responses[1].digest);
        assert_eq!(split[2].digest, responses[2].digest);
    }

    #[test]
    fn deadlines_are_rechecked_after_handling() {
        // Each request is charged a real 200ms injected delay against a
        // 300ms deadline. The first request passes its pre-handle check
        // (~200ms elapsed), but by the time the batch finishes the second
        // request's delay has burned ~400ms — the old loop would still
        // have answered ok; the re-check converts it to a deadline miss.
        let registry = fitted_registry();
        let now = Instant::now();
        let batch = vec![
            (op_request(0, "health"), now),
            (op_request(1, "health"), now),
        ];
        let responses = process_batch(
            &registry,
            &batch,
            &policy(
                Some(300),
                ServeFaultPlan::parse("request:delay:200ms").unwrap(),
            ),
        );
        assert_eq!(responses[0].status, "deadline");
        assert!(
            responses[0]
                .detail
                .as_deref()
                .unwrap()
                .contains("after handling"),
            "first request must fail the post-handle re-check, got {:?}",
            responses[0].detail
        );
        assert_eq!(responses[1].status, "deadline");
        assert!(
            !responses[1]
                .detail
                .as_deref()
                .unwrap()
                .contains("after handling"),
            "second request must already fail the pre-handle check"
        );
    }

    #[test]
    fn injected_panics_answer_per_request() {
        let registry = fitted_registry();
        let now = Instant::now();
        let batch = vec![
            (sample_request(0, 4, 1), now),
            (op_request(1, "health"), now),
        ];
        let responses = process_batch(
            &registry,
            &batch,
            &policy(None, ServeFaultPlan::parse("request:panic").unwrap()),
        );
        assert_eq!(responses.len(), 2);
        for response in &responses {
            assert_eq!(response.status, "panic");
            assert!(response
                .detail
                .as_deref()
                .unwrap()
                .contains("injected fault"));
        }
    }
}
