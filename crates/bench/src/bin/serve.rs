//! Supervised serving loop over a checkpoint directory: the "replace the
//! simulator" half of the paper, run as a long-lived process.
//!
//! `serve` loads every crash-safe checkpoint artifact a `sweep
//! --checkpoint-dir` run persisted into a model registry keyed by
//! (model, preset, seed, budget), then answers JSON-line requests on
//! stdin with JSON-line responses on stdout. The loop is *supervised*:
//! every failure mode is a typed response, never a dead process —
//!
//! * **Degraded startup** — corrupt or stale checkpoints are quarantined
//!   (reported on stderr with their typed `CheckpointError`) and the
//!   registry serves the rest; stray `*.tmp` files from a write killed
//!   mid-save are skipped by construction.
//! * **Load shedding** — requests queue into a bounded channel
//!   (`--queue-depth`); when it is full the request is shed immediately
//!   with a typed `overload` response instead of growing an unbounded
//!   backlog.
//! * **Deadlines** — `--deadline-ms` bounds each request's time from
//!   arrival; an overrun answers `deadline` instead of blocking the queue.
//! * **Panic capture** — a panicking handler answers `panic`; the worker
//!   and the process survive.
//!
//! `--inject` drives all of the above deterministically in CI (see
//! `surrogate::fault::ServeFaultPlan`): `load:corrupt` quarantines the
//! first checkpoint, `request:delay:100ms` charges every request a
//! processing delay (combined with `--virtual-clock` it burns no real
//! time), `request:panic` panics in the handler, and `queue:hold` makes
//! the worker hold its first request until a later one has been shed, so
//! the overload path is testable without timing races.
//!
//! Protocol (one JSON object per line; unknown fields rejected):
//!   {"id":1,"op":"health"}
//!   {"id":2,"op":"list"}
//!   {"id":3,"op":"sample","model":"tabddpm","preset":"small","seed":2024,
//!    "budget":"smoke","rows":64,"sample_seed":7}
//! Sample responses carry the row count and an FNV-1a digest of the
//! canonical table rendering, so two loads of one checkpoint can be
//! checked for byte-identical sampling without shipping the table.

use std::io::BufRead;
use std::path::Path;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc::{sync_channel, TrySendError};
use std::sync::Arc;
use std::time::{Duration, Instant};

use serde::{Deserialize, Serialize};
use surrogate::artifact_io::fnv1a_hex;
use surrogate::checkpoint::{
    Checkpoint, CheckpointError, CheckpointRegistry, QuarantinedCheckpoint,
};
use surrogate::fault::panic_message;
use surrogate::{FaultClock, ModelKind, ServeFaultPlan, TrainingBudget};

const USAGE: &str = "\
serve: supervised serving loop over crash-safe model checkpoints

  --checkpoints DIR      checkpoint directory to load (required); corrupt
                         entries are quarantined, not fatal, and stray *.tmp
                         staging files are ignored
  --queue-depth N        bounded request queue depth, N >= 1 (default 64);
                         a full queue sheds requests with a typed 'overload'
                         response
  --deadline-ms N        per-request deadline from arrival, N >= 1; overruns
                         answer 'deadline' (default: none)
  --inject SPEC          deterministic fault injection, e.g.
                         load:corrupt,request:delay:100ms,request:panic,queue:hold
  --virtual-clock        injected request delays charge the deadline clock
                         without sleeping

Requests are JSON lines on stdin, responses JSON lines on stdout:
  {\"id\":1,\"op\":\"health\"}
  {\"id\":2,\"op\":\"list\"}
  {\"id\":3,\"op\":\"sample\",\"model\":\"tabddpm\",\"preset\":\"small\",
   \"seed\":2024,\"budget\":\"smoke\",\"rows\":64,\"sample_seed\":7}
";

/// Exit for malformed command lines.
fn usage_error(message: &str) -> ! {
    eprintln!("serve: {message}");
    eprintln!("serve: run with --help for usage");
    std::process::exit(2);
}

/// Exit for runtime failures (unreadable checkpoint directory).
fn runtime_error(message: &str) -> ! {
    eprintln!("serve: {message}");
    std::process::exit(1);
}

fn flag(args: &[String], name: &str) -> bool {
    args.iter().any(|a| a == name)
}

fn value(args: &[String], name: &str) -> Option<String> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

/// Parse `--queue-depth N` (at least 1 — a zero-depth queue would shed
/// every request).
fn parse_queue_depth(text: &str) -> Result<usize, String> {
    match text.trim().parse::<usize>() {
        Ok(0) => Err(format!("bad --queue-depth '{text}' (want >= 1)")),
        Ok(n) => Ok(n),
        Err(_) => Err(format!("bad --queue-depth '{text}' (want an integer >= 1)")),
    }
}

/// Parse `--deadline-ms N` (at least 1 — a zero deadline would fail every
/// request before any work happens).
fn parse_deadline_ms(text: &str) -> Result<u64, String> {
    match text.trim().parse::<u64>() {
        Ok(0) => Err(format!("bad --deadline-ms '{text}' (want >= 1)")),
        Ok(n) => Ok(n),
        Err(_) => Err(format!("bad --deadline-ms '{text}' (want an integer >= 1)")),
    }
}

/// One request line. Every selector field is optional: `sample` matches
/// registry entries against the fields that are present and requires the
/// match to be unique.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct Request {
    /// Caller-chosen correlation id, echoed in the response.
    id: Option<u64>,
    /// `health`, `list`, or `sample`.
    op: String,
    /// Model-kind selector (e.g. `tabddpm`; parsed case-insensitively).
    model: Option<String>,
    /// Generator-preset selector.
    preset: Option<String>,
    /// Seed-axis selector.
    seed: Option<u64>,
    /// Training-budget selector.
    budget: Option<String>,
    /// Synthetic rows to sample (default 32).
    rows: Option<usize>,
    /// Sampling seed (default: the checkpoint seed + 1, matching how the
    /// sweep samples after fitting).
    sample_seed: Option<u64>,
}

/// One response line. `status` is the typed outcome CI greps for: `ok`,
/// `bad_request`, `not_found`, `ambiguous`, `overload`, `deadline`,
/// `panic`, or `error`.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct Response {
    /// The request's correlation id (absent for unparseable requests).
    id: Option<u64>,
    /// Whether the request was served.
    ok: bool,
    /// Typed outcome, stable for tooling.
    status: String,
    /// Human-readable explanation for non-`ok` outcomes.
    detail: Option<String>,
    /// The registry key that served a `sample` request.
    key: Option<String>,
    /// Rows sampled.
    rows: Option<usize>,
    /// FNV-1a digest of the canonical rendering of the sampled table.
    digest: Option<String>,
    /// `list`/`health`: the loadable registry keys / their count.
    models: Option<Vec<String>>,
    /// `health`: quarantined artifact count.
    quarantined: Option<usize>,
}

impl Response {
    fn failure(id: Option<u64>, status: &str, detail: String) -> Self {
        Response {
            id,
            ok: false,
            status: status.to_string(),
            detail: Some(detail),
            key: None,
            rows: None,
            digest: None,
            models: None,
            quarantined: None,
        }
    }

    fn emit(&self) {
        // One println! per response: the line (payload + newline) is
        // written under a single stdout lock, so worker and shedding
        // responses never interleave mid-line.
        println!(
            "{}",
            serde_json::to_string(self).expect("response serializes")
        );
    }
}

/// Match `sample` selectors against the registry. Every present field must
/// match; the result must be a single entry.
fn select<'a>(
    entries: &'a [Checkpoint],
    request: &Request,
) -> Result<&'a Checkpoint, (String, String)> {
    let model = match request.model.as_deref() {
        Some(name) => Some(
            ModelKind::parse(name)
                .ok_or_else(|| ("bad_request".to_string(), format!("unknown model '{name}'")))?,
        ),
        None => None,
    };
    let budget = match request.budget.as_deref() {
        Some(name) => Some(TrainingBudget::parse(name).ok_or_else(|| {
            (
                "bad_request".to_string(),
                format!("unknown budget '{name}'"),
            )
        })?),
        None => None,
    };
    let matches: Vec<&Checkpoint> = entries
        .iter()
        .filter(|c| model.is_none_or(|m| c.model == m))
        .filter(|c| budget.is_none_or(|b| c.budget == b))
        .filter(|c| request.preset.as_deref().is_none_or(|p| c.preset == p))
        .filter(|c| request.seed.is_none_or(|s| c.seed == s))
        .collect();
    match matches.as_slice() {
        [] => Err((
            "not_found".to_string(),
            "no checkpoint matches the request selectors".to_string(),
        )),
        [one] => Ok(one),
        many => Err((
            "ambiguous".to_string(),
            format!(
                "{} checkpoints match; add selectors (e.g. {})",
                many.len(),
                many[0].key()
            ),
        )),
    }
}

/// Handle one request against the registry (deadline/panic/shed handling
/// live in the caller). Only this part runs under `catch_unwind`.
fn handle(registry: &CheckpointRegistry, request: &Request) -> Response {
    match request.op.as_str() {
        "health" => Response {
            id: request.id,
            ok: true,
            status: if registry.is_degraded() {
                "degraded".to_string()
            } else {
                "ok".to_string()
            },
            detail: None,
            key: None,
            rows: None,
            digest: None,
            models: Some(registry.entries.iter().map(Checkpoint::key).collect()),
            quarantined: Some(registry.quarantined.len()),
        },
        "list" => Response {
            id: request.id,
            ok: true,
            status: "ok".to_string(),
            detail: None,
            key: None,
            rows: None,
            digest: None,
            models: Some(registry.entries.iter().map(Checkpoint::key).collect()),
            quarantined: None,
        },
        "sample" => match select(&registry.entries, request) {
            Err((status, detail)) => Response::failure(request.id, &status, detail),
            Ok(checkpoint) => {
                let rows = request.rows.unwrap_or(32);
                let seed = request
                    .sample_seed
                    .unwrap_or_else(|| checkpoint.seed.wrapping_add(1));
                match checkpoint.sample(rows, seed) {
                    Err(e) => Response::failure(request.id, "error", e.to_string()),
                    Ok(table) => {
                        let rendered = serde_json::to_string(&table).expect("table serializes");
                        Response {
                            id: request.id,
                            ok: true,
                            status: "ok".to_string(),
                            detail: None,
                            key: Some(checkpoint.key()),
                            rows: Some(table.n_rows()),
                            digest: Some(fnv1a_hex(rendered.as_bytes())),
                            models: None,
                            quarantined: None,
                        }
                    }
                }
            }
        },
        other => Response::failure(
            request.id,
            "bad_request",
            format!("unknown op '{other}' (expected health, list or sample)"),
        ),
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        print!("{USAGE}");
        return;
    }
    let dir = value(&args, "--checkpoints")
        .unwrap_or_else(|| usage_error("--checkpoints DIR is required"));
    let queue_depth = value(&args, "--queue-depth")
        .map(|v| parse_queue_depth(&v).unwrap_or_else(|e| usage_error(&e)))
        .unwrap_or(64);
    let deadline_ms = value(&args, "--deadline-ms")
        .map(|v| parse_deadline_ms(&v).unwrap_or_else(|e| usage_error(&e)));
    let faults = value(&args, "--inject")
        .map(|v| {
            ServeFaultPlan::parse(&v).unwrap_or_else(|e| usage_error(&format!("bad --inject: {e}")))
        })
        .unwrap_or_else(ServeFaultPlan::none);
    let clock = if flag(&args, "--virtual-clock") {
        FaultClock::Virtual
    } else {
        FaultClock::Real
    };

    let mut registry = CheckpointRegistry::load_dir(Path::new(&dir))
        .unwrap_or_else(|e| runtime_error(&format!("cannot load checkpoints: {e}")));
    if faults.load_corrupt() && !registry.entries.is_empty() {
        // Deterministic startup-corruption drill: treat the first
        // (alphabetically) loadable checkpoint as corrupt.
        let first = registry.entries.remove(0);
        registry.quarantined.push(QuarantinedCheckpoint {
            file: first.file_name(),
            error: CheckpointError::Malformed {
                section: "payload",
                reason: "injected corruption (load:corrupt)".to_string(),
            },
        });
    }
    eprintln!(
        "serve: loaded {} checkpoint(s) from {dir} ({} quarantined, {} temp file(s) ignored)",
        registry.entries.len(),
        registry.quarantined.len(),
        registry.ignored_temp
    );
    for q in &registry.quarantined {
        eprintln!("serve: quarantined {}: {}", q.file, q.error);
    }
    if registry.is_degraded() {
        eprintln!(
            "serve: DEGRADED: serving {} of {} model(s)",
            registry.entries.len(),
            registry.entries.len() + registry.quarantined.len()
        );
    }
    if registry.entries.is_empty() && registry.quarantined.is_empty() {
        runtime_error(&format!("no checkpoints in {dir}"));
    }
    eprintln!(
        "serve: ready (queue depth {queue_depth}, deadline {})",
        deadline_ms.map_or_else(|| "none".to_string(), |ms| format!("{ms}ms"))
    );

    let shed = Arc::new(AtomicUsize::new(0));
    let (tx, rx) = sync_channel::<(Request, Instant)>(queue_depth);
    let worker = {
        let shed = Arc::clone(&shed);
        let faults = faults.clone();
        std::thread::spawn(move || {
            let mut held = !faults.queue_hold();
            for (request, arrival) in rx {
                if !held {
                    // queue:hold — park on the first request until at least
                    // one later request has been shed (bounded by a real
                    // timeout so a mis-written test cannot hang the loop).
                    let give_up = Instant::now() + Duration::from_secs(10);
                    while shed.load(Ordering::SeqCst) == 0 && Instant::now() < give_up {
                        std::thread::sleep(Duration::from_millis(5));
                    }
                    held = true;
                }
                // Injected processing delay burns on the configured clock;
                // under --virtual-clock it only charges the deadline below.
                let virtual_ms = match faults.request_delay_ms() {
                    Some(ms) => clock.delay_ms(ms),
                    None => 0.0,
                };
                if let Some(limit) = deadline_ms {
                    let elapsed_ms = arrival.elapsed().as_secs_f64() * 1e3 + virtual_ms;
                    if elapsed_ms >= limit as f64 {
                        Response::failure(
                            request.id,
                            "deadline",
                            format!("request exceeded its {limit}ms deadline ({elapsed_ms:.0}ms)"),
                        )
                        .emit();
                        continue;
                    }
                }
                let response = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    if faults.request_panic() {
                        panic!("injected fault: panic in request handler");
                    }
                    handle(&registry, &request)
                }))
                .unwrap_or_else(|payload| {
                    Response::failure(request.id, "panic", panic_message(payload))
                });
                response.emit();
            }
        })
    };

    let stdin = std::io::stdin();
    let mut received = 0usize;
    for line in stdin.lock().lines() {
        let line = match line {
            Ok(line) => line,
            Err(e) => runtime_error(&format!("cannot read stdin: {e}")),
        };
        if line.trim().is_empty() {
            continue;
        }
        received += 1;
        let request: Request = match serde_json::from_str(&line) {
            Ok(request) => request,
            Err(e) => {
                Response::failure(None, "bad_request", format!("unparseable request: {e}")).emit();
                continue;
            }
        };
        let id = request.id;
        if let Err(e) = tx.try_send((request, Instant::now())) {
            match e {
                TrySendError::Full(_) => {
                    shed.fetch_add(1, Ordering::SeqCst);
                    Response::failure(
                        id,
                        "overload",
                        format!("queue full (depth {queue_depth}), request shed"),
                    )
                    .emit();
                }
                TrySendError::Disconnected(_) => {
                    runtime_error("worker thread died");
                }
            }
        }
    }
    drop(tx);
    worker
        .join()
        .unwrap_or_else(|_| runtime_error("worker thread panicked outside the capture boundary"));
    eprintln!(
        "serve: shutdown after {received} request(s), {} shed",
        shed.load(Ordering::SeqCst)
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn queue_depth_parser_requires_a_positive_depth() {
        assert_eq!(parse_queue_depth("64").unwrap(), 64);
        assert_eq!(parse_queue_depth(" 1 ").unwrap(), 1);
        for bad in ["0", "", "-3", "deep", "1.5"] {
            assert!(
                parse_queue_depth(bad)
                    .unwrap_err()
                    .contains("--queue-depth"),
                "{bad:?} must be rejected with the flag name"
            );
        }
    }

    #[test]
    fn deadline_parser_requires_a_positive_deadline() {
        assert_eq!(parse_deadline_ms("50").unwrap(), 50);
        for bad in ["0", "", "-1", "soon"] {
            assert!(
                parse_deadline_ms(bad)
                    .unwrap_err()
                    .contains("--deadline-ms"),
                "{bad:?} must be rejected with the flag name"
            );
        }
    }

    #[test]
    fn requests_parse_with_optional_selectors() {
        let full: Request = serde_json::from_str(
            r#"{"id":3,"op":"sample","model":"tabddpm","preset":"small","seed":2024,
                "budget":"smoke","rows":64,"sample_seed":7}"#,
        )
        .unwrap();
        assert_eq!(full.id, Some(3));
        assert_eq!(full.op, "sample");
        assert_eq!(full.rows, Some(64));

        let bare: Request = serde_json::from_str(r#"{"op":"health"}"#).unwrap();
        assert_eq!(bare.id, None);
        assert_eq!(bare.model, None);

        assert!(serde_json::from_str::<Request>(r#"{"id":1}"#).is_err());
        assert!(serde_json::from_str::<Request>("not json").is_err());
    }

    #[test]
    fn selection_requires_a_unique_match() {
        use surrogate::build_payload;
        let entries: Vec<Checkpoint> = [
            (ModelKind::Smote, 2024),
            (ModelKind::Smote, 2025),
            (ModelKind::TabDdpm, 2024),
        ]
        .iter()
        .map(|&(kind, seed)| {
            Checkpoint::new(
                "small",
                seed,
                TrainingBudget::Smoke,
                build_payload(kind, TrainingBudget::Smoke, seed),
            )
        })
        .collect();
        let request = |model: Option<&str>, seed: Option<u64>| Request {
            id: None,
            op: "sample".to_string(),
            model: model.map(str::to_string),
            preset: None,
            seed,
            budget: None,
            rows: None,
            sample_seed: None,
        };

        let unique = select(&entries, &request(Some("tabddpm"), None)).unwrap();
        assert_eq!(unique.key(), "s2024-smoke-small-tabddpm");
        let unique = select(&entries, &request(Some("smote"), Some(2025))).unwrap();
        assert_eq!(unique.seed, 2025);

        let (status, _) = select(&entries, &request(Some("smote"), None)).unwrap_err();
        assert_eq!(status, "ambiguous");
        let (status, _) = select(&entries, &request(Some("tvae"), None)).unwrap_err();
        assert_eq!(status, "not_found");
        let (status, _) = select(&entries, &request(Some("mystery"), None)).unwrap_err();
        assert_eq!(status, "bad_request");
    }

    #[test]
    fn unknown_ops_and_unfitted_models_answer_typed_failures() {
        use surrogate::build_payload;
        let registry = CheckpointRegistry {
            entries: vec![Checkpoint::new(
                "small",
                2024,
                TrainingBudget::Smoke,
                build_payload(ModelKind::Smote, TrainingBudget::Smoke, 2024),
            )],
            quarantined: Vec::new(),
            ignored_temp: 0,
        };
        let request = |op: &str| Request {
            id: Some(9),
            op: op.to_string(),
            model: None,
            preset: None,
            seed: None,
            budget: None,
            rows: None,
            sample_seed: None,
        };

        let response = handle(&registry, &request("explode"));
        assert!(!response.ok);
        assert_eq!(response.status, "bad_request");
        assert_eq!(response.id, Some(9));

        // The registry's only checkpoint is unfitted, so sampling fails as
        // a typed 'error' response, not a crash.
        let response = handle(&registry, &request("sample"));
        assert!(!response.ok);
        assert_eq!(response.status, "error");

        let response = handle(&registry, &request("health"));
        assert!(response.ok);
        assert_eq!(response.status, "ok");
        assert_eq!(response.models.as_deref().map(<[String]>::len), Some(1));
        assert_eq!(response.quarantined, Some(0));
    }
}
